// The socket front-end: an epoll-based, non-blocking listener that serves
// the SuperProxy engine as a real HTTP proxy on 127.0.0.1. One listener
// fd plus one connection object per accepted socket (the aeronet pattern);
// each connection is a small state machine:
//
//   kRequest --- GET dispatched ----------------------------.
//      |  ^                                                 | keep-alive
//      |  '------------------------------------------------'
//      |--- CONNECT admitted --> kTunnel --- hello frame --> reply frame
//      '--- parse error / timeout / Connection: close --> closed
//
// Requests are framed by http::MessageReader (arbitrary TCP segmentation,
// pipelining); tunnels speak the length-prefixed frames of framing.hpp.
// Every accept/request/tunnel/teardown bumps a `net.*` counter on the
// wired obs::Registry, and dispatches append flight-recorder hops to
// whichever transaction the driving probe holds open.
//
// Threading: the server may be driven by run() on a dedicated thread (the
// TestProxyServer fixture, `tft-study --serve`) or cooperatively pumped on
// the caller's thread via poll_once() (the loopback measurement path, which
// keeps world state strictly single-threaded). request_stop() is the only
// thread-safe entry point.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "tft/http/reader.hpp"
#include "tft/net/server/event_loop.hpp"
#include "tft/net/server/framing.hpp"
#include "tft/proxy/luminati.hpp"
#include "tft/util/result.hpp"

namespace tft::obs {
class Registry;
class Recorder;
}  // namespace tft::obs

namespace tft::net::server {

struct ProxyServerConfig {
  /// 0 = ephemeral (read the bound port back with port()).
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_head_bytes = 64 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
  std::size_t max_frame_bytes = 1024 * 1024;
  /// Wall-clock guard against slow-header (slowloris) peers and idle
  /// keep-alive connections. 0 disables — required in the cooperative
  /// loopback mode, where wall time must never influence behavior.
  int read_timeout_ms = 10'000;
  /// Accept-burst backpressure: with this many connections already open,
  /// further accepts are closed on the spot (`net.accept.rejected`) instead
  /// of admitted, so a connection flood cannot exhaust fds. 0 = unlimited.
  std::size_t max_connections = 0;
  /// Per-connection write-queue cap: a peer that pipelines requests without
  /// reading responses grows the outbox; past this many pending bytes the
  /// connection is dropped (`net.write_queue_overflows`). 0 = unlimited.
  std::size_t max_outbox_bytes = 8 * 1024 * 1024;
  /// SO_SNDBUF for accepted sockets, 0 = OS default. Small values force the
  /// partial-write paths (outbox retention, EPOLLOUT re-arm) deterministically
  /// under test.
  int send_buffer_bytes = 0;
};

class ProxyServer {
 public:
  ProxyServer(proxy::SuperProxy& engine, ProxyServerConfig config = {},
              obs::Registry* metrics = nullptr,
              obs::Recorder* recorder = nullptr);
  ~ProxyServer();
  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  /// Bind 127.0.0.1, listen, register with the loop. On success the
  /// server is accepting (port() is valid) before this returns — callers
  /// never need to poll-until-listening.
  util::Result<void> start();

  std::uint16_t port() const noexcept { return port_; }

  /// Dispatch until request_stop(). Blocks; run on a dedicated thread.
  void run();

  /// One dispatch round (cooperative pump). Returns true when any
  /// connection handler ran. Also sweeps expired read deadlines.
  bool poll_once(int timeout_ms);

  /// Thread-safe: ask a blocked run() to return.
  void request_stop();

  /// Close the listener and every connection. Idempotent; the destructor
  /// calls it, so a destroyed server leaks no fds.
  void shutdown();

  std::size_t open_connections() const noexcept { return connections_.size(); }
  std::uint64_t accepted() const noexcept { return accepted_; }

 private:
  struct Connection {
    int fd = -1;
    enum class State { kRequest, kTunnel } state = State::kRequest;
    http::MessageReader reader;
    FrameReader frames;
    std::string outbox;
    std::size_t outbox_sent = 0;
    bool close_after_write = false;
    bool want_write = false;
    std::size_t requests_served = 0;
    // CONNECT context, valid in kTunnel.
    Ipv4Address tunnel_address;
    std::uint16_t tunnel_port = 0;
    proxy::RequestOptions tunnel_options;
    bool tunnel_replied = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  void count(std::string_view name, std::uint64_t delta = 1);
  void record(std::string_view action, std::string_view detail);
  void handle_listener();
  void handle_connection(int fd, std::uint32_t events);
  /// Drain completed requests/frames; returns false when the connection
  /// was closed during dispatch.
  bool drain_ready(Connection& conn);
  void dispatch_request(Connection& conn, const std::string& wire);
  void dispatch_tunnel_frame(Connection& conn, const std::string& payload);
  http::Response describe_fetch(const proxy::ProxyFetchResult& result) const;
  /// Append bytes to the outbox and flush what the socket accepts now.
  /// Returns false when the connection was closed by a write error or a
  /// completed close-after-write.
  bool queue(Connection& conn, std::string_view bytes);
  bool flush(Connection& conn);
  void arm_deadline(Connection& conn);
  void sweep_deadlines();
  int clamp_timeout(int timeout_ms) const;
  void close_connection(int fd);

  proxy::SuperProxy& engine_;
  ProxyServerConfig config_;
  obs::Registry* metrics_;
  obs::Recorder* recorder_;
  EventLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::atomic<bool> stop_{false};
  std::uint64_t accepted_ = 0;
};

}  // namespace tft::net::server
