// SMTP-layer interception: the violations middleboxes are known to inflict
// on port-25 traffic — STARTTLS stripping (the "fixup"/Cisco PIX class of
// boxes, observed in the wild replacing the capability with XXXXXXXX),
// outright port blocking, banner rewriting, and body tampering.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tft/smtp/protocol.hpp"

namespace tft::smtp {

class SmtpInterceptor {
 public:
  virtual ~SmtpInterceptor() = default;
  virtual std::string_view name() const = 0;

  /// Refuse the connection entirely (residential ISPs blocking port 25).
  virtual bool blocks_connection() const { return false; }

  /// Rewrite a client command on its way to the server (nullopt = as-is).
  virtual std::optional<Command> on_command(const Command& command) {
    (void)command;
    return std::nullopt;
  }

  /// Rewrite a server reply on its way to the client (nullopt = as-is).
  virtual std::optional<Reply> on_reply(const Command& command, const Reply& reply) {
    (void)command;
    (void)reply;
    return std::nullopt;
  }

  /// Rewrite a complete DATA body before it reaches the server
  /// (nullopt = as-is).
  virtual std::optional<std::string> on_message_body(const std::string& body) {
    (void)body;
    return std::nullopt;
  }
};

using SmtpInterceptorList = std::vector<std::shared_ptr<SmtpInterceptor>>;

/// Replaces the STARTTLS capability in EHLO replies with junk and fails the
/// STARTTLS command itself — downgrading the session to cleartext.
class StarttlsStripper : public SmtpInterceptor {
 public:
  explicit StarttlsStripper(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  std::optional<Reply> on_reply(const Command& command, const Reply& reply) override;

 private:
  std::string name_;
};

/// Refuses all SMTP connections (port-25 blocking).
class PortBlocker : public SmtpInterceptor {
 public:
  explicit PortBlocker(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  bool blocks_connection() const override { return true; }

 private:
  std::string name_;
};

/// Rewrites the server banner, hiding the real software (a common
/// "security through obscurity" middlebox behaviour).
class BannerRewriter : public SmtpInterceptor {
 public:
  BannerRewriter(std::string name, std::string replacement)
      : name_(std::move(name)), replacement_(std::move(replacement)) {}
  std::string_view name() const override { return name_; }
  std::optional<Reply> on_reply(const Command& command, const Reply& reply) override;

 private:
  std::string name_;
  std::string replacement_;
};

/// Appends a footer line to every message body (outbound "scanned by"
/// tampering).
class BodyTagger : public SmtpInterceptor {
 public:
  BodyTagger(std::string name, std::string footer)
      : name_(std::move(name)), footer_(std::move(footer)) {}
  std::string_view name() const override { return name_; }
  std::optional<std::string> on_message_body(const std::string& body) override;

  const std::string& footer() const noexcept { return footer_; }

 private:
  std::string name_;
  std::string footer_;
};

}  // namespace tft::smtp
