// Structure-aware random generators for every wire protocol the study
// speaks. They are the "valid half" of the fuzzing harness: each generator
// produces a semantically valid in-memory value from a deterministic Rng
// stream, so `decode(encode(x)) == x` can be asserted millions of times
// without ever constructing an invalid fixture by hand. The byte-level
// "invalid half" lives in mutate.hpp.
#pragma once

#include <string>
#include <vector>

#include "tft/dns/message.hpp"
#include "tft/http/message.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/smtp/protocol.hpp"
#include "tft/tls/certificate.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"

namespace tft::testing {

// --- primitive fragments -----------------------------------------------------

/// A valid DNS label: 1..12 chars from [A-Za-z0-9-_].
std::string random_label(util::Rng& rng);

/// A short ASCII token (header names, reason phrases, SMTP arguments).
std::string random_token(util::Rng& rng);

/// Arbitrary binary payload of length [0, max_length).
std::string random_bytes(util::Rng& rng, std::size_t max_length);

// --- DNS ---------------------------------------------------------------------

/// A valid domain name of 1..5 labels.
dns::DnsName random_dns_name(util::Rng& rng);

/// A query or response with mixed A/CNAME/TXT records across all sections.
/// Names repeat with probability ~0.5 so the encoder's compression paths
/// are exercised.
dns::Message random_dns_message(util::Rng& rng);

// --- HTTP --------------------------------------------------------------------

/// A GET/HEAD/POST/CONNECT request with random headers and (for POST) body.
http::Request random_http_request(util::Rng& rng);

/// A response with random status/reason/headers and a binary body of up to
/// ~2 KB. Serialize with `serialize()` or `serialize_chunked()`.
http::Response random_http_response(util::Rng& rng);

// --- TLS ---------------------------------------------------------------------

/// A certificate with random DNs, validity window, SANs and key ids.
tls::Certificate random_tls_certificate(util::Rng& rng);

/// A chain of 0..5 random certificates.
tls::CertificateChain random_tls_chain(util::Rng& rng);

// --- SMTP --------------------------------------------------------------------

/// A single- or multi-line reply with a valid 3-digit code.
smtp::Reply random_smtp_reply(util::Rng& rng);

/// A client command drawn from the RFC 5321 verbs the library models.
smtp::Command random_smtp_command(util::Rng& rng);

/// A scripted client/server dialogue (EHLO → MAIL → RCPT → DATA → QUIT with
/// random argument text), serialized as alternating wire lines. Used to
/// exercise Command/Reply parsing over realistic session shapes.
struct SmtpDialogue {
  std::vector<smtp::Command> commands;
  std::vector<smtp::Reply> replies;  // one per command

  /// All commands and replies in wire order (command, reply, command, ...).
  std::string serialize() const;
};
SmtpDialogue random_smtp_dialogue(util::Rng& rng);

// --- JSON --------------------------------------------------------------------

/// A random JSON document (text form) nested up to `max_depth` levels.
/// Always syntactically valid.
std::string random_json_document(util::Rng& rng, int max_depth = 6);

/// Random valid study resume token (0-5 rounds, full-width 64-bit values
/// to exercise the hex wire encoding end to end).
util::StreamCheckpoint random_stream_checkpoint(util::Rng& rng);

// --- flight-recorder transactions --------------------------------------------

/// Random valid flight-recorder transaction: full-width 64-bit ids and
/// timestamps, every hop kind, and strings laced with JSON-hostile
/// characters (quotes, backslashes, control bytes) so the trace codec's
/// escaping is exercised end to end.
obs::TxnRecord random_txn_record(util::Rng& rng);

}  // namespace tft::testing
