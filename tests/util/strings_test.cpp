#include "tft/util/strings.hpp"

#include <gtest/gtest.h>

namespace tft::util {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = split("abc", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitNonemptyDropsEmpty) {
  const auto parts = split_nonempty(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(iequals("Host", "hOST"));
  EXPECT_FALSE(iequals("Host", "Hosts"));
  EXPECT_TRUE(icontains("X-Hola-Timeline-Debug", "hola-timeline"));
  EXPECT_FALSE(icontains("abc", "abcd"));
  EXPECT_TRUE(contains("hello world", "lo wo"));
}

TEST(StringsTest, HexEncode) {
  EXPECT_EQ(hex_encode(std::string_view("\x00\xff\x10", 3)), "00ff10");
}

TEST(StringsTest, FormatHelpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1276873), "1,276,873");
  EXPECT_EQ(format_percent(0.048), "4.8%");
  EXPECT_EQ(format_percent(0.5234, 2), "52.34%");
}

}  // namespace
}  // namespace tft::util
