// SMTP end-to-end violation measurement — the §3.4 future-work extension:
// "we could extend our methodologies for VPNs that allow arbitrary traffic
// to be sent, enabling us to capture end-to-end connectivity violations in
// protocols like SMTP."
//
// Requires an overlay that tunnels arbitrary ports (unlike Luminati's
// 443-only CONNECT). Each node runs one scripted transaction against our
// mail server; the detector compares the transcript and the server-side
// message against ground truth we control.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tft/world/world.hpp"

namespace tft::core {

struct SmtpProbeConfig {
  std::size_t target_nodes = 5000;  // 0 = crawl to exhaustion
  std::size_t stall_limit = 3000;
  std::uint64_t seed = 0x25;
};

struct SmtpObservation {
  /// Flight-recorder transaction behind this observation (0 when the world
  /// has no recorder); stable across --jobs and probe composition.
  std::uint64_t txn_id = 0;
  std::string zid;
  net::Ipv4Address exit_address;
  net::Asn asn = 0;
  net::CountryCode country;

  bool connection_blocked = false;   // port 25 unreachable
  bool banner_rewritten = false;     // 220 text differs from our server's
  bool starttls_stripped = false;    // capability hidden from the client
  bool starttls_downgraded = false;  // offered but the upgrade then failed
  bool body_tampered = false;        // server received a modified message
  bool message_lost = false;         // accepted by client view, never arrived

  bool any_violation() const {
    return connection_blocked || banner_rewritten || starttls_stripped ||
           starttls_downgraded || body_tampered || message_lost;
  }
};

class SmtpProbe {
 public:
  SmtpProbe(world::World& world, SmtpProbeConfig config);

  /// Returns the number of nodes measured; 0 with `overlay_rejected()` true
  /// when the proxy service does not allow port-25 tunneling (Luminati).
  std::size_t run();

  bool overlay_rejected() const noexcept { return overlay_rejected_; }
  const std::vector<SmtpObservation>& observations() const noexcept {
    return observations_;
  }
  std::size_t sessions_issued() const noexcept { return sessions_issued_; }

 private:
  world::World& world_;
  SmtpProbeConfig config_;
  bool overlay_rejected_ = false;
  std::vector<SmtpObservation> observations_;
  std::size_t sessions_issued_ = 0;
};

// --- Analysis -----------------------------------------------------------------

struct SmtpAnalysisConfig {
  std::size_t min_nodes_per_as = 5;
};

struct SmtpAsRow {
  net::Asn asn = 0;
  std::string isp;
  net::CountryCode country;
  std::size_t affected = 0;
  std::size_t total = 0;
  std::string violation;  // dominant violation in this AS
};

struct SmtpReport {
  std::size_t total_nodes = 0;
  std::size_t unique_ases = 0;
  std::size_t unique_countries = 0;
  std::size_t blocked = 0;
  std::size_t stripped = 0;
  std::size_t downgraded = 0;
  std::size_t banner_rewritten = 0;
  std::size_t body_tampered = 0;
  std::size_t message_lost = 0;
  std::vector<SmtpAsRow> top_ases;  // ASes with concentrated interception
  /// Evidence chains: violation category -> flight-recorder txn ids of
  /// every observation counted under it ("0x…" refs in report_json).
  std::map<std::string, std::vector<std::uint64_t>> evidence;

  double ratio(std::size_t n) const {
    return total_nodes == 0 ? 0 : static_cast<double>(n) / total_nodes;
  }
};

SmtpReport analyze_smtp(const world::World& world,
                        const std::vector<SmtpObservation>& observations,
                        const SmtpAnalysisConfig& config);

std::string render_smtp_report(const SmtpReport& report);

}  // namespace tft::core
