#include "tft/core/longitudinal.hpp"

#include <algorithm>
#include <set>

#include "tft/stats/table.hpp"
#include "tft/util/strings.hpp"

namespace tft::core {

std::vector<LongitudinalRound> LongitudinalDnsStudy::run() {
  std::vector<LongitudinalRound> rounds;
  world_.metrics.begin_span("longitudinal.study", world_.clock.now());
  for (int round = 0; round < config_.rounds; ++round) {
    if (round > 0) {
      world_.clock.run_until(world_.clock.now() + config_.interval);
      if (between_rounds_) between_rounds_(round, world_);
    }

    world_.metrics.begin_span("longitudinal.round", world_.clock.now());
    DnsProbeConfig probe_config = config_.probe;
    probe_config.seed = config_.probe.seed + static_cast<std::uint64_t>(round) * 7919;
    DnsHijackProbe probe(world_, probe_config);
    probe.run();
    const DnsReport report =
        analyze_dns(world_, probe.observations(), config_.analysis);

    LongitudinalRound entry;
    entry.round = round;
    entry.time = world_.clock.now();
    entry.measured = report.total_nodes - report.filtered_nodes;
    entry.hijacked = report.hijacked_nodes;
    entry.ratio = report.hijack_ratio();
    entry.isp_hijackers = report.isp_hijackers;

    world_.metrics.add("longitudinal.rounds");
    world_.metrics.add("longitudinal.nodes_measured", entry.measured);
    world_.metrics.add("longitudinal.nodes_hijacked", entry.hijacked);
    world_.metrics.add("longitudinal.isp_attributions",
                       entry.isp_hijackers.size());
    world_.metrics.end_span(world_.clock.now());
    rounds.push_back(std::move(entry));
  }
  world_.metrics.end_span(world_.clock.now());
  return rounds;
}

std::string render_longitudinal(const std::vector<LongitudinalRound>& rounds) {
  using util::format_count;
  using util::format_percent;

  std::string out = stats::banner("Longitudinal DNS hijacking (continuous, S9)");
  stats::Table series({"Round", "Sim time", "Measured", "Hijacked", "Ratio", "ISPs"});
  for (const auto& round : rounds) {
    series.add_row({std::to_string(round.round),
                    util::format_double(round.time.micros / 1e6 / 86400.0, 1) + "d",
                    format_count(round.measured), format_count(round.hijacked),
                    format_percent(round.ratio),
                    std::to_string(round.isp_hijackers.size())});
  }
  out += series.render() + "\n";

  // Presence matrix: which ISPs were hijacking in which round.
  std::set<std::string> isps;
  for (const auto& round : rounds) {
    for (const auto& row : round.isp_hijackers) isps.insert(row.isp);
  }
  if (!isps.empty()) {
    std::vector<std::string> columns = {"ISP"};
    for (const auto& round : rounds) {
      columns.push_back("R" + std::to_string(round.round));
    }
    stats::Table matrix(std::move(columns));
    for (const auto& isp : isps) {
      std::vector<std::string> cells = {isp};
      for (const auto& round : rounds) {
        cells.push_back(round.isp_listed(isp) ? "x" : ".");
      }
      matrix.add_row(std::move(cells));
    }
    out += "Per-ISP hijacking presence across rounds:\n" + matrix.render();
  }
  return out;
}

}  // namespace tft::core
