#include "tft/obs/recorder.hpp"

#include <gtest/gtest.h>

namespace tft::obs {
namespace {

TEST(RecorderTest, BeginEventEndCapturesOneTransaction) {
  Recorder recorder;
  recorder.begin(0x42, "dns", "x-d2.probe.tft-study.net");
  EXPECT_TRUE(recorder.open());
  recorder.event(Hop::kClient, "dns-probe", "fetch-d1", "x-d1", 100);
  recorder.annotate_node("zid-a");
  recorder.end("clean");
  EXPECT_FALSE(recorder.open());

  ASSERT_EQ(recorder.records().size(), 1u);
  const TxnRecord& record = recorder.records().front();
  EXPECT_EQ(record.txn_id, 0x42u);
  EXPECT_EQ(record.kind, "dns");
  EXPECT_EQ(record.target, "x-d2.probe.tft-study.net");
  EXPECT_EQ(record.zid, "zid-a");
  EXPECT_EQ(record.verdict, "clean");
  ASSERT_EQ(record.events.size(), 1u);
  EXPECT_EQ(record.events.front().action, "fetch-d1");
  EXPECT_EQ(record.events.front().sim_us, 100u);
}

TEST(RecorderTest, EventsOutsideOpenTransactionAreDropped) {
  // Monitor re-fetches fire from the event queue between crawls; they must
  // not attach to a neighboring transaction.
  Recorder recorder;
  recorder.event(Hop::kOrigin, "stray", "re-fetch", "", 1);
  recorder.violation(Hop::kMiddlebox, "stray", "rewrite", "", 2);
  EXPECT_TRUE(recorder.records().empty());

  recorder.begin(1, "http", "example.com");
  recorder.end("");
  recorder.event(Hop::kOrigin, "stray", "re-fetch", "", 3);
  EXPECT_TRUE(recorder.records().front().events.empty());
}

TEST(RecorderTest, FirstViolationWinsCulprit) {
  // Matches the middlebox rule: the first interceptor to fire is blamed,
  // later rewrites in the same chain don't steal the attribution.
  Recorder recorder;
  recorder.begin(7, "http", "example.com");
  recorder.violation(Hop::kMiddlebox, "first-box", "inject-html", "", 1);
  recorder.violation(Hop::kMiddlebox, "second-box", "inject-html", "", 2);
  recorder.end("injected");
  EXPECT_EQ(recorder.records().front().culprit, "first-box");
  EXPECT_EQ(recorder.records().front().events.size(), 2u);
}

TEST(RecorderTest, BeginClosesPreviousOpenTransaction) {
  Recorder recorder;
  recorder.begin(1, "dns", "a");
  recorder.begin(2, "dns", "b");
  recorder.end("clean");
  ASSERT_EQ(recorder.records().size(), 2u);
  EXPECT_EQ(recorder.records()[0].verdict, "");  // force-closed, unresolved
  EXPECT_EQ(recorder.records()[1].verdict, "clean");
}

TEST(RecorderTest, AmendmentsFixUpClosedTransactions) {
  Recorder recorder;
  recorder.begin(5, "https", "site.example");
  recorder.end("");

  EXPECT_TRUE(recorder.amend_verdict(5, "replaced", "Corporate Proxy CA"));
  EXPECT_TRUE(recorder.amend_node(5, "zid-b", 64500, "IR"));
  EXPECT_TRUE(
      recorder.amend_event(5, TraceEvent{Hop::kOrigin, "watcher", "re-fetch",
                                         "10.0.0.1 +30s curl", 0}));
  const TxnRecord* record = recorder.find(5);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->verdict, "replaced");
  EXPECT_EQ(record->culprit, "Corporate Proxy CA");
  EXPECT_EQ(record->zid, "zid-b");
  EXPECT_EQ(record->asn, 64500u);
  EXPECT_EQ(record->country, "IR");
  ASSERT_EQ(record->events.size(), 1u);

  // Unknown ids report false so callers can count ring losses.
  EXPECT_FALSE(recorder.amend_verdict(999, "clean", ""));
  EXPECT_FALSE(recorder.amend_node(999, "z", 0, ""));
  EXPECT_FALSE(recorder.amend_event(999, TraceEvent{}));
}

TEST(RecorderTest, RingEvictsOldestAndCountsDrops) {
  Recorder recorder;
  recorder.set_capacity(2);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    recorder.begin(id, "dns", "t");
    recorder.end("clean");
  }
  ASSERT_EQ(recorder.records().size(), 2u);
  EXPECT_EQ(recorder.records()[0].txn_id, 3u);
  EXPECT_EQ(recorder.records()[1].txn_id, 4u);
  EXPECT_EQ(recorder.dropped(), 2u);
  // The index survives eviction: old ids gone, new ids found.
  EXPECT_EQ(recorder.find(1), nullptr);
  ASSERT_NE(recorder.find(4), nullptr);
  EXPECT_EQ(recorder.find(4)->txn_id, 4u);
}

TEST(RecorderTest, MergeAppendsInOrder) {
  Recorder dns;
  dns.begin(1, "dns", "a");
  dns.end("hijacked");
  Recorder http;
  http.begin(2, "http", "b");
  http.end("clean");

  Recorder merged;
  merged.merge_from(dns);
  merged.merge_from(http);
  ASSERT_EQ(merged.records().size(), 2u);
  EXPECT_EQ(merged.records()[0].txn_id, 1u);
  EXPECT_EQ(merged.records()[1].txn_id, 2u);
  ASSERT_NE(merged.find(2), nullptr);
  EXPECT_EQ(merged.find(2)->kind, "http");
}

}  // namespace
}  // namespace tft::obs
