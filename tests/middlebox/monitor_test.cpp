#include "tft/middlebox/monitor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "tft/middlebox/http_modifiers.hpp"

namespace tft::middlebox {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    auto server = std::make_shared<http::OriginServer>("measurement-web");
    server->set_default_handler(
        [](const http::Request&) { return http::Response::make(200, "OK", "probe"); });
    server_ = server.get();
    registry_.add(destination_, std::move(server));

    context_.client_address = exit_address_;
    context_.destination = destination_;
    context_.clock = &clock_;
    context_.rng = &rng_;
    context_.web = &registry_;
  }

  MonitorProfile profile(std::vector<RefetchSpec> refetches,
                         std::vector<net::Ipv4Address> sources = {
                             net::Ipv4Address(150, 70, 1, 1),
                             net::Ipv4Address(150, 70, 1, 2)}) {
    MonitorProfile out;
    out.name = "Trend Micro";
    out.source_addresses = std::move(sources);
    out.user_agent = "TrendMicro WRS/1.0";
    out.refetches = std::move(refetches);
    return out;
  }

  http::Request probe_request() {
    return http::Request::origin_get(
        *http::Url::parse("http://m1.probe.tft-study.net/"));
  }

  net::Ipv4Address exit_address_{203, 0, 113, 5};
  net::Ipv4Address destination_{198, 51, 100, 10};
  http::WebServerRegistry registry_;
  http::OriginServer* server_ = nullptr;
  sim::EventQueue clock_;
  util::Rng rng_{11};
  FetchContext context_;
};

TEST_F(MonitorTest, SchedulesDelayedRefetch) {
  ContentMonitor monitor(profile({RefetchSpec{12, 120, 0, 0, std::nullopt}}));
  HttpInterceptorList chain{std::make_shared<ContentMonitor>(monitor)};
  intercepted_fetch(chain, probe_request(), context_);

  ASSERT_EQ(server_->request_log().size(), 1u);  // only the node's request so far
  clock_.run_until(sim::Instant::epoch() + sim::Duration::seconds(200));
  ASSERT_EQ(server_->request_log().size(), 2u);

  const auto& own = server_->request_log()[0];
  const auto& refetch = server_->request_log()[1];
  EXPECT_EQ(own.source, exit_address_);
  EXPECT_NE(refetch.source, exit_address_);
  EXPECT_EQ(refetch.user_agent, "TrendMicro WRS/1.0");
  EXPECT_EQ(refetch.host, "m1.probe.tft-study.net");
  const double delay = (refetch.time - own.time).to_seconds();
  EXPECT_GE(delay, 12.0);
  EXPECT_LE(delay, 120.0);
}

TEST_F(MonitorTest, TwoRefetchesTrendMicroStyle) {
  ContentMonitor monitor(profile({RefetchSpec{12, 120, 0, 0, std::nullopt},
                                  RefetchSpec{200, 12500, 0, 0, std::nullopt}}));
  HttpInterceptorList chain{std::make_shared<ContentMonitor>(monitor)};
  intercepted_fetch(chain, probe_request(), context_);
  clock_.run_until(sim::Instant::epoch() + sim::Duration::seconds(13000));
  EXPECT_EQ(server_->request_log().size(), 3u);
}

TEST_F(MonitorTest, FixedDelayTiscaliStyle) {
  ContentMonitor monitor(profile({RefetchSpec{30, 30, 0, 0, std::nullopt}}));
  HttpInterceptorList chain{std::make_shared<ContentMonitor>(monitor)};
  intercepted_fetch(chain, probe_request(), context_);
  clock_.run_all();
  ASSERT_EQ(server_->request_log().size(), 2u);
  EXPECT_DOUBLE_EQ(
      (server_->request_log()[1].time - server_->request_log()[0].time).to_seconds(),
      30.0);
}

TEST_F(MonitorTest, PrefetchBluecoatStyle) {
  ContentMonitor monitor(profile({RefetchSpec{1, 30, /*prefetch=*/1.0, 0.5,
                                              std::nullopt}}));
  HttpInterceptorList chain{std::make_shared<ContentMonitor>(monitor)};
  intercepted_fetch(chain, probe_request(), context_);
  clock_.run_all();
  ASSERT_EQ(server_->request_log().size(), 2u);
  // The monitor's fetch is logged first; the node's own request arrives
  // held by 0.5s — a negative observed "delay".
  const auto& prefetch = server_->request_log()[0];
  const auto& own = server_->request_log()[1];
  EXPECT_NE(prefetch.source, exit_address_);
  EXPECT_EQ(own.source, exit_address_);
  EXPECT_DOUBLE_EQ((prefetch.time - own.time).to_seconds(), -0.5);
}

TEST_F(MonitorTest, FixedSourceIndex) {
  RefetchSpec refetch{0.1, 0.9, 0, 0, std::optional<std::size_t>(0)};
  ContentMonitor monitor(profile({refetch}));
  HttpInterceptorList chain{std::make_shared<ContentMonitor>(monitor)};
  for (int i = 0; i < 5; ++i) intercepted_fetch(chain, probe_request(), context_);
  clock_.run_all();
  for (std::size_t i = 0; i < server_->request_log().size(); ++i) {
    const auto& entry = server_->request_log()[i];
    if (entry.source != exit_address_) {
      EXPECT_EQ(entry.source, net::Ipv4Address(150, 70, 1, 1));
    }
  }
}

TEST_F(MonitorTest, ProbabilityZeroMonitorsNothing) {
  auto config = profile({RefetchSpec{1, 10, 0, 0, std::nullopt}});
  config.probability = 0.0;
  ContentMonitor monitor(config);
  HttpInterceptorList chain{std::make_shared<ContentMonitor>(monitor)};
  intercepted_fetch(chain, probe_request(), context_);
  clock_.run_all();
  EXPECT_EQ(server_->request_log().size(), 1u);
}

TEST_F(MonitorTest, NoSourcesMeansInert) {
  ContentMonitor monitor(profile({RefetchSpec{1, 10, 0, 0, std::nullopt}}, {}));
  HttpInterceptorList chain{std::make_shared<ContentMonitor>(monitor)};
  intercepted_fetch(chain, probe_request(), context_);
  clock_.run_all();
  EXPECT_EQ(server_->request_log().size(), 1u);
}

TEST_F(MonitorTest, VpnEgressRewriterChangesSourceSeenByOrigin) {
  const net::Ipv4Address egress(104, 20, 3, 9);
  HttpInterceptorList chain{
      std::make_shared<VpnEgressRewriter>("AnchorFree VPN",
                                          std::vector<net::Ipv4Address>{egress})};
  intercepted_fetch(chain, probe_request(), context_);
  ASSERT_EQ(server_->request_log().size(), 1u);
  EXPECT_EQ(server_->request_log()[0].source, egress);
}

TEST_F(MonitorTest, VpnThenMonitorAnchorFreeStyle) {
  // The monitor sits behind the VPN: both the relayed request and the
  // refetch arrive from VPN-operator addresses within a second.
  const net::Ipv4Address egress(104, 20, 3, 9);
  const net::Ipv4Address scanner(104, 20, 50, 1);
  auto config = profile({RefetchSpec{0.05, 0.9, 0, 0, std::optional<std::size_t>(0)}},
                        {scanner});
  config.name = "AnchorFree";
  HttpInterceptorList chain{
      std::make_shared<VpnEgressRewriter>("AnchorFree VPN",
                                          std::vector<net::Ipv4Address>{egress}),
      std::make_shared<ContentMonitor>(config)};
  intercepted_fetch(chain, probe_request(), context_);
  clock_.run_all();
  ASSERT_EQ(server_->request_log().size(), 2u);
  EXPECT_EQ(server_->request_log()[0].source, egress);
  EXPECT_EQ(server_->request_log()[1].source, scanner);
  EXPECT_LT(
      (server_->request_log()[1].time - server_->request_log()[0].time).to_seconds(),
      1.0);
}

}  // namespace
}  // namespace tft::middlebox
