#include "tft/smtp/session.hpp"

#include "tft/obs/recorder.hpp"
#include "tft/util/strings.hpp"

namespace tft::smtp {

namespace {

void record_rewrite(obs::Recorder* recorder, sim::Instant now,
                    std::string_view actor, std::string_view action,
                    std::string_view detail) {
  if (recorder == nullptr) return;
  recorder->violation(obs::Hop::kMiddlebox, actor, action, detail,
                      static_cast<std::uint64_t>(now.micros));
}

/// Pass a reply through the interceptor chain (in order; first rewrite is
/// fed to the next interceptor, modeling stacked middleboxes).
Reply intercept_reply(const SmtpInterceptorList& interceptors, const Command& command,
                      Reply reply, obs::Recorder* recorder, sim::Instant now) {
  for (const auto& interceptor : interceptors) {
    if (auto rewritten = interceptor->on_reply(command, reply)) {
      record_rewrite(recorder, now, interceptor->name(), "rewrite-reply",
                     command.verb.empty() ? std::string("banner") : command.verb);
      reply = *std::move(rewritten);
    }
  }
  return reply;
}

Command intercept_command(const SmtpInterceptorList& interceptors, Command command,
                          obs::Recorder* recorder, sim::Instant now) {
  for (const auto& interceptor : interceptors) {
    if (auto rewritten = interceptor->on_command(command)) {
      record_rewrite(recorder, now, interceptor->name(), "rewrite-command",
                     command.verb);
      command = *std::move(rewritten);
    }
  }
  return command;
}

}  // namespace

Transcript run_session(SmtpServer& server, const SmtpInterceptorList& interceptors,
                       const ClientScript& script, net::Ipv4Address client,
                       sim::Instant now, obs::Recorder* recorder) {
  Transcript transcript;

  for (const auto& interceptor : interceptors) {
    if (interceptor->blocks_connection()) {
      record_rewrite(recorder, now, interceptor->name(), "block-connection",
                     "port 25");
      transcript.errors.push_back("connection blocked by middlebox");
      return transcript;
    }
  }
  transcript.connected = true;

  SmtpServer::Session session = server.open(client, now);

  // Banner (modeled as the reply to the empty pseudo-command).
  const Reply banner =
      intercept_reply(interceptors, Command{}, server.banner(), recorder, now);
  transcript.banner = banner.lines.empty() ? std::string{} : banner.lines.front();

  const auto send = [&](Command command) -> Reply {
    command = intercept_command(interceptors, command, recorder, now);
    const std::string wire = command.serialize();
    Reply reply = session.handle_line(util::trim(wire));  // strip CRLF
    return intercept_reply(interceptors, command, reply, recorder, now);
  };

  // EHLO.
  const Command ehlo{"EHLO", script.ehlo_identity};
  transcript.ehlo_reply = send(ehlo);
  if (!transcript.ehlo_reply.positive()) {
    transcript.errors.push_back("EHLO rejected");
    return transcript;
  }
  transcript.starttls_offered = transcript.ehlo_reply.has_capability("STARTTLS");

  // STARTTLS, when the client wants it and the server (apparently) offers it.
  if (script.attempt_starttls && transcript.starttls_offered) {
    const Reply reply = send(Command{"STARTTLS", ""});
    transcript.starttls_accepted = reply.positive();
    if (!transcript.starttls_accepted) {
      transcript.errors.push_back("STARTTLS refused: " + reply.serialize());
    }
  }

  // Envelope + body.
  if (!send(Command{"MAIL", "FROM:" + script.mail_from}).positive()) {
    transcript.errors.push_back("MAIL FROM rejected");
    return transcript;
  }
  if (!send(Command{"RCPT", "TO:" + script.rcpt_to}).positive()) {
    transcript.errors.push_back("RCPT TO rejected");
    return transcript;
  }
  const Reply data_go = send(Command{"DATA", ""});
  if (data_go.code != 354) {
    transcript.errors.push_back("DATA rejected");
    return transcript;
  }

  std::string body = script.body;
  for (const auto& interceptor : interceptors) {
    if (auto rewritten = interceptor->on_message_body(body)) {
      record_rewrite(recorder, now, interceptor->name(), "rewrite-body",
                     "message body");
      body = *std::move(rewritten);
    }
  }
  auto lines = util::split(body, '\n');
  // A trailing newline produces an empty final piece; don't send it as an
  // extra blank line.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  for (const auto line : lines) {
    session.handle_line(line);
  }
  const Reply accepted = intercept_reply(
      interceptors, Command{"DATA", ""}, session.handle_line("."), recorder, now);
  transcript.message_accepted = accepted.positive();

  send(Command{"QUIT", ""});
  return transcript;
}

}  // namespace tft::smtp
