// The structure-aware generators must produce valid values (every generated
// value survives its codec's roundtrip) and be fully deterministic (same
// seed => same value), because fuzz-shard digests are derived from them.
#include "tft/testing/generators.hpp"

#include <gtest/gtest.h>

#include "tft/dns/codec.hpp"
#include "tft/tls/codec.hpp"
#include "tft/util/json_parse.hpp"

namespace tft::testing {
namespace {

TEST(GeneratorsTest, SameSeedSameValues) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dns::encode(random_dns_message(a)), dns::encode(random_dns_message(b)));
  }
  util::Rng c(43), d(43);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(random_http_response(c).serialize(), random_http_response(d).serialize());
    EXPECT_EQ(random_json_document(c), random_json_document(d));
  }
}

TEST(GeneratorsTest, DnsMessagesRoundTrip) {
  util::Rng rng(0xD1);
  for (int i = 0; i < 200; ++i) {
    const dns::Message original = random_dns_message(rng);
    const auto decoded = dns::decode(dns::encode(original));
    ASSERT_TRUE(decoded.ok()) << i << ": " << decoded.error().to_string();
    EXPECT_EQ(decoded->id, original.id);
    ASSERT_EQ(decoded->answers.size(), original.answers.size());
  }
}

TEST(GeneratorsTest, HttpMessagesRoundTrip) {
  util::Rng rng(0x42);
  for (int i = 0; i < 200; ++i) {
    const http::Request request = random_http_request(rng);
    const auto request_back = http::Request::parse(request.serialize());
    ASSERT_TRUE(request_back.ok()) << i << ": " << request_back.error().to_string();
    EXPECT_EQ(request_back->method, request.method);
    EXPECT_EQ(request_back->body, request.body);

    const http::Response response = random_http_response(rng);
    const auto response_back = http::Response::parse(response.serialize());
    ASSERT_TRUE(response_back.ok()) << i;
    EXPECT_EQ(response_back->status, response.status);
    EXPECT_EQ(response_back->body, response.body);
  }
}

TEST(GeneratorsTest, TlsChainsRoundTrip) {
  util::Rng rng(0x715);
  for (int i = 0; i < 200; ++i) {
    const tls::CertificateChain original = random_tls_chain(rng);
    const auto decoded = tls::decode_chain(tls::encode_chain(original));
    ASSERT_TRUE(decoded.ok()) << i;
    ASSERT_EQ(decoded->size(), original.size());
    for (std::size_t c = 0; c < original.size(); ++c) {
      EXPECT_EQ((*decoded)[c], original[c]);
    }
  }
}

TEST(GeneratorsTest, SmtpRepliesAndDialoguesRoundTrip) {
  util::Rng rng(0x25);
  for (int i = 0; i < 200; ++i) {
    const smtp::Reply reply = random_smtp_reply(rng);
    const auto reply_back = smtp::Reply::parse(reply.serialize());
    ASSERT_TRUE(reply_back.ok()) << i;
    EXPECT_EQ(reply_back->code, reply.code);
    EXPECT_EQ(reply_back->lines, reply.lines);
  }
  for (int i = 0; i < 50; ++i) {
    const SmtpDialogue dialogue = random_smtp_dialogue(rng);
    ASSERT_EQ(dialogue.commands.size(), dialogue.replies.size());
    ASSERT_GE(dialogue.commands.size(), 4u);  // EHLO, MAIL, RCPT, DATA/QUIT
    EXPECT_FALSE(dialogue.serialize().empty());
    for (const auto& command : dialogue.commands) {
      EXPECT_TRUE(smtp::Command::parse(command.serialize()).ok());
    }
  }
}

TEST(GeneratorsTest, JsonDocumentsAlwaysParse) {
  util::Rng rng(0x15);
  for (int i = 0; i < 300; ++i) {
    const std::string document = random_json_document(rng);
    EXPECT_TRUE(util::parse_json(document).ok()) << document;
  }
}

}  // namespace
}  // namespace tft::testing
