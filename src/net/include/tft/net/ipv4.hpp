// IPv4 addresses and CIDR prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "tft/util/result.hpp"

namespace tft::net {

/// An IPv4 address, stored host-order for arithmetic convenience.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted-quad. Rejects octets > 255, extra dots, leading garbage.
  static util::Result<Ipv4Address> parse(std::string_view text);

  constexpr std::uint32_t value() const noexcept { return value_; }
  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix (network address + mask length).
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Construct from any address inside the prefix; host bits are zeroed.
  static util::Result<Ipv4Prefix> make(Ipv4Address address, int length);

  /// Parse "a.b.c.d/len".
  static util::Result<Ipv4Prefix> parse(std::string_view text);

  constexpr Ipv4Address network() const noexcept { return network_; }
  constexpr int length() const noexcept { return length_; }
  constexpr std::uint32_t mask() const noexcept {
    return length_ == 0 ? 0U : ~std::uint32_t{0} << (32 - length_);
  }

  constexpr bool contains(Ipv4Address address) const noexcept {
    return (address.value() & mask()) == network_.value();
  }

  /// Number of addresses covered (2^(32-length)); 0-length returns 2^32-1
  /// clamped into uint64 correctly.
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The n-th host address inside the prefix (n < size()).
  util::Result<Ipv4Address> host(std::uint64_t n) const;

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  constexpr Ipv4Prefix(Ipv4Address network, int length)
      : network_(network), length_(length) {}

  Ipv4Address network_{};
  int length_ = 0;
};

}  // namespace tft::net
