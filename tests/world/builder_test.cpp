#include "tft/world/world.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tft::world {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = build_world(mini_spec(), 1.0, 1234).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static World* world_;
};

World* BuilderTest::world_ = nullptr;

TEST_F(BuilderTest, PopulationMatchesSpecRoughly) {
  // mini_spec: 300+200+150+60+60+60 country nodes plus named ISPs.
  EXPECT_GT(world_->luminati->node_count(), 800u);
  EXPECT_LT(world_->luminati->node_count(), 1400u);
  EXPECT_GT(world_->topology.as_count(), 10u);
  EXPECT_GT(world_->topology.organization_count(), 10u);
}

TEST_F(BuilderTest, MeasurementInfrastructureWired) {
  ASSERT_NE(world_->measurement_zone, nullptr);
  ASSERT_NE(world_->measurement_web, nullptr);
  EXPECT_EQ(world_->measurement_zone_origin.to_string(), "tft-study.net");
  // The wildcard resolves probe names to the measurement web server.
  const auto query = dns::Message::query(
      1, *dns::DnsName::parse("anything.probe.tft-study.net"));
  const auto response = world_->measurement_zone->handle(
      query, net::Ipv4Address(1, 2, 3, 4), world_->clock.now());
  EXPECT_EQ(response.first_a(), world_->measurement_web_address);
  world_->measurement_zone->clear_query_log();
}

TEST_F(BuilderTest, GoogleDnsAnycastConfigured) {
  ASSERT_NE(world_->google_dns, nullptr);
  EXPECT_GE(world_->google_dns->instance_count(), 2u);
  EXPECT_EQ(world_->google_dns->service_address(), net::Ipv4Address(8, 8, 8, 8));
  // Every instance egress sits inside the published block.
  const auto& instance =
      world_->google_dns->instance_for(net::Ipv4Address(192, 0, 2, 1));
  EXPECT_TRUE(world_->google_egress_block.contains(instance.egress_address()));
}

TEST_F(BuilderTest, EveryNodeHasTruthAndValidTopology) {
  for (const auto& node : world_->luminati->nodes()) {
    EXPECT_NE(world_->truth.find(node->zid()), nullptr) << node->zid();
    const auto asn = world_->topology.origin_as(node->address());
    ASSERT_TRUE(asn.has_value()) << node->address().to_string();
    EXPECT_EQ(*asn, node->asn());
    const auto country = world_->topology.country_of(node->asn());
    ASSERT_TRUE(country.has_value());
    EXPECT_EQ(*country, node->country());
  }
}

TEST_F(BuilderTest, NodeAddressesAreUnique) {
  std::set<std::uint32_t> addresses;
  std::set<std::string> zids;
  for (const auto& node : world_->luminati->nodes()) {
    EXPECT_TRUE(addresses.insert(node->address().value()).second);
    EXPECT_TRUE(zids.insert(node->zid()).second);
  }
}

TEST_F(BuilderTest, GroundTruthContainsConfiguredViolations) {
  const auto& truth = world_->truth;
  const auto count = [&](auto predicate) { return truth.count(predicate); };
  EXPECT_GT(count([](const NodeTruth& t) {
    return t.dns_hijack == DnsHijackSource::kIspResolver;
  }), 50u);
  EXPECT_GT(count([](const NodeTruth& t) {
    return t.dns_hijack == DnsHijackSource::kPublicResolver;
  }), 5u);
  EXPECT_GT(count([](const NodeTruth& t) {
    return t.dns_hijack == DnsHijackSource::kPathMiddlebox;
  }), 5u);
  EXPECT_GT(count([](const NodeTruth& t) {
    return t.dns_hijack == DnsHijackSource::kHostSoftware;
  }), 2u);
  EXPECT_GT(count([](const NodeTruth& t) { return !t.html_injector.empty(); }), 10u);
  EXPECT_GT(count([](const NodeTruth& t) { return !t.image_transcoder.empty(); }), 20u);
  EXPECT_GT(count([](const NodeTruth& t) { return !t.cert_replacer.empty(); }), 30u);
  EXPECT_GT(count([](const NodeTruth& t) { return !t.monitor.empty(); }), 40u);
}

TEST_F(BuilderTest, HttpsSitesBuilt) {
  // 6 ranked countries x 5 popular + 3 universities + 3 invalid.
  std::size_t popular = 0, university = 0, invalid = 0;
  std::set<std::uint32_t> addresses;
  for (const auto& site : world_->https_sites) {
    EXPECT_TRUE(addresses.insert(site.address.value()).second);
    EXPECT_FALSE(site.genuine_chain.empty());
    switch (site.site_class) {
      case HttpsSite::Class::kPopular:
        ++popular;
        break;
      case HttpsSite::Class::kUniversity:
        ++university;
        break;
      case HttpsSite::Class::kInvalid:
        ++invalid;
        break;
    }
    // Each site is reachable over TLS and presents its genuine chain.
    const auto* chain = world_->tls_endpoints.handshake(site.address, site.host);
    ASSERT_NE(chain, nullptr) << site.host;
    EXPECT_EQ(chain->front().fingerprint(), site.genuine_chain.front().fingerprint());
  }
  EXPECT_EQ(popular, 30u);
  EXPECT_EQ(university, 3u);
  EXPECT_EQ(invalid, 3u);
}

TEST_F(BuilderTest, InvalidSitesAreActuallyInvalid) {
  const tls::CertificateVerifier verifier(&world_->public_roots);
  int checked = 0;
  for (const auto& site : world_->https_sites) {
    const auto result = verifier.verify(site.genuine_chain, site.host,
                                        world_->clock.now() + sim::Duration::hours(1));
    if (site.site_class == HttpsSite::Class::kInvalid) {
      EXPECT_FALSE(result.ok()) << site.host;
      ++checked;
    } else {
      EXPECT_TRUE(result.ok()) << site.host << ": " << result.detail;
    }
  }
  EXPECT_EQ(checked, 3);
}

TEST_F(BuilderTest, InvalidKindsAreDistinct) {
  const tls::CertificateVerifier verifier(&world_->public_roots);
  for (const auto& site : world_->https_sites) {
    if (site.site_class != HttpsSite::Class::kInvalid) continue;
    const auto result = verifier.verify(site.genuine_chain, site.host,
                                        world_->clock.now() + sim::Duration::hours(1));
    switch (site.invalid_kind) {
      case HttpsSite::InvalidKind::kSelfSigned:
        EXPECT_EQ(result.status, tls::VerifyStatus::kSelfSigned);
        break;
      case HttpsSite::InvalidKind::kExpired:
        EXPECT_EQ(result.status, tls::VerifyStatus::kExpired);
        break;
      case HttpsSite::InvalidKind::kWrongCommonName:
        EXPECT_EQ(result.status, tls::VerifyStatus::kHostnameMismatch);
        break;
      case HttpsSite::InvalidKind::kNone:
        ADD_FAILURE();
        break;
    }
  }
}

TEST_F(BuilderTest, DeterministicForSameSeed) {
  const auto a = build_world(mini_spec(), 1.0, 77);
  const auto b = build_world(mini_spec(), 1.0, 77);
  ASSERT_EQ(a->luminati->node_count(), b->luminati->node_count());
  for (std::size_t i = 0; i < a->luminati->node_count(); ++i) {
    EXPECT_EQ(a->luminati->nodes()[i]->zid(), b->luminati->nodes()[i]->zid());
    EXPECT_EQ(a->luminati->nodes()[i]->address(), b->luminati->nodes()[i]->address());
  }
}

TEST_F(BuilderTest, ScaleShrinksPopulation) {
  const auto small = build_world(mini_spec(), 0.5, 77);
  EXPECT_LT(small->luminati->node_count(), world_->luminati->node_count());
  EXPECT_GT(small->luminati->node_count(), world_->luminati->node_count() / 4);
}

TEST_F(BuilderTest, RimonAsFullyFiltered) {
  // Every node of AS 42925 must carry the NetSpark filter.
  for (const auto& node : world_->luminati->nodes()) {
    if (node->asn() != 42925) continue;
    const auto* truth = world_->truth.find(node->zid());
    ASSERT_NE(truth, nullptr);
    EXPECT_NE(truth->html_injector.find("NetSpark"), std::string::npos);
  }
}

TEST_F(BuilderTest, TranscoderAsnIsMobile) {
  const auto org = world_->topology.org_of(15617);
  ASSERT_TRUE(org.has_value());
  EXPECT_EQ(world_->topology.organization(*org)->kind, net::OrgKind::kMobileIsp);
}

}  // namespace
}  // namespace tft::world
