#include "tft/net/client/load_client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <string_view>

#include "tft/http/message.hpp"
#include "tft/http/reader.hpp"
#include "tft/http/url.hpp"
#include "tft/net/server/event_loop.hpp"
#include "tft/net/server/framing.hpp"
#include "tft/proxy/luminati.hpp"
#include "tft/util/json.hpp"
#include "tft/util/rng.hpp"

namespace tft::net::client {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

using Clock = std::chrono::steady_clock;

/// Microsecond latency buckets: loopback round-trips live in the low
/// hundreds of µs; the tail bounds catch a server wedged behind chaos.
const std::vector<std::int64_t>& latency_bounds_us() {
  static const std::vector<std::int64_t> bounds = {
      50,     100,    250,    500,     1000,    2500,    5000,   10000,
      25000,  50000,  100000, 250000,  500000,  1000000, 2500000};
  return bounds;
}

/// Don't let an open-loop schedule pile more than this many unsent bytes
/// on one connection when the server stalls; the skipped issues are counted
/// as client_backpressure, never as server failures.
constexpr std::size_t kMaxClientOutbox = 1 << 20;

constexpr std::size_t kMaxChaosCapture = 64 * 1024;

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

}  // namespace

std::string_view to_string(RequestClass klass) noexcept {
  switch (klass) {
    case RequestClass::kGet: return "get";
    case RequestClass::kPipeline: return "pipeline";
    case RequestClass::kConnect: return "connect";
  }
  return "unknown";
}

// --- report ------------------------------------------------------------------

void LoadReport::write_json(util::JsonWriter& json) const {
  json.field("requests_sent", requests_sent);
  json.field("responses_ok", responses_ok);
  json.field("validation_failures", validation_failures);
  json.field("abandoned_in_flight", abandoned_in_flight);
  json.field("duration_s", duration_s);
  json.field("achieved_rps", achieved_rps);
  json.begin_object("classes");
  for (const auto& [name, stats] : classes) {
    json.begin_object(name);
    json.field("sent", stats.sent);
    json.field("completed", stats.completed);
    json.field("failed_validation", stats.failed_validation);
    json.field("p50_us", stats.p50_us);
    json.field("p95_us", stats.p95_us);
    json.field("p99_us", stats.p99_us);
    json.end_object();
  }
  json.end_object();
  json.begin_object("errors");
  for (const auto& [name, value] : errors) json.field(name, value);
  json.end_object();
  json.begin_object("chaos");
  for (const auto& [name, value] : chaos) json.field(name, value);
  json.end_object();
}

std::string LoadReport::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  write_json(json);
  json.end_object();
  return std::move(json).take();
}

// --- connection state --------------------------------------------------------

struct LoadGenerator::Conn {
  enum class Phase { kClosed, kConnecting, kSteady, kAwait200, kAwaitReply };

  std::size_t slot = 0;
  int fd = -1;
  RequestClass klass = RequestClass::kGet;
  proxy::RequestOptions options;
  bool is_chaos = false;
  ChaosBehavior behavior = ChaosBehavior::kSlowDrip;
  int stage = 0;
  util::Rng rng{1};

  Phase phase = Phase::kClosed;
  http::MessageReader reader;
  net::server::FrameReader frames;
  std::string raw;  // chaos-side capture for 408/400 sniffing
  std::string outbox;
  std::size_t outbox_sent = 0;
  bool want_write = false;
  std::string drip;  // slow-drip bytes not yet trickled out
  std::deque<Clock::time_point> inflight;
  Clock::time_point next_action = Clock::time_point::max();
  Clock::time_point issue_started{};
  ConnectTarget target;
};

// --- generator ---------------------------------------------------------------

class LoadGenerator::Impl {
 public:
  explicit Impl(LoadGenConfig config) : config_(std::move(config)) {}

  Result<LoadReport> run();

 private:
  using Conn = LoadGenerator::Conn;
  using Phase = Conn::Phase;

  void err(const std::string& name) { ++report_.errors[name]; }
  void chaos_count(const Conn& conn, std::string_view suffix) {
    ++report_.chaos[std::string(to_string(conn.behavior)) + "." +
                    std::string(suffix)];
  }
  ClassReport& stats(const Conn& conn) {
    return report_.classes[std::string(to_string(conn.klass))];
  }

  void open(Conn& conn);
  void reset_connection(Conn& conn, Clock::time_point reopen_at);
  void on_event(std::size_t slot, int fd, std::uint32_t events);
  void on_connected(Conn& conn);
  void handle_readable(Conn& conn);
  void on_bytes(Conn& conn, std::string_view bytes);
  void on_peer_closed(Conn& conn);
  void run_scheduled(Clock::time_point now);
  int next_timeout(Clock::time_point now) const;

  void issue(Conn& conn);
  void schedule_next_issue(Conn& conn);
  void complete_response(Conn& conn, const std::string& wire);
  bool validate_http_response(const std::string& wire);
  void finish_connect_cycle(Conn& conn, bool ok);
  void fail_in_flight(Conn& conn, const std::string& reason);
  void observe_latency(const Conn& conn, Clock::time_point sent_at);

  void start_chaos_cycle(Conn& conn);
  void chaos_act(Conn& conn);
  void chaos_bytes(Conn& conn, std::string_view bytes);
  void chaos_closed(Conn& conn);

  void queue(Conn& conn, std::string_view bytes);
  bool flush(Conn& conn);

  LoadGenConfig config_;
  net::server::EventLoop loop_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<http::Url> urls_;
  util::Rng rng_{2016};
  obs::Registry registry_;
  LoadReport report_;
  Clock::time_point end_{};
  std::int64_t interval_us_ = 0;  // 0 = closed loop
};

void LoadGenerator::Impl::open(Conn& conn) {
  conn.reader = http::MessageReader();
  conn.frames = net::server::FrameReader();
  conn.raw.clear();
  conn.outbox.clear();
  conn.outbox_sent = 0;
  conn.want_write = false;
  conn.drip.clear();
  conn.stage = 0;
  conn.phase = Phase::kConnecting;

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    err("socket_failed");
    reset_connection(conn, Clock::now() + std::chrono::milliseconds(50));
    return;
  }
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(config_.port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    err("connect_failed");
    reset_connection(conn, Clock::now() + std::chrono::milliseconds(50));
    return;
  }
  conn.fd = fd;
  conn.next_action = Clock::time_point::max();
  const std::size_t slot = conn.slot;
  const auto added =
      loop_.add(fd, EPOLLIN | EPOLLOUT, [this, slot, fd](std::uint32_t events) {
        on_event(slot, fd, events);
      });
  if (!added.ok()) {
    ::close(fd);
    conn.fd = -1;
    err("epoll_add_failed");
    reset_connection(conn, Clock::now() + std::chrono::milliseconds(50));
  }
}

void LoadGenerator::Impl::reset_connection(Conn& conn,
                                           Clock::time_point reopen_at) {
  if (conn.fd >= 0) {
    loop_.remove(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
  }
  conn.phase = Phase::kClosed;
  conn.next_action = reopen_at;
}

void LoadGenerator::Impl::on_event(std::size_t slot, int fd,
                                   std::uint32_t events) {
  Conn& conn = *conns_[slot];
  if (conn.fd != fd) return;  // stale event for a recycled slot

  if (conn.phase == Phase::kConnecting) {
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      err("connect_failed");
      reset_connection(conn, Clock::now() + std::chrono::milliseconds(50));
      return;
    }
    if ((events & EPOLLOUT) != 0) {
      int error = 0;
      socklen_t length = sizeof(error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &length);
      if (error != 0) {
        err("connect_failed");
        reset_connection(conn, Clock::now() + std::chrono::milliseconds(50));
        return;
      }
      on_connected(conn);
    }
    return;
  }

  if ((events & EPOLLOUT) != 0) {
    if (!flush(conn)) return;
  }
  if ((events & EPOLLIN) != 0) {
    handle_readable(conn);
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    on_peer_closed(conn);
  }
}

void LoadGenerator::Impl::on_connected(Conn& conn) {
  conn.phase = Phase::kSteady;
  loop_.modify(conn.fd, EPOLLIN);
  if (conn.is_chaos) {
    start_chaos_cycle(conn);
    return;
  }
  // Open-loop reconnects keep their schedule; everything else starts now.
  if (interval_us_ == 0 || conn.next_action == Clock::time_point::max()) {
    issue(conn);
  }
}

void LoadGenerator::Impl::handle_readable(Conn& conn) {
  const int fd = conn.fd;
  char buffer[16384];
  for (;;) {
    const ssize_t received = ::recv(fd, buffer, sizeof(buffer), 0);
    if (received > 0) {
      on_bytes(conn,
               std::string_view(buffer, static_cast<std::size_t>(received)));
      if (conn.fd != fd) return;  // reset during processing
      continue;
    }
    if (received == 0) {
      on_peer_closed(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    // ECONNRESET and friends: same accounting as an orderly close — the
    // chaos reset clients provoke exactly this on purpose.
    on_peer_closed(conn);
    return;
  }
}

void LoadGenerator::Impl::on_bytes(Conn& conn, std::string_view bytes) {
  if (conn.is_chaos) {
    chaos_bytes(conn, bytes);
    return;
  }
  if (conn.phase == Phase::kAwaitReply) {
    if (const auto fed = conn.frames.feed(bytes); !fed.ok()) {
      err("tunnel_frame_invalid");
      finish_connect_cycle(conn, false);
      return;
    }
    while (const auto payload = conn.frames.next_frame()) {
      const auto reply = net::server::decode_tunnel_reply(*payload);
      if (!reply.ok()) {
        err("tunnel_reply_invalid");
        finish_connect_cycle(conn, false);
        return;
      }
      ++report_.errors["tunnel_status." +
                       std::string(proxy::to_string(reply->status))];
      observe_latency(conn, conn.issue_started);
      finish_connect_cycle(conn, true);
      return;
    }
    return;
  }

  if (const auto fed = conn.reader.feed(bytes); !fed.ok()) {
    err("response_parse_error");
    fail_in_flight(conn, "response_parse_error");
    reset_connection(conn, Clock::now());
    return;
  }
  while (const auto wire = conn.reader.next_message()) {
    if (conn.phase == Phase::kAwait200) {
      const auto response = http::Response::parse(*wire);
      if (!response.ok()) {
        err("parse_error");
        finish_connect_cycle(conn, false);
        return;
      }
      if (response->status != 200) {
        // An orderly refusal (e.g. port_not_allowed) still carries the
        // engine status header; that's a valid protocol outcome.
        const auto status = response->headers.get("X-TFT-Proxy-Status");
        if (!status) {
          err("missing_metadata");
          finish_connect_cycle(conn, false);
          return;
        }
        ++report_.errors["tunnel_status." + std::string(*status)];
        observe_latency(conn, conn.issue_started);
        finish_connect_cycle(conn, true);
        return;
      }
      const std::string leftover = conn.reader.take_leftover();
      conn.phase = Phase::kAwaitReply;
      if (!leftover.empty()) {
        if (const auto fed = conn.frames.feed(leftover); !fed.ok()) {
          err("tunnel_frame_invalid");
          finish_connect_cycle(conn, false);
          return;
        }
      }
      queue(conn, net::server::frame(net::server::encode_tunnel_hello(
                      {conn.target.sni})));
      return;
    }
    complete_response(conn, *wire);
    if (conn.fd < 0) return;
  }
}

void LoadGenerator::Impl::complete_response(Conn& conn,
                                            const std::string& wire) {
  if (conn.inflight.empty()) {
    err("unexpected_response");
    ++report_.validation_failures;
    ++stats(conn).failed_validation;
    reset_connection(conn, Clock::now());
    return;
  }
  const auto sent_at = conn.inflight.front();
  conn.inflight.pop_front();
  if (validate_http_response(wire)) {
    ++report_.responses_ok;
    ++stats(conn).completed;
    observe_latency(conn, sent_at);
  } else {
    ++report_.validation_failures;
    ++stats(conn).failed_validation;
  }
  if (interval_us_ == 0 && conn.inflight.empty()) issue(conn);
}

bool LoadGenerator::Impl::validate_http_response(const std::string& wire) {
  const auto response = http::Response::parse(wire);
  if (!response.ok()) {
    err("parse_error");
    return false;
  }
  const auto status_text = response->headers.get("X-TFT-Proxy-Status");
  if (!status_text) {
    err("missing_metadata");
    return false;
  }
  const auto status = proxy::parse_proxy_status(*status_text);
  if (!status.ok()) {
    err("bad_proxy_status");
    return false;
  }
  ++report_.errors["proxy_status." + std::string(*status_text)];
  const auto timeline = response->headers.get("X-TFT-Timeline");
  if (!timeline) {
    err("missing_metadata");
    return false;
  }
  if (!timeline->empty()) {
    if (const auto attempts = net::server::decode_attempts(*timeline);
        !attempts.ok()) {
      err("bad_timeline");
      return false;
    }
  }
  if (*status == proxy::ProxyStatus::kOk) {
    const auto zid = response->headers.get("X-TFT-Zid");
    const auto exit_ip = response->headers.get("X-TFT-Exit-Ip");
    if (!zid || zid->empty() || !exit_ip ||
        !net::Ipv4Address::parse(*exit_ip).ok()) {
      err("missing_metadata");
      return false;
    }
  }
  return true;
}

void LoadGenerator::Impl::observe_latency(const Conn& conn,
                                          Clock::time_point sent_at) {
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now() - sent_at)
                          .count();
  registry_.observe(
      "load.latency_us." + std::string(to_string(conn.klass)),
      latency_bounds_us(), static_cast<std::int64_t>(micros));
}

void LoadGenerator::Impl::finish_connect_cycle(Conn& conn, bool ok) {
  if (ok) {
    ++report_.responses_ok;
    ++stats(conn).completed;
  } else {
    ++report_.validation_failures;
    ++stats(conn).failed_validation;
  }
  // Tunnels are one-shot: drop the socket and let the schedule (or the
  // closed loop) start the next cycle on a fresh connection.
  const auto reopen = interval_us_ == 0 ? Clock::now() : conn.next_action;
  reset_connection(conn, reopen);
}

void LoadGenerator::Impl::fail_in_flight(Conn& conn,
                                         const std::string& reason) {
  if (conn.klass == RequestClass::kConnect) {
    if (conn.phase == Phase::kAwait200 || conn.phase == Phase::kAwaitReply) {
      err(reason);
      ++report_.validation_failures;
      ++stats(conn).failed_validation;
    }
    return;
  }
  for (std::size_t i = 0; i < conn.inflight.size(); ++i) err(reason);
  report_.validation_failures += conn.inflight.size();
  stats(conn).failed_validation += conn.inflight.size();
  conn.inflight.clear();
}

void LoadGenerator::Impl::on_peer_closed(Conn& conn) {
  if (conn.is_chaos) {
    chaos_closed(conn);
    return;
  }
  if (conn.klass == RequestClass::kConnect &&
      (conn.phase == Phase::kAwait200 || conn.phase == Phase::kAwaitReply)) {
    err("premature_close");
    finish_connect_cycle(conn, false);
    return;
  }
  if (!conn.inflight.empty()) {
    fail_in_flight(conn, "premature_close");
  } else {
    // Keep-alive reaped by the server's idle timeout: not a failure.
    ++report_.errors["server_closed_idle"];
  }
  const auto reopen = interval_us_ == 0 || conn.next_action == Clock::time_point::max()
                          ? Clock::now()
                          : conn.next_action;
  reset_connection(conn, reopen);
}

// --- issuing -----------------------------------------------------------------

void LoadGenerator::Impl::issue(Conn& conn) {
  const auto now = Clock::now();
  if (now >= end_) {
    conn.next_action = Clock::time_point::max();
    return;
  }
  if (conn.klass == RequestClass::kConnect) {
    if (conn.phase != Phase::kSteady) {
      // Previous tunnel cycle still in flight; open loop just re-schedules.
      schedule_next_issue(conn);
      return;
    }
    conn.target = config_.connect_targets[conn.rng.index(
        config_.connect_targets.size())];
    conn.issue_started = now;
    conn.phase = Phase::kAwait200;
    ++report_.requests_sent;
    ++stats(conn).sent;
    // Schedule before queueing: a failed send resets the connection and
    // must own the final say on next_action.
    schedule_next_issue(conn);
    queue(conn, net::server::build_connect(conn.target.address,
                                           conn.target.port, conn.options));
    return;
  }

  if (conn.outbox.size() - conn.outbox_sent > kMaxClientOutbox) {
    err("client_backpressure");
    schedule_next_issue(conn);
    return;
  }
  const std::size_t burst =
      conn.klass == RequestClass::kPipeline ? config_.pipeline_depth : 1;
  std::string wire;
  for (std::size_t i = 0; i < burst; ++i) {
    const auto& url = urls_[conn.rng.index(urls_.size())];
    wire += net::server::build_proxy_get(url, conn.options);
    conn.inflight.push_back(now);
    ++report_.requests_sent;
    ++stats(conn).sent;
  }
  schedule_next_issue(conn);
  queue(conn, wire);
}

void LoadGenerator::Impl::schedule_next_issue(Conn& conn) {
  if (interval_us_ == 0) {
    conn.next_action = Clock::time_point::max();
    return;
  }
  const std::size_t burst =
      conn.klass == RequestClass::kPipeline ? config_.pipeline_depth : 1;
  const auto step =
      std::chrono::microseconds(interval_us_ * static_cast<std::int64_t>(burst));
  // Fixed schedule, not now+step: an open loop does not slow down for a
  // lagging server — late ticks fire back-to-back instead.
  conn.next_action = conn.next_action == Clock::time_point::max()
                         ? Clock::now() + step
                         : conn.next_action + step;
}

// --- chaos -------------------------------------------------------------------

void LoadGenerator::Impl::start_chaos_cycle(Conn& conn) {
  conn.raw.clear();
  const auto now = Clock::now();
  switch (conn.behavior) {
    case ChaosBehavior::kSlowDrip: {
      const auto& url = urls_[conn.rng.index(urls_.size())];
      std::string head = net::server::build_proxy_get(url, conn.options);
      // Never finish the head: hold back the final bytes of the terminator
      // so the server sees an eternally-partial request.
      conn.drip = head.substr(0, head.size() - 2);
      conn.next_action = now;
      chaos_count(conn, "cycles");
      break;
    }
    case ChaosBehavior::kMalformedFrame:
      conn.next_action = Clock::time_point::max();
      chaos_count(conn, "cycles");
      if (config_.connect_targets.empty()) {
        conn.stage = 2;
        queue(conn, malformed_http_request(conn.rng));
      } else {
        conn.target = config_.connect_targets[conn.rng.index(
            config_.connect_targets.size())];
        conn.stage = 1;
        queue(conn, net::server::build_connect(conn.target.address,
                                               conn.target.port, conn.options));
      }
      break;
    case ChaosBehavior::kHalfCloseTunnel:
      conn.next_action = Clock::time_point::max();
      chaos_count(conn, "cycles");
      if (config_.connect_targets.empty()) {
        // No tunnel to half-close; half-close a partial request instead.
        const auto& url = urls_[conn.rng.index(urls_.size())];
        const std::string head = net::server::build_proxy_get(url, conn.options);
        conn.stage = 2;
        queue(conn, std::string_view(head).substr(0, head.size() / 2));
        if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_WR);
      } else {
        conn.target = config_.connect_targets[conn.rng.index(
            config_.connect_targets.size())];
        conn.stage = 1;
        queue(conn, net::server::build_connect(conn.target.address,
                                               conn.target.port, conn.options));
      }
      break;
    case ChaosBehavior::kResetMidPipeline: {
      std::string wire;
      for (std::size_t i = 0; i < config_.pipeline_depth; ++i) {
        const auto& url = urls_[conn.rng.index(urls_.size())];
        wire += net::server::build_proxy_get(url, conn.options);
      }
      // Reset shortly after the burst lands, mid-response-stream.
      conn.next_action = now + std::chrono::milliseconds(20);
      chaos_count(conn, "cycles");
      queue(conn, wire);
      break;
    }
    case ChaosBehavior::kIdleHold:
      conn.next_action = Clock::time_point::max();
      chaos_count(conn, "cycles");
      break;
  }
}

void LoadGenerator::Impl::chaos_act(Conn& conn) {
  switch (conn.behavior) {
    case ChaosBehavior::kSlowDrip:
      if (conn.drip.empty()) {
        conn.next_action = Clock::time_point::max();
        return;
      }
      queue(conn, std::string_view(conn.drip).substr(0, 1));
      conn.drip.erase(0, 1);
      if (conn.fd >= 0) {
        conn.next_action = conn.drip.empty()
                               ? Clock::time_point::max()
                               : Clock::now() + std::chrono::milliseconds(
                                                    config_.drip_interval_ms);
      }
      return;
    case ChaosBehavior::kResetMidPipeline: {
      if (conn.fd < 0) return;
      // RST instead of FIN: SO_LINGER with zero timeout makes close() send
      // a reset, the rudest way a pipelining client can vanish.
      const linger hard{1, 0};
      ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
      chaos_count(conn, "reset_sent");
      reset_connection(conn, Clock::now() + std::chrono::milliseconds(20));
      return;
    }
    default:
      conn.next_action = Clock::time_point::max();
      return;
  }
}

void LoadGenerator::Impl::chaos_bytes(Conn& conn, std::string_view bytes) {
  if (conn.raw.size() < kMaxChaosCapture) conn.raw.append(bytes);
  if (conn.stage != 1) return;
  const auto head_end = conn.raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return;
  if (conn.raw.compare(0, 12, "HTTP/1.1 200") != 0) {
    chaos_count(conn, "connect_refused");
    reset_connection(conn, Clock::now() + std::chrono::milliseconds(20));
    return;
  }
  conn.stage = 2;
  if (conn.behavior == ChaosBehavior::kMalformedFrame) {
    queue(conn, malformed_tunnel_frame(conn.rng));
    chaos_count(conn, "frames_sent");
    return;
  }
  // Half-close: strand a partial frame in the server's FrameReader, then
  // FIN our write side and wait for the server to give up.
  const std::string hello =
      net::server::frame(net::server::encode_tunnel_hello({conn.target.sni}));
  queue(conn, std::string_view(hello).substr(0, 2));
  if (conn.fd >= 0) {
    ::shutdown(conn.fd, SHUT_WR);
    chaos_count(conn, "half_closed");
  }
}

void LoadGenerator::Impl::chaos_closed(Conn& conn) {
  switch (conn.behavior) {
    case ChaosBehavior::kSlowDrip:
      chaos_count(conn, contains(conn.raw, "HTTP/1.1 408") ? "got_408"
                                                           : "closed");
      break;
    case ChaosBehavior::kMalformedFrame:
      if (contains(conn.raw, "HTTP/1.1 400")) chaos_count(conn, "got_400");
      chaos_count(conn, "closed");
      break;
    default:
      chaos_count(conn, "closed");
      break;
  }
  reset_connection(conn, Clock::now() + std::chrono::milliseconds(20));
}

// --- socket plumbing ---------------------------------------------------------

void LoadGenerator::Impl::queue(Conn& conn, std::string_view bytes) {
  if (conn.fd < 0) return;
  conn.outbox.append(bytes);
  flush(conn);
}

bool LoadGenerator::Impl::flush(Conn& conn) {
  const int fd = conn.fd;
  while (conn.outbox_sent < conn.outbox.size()) {
    const ssize_t sent =
        ::send(fd, conn.outbox.data() + conn.outbox_sent,
               conn.outbox.size() - conn.outbox_sent, MSG_NOSIGNAL);
    if (sent > 0) {
      conn.outbox_sent += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.modify(fd, EPOLLIN | EPOLLOUT);
      }
      return true;
    }
    if (sent < 0 && errno == EINTR) continue;
    on_peer_closed(conn);
    return false;
  }
  conn.outbox.clear();
  conn.outbox_sent = 0;
  if (conn.want_write) {
    conn.want_write = false;
    loop_.modify(fd, EPOLLIN);
  }
  return true;
}

// --- scheduling --------------------------------------------------------------

void LoadGenerator::Impl::run_scheduled(Clock::time_point now) {
  for (auto& conn : conns_) {
    if (conn->next_action > now) continue;
    if (conn->phase == Phase::kClosed) {
      if (now < end_) {
        open(*conn);
      } else {
        conn->next_action = Clock::time_point::max();
      }
      continue;
    }
    if (conn->is_chaos) {
      chaos_act(*conn);
    } else {
      issue(*conn);
    }
  }
}

int LoadGenerator::Impl::next_timeout(Clock::time_point now) const {
  auto nearest = end_;
  for (const auto& conn : conns_) {
    if (conn->next_action < nearest) nearest = conn->next_action;
  }
  const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                        nearest - now)
                        .count();
  return static_cast<int>(std::clamp<long long>(wait, 0, 100));
}

// --- run ---------------------------------------------------------------------

Result<LoadReport> LoadGenerator::Impl::run() {
  if (const auto init = loop_.init(); !init.ok()) return init.error();
  rng_.reseed(config_.seed);

  if (config_.get_targets.empty()) {
    config_.get_targets = {"http://m1.probe.tft-study.net/page.html"};
  }
  for (const auto& target : config_.get_targets) {
    if (auto url = http::Url::parse(target); url.ok()) {
      urls_.push_back(*std::move(url));
    } else {
      err("bad_get_target");
    }
  }
  if (urls_.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "no valid --target URLs to issue");
  }

  const double wg = std::max(0, config_.weight_get);
  const double wp = std::max(0, config_.weight_pipeline);
  const double wc =
      config_.connect_targets.empty() ? 0.0 : std::max(0, config_.weight_connect);
  std::vector<double> weights = {wg, wp, wc};
  if (wg + wp + wc <= 0) weights = {1.0, 0.0, 0.0};

  if (config_.target_rps > 0 && config_.connections > 0) {
    interval_us_ = static_cast<std::int64_t>(
        1e6 * static_cast<double>(config_.connections) / config_.target_rps);
    interval_us_ = std::max<std::int64_t>(interval_us_, 1);
  }

  static constexpr ChaosBehavior kBehaviors[] = {
      ChaosBehavior::kSlowDrip, ChaosBehavior::kMalformedFrame,
      ChaosBehavior::kHalfCloseTunnel, ChaosBehavior::kResetMidPipeline,
      ChaosBehavior::kIdleHold};
  const std::size_t total = config_.connections + config_.chaos_clients;
  for (std::size_t slot = 0; slot < total; ++slot) {
    auto conn = std::make_unique<Conn>();
    conn->slot = slot;
    conn->rng = rng_.fork();
    if (slot < config_.connections) {
      switch (conn->rng.weighted_index(weights)) {
        case 0: conn->klass = RequestClass::kGet; break;
        case 1: conn->klass = RequestClass::kPipeline; break;
        default: conn->klass = RequestClass::kConnect; break;
      }
      if (conn->rng.chance(0.5)) {
        conn->options.session = "load-" + std::to_string(slot);
      }
    } else {
      conn->is_chaos = true;
      conn->behavior =
          kBehaviors[(slot - config_.connections) % kChaosBehaviorCount];
    }
    conns_.push_back(std::move(conn));
  }

  const auto start = Clock::now();
  end_ = start + std::chrono::milliseconds(config_.duration_ms);
  for (auto& conn : conns_) open(*conn);

  for (;;) {
    const auto now = Clock::now();
    if (now >= end_) break;
    loop_.poll(next_timeout(now));
    run_scheduled(Clock::now());
  }

  // Drain grace: give in-flight responses a moment to land before we call
  // them abandoned.
  const auto grace_end = Clock::now() + std::chrono::milliseconds(500);
  const auto in_flight = [&] {
    std::size_t pending = 0;
    for (const auto& conn : conns_) {
      if (conn->is_chaos) continue;
      pending += conn->inflight.size();
      if (conn->phase == Phase::kAwait200 || conn->phase == Phase::kAwaitReply) {
        ++pending;
      }
    }
    return pending;
  };
  while (in_flight() > 0 && Clock::now() < grace_end) {
    loop_.poll(20);
  }

  for (auto& conn : conns_) {
    if (conn->is_chaos) {
      if (conn->behavior == ChaosBehavior::kIdleHold && conn->fd >= 0) {
        chaos_count(*conn, "open_at_end");
      }
    } else {
      report_.abandoned_in_flight += conn->inflight.size();
      if (conn->phase == Phase::kAwait200 || conn->phase == Phase::kAwaitReply) {
        ++report_.abandoned_in_flight;
      }
    }
    if (conn->fd >= 0) {
      loop_.remove(conn->fd);
      ::close(conn->fd);
      conn->fd = -1;
    }
  }

  report_.duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (report_.duration_s > 0) {
    report_.achieved_rps =
        static_cast<double>(report_.responses_ok) / report_.duration_s;
  }
  for (auto& [name, stats] : report_.classes) {
    const auto* histogram =
        registry_.histogram("load.latency_us." + name);
    if (histogram == nullptr) continue;
    stats.p50_us = histogram->quantile(0.50);
    stats.p95_us = histogram->quantile(0.95);
    stats.p99_us = histogram->quantile(0.99);
  }
  registry_.add("load.requests", report_.requests_sent);
  registry_.add("load.responses_ok", report_.responses_ok);
  registry_.add("load.validation_failures", report_.validation_failures);
  report_.metrics = registry_;
  return std::move(report_);
}

LoadGenerator::LoadGenerator(LoadGenConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

LoadGenerator::~LoadGenerator() = default;

Result<LoadReport> LoadGenerator::run() { return impl_->run(); }

}  // namespace tft::net::client
