#include "tft/http/server.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace tft::http {
namespace {

const net::Ipv4Address kClient(203, 0, 113, 7);
const net::Ipv4Address kServerAddress(198, 51, 100, 10);

Request get(const std::string& host, const std::string& path) {
  return Request::origin_get(*Url::parse("http://" + host + path));
}

TEST(RequestHelpersTest, HostFromHeaderStripsPort) {
  Request request = get("Example.COM", "/x");
  request.headers.set("Host", "Example.COM:8080");
  EXPECT_EQ(request_host(request), "example.com");
}

TEST(RequestHelpersTest, HostFallsBackToAbsoluteTarget) {
  Request request;
  request.target = "http://fallback.example/x";
  EXPECT_EQ(request_host(request), "fallback.example");
}

TEST(RequestHelpersTest, PathStripsQuery) {
  EXPECT_EQ(request_path(get("a.com", "/p/q?x=1")), "/p/q");
  Request absolute;
  absolute.target = "http://a.com/deep/path?z";
  EXPECT_EQ(request_path(absolute), "/deep/path");
}

class OriginServerTest : public ::testing::Test {
 protected:
  OriginServerTest() : server_("test-server") {
    server_.add_resource("www.example.com", "/page",
                         Response::make(200, "OK", "exact-match"));
    server_.add_path_for_any_host("/probe", Response::make(200, "OK", "any-host"));
  }

  Response handle(const Request& request) {
    return server_.handle(request, kClient, sim::Instant::epoch());
  }

  OriginServer server_;
};

TEST_F(OriginServerTest, ExactResourceMatch) {
  EXPECT_EQ(handle(get("www.example.com", "/page")).body, "exact-match");
}

TEST_F(OriginServerTest, HostMatchingIsCaseInsensitive) {
  EXPECT_EQ(handle(get("WWW.EXAMPLE.COM", "/page")).body, "exact-match");
}

TEST_F(OriginServerTest, AnyHostPath) {
  EXPECT_EQ(handle(get("s123-d1.probe.tft-study.net", "/probe")).body, "any-host");
  EXPECT_EQ(handle(get("other.host", "/probe")).body, "any-host");
}

TEST_F(OriginServerTest, UnmatchedIs404) {
  EXPECT_EQ(handle(get("www.example.com", "/missing")).status, 404);
}

TEST_F(OriginServerTest, DefaultHandlerServesFallback) {
  server_.set_default_handler([](const Request& request) {
    return Response::make(200, "OK", "ad page for " + request_host(request));
  });
  EXPECT_EQ(handle(get("typo.example", "/anything")).body, "ad page for typo.example");
  // Exact resources still win over the default handler.
  EXPECT_EQ(handle(get("www.example.com", "/page")).body, "exact-match");
}

TEST_F(OriginServerTest, NonGetRejected) {
  Request request = get("www.example.com", "/page");
  request.method = Method::kPost;
  EXPECT_EQ(handle(request).status, 400);
}

TEST_F(OriginServerTest, RequestLogRecordsEverything) {
  Request request = get("www.example.com", "/page");
  request.headers.set("User-Agent", "Trend Micro scanner");
  server_.handle(request, kClient, sim::Instant::epoch() + sim::Duration::seconds(30));
  ASSERT_EQ(server_.request_log().size(), 1u);
  const auto& entry = server_.request_log().front();
  EXPECT_EQ(entry.source, kClient);
  EXPECT_EQ(entry.host, "www.example.com");
  EXPECT_EQ(entry.path, "/page");
  EXPECT_EQ(entry.user_agent, "Trend Micro scanner");
  EXPECT_EQ(entry.time, sim::Instant::epoch() + sim::Duration::seconds(30));
  server_.clear_request_log();
  EXPECT_TRUE(server_.request_log().empty());
}

TEST_F(OriginServerTest, LogsEvenUnmatchedRequests) {
  handle(get("nowhere.example", "/void"));
  EXPECT_EQ(server_.request_log().size(), 1u);
}

TEST(WebServerRegistryTest, RoutesByDestination) {
  WebServerRegistry registry;
  auto server = std::make_shared<OriginServer>("s");
  server->add_path_for_any_host("/", Response::make(200, "OK", "hello"));
  registry.add(kServerAddress, server);

  EXPECT_EQ(registry.find(kServerAddress), server.get());
  EXPECT_EQ(registry.find(net::Ipv4Address(1, 2, 3, 4)), nullptr);

  const auto response = registry.fetch(kServerAddress, get("h.example", "/"),
                                       kClient, sim::Instant::epoch());
  EXPECT_EQ(response.body, "hello");

  const auto unreachable = registry.fetch(net::Ipv4Address(9, 9, 9, 9),
                                          get("h.example", "/"), kClient,
                                          sim::Instant::epoch());
  EXPECT_EQ(unreachable.status, 504);
}

}  // namespace
}  // namespace tft::http
