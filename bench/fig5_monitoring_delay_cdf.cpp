// Regenerates Figure 5: the CDF of the delay between an exit node's request
// and the monitoring entity's unexpected re-fetch, per entity (log-x).
// Prints the curve at log-spaced sample points plus an ASCII rendering.
#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);

  tft::core::ContentMonitorProbe probe(*world, config.monitoring);
  probe.run();
  const auto report = tft::core::analyze_monitoring(*world, probe.observations(),
                                                    config.monitoring_analysis);

  std::cout << tft::stats::banner("Figure 5: delay CDF per monitoring entity");
  // Numeric series (the figure's data) at log-spaced delays.
  tft::stats::Table table({"Entity", "F(1s)", "F(10s)", "F(30s)", "F(60s)",
                           "F(120s)", "F(600s)", "F(3600s)", "F(12500s)"});
  for (const auto& row : report.top_entities) {
    if (row.delay_cdf.empty()) continue;
    const auto at = [&](double x) {
      return tft::util::format_double(row.delay_cdf.at(x), 2);
    };
    table.add_row({row.entity, at(1), at(10), at(30), at(60), at(120), at(600),
                   at(3600), at(12500)});
  }
  std::cout << table.render() << "\n";

  std::cout << "ASCII CDF (log-x 0.1s .. 12,500s; levels ' .:-=+*#%@'):\n";
  for (const auto& row : report.top_entities) {
    if (row.delay_cdf.empty()) continue;
    std::string name = row.entity;
    name.resize(14, ' ');
    std::cout << "  " << name << " |" << row.delay_cdf.ascii_curve(0.1, 12500, 56)
              << "|\n";
  }
  std::cout
      << "\nPaper shape reference:\n"
         "  Trend Micro: two bands (12-120s, 200-12,500s) with a step at 0.5\n"
         "  TalkTalk:    step at exactly 30s, second request over the next hour\n"
         "  Commtouch:   single band 1-10 minutes\n"
         "  AnchorFree:  99% under 1 second\n"
         "  Bluecoat:    starts at 0.41 (83% of first re-fetches PRECEDE the\n"
         "               node's request)\n"
         "  Tiscali:     vertical step at exactly 30s\n";
  return 0;
}
