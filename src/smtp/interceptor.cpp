#include "tft/smtp/interceptor.hpp"

#include "tft/util/strings.hpp"

namespace tft::smtp {

std::optional<Reply> StarttlsStripper::on_reply(const Command& command,
                                                const Reply& reply) {
  if (command.verb == "EHLO") {
    bool changed = false;
    Reply stripped = reply;
    for (auto& line : stripped.lines) {
      if (util::iequals(util::trim(line), "STARTTLS")) {
        // The classic in-the-wild artifact: the capability is blanked out,
        // not removed, so line counts (and pipelining offsets) stay intact.
        line = "XXXXXXXX";
        changed = true;
      }
    }
    if (changed) return stripped;
    return std::nullopt;
  }
  if (command.verb == "STARTTLS" && reply.positive()) {
    return Reply::single(502, "Command not implemented");
  }
  return std::nullopt;
}

std::optional<Reply> BannerRewriter::on_reply(const Command& command,
                                              const Reply& reply) {
  // The banner is delivered for the pseudo-command "" at connect time.
  if (!command.verb.empty() || reply.code != 220) return std::nullopt;
  return Reply::single(220, replacement_);
}

std::optional<std::string> BodyTagger::on_message_body(const std::string& body) {
  return body + footer_ + "\n";
}

}  // namespace tft::smtp
