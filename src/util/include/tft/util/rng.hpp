// Deterministic random number generation. All simulation randomness flows
// through Rng so that experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <cassert>
#include <cmath>
#include <vector>

namespace tft::util {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms,
/// unlike std::mt19937 + std::uniform_int_distribution whose outputs are
/// implementation-defined.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-uniform: uniform in log-space over [lo, hi], lo > 0.
  double log_uniform(double lo, double hi);

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    assert(size > 0);
    return static_cast<std::size_t>(uniform(size));
  }

  /// Pick an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fork a new independent stream (useful for per-entity determinism).
  Rng fork();

 private:
  std::uint64_t state_[4] = {};
};

/// One splitmix64 step; exposed for stable hashing/id derivation.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace tft::util
