#include "tft/util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "tft/util/rng.hpp"

namespace tft::util {

namespace {

std::int64_t busy_clock_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (current < value &&
         !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

PoolTelemetry& pool_telemetry() {
  static PoolTelemetry telemetry;
  return telemetry;
}

PoolTelemetrySnapshot pool_telemetry_snapshot() {
  const PoolTelemetry& telemetry = pool_telemetry();
  PoolTelemetrySnapshot snapshot;
  snapshot.shard_batches = telemetry.shard_batches.load(std::memory_order_relaxed);
  snapshot.shard_tasks = telemetry.shard_tasks.load(std::memory_order_relaxed);
  snapshot.pool_tasks = telemetry.pool_tasks.load(std::memory_order_relaxed);
  snapshot.queue_high_water =
      telemetry.queue_high_water.load(std::memory_order_relaxed);
  snapshot.busy_micros = telemetry.busy_micros.load(std::memory_order_relaxed);
  return snapshot;
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::default_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(UniqueFunction<void()> task) {
  {
    std::lock_guard lock(mutex_);
    // Compact the consumed prefix occasionally so the queue never grows
    // unboundedly across long runs.
    if (queue_head_ > 64 && queue_head_ * 2 > queue_.size()) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
      queue_head_ = 0;
    }
    queue_.push_back(std::move(task));
    atomic_max(pool_telemetry().queue_high_water, queue_.size() - queue_head_);
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    UniqueFunction<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] {
        return stopping_ || queue_head_ < queue_.size();
      });
      if (queue_head_ == queue_.size()) return;  // stopping, queue drained
      task = std::move(queue_[queue_head_++]);
    }
    const std::int64_t started = busy_clock_micros();
    task();
    PoolTelemetry& telemetry = pool_telemetry();
    telemetry.pool_tasks.fetch_add(1, std::memory_order_relaxed);
    telemetry.busy_micros.fetch_add(
        static_cast<std::uint64_t>(busy_clock_micros() - started),
        std::memory_order_relaxed);
  }
}

std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t shard_index) {
  std::uint64_t state = seed ^ shard_index;
  return splitmix64(state);
}

std::size_t shard_count(std::size_t n, std::size_t grain,
                        std::size_t max_shards) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return std::clamp<std::size_t>((n + grain - 1) / grain, 1, max_shards);
}

namespace detail {

void run_shards(std::size_t shards, std::size_t jobs,
                const UniqueFunction<void(std::size_t)>& fn) {
  if (shards == 0) return;
  PoolTelemetry& telemetry = pool_telemetry();
  telemetry.shard_batches.fetch_add(1, std::memory_order_relaxed);
  // shard_tasks counts shards *executed*, which equals `shards` on every
  // path below — the deterministic half of the telemetry. busy_micros is
  // wall time and belongs to `timing` sections only.
  auto timed_shard = [&](std::size_t shard) {
    const std::int64_t started = busy_clock_micros();
    fn(shard);
    telemetry.shard_tasks.fetch_add(1, std::memory_order_relaxed);
    telemetry.busy_micros.fetch_add(
        static_cast<std::uint64_t>(busy_clock_micros() - started),
        std::memory_order_relaxed);
  };
  if (jobs <= 1 || shards == 1) {
    for (std::size_t shard = 0; shard < shards; ++shard) timed_shard(shard);
    return;
  }
  const std::size_t workers = std::min(jobs, shards);
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(shards);
  auto drain = [&] {
    for (;;) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      try {
        timed_shard(shard);
      } catch (...) {
        errors[shard] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) threads.emplace_back(drain);
  drain();
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace detail

}  // namespace tft::util
