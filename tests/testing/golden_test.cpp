// Golden canonicalization: stripping, sorting, stable formatting,
// idempotence, and the snapshot check/update cycle on disk.
#include "tft/testing/golden.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace tft::testing {
namespace {

TEST(GoldenTest, StripsBuildAndTimingAtEveryLevel) {
  const auto canonical = canonicalize_json(
      R"({"build":{"git_describe":"v1-3-gabc"},"report":{"timing":{"wall_us":123},"nodes":5},"timing":{"total":9}})");
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(canonical->find("build"), std::string::npos);
  EXPECT_EQ(canonical->find("timing"), std::string::npos);
  EXPECT_EQ(canonical->find("wall_us"), std::string::npos);
  EXPECT_NE(canonical->find("\"nodes\": 5"), std::string::npos);
}

TEST(GoldenTest, SortsKeysAndIndentsStably) {
  const auto canonical = canonicalize_json(R"({"b":1,"a":[2,3],"c":{"z":0,"y":1}})");
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(*canonical,
            "{\n"
            "  \"a\": [\n"
            "    2,\n"
            "    3\n"
            "  ],\n"
            "  \"b\": 1,\n"
            "  \"c\": {\n"
            "    \"y\": 1,\n"
            "    \"z\": 0\n"
            "  }\n"
            "}\n");
}

TEST(GoldenTest, NumberFormattingIsStable) {
  const auto canonical = canonicalize_json(R"([1.0,2,0.5,1e3,-0,1e17])");
  ASSERT_TRUE(canonical.ok());
  // Whole doubles render without a fraction; true fractions keep precision;
  // magnitudes past exact-integer range fall back to %.17g.
  EXPECT_NE(canonical->find("\n  1,"), std::string::npos);
  EXPECT_NE(canonical->find("\n  1000,"), std::string::npos);
  EXPECT_NE(canonical->find("0.5"), std::string::npos);
  EXPECT_NE(canonical->find("1e+17"), std::string::npos);
}

TEST(GoldenTest, CanonicalizationIsIdempotent) {
  const auto once = canonicalize_json(
      R"({"z":{"timing":{"t":1},"k":[1,2,{"build":"x","v":3.25}]},"a":"text"})");
  ASSERT_TRUE(once.ok());
  const auto twice = canonicalize_json(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(*once, *twice);
}

TEST(GoldenTest, MalformedInputIsACleanError) {
  EXPECT_FALSE(canonicalize_json("{\"a\":").ok());
  EXPECT_FALSE(canonicalize_json("").ok());
}

TEST(GoldenTest, FirstDifferenceLocatesTheDivergence) {
  EXPECT_EQ(first_difference("same", "same"), "");
  const std::string diff = first_difference("line1\nline2\nlineX\n",
                                            "line1\nline2\nlineY\n");
  EXPECT_NE(diff.find("line 3"), std::string::npos);
  EXPECT_NE(diff.find("column 5"), std::string::npos);
  const std::string size_diff = first_difference("abc", "abcdef");
  EXPECT_NE(size_diff.find("expected 3 bytes, actual 6 bytes"), std::string::npos);
}

TEST(GoldenTest, CheckAndUpdateCycle) {
  const std::filesystem::path directory =
      std::filesystem::path(::testing::TempDir()) / "tft_golden_test";
  const std::string path = (directory / "nested" / "snapshot.json").string();
  std::filesystem::remove_all(directory);

  const auto missing = check_golden(path, "{}\n");
  EXPECT_FALSE(missing.matched);
  EXPECT_TRUE(missing.snapshot_missing);
  EXPECT_NE(missing.diff.find("update_goldens"), std::string::npos);

  // update_golden creates parent directories and writes verbatim.
  ASSERT_TRUE(update_golden(path, "{\n  \"a\": 1\n}\n").ok());
  const auto match = check_golden(path, "{\n  \"a\": 1\n}\n");
  EXPECT_TRUE(match.matched);

  const auto mismatch = check_golden(path, "{\n  \"a\": 2\n}\n");
  EXPECT_FALSE(mismatch.matched);
  EXPECT_FALSE(mismatch.snapshot_missing);
  EXPECT_NE(mismatch.diff.find("first difference"), std::string::npos);

  std::filesystem::remove_all(directory);
}

}  // namespace
}  // namespace tft::testing
