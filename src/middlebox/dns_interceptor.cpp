#include "tft/middlebox/dns_interceptor.hpp"

#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"

namespace tft::middlebox {

std::optional<dns::Message> NxdomainRewriter::on_response(const dns::Message& query,
                                                          const dns::Message& response,
                                                          FetchContext& context) {
  if (!response.is_nxdomain()) return std::nullopt;
  if (context.rng != nullptr && !context.rng->chance(config_.probability)) {
    return std::nullopt;
  }
  dns::Message rewritten = dns::Message::response_to(query, dns::Rcode::kNoError);
  rewritten.flags.recursion_available = response.flags.recursion_available;
  rewritten.answers.push_back(dns::ResourceRecord::a(
      query.questions.front().name, config_.redirect_address, config_.ttl));
  if (context.metrics != nullptr) context.metrics->add("middlebox.dns_rewrites");
  if (context.recorder != nullptr) {
    context.recorder->violation(
        obs::Hop::kMiddlebox, config_.name, "rewrite-nxdomain",
        query.questions.front().name.to_string() + " -> " +
            config_.redirect_address.to_string(),
        context.clock == nullptr
            ? 0
            : static_cast<std::uint64_t>(context.clock->now().micros));
  }
  return rewritten;
}

net::Ipv4Address effective_resolver(const DnsInterceptorList& chain,
                                    net::Ipv4Address configured) {
  net::Ipv4Address resolver = configured;
  for (const auto& interceptor : chain) {
    if (const auto redirect = interceptor->redirect_resolver(resolver)) {
      resolver = *redirect;
    }
  }
  return resolver;
}

dns::Message intercepted_response(const DnsInterceptorList& chain,
                                  const dns::Message& query, dns::Message response,
                                  FetchContext& context) {
  for (const auto& interceptor : chain) {
    if (auto rewritten = interceptor->on_response(query, response, context)) {
      return *std::move(rewritten);
    }
  }
  return response;
}

}  // namespace tft::middlebox
