// Minimal streaming JSON writer (objects, arrays, scalars, full string
// escaping). Used to export measurement reports in machine-readable form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace tft::util {

class JsonWriter {
 public:
  /// Receives consecutive chunks of the document. Concatenating every chunk
  /// in call order reproduces the buffered document byte-for-byte.
  using Sink = std::function<void(std::string_view)>;

  /// Stream mode: once the internal buffer reaches `flush_threshold` bytes
  /// the writer hands it to `sink` and clears it, so emitting a document
  /// never holds more than ~threshold + one token in memory (the streaming
  /// report writer for memory-bounded studies). Call flush() after the last
  /// token to push the tail. Set before writing anything.
  void set_sink(Sink sink, std::size_t flush_threshold = 64 * 1024);

  /// Push buffered bytes to the sink now (no-op without a sink).
  void flush();

  /// Total bytes produced so far, flushed and buffered.
  std::size_t bytes_emitted() const noexcept {
    return flushed_bytes_ + out_.size();
  }

  /// Begin/end containers. Keys apply inside objects only.
  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();

  /// Scalars inside arrays.
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Key/value pairs inside objects.
  JsonWriter& field(std::string_view key, std::string_view text);
  JsonWriter& field(std::string_view key, const char* text) {
    return field(key, std::string_view(text));
  }
  JsonWriter& field(std::string_view key, double number);
  JsonWriter& field(std::string_view key, std::int64_t number);
  JsonWriter& field(std::string_view key, std::uint64_t number);
  JsonWriter& field(std::string_view key, int number) {
    return field(key, static_cast<std::int64_t>(number));
  }
  JsonWriter& field(std::string_view key, bool flag);

  /// The document so far. Valid once all containers are closed. With a
  /// sink installed this is only the unflushed tail — the full document
  /// lives wherever the sink put it.
  const std::string& str() const& noexcept { return out_; }
  std::string take() && { return std::move(out_); }

  /// True when every begin_* has a matching end_*.
  bool complete() const noexcept {
    return stack_.empty() && bytes_emitted() > 0;
  }

  /// Escape `text` per RFC 8259 (quotes not included).
  static std::string escape(std::string_view text);

 private:
  void comma();
  void key_prefix(std::string_view key);
  /// Flush to the sink when the buffer crossed the threshold. Called after
  /// every complete token, never mid-token, though sinks must not rely on
  /// chunk boundaries either way.
  void maybe_flush();

  std::string out_;
  std::vector<bool> stack_;       // true = object, false = array
  std::vector<bool> has_items_;   // parallel: container has emitted items
  Sink sink_;
  std::size_t flush_threshold_ = 0;
  std::size_t flushed_bytes_ = 0;
};

}  // namespace tft::util
