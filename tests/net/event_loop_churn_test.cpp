// EventLoop generation-counter stress: rapid add/remove churn with fd-number
// reuse across hundreds of cycles, plus the nasty case — an fd removed,
// closed, and re-added (same number, new registration) inside the dispatch
// round that still holds the old fd's queued event. The generation counter
// must drop the stale event instead of delivering it to the new handler.
#include <dirent.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <set>

#include "tft/net/server/event_loop.hpp"
#include "tft/testing/test_proxy_server.hpp"

namespace tft::net::server {
namespace {

std::size_t open_fd_count() {
  std::size_t count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

// Hundreds of register / ready / dispatch / deregister cycles. The kernel
// hands back the lowest free descriptor, so every cycle reuses the previous
// cycle's fd number — a handler leaking across cycles would fire with a
// stale captured cycle id.
TEST(EventLoopChurnTest, RapidFdReuseDeliversOnlyCurrentRegistration) {
  const std::size_t fds_before = open_fd_count();
  std::set<int> fd_numbers_seen;
  {
    EventLoop loop;
    ASSERT_TRUE(loop.init().ok());
    const std::size_t watched_baseline = loop.watched();  // wakeup eventfd

    int current_cycle = -1;
    for (int cycle = 0; cycle < 400; ++cycle) {
      current_cycle = cycle;
      int pair[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, pair), 0);
      fd_numbers_seen.insert(pair[1]);
      ASSERT_EQ(::write(pair[0], "x", 1), 1);

      int fired = 0;
      ASSERT_TRUE(loop.add(pair[1], EPOLLIN,
                           [&, cycle](std::uint32_t) {
                             // A stale handler would carry an old cycle id.
                             EXPECT_EQ(cycle, current_cycle);
                             ++fired;
                           })
                      .ok());
      for (int round = 0; round < 100 && fired == 0; ++round) {
        loop.poll(50);
      }
      ASSERT_EQ(fired, 1) << "cycle " << cycle;
      loop.remove(pair[1]);
      ::close(pair[0]);
      ::close(pair[1]);
    }
    EXPECT_EQ(loop.watched(), watched_baseline);
  }
  // 400 cycles should have cycled through a handful of fd numbers, not 400
  // distinct ones — i.e. the reuse we claim to stress actually happened.
  EXPECT_LE(fd_numbers_seen.size(), 4u);
  EXPECT_EQ(open_fd_count(), fds_before);
}

// Two fds become readable in the same epoll_wait snapshot. The first
// handler dispatched removes the *other* fd, closes it, and re-registers
// the same fd number (forced via dup2) with a fresh handler. The queued
// event for the old registration must NOT reach the new handler — it
// belongs to a dead generation.
TEST(EventLoopChurnTest, ReaddedFdInSameRoundDoesNotSeeStaleEvent) {
  EventLoop loop;
  ASSERT_TRUE(loop.init().ok());

  int a[2], b[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, b), 0);
  const int spare = ::eventfd(0, EFD_NONBLOCK);
  ASSERT_GE(spare, 0);

  bool stale_delivered = false;
  bool replacement_armed = false;
  int replacement_fired = 0;
  int victims_replaced = 0;

  // Symmetric: whichever of the two handlers runs first replaces the other.
  const auto replace_other = [&](int victim, int victim_peer) {
    if (victims_replaced++ > 0) return;  // only the first dispatch acts
    loop.remove(victim);
    ::close(victim);
    ::close(victim_peer);
    // dup2 pins the replacement to the exact fd number just vacated.
    const int replacement = ::dup2(spare, victim);
    ASSERT_EQ(replacement, victim);
    ASSERT_TRUE(loop.add(replacement, EPOLLIN,
                         [&](std::uint32_t) {
                           if (!replacement_armed) stale_delivered = true;
                           ++replacement_fired;
                         })
                    .ok());
  };
  ASSERT_TRUE(
      loop.add(a[1], EPOLLIN, [&](std::uint32_t) { replace_other(b[1], b[0]); })
          .ok());
  ASSERT_TRUE(
      loop.add(b[1], EPOLLIN, [&](std::uint32_t) { replace_other(a[1], a[0]); })
          .ok());

  // Make both readable so one epoll_wait snapshot holds both events.
  ASSERT_EQ(::write(a[0], "x", 1), 1);
  ASSERT_EQ(::write(b[0], "x", 1), 1);
  for (int round = 0; round < 100 && victims_replaced == 0; ++round) {
    loop.poll(50);
  }
  ASSERT_GE(victims_replaced, 1);
  EXPECT_FALSE(stale_delivered)
      << "queued event for a removed fd reached its replacement's handler";
  EXPECT_EQ(replacement_fired, 0);

  // The replacement still works for *new* events.
  replacement_armed = true;
  const std::uint64_t one = 1;
  ASSERT_EQ(::write(spare, &one, sizeof(one)), static_cast<ssize_t>(sizeof(one)));
  for (int round = 0; round < 100 && replacement_fired == 0; ++round) {
    loop.poll(50);
  }
  EXPECT_EQ(replacement_fired, 1);
  EXPECT_FALSE(stale_delivered);

  // Teardown: the surviving original pair + the replacement + the spare.
  for (const int fd : {a[0], a[1], b[0], b[1]}) {
    // One pair was already closed inside the handler; ignore EBADF.
    if (fd != spare) ::close(fd);
  }
  ::close(spare);
}

// The same churn through the full server stack: accept/close cycles with
// immediate reconnects, so accepted-connection fds are reused hundreds of
// times while the listener stays hot. No stale dispatch, no fd creep.
TEST(EventLoopChurnTest, ServerAcceptCloseChurnStaysClean) {
  testing::TestProxyServer::Options options;
  options.threaded = false;
  testing::TestProxyServer fixture(std::move(options));
  const std::size_t fds_before = open_fd_count();

  for (int cycle = 0; cycle < 200; ++cycle) {
    testing::TestSocket client(fixture.port(), &fixture.server());
    ASSERT_TRUE(client.connected());
    if (cycle % 2 == 0) {
      // Half the cycles exchange a request so the connection reaches the
      // dispatch path before dying; half vanish straight after accept.
      ASSERT_TRUE(
          client
              .send_all("GET http://m1.probe.tft-study.net/ HTTP/1.1\r\n"
                        "Host: m1.probe.tft-study.net\r\n\r\n")
              .ok());
      ASSERT_TRUE(client.recv_message().ok());
    }
    client.close();
    fixture.pump();
  }

  EXPECT_EQ(fixture.counter("net.accepted"), 200u);
  EXPECT_EQ(fixture.counter("net.http.requests"), 100u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);
  EXPECT_EQ(open_fd_count(), fds_before);
}

}  // namespace
}  // namespace tft::net::server
