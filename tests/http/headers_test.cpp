#include "tft/http/headers.hpp"

#include <gtest/gtest.h>

namespace tft::http {
namespace {

TEST(HeaderMapTest, AddAndGetCaseInsensitive) {
  HeaderMap headers;
  headers.add("Content-Type", "text/html");
  EXPECT_EQ(headers.get("content-type"), "text/html");
  EXPECT_EQ(headers.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(headers.get("Content-Length").has_value());
  EXPECT_TRUE(headers.has("Content-Type"));
}

TEST(HeaderMapTest, DuplicatesPreserved) {
  HeaderMap headers;
  headers.add("Via", "proxy-a");
  headers.add("Via", "proxy-b");
  EXPECT_EQ(headers.get("Via"), "proxy-a");  // first value
  const auto all = headers.get_all("via");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "proxy-a");
  EXPECT_EQ(all[1], "proxy-b");
}

TEST(HeaderMapTest, SetReplacesAll) {
  HeaderMap headers;
  headers.add("X-Test", "1");
  headers.add("X-Test", "2");
  headers.set("x-test", "3");
  EXPECT_EQ(headers.get_all("X-Test").size(), 1u);
  EXPECT_EQ(headers.get("X-Test"), "3");
}

TEST(HeaderMapTest, RemoveReturnsCount) {
  HeaderMap headers;
  headers.add("A", "1");
  headers.add("a", "2");
  headers.add("B", "3");
  EXPECT_EQ(headers.remove("A"), 2u);
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.remove("A"), 0u);
}

TEST(HeaderMapTest, InsertionOrderPreserved) {
  HeaderMap headers;
  headers.add("First", "1");
  headers.add("Second", "2");
  headers.add("Third", "3");
  ASSERT_EQ(headers.entries().size(), 3u);
  EXPECT_EQ(headers.entries()[0].name, "First");
  EXPECT_EQ(headers.entries()[2].name, "Third");
}

TEST(HeaderMapTest, EmptyMap) {
  HeaderMap headers;
  EXPECT_TRUE(headers.empty());
  EXPECT_EQ(headers.size(), 0u);
  EXPECT_TRUE(headers.get_all("X").empty());
}

}  // namespace
}  // namespace tft::http
