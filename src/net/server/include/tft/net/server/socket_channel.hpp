// The socket-side ProxyChannel: carries the same fetch/connect transactions
// as InProcessChannel, but over a real localhost TCP connection to a
// ProxyServer. Fetches share one persistent keep-alive connection
// (reconnecting once if the server closed it between requests); every
// CONNECT opens a fresh connection that is torn down after the tunnel
// reply, mirroring how a real client uses one tunnel per TLS probe.
//
// Two driving modes, chosen by the `pump` argument:
//   - pump != nullptr: the ProxyServer shares this thread, and the channel
//     cooperatively calls pump->poll_once(0) whenever a socket operation
//     would block. Client and server interleave on one thread, so world
//     state stays single-threaded and measurement runs stay deterministic.
//   - pump == nullptr: the server runs elsewhere (its own thread or its
//     own process) and the channel blocks in poll(2) with a timeout.
#pragma once

#include <cstdint>

#include "tft/http/reader.hpp"
#include "tft/net/server/framing.hpp"
#include "tft/proxy/channel.hpp"

namespace tft::net::server {

class ProxyServer;

class SocketProxyChannel final : public proxy::ProxyChannel {
 public:
  explicit SocketProxyChannel(std::uint16_t port, ProxyServer* pump = nullptr);
  ~SocketProxyChannel() override;
  SocketProxyChannel(const SocketProxyChannel&) = delete;
  SocketProxyChannel& operator=(const SocketProxyChannel&) = delete;

  proxy::ProxyFetchResult fetch(const http::Url& url,
                                const proxy::RequestOptions& options) override;

  proxy::ConnectResult connect_and_handshake(
      net::Ipv4Address destination, std::uint16_t port, std::string_view sni,
      const proxy::RequestOptions& options) override;

  std::string_view transport() const noexcept override { return "socket"; }

  /// Completed request/response round trips (diagnostics).
  std::uint64_t exchanges() const noexcept { return exchanges_; }

 private:
  /// Open a non-blocking connection to the server.
  util::Result<int> connect_socket();
  /// Block (or pump) until `fd` reports one of `events`.
  util::Result<void> wait_for(int fd, short events);
  util::Result<void> send_all(int fd, std::string_view bytes);
  /// Read until `reader` yields one complete HTTP message.
  util::Result<std::string> read_message(int fd, http::MessageReader& reader);
  /// Read until `reader` yields one complete tunnel frame payload.
  util::Result<std::string> read_frame(int fd, FrameReader& reader);

  util::Result<void> ensure_fetch_connection();
  void close_fetch_connection();
  /// One send+receive on the persistent fetch connection.
  util::Result<std::string> exchange_fetch(std::string_view wire);

  std::uint16_t port_;
  ProxyServer* pump_;
  int fetch_fd_ = -1;
  http::MessageReader fetch_reader_;
  std::uint64_t exchanges_ = 0;
};

}  // namespace tft::net::server
