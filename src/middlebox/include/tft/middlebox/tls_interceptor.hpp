// TLS interception (§6): anti-virus suites, content filters and malware
// that terminate the user's TLS connection and present a forged leaf
// certificate signed by their own CA.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "tft/middlebox/interceptor.hpp"
#include "tft/tls/authority.hpp"
#include "tft/tls/verify.hpp"

namespace tft::middlebox {

class TlsInterceptor {
 public:
  virtual ~TlsInterceptor() = default;
  virtual std::string_view name() const = 0;

  /// Given the upstream chain presented for `host`, return a replacement
  /// chain, or nullopt to pass the original through untouched.
  virtual std::optional<tls::CertificateChain> intercept(
      std::string_view host, const tls::CertificateChain& upstream,
      FetchContext& context) = 0;
};

using TlsInterceptorList = std::vector<std::shared_ptr<TlsInterceptor>>;

/// The certificate-replacement behaviour Table 8 catalogues.
class CertReplacer : public TlsInterceptor {
 public:
  struct Config {
    std::string name;            // product name ("Avast", "OpenDNS", ...)
    tls::ForgeProfile forge;
    /// Only intercept connections to these hosts (content filters MITM only
    /// blocked sites); empty = intercept everything.
    std::unordered_set<std::string> only_hosts;
    /// Skip interception when the upstream chain does not verify (OpenDNS
    /// "does not replace certificates that were originally invalid").
    bool only_if_upstream_valid = false;
    /// Fraction of eligible handshakes intercepted (selective replacement).
    double probability = 1.0;
    /// Verifier used to judge the upstream chain (typically over the public
    /// root store).
    const tls::RootStore* public_roots = nullptr;
  };

  /// `host_seed` is a stable per-host identity so that key reuse is visible
  /// across certificates on the same machine.
  CertReplacer(Config config, std::uint64_t host_seed)
      : config_(std::move(config)), host_seed_(host_seed) {}

  std::string_view name() const override { return config_.name; }

  std::optional<tls::CertificateChain> intercept(std::string_view host,
                                                 const tls::CertificateChain& upstream,
                                                 FetchContext& context) override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::uint64_t host_seed_;
};

/// Run a TLS handshake's certificate chain through an interceptor list;
/// first interceptor that replaces wins (nested MITM is not modeled —
/// the paper could not distinguish it either).
tls::CertificateChain intercepted_chain(const TlsInterceptorList& chain,
                                        std::string_view host,
                                        tls::CertificateChain upstream,
                                        FetchContext& context);

}  // namespace tft::middlebox
