// §7: content monitoring. Fetch one unique, never-advertised domain per
// exit node, then watch the measurement web server's log for up to 24
// hours: any further request for that domain from a different address
// means someone recorded and re-fetched the URL.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tft/stats/cdf.hpp"
#include "tft/world/world.hpp"

namespace tft::core {

struct MonitorProbeConfig {
  std::size_t target_nodes = 5000;
  std::size_t stall_limit = 3000;
  double watch_hours = 24.0;
  std::uint64_t seed = 0x707;
  /// Worker threads for the post-watch harvest pass (per-host arrival
  /// sorting and attribution). Results are byte-identical for every value.
  std::size_t jobs = 1;
};

struct UnexpectedRequest {
  net::Ipv4Address source;
  net::Asn asn = 0;
  std::string organization;  // requester's org per CAIDA mapping
  double delay_seconds = 0;  // relative to the node's own request (may be <0)
  std::string user_agent;
};

struct MonitorObservation {
  /// Flight-recorder transaction behind this observation (0 when the world
  /// has no recorder); stable across --jobs and probe composition.
  std::uint64_t txn_id = 0;
  std::string zid;
  net::Ipv4Address reported_exit_address;  // what Luminati told us
  net::Asn asn = 0;
  net::CountryCode country;
  std::string probe_host;
  /// The node's own request did not come from its reported address
  /// (AnchorFree-style VPN relaying, §7.2.1).
  bool own_request_address_mismatch = false;
  /// Where the node's own request actually came from (equals
  /// reported_exit_address unless relayed through a VPN).
  net::Ipv4Address own_request_source;
  std::vector<UnexpectedRequest> unexpected;

  bool monitored() const { return !unexpected.empty(); }
};

class ContentMonitorProbe {
 public:
  ContentMonitorProbe(world::World& world, MonitorProbeConfig config);

  /// Crawl, then advance the simulation clock by the watch window and
  /// harvest the server logs.
  std::size_t run();

  const std::vector<MonitorObservation>& observations() const noexcept {
    return observations_;
  }
  std::size_t sessions_issued() const noexcept { return sessions_issued_; }

 private:
  world::World& world_;
  MonitorProbeConfig config_;
  std::vector<MonitorObservation> observations_;
  std::size_t sessions_issued_ = 0;
};

// --- Analysis (§7.2) ----------------------------------------------------------

struct MonitorAnalysisConfig {
  std::size_t top_entities = 6;
  /// Observation accumulation runs over this many contiguous shards whose
  /// partial accumulators merge in shard order (sets union, tallies sum,
  /// delay CDFs merge via EmpiricalCdf::merge_from). The report is
  /// byte-identical for every value — the shard-merge algebra the
  /// memory-bounded study mode rests on. 0 collapses to a single shard.
  std::size_t merge_shards = 16;
};

struct MonitorEntityRow {  // Table 9
  std::string entity;      // requester organization
  std::size_t source_ips = 0;
  std::size_t nodes = 0;
  std::size_t ases = 0;       // of the monitored nodes
  std::size_t countries = 0;  // of the monitored nodes
  stats::EmpiricalCdf delay_cdf;  // Figure 5 series
};

struct MonitorReport {
  std::size_t total_nodes = 0;
  std::size_t monitored_nodes = 0;
  std::size_t unique_ases = 0;
  std::size_t unique_countries = 0;
  std::size_t unique_requester_ips = 0;
  std::size_t requester_groups = 0;  // the paper's "54 groups"
  std::vector<MonitorEntityRow> top_entities;  // Table 9 + Figure 5
  /// Evidence chains: violation category -> flight-recorder txn ids of
  /// every observation counted under it ("0x…" refs in report_json).
  std::map<std::string, std::vector<std::uint64_t>> evidence;
  /// Share of all unexpected requests produced by the top entities.
  double top_share = 0;

  double monitored_ratio() const {
    return total_nodes == 0 ? 0
                            : static_cast<double>(monitored_nodes) / total_nodes;
  }
};

MonitorReport analyze_monitoring(const world::World& world,
                                 const std::vector<MonitorObservation>& observations,
                                 const MonitorAnalysisConfig& config);

}  // namespace tft::core
