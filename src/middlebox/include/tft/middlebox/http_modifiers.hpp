// Concrete HTTP interceptors reproducing the modification behaviours of §5:
// JavaScript/ad injection into HTML, meta-tag web filters, image
// transcoding by (mobile) carriers, and content blockers.
#pragma once

#include <string>

#include "tft/middlebox/interceptor.hpp"

namespace tft::middlebox {

/// Injects a snippet before </body> of HTML responses. Models both
/// ISP-level injectors and end-host adware; the paper identifies culprits
/// by signature URLs/keywords inside the injected code, so the snippet
/// should carry one.
class HtmlInjector : public HttpInterceptor {
 public:
  struct Config {
    std::string name;            // e.g. "adtaily-adware"
    std::string snippet;         // full injected markup, carries the signature
    /// Objects below this size are left alone (§5.1: sub-1KB objects saw
    /// much less modification).
    std::size_t min_body_bytes = 1024;
    /// Fraction of eligible responses modified.
    double probability = 1.0;
  };

  explicit HtmlInjector(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return config_.name; }
  http::Response after_response(const http::Request& request, http::Response response,
                                FetchContext& context) override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Re-encodes image bodies at a lower quality (Table 7). Carrier-grade
/// transcoders apply a consistent ratio; `quality` maps directly onto the
/// observed compression ratio.
class ImageTranscoder : public HttpInterceptor {
 public:
  struct Config {
    std::string name;          // e.g. "vodafone-gb-transcoder"
    std::uint8_t quality = 50; // target SIMG quality
    double probability = 1.0;  // some carriers transcode per-plan (§5.2)
  };

  explicit ImageTranscoder(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return config_.name; }
  http::Response after_response(const http::Request& request, http::Response response,
                                FetchContext& context) override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Replaces matching responses with a block page ("bandwidth exceeded",
/// content filter interstitials) — the cases §5.2 filters out of the HTML
/// injection analysis, plus the JS/CSS "replaced by error page" cases.
class ContentBlocker : public HttpInterceptor {
 public:
  struct Config {
    std::string name;
    std::string block_page_html;
    int status = 403;
  };

  explicit ContentBlocker(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return config_.name; }
  std::optional<http::Response> before_request(const http::Request& request,
                                               FetchContext& context) override;

 private:
  Config config_;
};

/// Replaces responses of a particular content type with an error page or
/// empty body — §5.2's JS/CSS observations (45 JS, 11 CSS nodes received
/// error pages / empty responses instead of the object).
class ObjectReplacer : public HttpInterceptor {
 public:
  struct Config {
    std::string name;
    std::string match_content_type;  // substring, e.g. "javascript", "css"
    std::string replacement_body;    // may be empty (empty response)
    int status = 200;
  };

  explicit ObjectReplacer(Config config) : config_(std::move(config)) {}

  std::string_view name() const override { return config_.name; }
  http::Response after_response(const http::Request& request, http::Response response,
                                FetchContext& context) override;

 private:
  Config config_;
};

/// Inject `snippet` before </body>; appends if no closing tag is found.
std::string inject_before_body_end(std::string html, std::string_view snippet);

}  // namespace tft::middlebox
