#include "tft/util/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace tft::util {

const JsonValue& JsonValue::operator[](std::string_view key) const {
  static const JsonValue kNull;
  if (!is_object()) return kNull;
  const auto it = object_->find(std::string(key));
  return it == object_->end() ? kNull : it->second;
}

namespace {

/// RFC 8259 number grammar: int [frac] [exp], no leading zeros, at least
/// one digit after '.' — strtod alone is laxer (it accepts "1.", "01",
/// "1.e3"), so the token shape is validated before conversion.
bool is_rfc8259_number(std::string_view token) {
  std::size_t i = 0;
  const auto digit = [&](std::size_t at) {
    return at < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[at])) != 0;
  };
  if (i < token.size() && token[i] == '-') ++i;
  if (!digit(i)) return false;
  if (token[i] == '0') {
    ++i;
  } else {
    while (digit(i)) ++i;
  }
  if (i < token.size() && token[i] == '.') {
    ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
    ++i;
    if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  return i == token.size();
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse_document() {
    skip_whitespace();
    auto value = parse_value();
    if (!value) return value;
    skip_whitespace();
    if (!at_end()) {
      return fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Error fail(std::string message) const {
    return make_error(ErrorCode::kParseError,
                      message + " at offset " + std::to_string(offset_));
  }

  bool at_end() const noexcept { return offset_ >= text_.size(); }
  char peek() const noexcept { return text_[offset_]; }
  char take() noexcept { return text_[offset_++]; }

  void skip_whitespace() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++offset_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(offset_, literal.size()) != literal) return false;
    offset_ += literal.size();
    return true;
  }

  Result<JsonValue> parse_value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};

    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (consume_literal("null")) return JsonValue();
        return fail("bad literal");
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        return fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        return fail("bad literal");
      case '"':
        return parse_string_value();
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  Result<std::string> parse_string() {
    if (at_end() || take() != '"') return fail("expected string");
    std::string out;
    for (;;) {
      if (at_end()) return fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("dangling escape");
      const char escape = take();
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (offset_ + 4 > text_.size()) return fail("short \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = take();
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code += static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code += static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code += static_cast<unsigned>(hex - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs rejected).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return fail("surrogate \\u escapes not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  Result<JsonValue> parse_string_value() {
    auto text = parse_string();
    if (!text) return text.error();
    return JsonValue(*std::move(text));
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = offset_;
    if (!at_end() && peek() == '-') ++offset_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++offset_;
    }
    const std::string_view token = text_.substr(start, offset_ - start);
    if (token.empty()) return fail("expected value");
    if (!is_rfc8259_number(token)) {
      return fail("bad number: " + std::string(token));
    }
    double value = 0;
    const std::string owned(token);  // strtod needs NUL termination
    char* end = nullptr;
    value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) return fail("bad number");
    return JsonValue(value);
  }

  Result<JsonValue> parse_array() {
    take();  // '['
    JsonArray out;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      take();
      return JsonValue(std::move(out));
    }
    for (;;) {
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      out.push_back(*std::move(value));
      skip_whitespace();
      if (at_end()) return fail("unterminated array");
      const char c = take();
      if (c == ']') return JsonValue(std::move(out));
      if (c != ',') return fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> parse_object() {
    take();  // '{'
    JsonObject out;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      take();
      return JsonValue(std::move(out));
    }
    for (;;) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return key.error();
      skip_whitespace();
      if (at_end() || take() != ':') return fail("expected ':'");
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      out[*std::move(key)] = *std::move(value);
      skip_whitespace();
      if (at_end()) return fail("unterminated object");
      const char c = take();
      if (c == '}') return JsonValue(std::move(out));
      if (c != ',') return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t offset_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace tft::util
