// Example: auditing TLS interception (§6) in a corporate-style deployment:
// an endpoint-protection product on most machines, a content filter that
// only MITMs blocked sites, and one piece of malware that copies subject
// fields into its forgeries. Demonstrates the two-phase CONNECT scan, the
// Issuer-CN clustering, and the key-reuse / invalid-masking checks.
#include <iostream>

#include "tft/core/study.hpp"
#include "tft/stats/table.hpp"
#include "tft/util/strings.hpp"
#include "tft/world/world.hpp"

using namespace tft;  // NOLINT — example brevity

int main() {
  world::WorldSpec spec;
  spec.countries = {
      {"US", 1500, 0, 4, 2, 0.10, 0.05},
      {"CA", 600, 0, 2, 2, 0.10, 0.05},
  };
  spec.scattered_google_hijack_nodes = 0;
  spec.clean_public_resolvers = 8;
  spec.adware.clear();
  spec.adware_install_boost = 1.0;
  spec.transcoders.clear();
  spec.monitors.clear();
  spec.tail_monitor_groups = 0;
  spec.blockpage_nodes = 0;
  spec.js_error_nodes = 0;
  spec.css_error_nodes = 0;

  using Kind = world::CertReplacerSpec::Kind;
  spec.cert_replacers = {
      // Endpoint protection: shared key per machine, but re-signs invalid
      // sites under a distinct untrusted issuer (the safer behaviour).
      {"AcmeGuard EPP", "AcmeGuard TLS Inspection CA", Kind::kAntiVirus, 140,
       /*reuse_key=*/true, /*untrusted_for_invalid=*/true, false, false,
       std::nullopt, false},
      // A dangerous one: makes originally-invalid certificates look valid.
      {"LaxShield AV", "LaxShield Personal Root", Kind::kAntiVirus, 60, true,
       /*untrusted_for_invalid=*/false, false, false, std::nullopt, false},
      // Content filter: intercepts only its block list, only valid sites.
      {"FilterCo", "FilterCo Root Authority", Kind::kContentFilter, 50, true,
       false, /*only_if_valid=*/true, /*only_blocked=*/true, std::nullopt, false},
  };
  spec.https.popular_sites_per_country = 10;
  spec.https.countries_with_rankings = 2;
  spec.https.universities = {"northeastern.edu", "stanford.edu"};

  auto world = world::build_world(spec, 1.0, 99);
  std::cout << "Audit population: " << world->luminati->node_count()
            << " machines, " << world->https_sites.size() << " target sites\n\n";

  core::HttpsProbeConfig probe_config;
  probe_config.target_nodes = 5000;
  core::CertReplacementProbe probe(*world, probe_config);
  probe.run();

  core::HttpsAnalysisConfig analysis;
  analysis.min_nodes_per_issuer = 3;
  const auto report = core::analyze_https(*world, probe.observations(), analysis);
  std::cout << core::render_https_report(report) << "\n";

  // Per-product security posture summary.
  std::cout << "Security posture of detected interceptors:\n";
  for (const auto& row : report.issuers) {
    std::cout << "  " << row.issuer_cn << ":\n";
    std::cout << "    key reuse across sites: "
              << (row.key_reuse_nodes > 0 ? "YES (weak)" : "no") << "\n";
    std::cout << "    masks invalid certificates: "
              << (row.masks_invalid_nodes > 0 ? "YES (dangerous)" : "no") << "\n";
  }

  // Cross-check with ground truth.
  std::size_t intercepted_truth = world->truth.count(
      [](const world::NodeTruth& t) { return !t.cert_replacer.empty(); });
  std::cout << "\nground truth: " << intercepted_truth
            << " machines run interception software; the audit flagged "
            << report.replaced_nodes << ".\n";
  return 0;
}
