#include "tft/util/hash.hpp"

#include <gtest/gtest.h>

namespace tft::util {
namespace {

TEST(HashTest, Fnv1a64KnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(fnv1a64("exit-node-1"), fnv1a64("exit-node-1"));
  EXPECT_NE(fnv1a64("exit-node-1"), fnv1a64("exit-node-2"));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashTest, StableIdFormat) {
  const std::string id = stable_id("node-42");
  EXPECT_EQ(id.size(), 16u);
  EXPECT_EQ(id, stable_id("node-42"));
  for (char c : id) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

}  // namespace
}  // namespace tft::util
