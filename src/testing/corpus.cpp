#include "tft/testing/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tft/dns/codec.hpp"
#include "tft/net/server/framing.hpp"
#include "tft/obs/trace_codec.hpp"
#include "tft/testing/fuzz.hpp"
#include "tft/testing/generators.hpp"
#include "tft/tls/codec.hpp"
#include "tft/util/rng.hpp"

namespace tft::testing {

using util::ErrorCode;
using util::make_error;
using util::Result;
using util::Rng;

std::vector<std::string> regression_inputs(std::string_view target) {
  std::vector<std::string> out;
  if (target == "http_response") {
    // Chunk size 0xfffffffffffffffe: `chunk_length + 2` wraps to 0, so the
    // truncation check passed and the trailing-CRLF substr threw
    // std::out_of_range (fixed in http/message.cpp; kept forever).
    out.push_back(
        "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        "fffffffffffffffe\r\nxx\r\n");
    // Largest representable chunk size: from_chars overflow path.
    out.push_back(
        "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        "ffffffffffffffff\r\n\r\n");
    // Chunk extension on the final chunk plus trailer garbage.
    out.push_back(
        "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        "0;name=value\r\nX-Trailer: 1\r\n\r\n");
    // Negative Content-Length and a declared length far past the body.
    out.push_back("HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\n");
    out.push_back("HTTP/1.1 200 OK\r\nContent-Length: 999999\r\n\r\nhi");
  } else if (target == "http_request") {
    out.push_back("GET / HTTP/1.1\r\nHost: a\r\nContent-Length: 18446744073709551615\r\n\r\n");
    out.push_back("CONNECT  HTTP/1.1\r\n\r\n");
    out.push_back("GET / HTTP/1.1\r\nBad Header : x\r\n\r\n");
  } else if (target == "dns_decode") {
    // Self-pointing compression pointer at the first question name.
    out.push_back(std::string("\x00\x01\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
                              "\xc0\x0c\x00\x01\x00\x01",
                              18));
    // Pointer into the header (valid offset, nonsense labels).
    out.push_back(std::string("\x00\x01\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
                              "\xc0\x00\x00\x01\x00\x01",
                              18));
    // Reserved label type 0x40.
    out.push_back(std::string("\x00\x01\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
                              "\x40\x61\x00\x00\x01\x00\x01",
                              19));
    // RDLENGTH far past the end of the message.
    out.push_back(std::string("\x00\x01\x81\x00\x00\x00\x00\x01\x00\x00\x00\x00"
                              "\x01\x61\x00\x00\x01\x00\x01\x00\x00\x00\x3c\xff\xff",
                              25));
  } else if (target == "tls_chain") {
    // Valid magic/version, count of 65535 (over kMaxChain).
    out.push_back(std::string("TFTC\x00\x01\xff\xff", 8));
    // Certificate body length u32 max with no body.
    out.push_back(std::string("TFTC\x00\x01\x00\x01\xff\xff\xff\xff", 12));
    // Bad magic.
    out.push_back("XXXX");
  } else if (target == "smtp_reply") {
    out.push_back("250-first\r\n251 second\r\n");  // inconsistent codes
    out.push_back("250-never-finishes\r\n");       // no final line
    out.push_back("99 too-short\r\n");
    out.push_back("600 out-of-range\r\n");
  } else if (target == "json_parse") {
    out.push_back("{\"a\":");                        // truncated object
    out.push_back("\"\\ud800\"");                    // lone surrogate escape
    out.push_back(std::string(200, '['));            // deep nesting
    out.push_back("{\"a\":1,}");                     // trailing comma
    out.push_back("1e309");                          // double overflow
    out.push_back("{\"k\":\"\\x\"}");                // unknown escape
  } else if (target == "stream_checkpoint") {
    // Unsupported version.
    out.push_back(R"({"format":"tft-stream-checkpoint","version":2,)"
                  R"("next_round":"0x0","streams":[]})");
    // Foreign format tag.
    out.push_back(R"({"format":"other","version":1,)"
                  R"("next_round":"0x0","streams":[]})");
    // next_round as a JSON number: doubles cannot carry uint64 exactly.
    out.push_back(R"({"format":"tft-stream-checkpoint","version":1,)"
                  R"("next_round":3,"streams":[]})");
    // Malformed and over-long hex literals.
    out.push_back(R"({"format":"tft-stream-checkpoint","version":1,)"
                  R"("next_round":"0xZZ","streams":[]})");
    out.push_back(R"({"format":"tft-stream-checkpoint","version":1,)"
                  R"("next_round":"0x10000000000000000","streams":[]})");
    // Stream entry missing its label.
    out.push_back(R"({"format":"tft-stream-checkpoint","version":1,)"
                  R"("next_round":"0x1","streams":[{"study_seed":"0x0",)"
                  R"("entity":"0x0","purpose":"0x0","counter":"0x0"}]})");
  } else if (target == "trace_codec") {
    // Foreign format tag and unsupported version.
    out.push_back(R"({"format":"other","version":1,"txn":"0x0","kind":"dns",)"
                  R"("zid":"","asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[]})");
    out.push_back(R"({"format":"tft-txn","version":2,"txn":"0x0","kind":"dns",)"
                  R"("zid":"","asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[]})");
    // txn as a JSON number: doubles cannot carry uint64 exactly.
    out.push_back(R"({"format":"tft-txn","version":1,"txn":3,"kind":"dns",)"
                  R"("zid":"","asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[]})");
    // Upper-case and over-long hex literals (canonical form is lower-case,
    // at most 16 digits).
    out.push_back(R"({"format":"tft-txn","version":1,"txn":"0xAB","kind":"dns",)"
                  R"("zid":"","asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[]})");
    out.push_back(R"({"format":"tft-txn","version":1,)"
                  R"("txn":"0x10000000000000000","kind":"dns","zid":"",)"
                  R"("asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[]})");
    // ASN outside uint32, and negative.
    out.push_back(R"({"format":"tft-txn","version":1,"txn":"0x1","kind":"dns",)"
                  R"("zid":"","asn":4294967296,"country":"","target":"",)"
                  R"("verdict":"","culprit":"","events":[]})");
    out.push_back(R"({"format":"tft-txn","version":1,"txn":"0x1","kind":"dns",)"
                  R"("zid":"","asn":-1,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[]})");
    // Unknown hop name, and an event missing its timestamp.
    out.push_back(R"({"format":"tft-txn","version":1,"txn":"0x1","kind":"dns",)"
                  R"("zid":"","asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[{"hop":"satellite","actor":"a",)"
                  R"("action":"b","detail":"c","t_us":"0x0"}]})");
    out.push_back(R"({"format":"tft-txn","version":1,"txn":"0x1","kind":"dns",)"
                  R"("zid":"","asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[{"hop":"client","actor":"a",)"
                  R"("action":"b","detail":"c"}]})");
    // A valid line followed by a truncated one: decode_trace must fail with
    // the second line's number, never accept the partial document.
    out.push_back(R"({"format":"tft-txn","version":1,"txn":"0x1","kind":"dns",)"
                  R"("zid":"","asn":0,"country":"","target":"","verdict":"",)"
                  R"("culprit":"","events":[]})"
                  "\n{\"format\":\"tft-txn\",");
  } else if (target == "proxy_framing") {
    // Hostname CONNECT targets: the engine tunnels to literal IPv4 only.
    out.push_back("CONNECT example.com:443 HTTP/1.1\r\n\r\n");
    // Origin-form GET (a proxy needs the absolute form).
    out.push_back("GET /page HTTP/1.1\r\nHost: a\r\n\r\n");
    // Ports outside [1, 65535].
    out.push_back("CONNECT 10.0.0.1:0 HTTP/1.1\r\n\r\n");
    out.push_back("CONNECT 10.0.0.1:65536 HTTP/1.1\r\n\r\n");
    out.push_back("CONNECT 10.0.0.1 HTTP/1.1\r\n\r\n");
    // Wrong credential scheme, and a username missing the static zone.
    out.push_back("GET http://a.example/ HTTP/1.1\r\n"
                  "Proxy-Authorization: Basic dXNlcjpwYXNz\r\n\r\n");
    out.push_back("GET http://a.example/ HTTP/1.1\r\n"
                  "Proxy-Authorization: Lum customer-tft-zone-rotating\r\n\r\n");
    // Session value swallowing later fields: everything after "-session-"
    // is the session id, dashes and all (the reason session is last).
    out.push_back("customer-tft-zone-static-session-dns-42-country-xx");
    // Attempts codec edge cases: missing zid, missing error, no colon.
    out.push_back(":ok");
    out.push_back("zid:");
    out.push_back("zid-no-colon");
    // Tunnel reply claiming a gigantic chain with no bodies behind it.
    out.push_back(std::string("TFTR\x00\x00\x03zid\xff\xff\xff\xff", 12) +
                  std::string("\xff\xff\xff\xff", 4));
    // Tunnel hello whose declared SNI length overruns the payload.
    out.push_back(std::string("TFTH\xff\xff", 6) + "short");
    // Bad magics.
    out.push_back("TFTX");
    out.push_back("");
    // Truncated framed tunnel hello, cut at every u32 length-prefix
    // boundary and then inside the payload — the exact strandings a peer
    // that dies mid-write leaves in the server's FrameReader. The chaos
    // client (src/net/client/chaos) replays these same cuts against live
    // servers; keeping them here pins the offline decoder too.
    {
      const std::string framed_hello = net::server::frame(
          net::server::encode_tunnel_hello({"chaos.tft-study.net"}));
      for (std::size_t cut = 1; cut <= 4 && cut < framed_hello.size(); ++cut) {
        out.push_back(framed_hello.substr(0, cut));
      }
      out.push_back(framed_hello.substr(0, 5));            // 1 byte of payload
      out.push_back(framed_hello.substr(0, framed_hello.size() - 1));
    }
  } else if (target == "json_stream") {
    // Byte programs for the JsonWriter stack machine (see fuzz.cpp):
    // byte 0 = flush threshold, byte 1 = root container, then (op, arg)
    // pairs. Threshold 0 flushes after every token — the maximal chunking.
    out.push_back("");
    out.push_back(std::string("\x00\x01", 2));  // empty object, flush-all
    out.push_back(std::string("\x00\x00", 2));  // empty array, flush-all
    // Deep nesting: begin_object ops (5 mod 8) until the depth cap bites.
    out.push_back(std::string("\x01\x01", 2) + std::string(32, '\x05'));
    // Close-early: an end op at depth 1 terminates the program body.
    out.push_back(std::string("\x07\x01\x07\x00", 4));
    // Escape-heavy keys and strings (args picking quoted/control entries).
    out.push_back(std::string("\x01\x01\x00\x03\x00\x04\x00\x02", 8));
    // Huge threshold (96) with a small document: nothing flushes until the
    // trailing flush(), so the sink gets one chunk.
    out.push_back(std::string("\x60\x00\x00\x01\x04\x00\x01\x7f", 8));
  }
  return out;
}

Result<std::vector<std::string>> generate_seed_inputs(std::string_view target,
                                                      std::uint64_t seed,
                                                      std::size_t count) {
  // The generator side of each fuzz target, matched by name so the corpus
  // and the shard harness can never drift apart.
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (target == "dns_decode") {
      out.push_back(dns::encode(random_dns_message(rng)));
    } else if (target == "http_request") {
      out.push_back(random_http_request(rng).serialize());
    } else if (target == "http_response") {
      const http::Response response = random_http_response(rng);
      out.push_back(rng.chance(0.5) ? response.serialize_chunked(1 + rng.index(300))
                                    : response.serialize());
    } else if (target == "tls_chain") {
      out.push_back(tls::encode_chain(random_tls_chain(rng)));
    } else if (target == "smtp_reply") {
      out.push_back(rng.chance(0.3) ? random_smtp_dialogue(rng).serialize()
                                    : random_smtp_reply(rng).serialize());
    } else if (target == "json_parse") {
      out.push_back(random_json_document(rng));
    } else if (target == "stream_checkpoint") {
      out.push_back(util::stream_checkpoint_json(random_stream_checkpoint(rng)));
    } else if (target == "trace_codec") {
      if (rng.chance(0.7)) {
        out.push_back(obs::encode_txn(random_txn_record(rng)));
      } else {
        std::vector<obs::TxnRecord> records;
        const std::size_t lines = rng.index(4);
        records.reserve(lines);
        for (std::size_t line = 0; line < lines; ++line) {
          records.push_back(random_txn_record(rng));
        }
        out.push_back(obs::encode_trace(records));
      }
    } else if (target == "proxy_framing") {
      // Mirrors the proxy_framing generate hook in fuzz.cpp: the six wire
      // shapes the socket front-end parses, in rotation.
      proxy::RequestOptions options;
      if (rng.chance(0.5)) {
        std::string country;
        country += static_cast<char>('a' + rng.index(26));
        country += static_cast<char>('a' + rng.index(26));
        options.country = country;
      }
      if (rng.chance(0.5)) {
        options.session =
            random_label(rng) + "-" + std::to_string(rng.index(100));
      }
      options.dns_remote = rng.chance(0.5);
      switch (i % 6) {
        case 0: {
          const auto url = http::Url::parse(
              "http://" + random_label(rng) + ".probe.tft-study.net/" +
              random_label(rng));
          out.push_back(net::server::build_proxy_get(*url, options));
          break;
        }
        case 1:
          out.push_back(net::server::build_connect(
              net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())),
              static_cast<std::uint16_t>(1 + rng.index(65535)), options));
          break;
        case 2:
          out.push_back(net::server::encode_tunnel_hello(
              {random_label(rng) + ".probe.tft-study.net"}));
          break;
        case 3: {
          net::server::TunnelReply reply;
          reply.status = proxy::ProxyStatus::kOk;
          reply.zid = random_label(rng);
          reply.exit_address =
              net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
          reply.exit_country = {static_cast<char>('a' + rng.index(26)),
                                static_cast<char>('a' + rng.index(26))};
          reply.chain = random_tls_chain(rng);
          out.push_back(net::server::encode_tunnel_reply(reply));
          break;
        }
        case 4:
          out.push_back(net::server::format_credentials(options));
          break;
        default: {
          std::vector<proxy::AttemptInfo> attempts;
          const std::size_t entries = rng.index(5);
          for (std::size_t entry = 0; entry < entries; ++entry) {
            proxy::AttemptInfo info;
            info.zid = random_label(rng);
            if (rng.chance(0.5)) info.error = random_label(rng);
            attempts.push_back(std::move(info));
          }
          out.push_back(net::server::encode_attempts(attempts));
          break;
        }
      }
    } else if (target == "json_stream") {
      // Canonical stack-machine programs, mirroring json_stream::generate:
      // random ops while the budget lasts, then explicit closes all the way
      // down, so every seed is accepted and mutation exercises rejection.
      std::string program;
      program.push_back(static_cast<char>(rng.index(256)));  // flush threshold
      const bool root_object = rng.chance(0.5);
      program.push_back(static_cast<char>(root_object ? 1 : 0));
      std::vector<bool> stack{root_object};
      const std::size_t budget = rng.index(48);
      std::size_t emitted = 0;
      while (!stack.empty()) {
        std::size_t op = emitted < budget ? rng.index(8) : 7;
        if (stack.size() >= 8 && (op == 5 || op == 6)) op = 0;  // depth cap
        program.push_back(static_cast<char>(op));
        program.push_back(static_cast<char>(rng.index(256)));  // arg
        if (op == 5 || op == 6) {
          stack.push_back(op == 5);
        } else if (op == 7) {
          stack.pop_back();
        }
        ++emitted;
      }
      out.push_back(std::move(program));
    } else {
      return make_error(ErrorCode::kNotFound,
                        "unknown fuzz target: " + std::string(target));
    }
  }
  return out;
}

Result<std::size_t> write_seed_corpus(std::string_view target,
                                      const std::string& directory,
                                      std::uint64_t seed, std::size_t count) {
  auto seeds = generate_seed_inputs(target, seed, count);
  if (!seeds.ok()) return seeds.error();

  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return make_error(ErrorCode::kInternal,
                      "cannot create corpus directory " + directory + ": " +
                          ec.message());
  }

  const auto write_file = [&](const std::string& name,
                              const std::string& contents) -> bool {
    std::ofstream file(directory + "/" + name, std::ios::binary);
    if (!file) return false;
    file.write(contents.data(),
               static_cast<std::streamsize>(contents.size()));
    return static_cast<bool>(file);
  };

  std::size_t written = 0;
  for (std::size_t i = 0; i < seeds->size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "seed-%03zu.bin", i);
    if (!write_file(name, (*seeds)[i])) {
      return make_error(ErrorCode::kInternal,
                        "cannot write corpus file in " + directory);
    }
    ++written;
  }
  const auto regressions = regression_inputs(target);
  for (std::size_t i = 0; i < regressions.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "crash-%03zu.bin", i);
    if (!write_file(name, regressions[i])) {
      return make_error(ErrorCode::kInternal,
                        "cannot write corpus file in " + directory);
    }
    ++written;
  }
  return written;
}

Result<std::vector<std::pair<std::string, std::string>>> load_corpus(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    return make_error(ErrorCode::kNotFound,
                      "cannot read corpus directory " + directory + ": " +
                          ec.message());
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    std::ifstream file(entry.path(), std::ios::binary);
    if (!file) {
      return make_error(ErrorCode::kInternal,
                        "cannot read corpus file " + entry.path().string());
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    out.emplace_back(entry.path().filename().string(), buffer.str());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::size_t> run_corpus(std::string_view target,
                               const std::string& directory) {
  if (find_fuzz_target(target) == nullptr) {
    return make_error(ErrorCode::kNotFound,
                      "unknown fuzz target: " + std::string(target));
  }
  auto inputs = load_corpus(directory);
  if (!inputs.ok()) return inputs.error();
  for (const auto& [name, contents] : *inputs) {
    (void)fuzz_one(target,
                   reinterpret_cast<const std::uint8_t*>(contents.data()),
                   contents.size());
  }
  return inputs->size();
}

}  // namespace tft::testing
