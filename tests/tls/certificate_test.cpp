#include "tft/tls/certificate.hpp"

#include <gtest/gtest.h>

namespace tft::tls {
namespace {

Certificate sample_leaf() {
  Certificate leaf;
  leaf.subject = {"www.example.com", "Example Inc", "US"};
  leaf.issuer = {"Test CA", "Test Trust", "US"};
  leaf.serial = 42;
  leaf.not_before = sim::Instant::epoch();
  leaf.not_after = sim::Instant::epoch() + sim::Duration::hours(24 * 365);
  leaf.subject_alt_names = {"www.example.com", "*.cdn.example.com"};
  leaf.public_key = 111;
  leaf.signed_by = 222;
  return leaf;
}

TEST(DistinguishedNameTest, ToString) {
  DistinguishedName dn{"Avast! Web/Mail Shield Root", "Avast", "CZ"};
  EXPECT_EQ(dn.to_string(), "CN=Avast! Web/Mail Shield Root, O=Avast, C=CZ");
  EXPECT_EQ((DistinguishedName{"OnlyCN", "", ""}).to_string(), "CN=OnlyCN");
}

TEST(CertificateTest, FingerprintStableAndSensitive) {
  const Certificate a = sample_leaf();
  Certificate b = sample_leaf();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.serial = 43;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = sample_leaf();
  b.public_key = 999;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = sample_leaf();
  b.subject_alt_names.push_back("extra.example.com");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(CertificateTest, ValidityWindow) {
  const Certificate leaf = sample_leaf();
  EXPECT_TRUE(leaf.valid_at(sim::Instant::epoch()));
  EXPECT_TRUE(leaf.valid_at(sim::Instant::epoch() + sim::Duration::hours(24)));
  EXPECT_FALSE(leaf.valid_at(sim::Instant::epoch() - sim::Duration::seconds(1)));
  EXPECT_FALSE(leaf.valid_at(sim::Instant::epoch() + sim::Duration::hours(24 * 366)));
}

TEST(CertificateTest, SelfSignedDetection) {
  Certificate leaf = sample_leaf();
  EXPECT_FALSE(leaf.self_signed());
  leaf.issuer = leaf.subject;
  leaf.signed_by = leaf.public_key;
  EXPECT_TRUE(leaf.self_signed());
}

TEST(WildcardTest, Matching) {
  EXPECT_TRUE(wildcard_matches("example.com", "EXAMPLE.com"));
  EXPECT_TRUE(wildcard_matches("*.example.com", "www.example.com"));
  EXPECT_TRUE(wildcard_matches("*.example.com", "a.EXAMPLE.COM"));
  EXPECT_FALSE(wildcard_matches("*.example.com", "example.com"));
  EXPECT_FALSE(wildcard_matches("*.example.com", "a.b.example.com"));
  EXPECT_FALSE(wildcard_matches("*.example.com", ".example.com"));
  EXPECT_FALSE(wildcard_matches("example.com", "www.example.com"));
}

TEST(CertificateTest, HostMatchingPrefersSans) {
  Certificate leaf = sample_leaf();
  EXPECT_TRUE(leaf.matches_host("www.example.com"));
  EXPECT_TRUE(leaf.matches_host("img.cdn.example.com"));
  EXPECT_FALSE(leaf.matches_host("other.example.com"));
  // When SANs exist, the CN is ignored (RFC 6125).
  leaf.subject.common_name = "cnonly.example.com";
  EXPECT_FALSE(leaf.matches_host("cnonly.example.com"));
  // Without SANs, fall back to CN.
  leaf.subject_alt_names.clear();
  EXPECT_TRUE(leaf.matches_host("cnonly.example.com"));
}

}  // namespace
}  // namespace tft::tls
