#include "tft/stats/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <limits>
#include <numeric>

namespace tft::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

void EmpiricalCdf::add(double sample) {
  samples_.insert(std::upper_bound(samples_.begin(), samples_.end(), sample),
                  sample);
}

void EmpiricalCdf::merge_from(const EmpiricalCdf& other) {
  if (other.samples_.empty()) return;
  std::vector<double> merged;
  merged.reserve(samples_.size() + other.samples_.size());
  std::merge(samples_.begin(), samples_.end(), other.samples_.begin(),
             other.samples_.end(), std::back_inserter(merged));
  samples_ = std::move(merged);
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto upper = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(upper - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::percentile(double p) const {
  if (samples_.empty()) return kNaN;
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(rank));
  const auto upper = std::min(lower + 1, samples_.size() - 1);
  const double weight = rank - static_cast<double>(lower);
  return samples_[lower] * (1.0 - weight) + samples_[upper] * weight;
}

double EmpiricalCdf::min() const {
  return samples_.empty() ? kNaN : samples_.front();
}

double EmpiricalCdf::max() const {
  return samples_.empty() ? kNaN : samples_.back();
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) return kNaN;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::log_spaced_curve(
    double lo, double hi, int points) const {
  assert(lo > 0 && hi > lo && points >= 2);
  std::vector<std::pair<double, double>> curve;
  curve.reserve(static_cast<std::size_t>(points));
  const double log_lo = std::log10(lo);
  const double log_hi = std::log10(hi);
  for (int i = 0; i < points; ++i) {
    const double x =
        std::pow(10.0, log_lo + (log_hi - log_lo) * i / (points - 1));
    curve.emplace_back(x, at(x));
  }
  return curve;
}

std::string EmpiricalCdf::ascii_curve(double lo, double hi, int width) const {
  static constexpr std::string_view kLevels = " .:-=+*#%@";
  std::string out;
  for (const auto& [x, y] : log_spaced_curve(lo, hi, width)) {
    const auto level = static_cast<std::size_t>(y * (kLevels.size() - 1) + 0.5);
    out.push_back(kLevels[std::min(level, kLevels.size() - 1)]);
  }
  return out;
}

}  // namespace tft::stats
