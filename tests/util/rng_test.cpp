#include "tft/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tft::util {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(42);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double ratio = static_cast<double>(hits) / trials;
  EXPECT_NEAR(ratio, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double total = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) total += rng.exponential(5.0);
  EXPECT_NEAR(total / trials, 5.0, 0.1);
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(12.0, 120.0);
    EXPECT_GE(v, 12.0);
    EXPECT_LE(v, 120.0 * (1 + 1e-9));
  }
}

TEST(RngTest, WeightedIndexFavorsHeavyWeight) {
  Rng rng(31);
  const std::vector<double> weights{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace tft::util
