#include "tft/tls/endpoint.hpp"

#include "tft/util/strings.hpp"

namespace tft::tls {

void TlsServer::add_site(std::string_view host, CertificateChain chain) {
  sites_[util::to_lower(host)] = std::move(chain);
}

const CertificateChain* TlsServer::chain_for(std::string_view sni) const {
  if (!sni.empty()) {
    if (const auto it = sites_.find(util::to_lower(sni)); it != sites_.end()) {
      return &it->second;
    }
  }
  if (!default_chain_.empty()) return &default_chain_;
  if (sites_.size() == 1) return &sites_.begin()->second;
  return nullptr;
}

void TlsEndpointRegistry::add(net::Ipv4Address address, std::shared_ptr<TlsServer> server) {
  servers_[address.value()] = std::move(server);
}

TlsServer* TlsEndpointRegistry::find(net::Ipv4Address address) const {
  const auto it = servers_.find(address.value());
  return it == servers_.end() ? nullptr : it->second.get();
}

const CertificateChain* TlsEndpointRegistry::handshake(net::Ipv4Address destination,
                                                       std::string_view sni) const {
  TlsServer* server = find(destination);
  if (server == nullptr) return nullptr;
  return server->chain_for(sni);
}

}  // namespace tft::tls
