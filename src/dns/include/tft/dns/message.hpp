// DNS message model (RFC 1035 §4). The wire codec lives in codec.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tft/dns/name.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/util/result.hpp"

namespace tft::dns {

enum class RecordType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
};

enum class RecordClass : std::uint16_t {
  kIn = 1,
};

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

enum class Opcode : std::uint8_t {
  kQuery = 0,
};

std::string_view to_string(RecordType type) noexcept;
std::string_view to_string(Rcode rcode) noexcept;

/// A question section entry.
struct Question {
  DnsName name;
  RecordType type = RecordType::kA;
  RecordClass klass = RecordClass::kIn;
};

/// A resource record. `rdata` is the raw RDATA; helpers below interpret it
/// for A/CNAME/TXT records.
struct ResourceRecord {
  DnsName name;
  RecordType type = RecordType::kA;
  RecordClass klass = RecordClass::kIn;
  std::uint32_t ttl = 300;
  std::string rdata;

  static ResourceRecord a(DnsName name, net::Ipv4Address address,
                          std::uint32_t ttl = 300);
  static ResourceRecord cname(DnsName name, const DnsName& target,
                              std::uint32_t ttl = 300);
  static ResourceRecord txt(DnsName name, std::string_view text,
                            std::uint32_t ttl = 300);

  /// Interpret RDATA as an IPv4 address (A records).
  util::Result<net::Ipv4Address> a_address() const;
  /// Interpret RDATA as a domain name (CNAME/NS/PTR; uncompressed form).
  util::Result<DnsName> name_target() const;
  /// Interpret RDATA as TXT character-strings, concatenated.
  util::Result<std::string> txt_text() const;
};

/// Header flag bits we model.
struct HeaderFlags {
  bool response = false;             // QR
  Opcode opcode = Opcode::kQuery;    // OPCODE
  bool authoritative = false;        // AA
  bool truncated = false;            // TC
  bool recursion_desired = true;     // RD
  bool recursion_available = false;  // RA
  Rcode rcode = Rcode::kNoError;
};

/// A complete DNS message.
struct Message {
  std::uint16_t id = 0;
  HeaderFlags flags;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// Build a recursive query for (name, type).
  static Message query(std::uint16_t id, DnsName name,
                       RecordType type = RecordType::kA);

  /// Build a response skeleton mirroring a query's id and question.
  static Message response_to(const Message& query, Rcode rcode);

  /// First A-record address in the answer section, if any (follows the
  /// answer order; CNAME chains must already be expanded in-message).
  std::optional<net::Ipv4Address> first_a() const;

  bool is_nxdomain() const { return flags.rcode == Rcode::kNxDomain; }
};

}  // namespace tft::dns
