#include "tft/util/flags.hpp"

#include <gtest/gtest.h>

namespace tft::util {
namespace {

Flags parse(std::vector<const char*> argv,
            const std::vector<std::string>& booleans = {}) {
  argv.insert(argv.begin(), "prog");
  auto flags = Flags::parse(static_cast<int>(argv.size()), argv.data(), booleans);
  EXPECT_TRUE(flags.ok());
  return *std::move(flags);
}

TEST(FlagsTest, EqualsForm) {
  const auto flags = parse({"--scale=0.5", "--seed=42"});
  EXPECT_EQ(flags.get("scale"), "0.5");
  EXPECT_EQ(*flags.get_double("scale", 0), 0.5);
  EXPECT_EQ(*flags.get_int("seed", 0), 42);
}

TEST(FlagsTest, SpaceForm) {
  const auto flags = parse({"--out", "report.txt", "--scale", "0.1"});
  EXPECT_EQ(flags.get("out"), "report.txt");
  EXPECT_EQ(*flags.get_double("scale", 0), 0.1);
}

TEST(FlagsTest, BooleanFlags) {
  const auto flags = parse({"--verbose", "--json", "positional"},
                           {"verbose", "json"});
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_TRUE(flags.get_bool("json"));
  EXPECT_FALSE(flags.get_bool("quiet"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, UndeclaredBooleanSwallowsNextToken) {
  // Without declaring "verbose" boolean, the following token is its value.
  const auto flags = parse({"--verbose", "positional"});
  EXPECT_EQ(flags.get("verbose"), "positional");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagsTest, BoolFalseSpellings) {
  const auto flags = parse({"--a=false", "--b=0", "--c=no", "--d=yes"});
  EXPECT_FALSE(flags.get_bool("a", true));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_FALSE(flags.get_bool("c", true));
  EXPECT_TRUE(flags.get_bool("d"));
}

TEST(FlagsTest, DoubleDashEndsFlags) {
  const auto flags = parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_EQ(flags.get("a"), "1");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, Fallbacks) {
  const auto flags = parse({});
  EXPECT_EQ(flags.get_or("missing", "default"), "default");
  EXPECT_EQ(*flags.get_double("missing", 3.5), 3.5);
  EXPECT_EQ(*flags.get_int("missing", 7), 7);
  EXPECT_FALSE(flags.get("missing").has_value());
  EXPECT_FALSE(flags.has("missing"));
}

TEST(FlagsTest, TypeErrors) {
  const auto flags = parse({"--scale=abc", "--seed=1.5"});
  EXPECT_FALSE(flags.get_double("scale", 0).ok());
  EXPECT_FALSE(flags.get_int("seed", 0).ok());
}

TEST(FlagsTest, UnknownDetection) {
  const auto flags = parse({"--scale=1", "--tyop=3"});
  const auto unknown = flags.unknown({"scale", "seed"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tyop");
}

TEST(FlagsTest, EmptyFlagNameRejected) {
  const char* argv[] = {"prog", "--=x"};
  EXPECT_FALSE(Flags::parse(2, argv).ok());
}

TEST(FlagsTest, ProgramName) {
  const auto flags = parse({});
  EXPECT_EQ(flags.program(), "prog");
}

}  // namespace
}  // namespace tft::util
