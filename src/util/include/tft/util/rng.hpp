// Deterministic random number generation. All simulation randomness flows
// through Rng (a stateful sequential stream) or StreamRng (a keyed
// counter-based stream, see stream_rng.hpp) so that experiments are
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <cassert>
#include <cmath>
#include <vector>

namespace tft::util {

/// Distribution helpers shared by every RNG engine in the repo. A CRTP
/// mixin rather than a virtual interface so the helpers inline against the
/// concrete `next_u64()` and stay bit-identical across engines: the same
/// 64-bit draws always map to the same uniform/chance/weighted values
/// whether they come from `Rng` or `StreamRng`.
template <class Derived>
class RngDistributions {
 public:
  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = draw();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(draw());  // full range
    return lo + static_cast<std::int64_t>(uniform(span));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(draw() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  /// p <= 0 and p >= 1 short-circuit without consuming a draw.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform_double() < p;
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    assert(mean > 0);
    double u = uniform_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Log-uniform: uniform in log-space over [lo, hi], lo > 0.
  double log_uniform(double lo, double hi) {
    assert(lo > 0 && hi >= lo);
    const double llo = std::log(lo), lhi = std::log(hi);
    return std::exp(uniform_double(llo, lhi));
  }

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    assert(size > 0);
    return static_cast<std::size_t>(uniform(size));
  }

  /// Pick an index proportionally to the weights. NaN and negative entries
  /// count as zero weight; if every weight is zero (or the vector sums to
  /// zero) the pick degrades to uniform over all indices so callers never
  /// see an out-of-range index.
  std::size_t weighted_index(const std::vector<double>& weights) {
    assert(!weights.empty());
    const auto sanitized = [](double w) {
      // w == w filters NaN (NaN compares unequal to itself).
      return (w == w && w > 0.0) ? w : 0.0;
    };
    double total = 0;
    for (double w : weights) total += sanitized(w);
    if (total <= 0.0) return index(weights.size());
    double target = uniform_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= sanitized(weights[i]);
      if (target < 0) return i;
    }
    return weights.size() - 1;
  }

 private:
  std::uint64_t draw() { return static_cast<Derived*>(this)->next_u64(); }
};

/// xoshiro256** seeded via splitmix64. Deterministic across platforms,
/// unlike std::mt19937 + std::uniform_int_distribution whose outputs are
/// implementation-defined. Sequential: each draw advances hidden state, so
/// two call sites sharing one Rng perturb each other's samples. Use
/// StreamRng where draw sites must stay independent.
class Rng : public RngDistributions<Rng> {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Fork a new independent stream (useful for per-entity determinism).
  Rng fork();

 private:
  std::uint64_t state_[4] = {};
};

/// One splitmix64 step; exposed for stable hashing/id derivation.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace tft::util
