#include "tft/dns/name.hpp"

#include <gtest/gtest.h>

namespace tft::dns {
namespace {

TEST(DnsNameTest, ParseBasics) {
  const auto name = DnsName::parse("www.Example.COM");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->to_string(), "www.Example.COM");
  EXPECT_EQ(name->canonical(), "www.example.com");
}

TEST(DnsNameTest, TrailingDotAccepted) {
  const auto a = DnsName::parse("example.com.");
  const auto b = DnsName::parse("example.com");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->equals(*b));
}

TEST(DnsNameTest, RootName) {
  const auto root = DnsName::parse("");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), "");
  const auto dot = DnsName::parse(".");
  ASSERT_TRUE(dot.ok());
  EXPECT_TRUE(dot->is_root());
}

TEST(DnsNameTest, CaseInsensitiveEquality) {
  EXPECT_TRUE(DnsName::parse("A.B.C")->equals(*DnsName::parse("a.b.c")));
  EXPECT_FALSE(DnsName::parse("a.b.c")->equals(*DnsName::parse("a.b")));
}

TEST(DnsNameTest, IsWithin) {
  const auto child = *DnsName::parse("a.b.example.com");
  EXPECT_TRUE(child.is_within(*DnsName::parse("example.com")));
  EXPECT_TRUE(child.is_within(*DnsName::parse("b.EXAMPLE.com")));
  EXPECT_TRUE(child.is_within(child));
  EXPECT_TRUE(child.is_within(DnsName{}));  // everything is within the root
  EXPECT_FALSE(child.is_within(*DnsName::parse("other.com")));
  EXPECT_FALSE(DnsName::parse("example.com")->is_within(child));
  // Label boundary: "badexample.com" is NOT within "example.com".
  EXPECT_FALSE(DnsName::parse("badexample.com")->is_within(*DnsName::parse("example.com")));
}

TEST(DnsNameTest, PrependAndParent) {
  const auto base = *DnsName::parse("example.com");
  const auto www = base.prepend("www");
  ASSERT_TRUE(www.ok());
  EXPECT_EQ(www->to_string(), "www.example.com");
  EXPECT_EQ(www->parent().to_string(), "example.com");
  EXPECT_TRUE(DnsName{}.parent().is_root());
  EXPECT_TRUE(DnsName::parse("com")->parent().is_root());
}

TEST(DnsNameTest, RejectsLongLabel) {
  const std::string long_label(64, 'a');
  EXPECT_FALSE(DnsName::parse(long_label + ".com").ok());
  EXPECT_TRUE(DnsName::parse(std::string(63, 'a') + ".com").ok());
}

TEST(DnsNameTest, RejectsLongName) {
  std::string name;
  for (int i = 0; i < 50; ++i) name += "abcdef.";
  name += "com";  // 7*50 + 3 = 353 > 253
  EXPECT_FALSE(DnsName::parse(name).ok());
}

TEST(DnsNameTest, RejectsEmptyLabelAndBadChars) {
  EXPECT_FALSE(DnsName::parse("a..b").ok());
  EXPECT_FALSE(DnsName::parse(".a.b").ok());
  EXPECT_FALSE(DnsName::parse("a b.com").ok());
  EXPECT_FALSE(DnsName::parse("a$.com").ok());
  EXPECT_TRUE(DnsName::parse("_dmarc.example.com").ok());
  EXPECT_TRUE(DnsName::parse("xn--nxasmq6b.com").ok());
}

TEST(DnsNameTest, FromLabelsValidates) {
  EXPECT_TRUE(DnsName::from_labels({"www", "example", "com"}).ok());
  EXPECT_FALSE(DnsName::from_labels({"", "com"}).ok());
  EXPECT_FALSE(DnsName::from_labels({std::string(64, 'x')}).ok());
}

}  // namespace
}  // namespace tft::dns
