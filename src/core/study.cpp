#include "tft/core/study.hpp"

#include <algorithm>
#include <future>
#include <set>

#include "tft/stats/table.hpp"
#include "tft/util/strings.hpp"
#include "tft/util/thread_pool.hpp"

namespace tft::core {

using util::format_count;
using util::format_double;
using util::format_percent;

StudyConfig StudyConfig::for_scale(double scale, std::size_t target_nodes) {
  StudyConfig config;
  config.dns.target_nodes = target_nodes;
  config.https.target_nodes = target_nodes;
  config.monitoring.target_nodes = target_nodes;
  config.http.max_nodes = target_nodes;

  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(3, static_cast<std::size_t>(n * scale));
  };
  config.dns_analysis.min_nodes_per_country = scaled(100);
  config.dns_analysis.min_nodes_per_server =
      std::max<std::size_t>(4, static_cast<std::size_t>(10 * scale));
  config.dns_analysis.min_nodes_per_url = std::max<std::size_t>(
      2, static_cast<std::size_t>(5 * scale));
  // The host-software heuristic keys on AS spread; scaled samples see
  // proportionally fewer ASes per product.
  config.dns_analysis.host_software_as_threshold =
      scale < 0.5 ? 3 : DnsAnalysisConfig{}.host_software_as_threshold;
  config.http_analysis.min_nodes_per_as =
      std::max<std::size_t>(3, static_cast<std::size_t>(10 * scale));
  config.https_analysis.min_nodes_per_issuer = std::max<std::size_t>(
      2, static_cast<std::size_t>(5 * scale));
  return config;
}

namespace {

/// Copy the study-level jobs knob into every probe config.
StudyConfig with_jobs(const StudyConfig& config) {
  StudyConfig effective = config;
  if (effective.jobs == 0) effective.jobs = util::ThreadPool::default_workers();
  effective.dns.jobs = effective.jobs;
  effective.http.jobs = effective.jobs;
  effective.https.jobs = effective.jobs;
  effective.monitoring.jobs = effective.jobs;
  return effective;
}

void run_dns_experiment(world::World& world, const StudyConfig& config,
                        DnsReport& report, ExperimentCoverage& coverage) {
  obs::ScopedSpan span(world.metrics, "dns", world.clock);
  DnsHijackProbe probe(world, config.dns);
  probe.run();
  report = analyze_dns(world, probe.observations(), config.dns_analysis);
  std::set<net::Asn> ases;
  std::set<net::CountryCode> countries;
  for (const auto& observation : probe.observations()) {
    ases.insert(observation.asn);
    countries.insert(observation.country);
  }
  coverage =
      ExperimentCoverage{"DNS (S4)", probe.observations().size(), ases.size(),
                         countries.size(), probe.sessions_issued()};
}

void run_http_experiment(world::World& world, const StudyConfig& config,
                         HttpReport& report, ExperimentCoverage& coverage) {
  obs::ScopedSpan span(world.metrics, "http", world.clock);
  HttpModificationProbe probe(world, config.http);
  probe.run();
  report = analyze_http(world, probe.observations(), config.http_analysis);
  coverage = ExperimentCoverage{"HTTP (S5)", report.total_nodes,
                                report.unique_ases, report.unique_countries,
                                probe.sessions_issued()};
}

void run_https_experiment(world::World& world, const StudyConfig& config,
                          HttpsReport& report, ExperimentCoverage& coverage) {
  obs::ScopedSpan span(world.metrics, "https", world.clock);
  CertReplacementProbe probe(world, config.https);
  probe.run();
  report = analyze_https(world, probe.observations(), config.https_analysis);
  coverage = ExperimentCoverage{"HTTPS (S6)", report.total_nodes,
                                report.unique_ases, report.unique_countries,
                                probe.sessions_issued()};
}

void run_monitoring_experiment(world::World& world, const StudyConfig& config,
                               MonitorReport& report,
                               ExperimentCoverage& coverage) {
  obs::ScopedSpan span(world.metrics, "monitoring", world.clock);
  ContentMonitorProbe probe(world, config.monitoring);
  probe.run();
  report =
      analyze_monitoring(world, probe.observations(), config.monitoring_analysis);
  coverage = ExperimentCoverage{"Monitoring (S7)", report.total_nodes,
                                report.unique_ases, report.unique_countries,
                                probe.sessions_issued()};
}

}  // namespace

void record_pool_telemetry(obs::Registry& metrics,
                           const util::PoolTelemetrySnapshot& before,
                           const util::PoolTelemetrySnapshot& after) {
  // Shard geometry depends only on input sizes, never on scheduling, so the
  // batch/task deltas are safe in the deterministic counter section.
  metrics.add("pool.shard_batches", after.shard_batches - before.shard_batches);
  metrics.add("pool.shard_tasks", after.shard_tasks - before.shard_tasks);
  // Everything scheduling- or wall-clock-dependent goes to timing only.
  metrics.add_timing("pool.tasks", static_cast<std::int64_t>(
                                       after.pool_tasks - before.pool_tasks));
  metrics.add_timing("pool.busy_micros",
                     static_cast<std::int64_t>(after.busy_micros -
                                               before.busy_micros));
  // High-water is a process-lifetime maximum; report the level, not a delta.
  metrics.max_timing("pool.queue_high_water",
                     static_cast<std::int64_t>(after.queue_high_water));
}

StudyResult run_study(world::World& world, const StudyConfig& config) {
  const StudyConfig effective = with_jobs(config);
  const auto pool_before = util::pool_telemetry_snapshot();
  StudyResult result;
  result.coverage.resize(4);
  world.metrics.begin_span("study", world.clock.now());
  run_dns_experiment(world, effective, result.dns, result.coverage[0]);
  run_http_experiment(world, effective, result.http, result.coverage[1]);
  run_https_experiment(world, effective, result.https, result.coverage[2]);
  run_monitoring_experiment(world, effective, result.monitoring,
                            result.coverage[3]);
  world.metrics.end_span(world.clock.now());
  result.metrics = world.metrics;
  result.trace = world.recorder;
  record_pool_telemetry(result.metrics, pool_before,
                        util::pool_telemetry_snapshot());
  return result;
}

StudyResult run_study(const world::WorldSpec& spec, double scale,
                      std::uint64_t seed, const StudyConfig& config) {
  const StudyConfig effective = with_jobs(config);
  const auto pool_before = util::pool_telemetry_snapshot();
  StudyResult result;
  result.coverage.resize(4);
  obs::Registry experiment_metrics[4];
  obs::Recorder experiment_traces[4];

  // Each experiment task builds its own world from the identical
  // (spec, scale, seed) triple — world building is deterministic, the tasks
  // share no mutable state, and each writes a fixed result slot (including
  // its metrics registry, captured before the world dies), so the assembled
  // study does not depend on how many tasks run concurrently. Under
  // shard_mem the worlds are lazy: nodes materialize on demand behind the
  // super proxy's shard cache, and because NodePlan regenerates node k
  // byte-identically in any order, the reports match the materialized build.
  const auto make_world = [&] {
    if (effective.shard_mem) {
      return world::build_world_lazy(
          spec, scale, seed,
          effective.shards == 0 ? std::size_t{16} : effective.shards);
    }
    return world::build_world(spec, scale, seed);
  };
  const auto dns_task = [&] {
    auto world = make_world();
    run_dns_experiment(*world, effective, result.dns, result.coverage[0]);
    experiment_metrics[0] = world->metrics;
    experiment_traces[0] = world->recorder;
  };
  const auto http_task = [&] {
    auto world = make_world();
    run_http_experiment(*world, effective, result.http, result.coverage[1]);
    experiment_metrics[1] = world->metrics;
    experiment_traces[1] = world->recorder;
  };
  const auto https_task = [&] {
    auto world = make_world();
    run_https_experiment(*world, effective, result.https, result.coverage[2]);
    experiment_metrics[2] = world->metrics;
    experiment_traces[2] = world->recorder;
  };
  const auto monitoring_task = [&] {
    auto world = make_world();
    run_monitoring_experiment(*world, effective, result.monitoring,
                              result.coverage[3]);
    experiment_metrics[3] = world->metrics;
    experiment_traces[3] = world->recorder;
  };

  if (effective.jobs <= 1) {
    dns_task();
    http_task();
    https_task();
    monitoring_task();
  } else {
    util::ThreadPool pool(effective.jobs);
    std::future<void> tasks[] = {
        pool.submit(dns_task),
        pool.submit(http_task),
        pool.submit(https_task),
        pool.submit(monitoring_task),
    };
    for (auto& task : tasks) task.get();
  }

  // Merge in fixed experiment order; each world had its own clock, so span
  // sim-times are experiment-relative. The synthetic "study" root adopts the
  // experiment roots and spans the longest experiment's sim timeline.
  result.metrics.begin_span("study", sim::Instant{0});
  for (const auto& slot : experiment_metrics) result.metrics.merge_from(slot);
  for (const auto& slot : experiment_traces) result.trace.merge_from(slot);
  std::int64_t sim_end = 0;
  for (const auto& span : result.metrics.spans()) {
    sim_end = std::max(sim_end, span.sim_end_us);
  }
  result.metrics.end_span(sim::Instant{sim_end});
  record_pool_telemetry(result.metrics, pool_before,
                        util::pool_telemetry_snapshot());
  return result;
}

std::string render_dns_report(const DnsReport& report) {
  std::string out = stats::banner("DNS NXDOMAIN hijacking (S4)");
  out += "nodes measured:     " + format_count(report.total_nodes) + "\n";
  out += "filtered (Google-instance overlap): " + format_count(report.filtered_nodes) +
         "\n";
  out += "hijacked:           " + format_count(report.hijacked_nodes) + " (" +
         format_percent(report.hijack_ratio()) + ")   [paper: 4.8%]\n";
  out += "unique DNS servers: " + format_count(report.unique_dns_servers) + "\n";
  out += "countries / ASes:   " + format_count(report.unique_countries) + " / " +
         format_count(report.unique_ases) + "\n";
  out += "attribution: ISP resolvers " + format_percent(report.attributed_isp) +
         ", public resolvers " + format_percent(report.attributed_public) +
         ", path/software " + format_percent(report.attributed_other) +
         "   [paper: 89.6% / 7.7% / 2.7%]\n";
  if (report.sampled_ases > 0) {
    out += "spread: " + format_count(report.clean_ases) + " of " +
           format_count(report.sampled_ases) + " sampled ASes (" +
           format_percent(static_cast<double>(report.clean_ases) /
                          report.sampled_ases) +
           ") have no hijacking [paper: 40%]; " +
           format_count(report.heavily_hijacked_ases) +
           " ASes have >1/3 hijacked [paper: 20]; " +
           format_count(report.clean_countries) + " of " +
           format_count(report.sampled_countries) +
           " countries clean [paper: 10%]\n";
  }
  out += "\n";

  stats::Table table3({"Rank", "Country", "Hijacked", "Total", "Ratio"});
  for (std::size_t i = 0; i < report.top_countries.size() && i < 10; ++i) {
    const auto& row = report.top_countries[i];
    table3.add_row({std::to_string(i + 1), row.country, format_count(row.hijacked),
                    format_count(row.total), format_percent(row.ratio())});
  }
  out += "Table 3: top countries by hijacked-node ratio\n" + table3.render() + "\n";

  stats::Table table4({"Country", "ISP", "DNS Servers", "Exit Nodes"});
  for (const auto& row : report.isp_hijackers) {
    table4.add_row({row.country, row.isp, format_count(row.dns_servers),
                    format_count(row.nodes)});
  }
  out += "Table 4: ISP DNS servers hijacking >=90% of their nodes\n" +
         table4.render() + "\n";

  stats::Table public_table({"Operator", "Servers", "Exit Nodes"});
  for (const auto& row : report.public_hijackers) {
    public_table.add_row(
        {row.operator_name, format_count(row.servers), format_count(row.nodes)});
  }
  out += "Hijacking public resolvers (of " + format_count(report.public_server_total) +
         " public servers seen)\n" + public_table.render() + "\n";

  stats::Table table5({"URL host", "Exit Nodes", "ASes", "Likely source"});
  for (const auto& row : report.google_urls) {
    table5.add_row({row.host, format_count(row.nodes), format_count(row.ases),
                    row.likely_host_software ? "host software" : "ISP"});
  }
  out += "Table 5: landing hosts seen by Google-DNS users (" +
         format_count(report.google_hijacked_nodes) + " hijacked nodes)\n" +
         table5.render();

  if (!report.shared_vendor_clusters.empty()) {
    out += "\nHijack pages sharing identical code (URL-stripped) across ISPs\n";
    out += "(S4.3.1: evidence of a common vendor appliance):\n";
    for (const auto& cluster : report.shared_vendor_clusters) {
      out += "  " + format_count(cluster.nodes) + " nodes: " +
             util::join(cluster.isps, ", ") + "\n";
    }
  }
  return out;
}

std::string render_http_report(const HttpReport& report) {
  std::string out = stats::banner("HTTP content modification (S5)");
  const auto pct = [&](std::size_t n) {
    return report.total_nodes == 0
               ? std::string("0%")
               : format_percent(static_cast<double>(n) / report.total_nodes, 2);
  };
  out += "nodes measured:  " + format_count(report.total_nodes) + " across " +
         format_count(report.unique_ases) + " ASes, " +
         format_count(report.unique_countries) + " countries\n";
  out += "HTML modified:   " + format_count(report.html_modified) + " (" +
         pct(report.html_modified) + ")   [paper: 0.95%]  (+ " +
         format_count(report.html_blockpages) + " block pages filtered)\n";
  out += "images modified: " + format_count(report.image_modified) + " (" +
         pct(report.image_modified) + ")   [paper: 1.4%]\n";
  out += "JS modified:     " + format_count(report.js_modified) + " (" +
         pct(report.js_modified) + ", " + format_count(report.js_error_pages) +
         " error pages)   [paper: 0.09%, all error pages]\n";
  out += "CSS modified:    " + format_count(report.css_modified) + " (" +
         pct(report.css_modified) + ", " + format_count(report.css_error_pages) +
         " error pages)\n\n";

  stats::Table table6({"URL or Keyword", "Exit Nodes", "Countries", "ASes"});
  for (std::size_t i = 0; i < report.injections.size() && i < 10; ++i) {
    const auto& row = report.injections[i];
    table6.add_row({row.signature, format_count(row.nodes), format_count(row.countries),
                    format_count(row.ases)});
  }
  out += "Table 6: most common injected-JavaScript signatures\n" + table6.render() +
         "\n";

  if (!report.fully_modified_ases.empty()) {
    out += "ASes with HTML modified for every measured node (ISP-level filtering):\n";
    for (const auto& [asn, isp] : report.fully_modified_ases) {
      out += "  AS" + std::to_string(asn) + " (" + isp + ")\n";
    }
    out += "\n";
  }

  stats::Table table7({"AS", "ISP (Country)", "Mod.", "Total", "Ratio", "Cmp.", "Mobile"});
  for (const auto& row : report.transcoders) {
    std::string compression;
    if (row.ratios.size() == 1) {
      compression = format_percent(row.ratios.front(), 0);
    } else {
      compression = "M";
    }
    table7.add_row({"AS" + std::to_string(row.asn), row.isp + " (" + row.country + ")",
                    format_count(row.modified), format_count(row.total),
                    format_percent(row.ratio(), 0), compression,
                    row.mobile_isp ? "yes" : "no"});
  }
  out += "Table 7: exit nodes receiving compressed images, by AS\n" + table7.render();
  return out;
}

std::string render_https_report(const HttpsReport& report) {
  std::string out = stats::banner("SSL certificate replacement (S6)");
  out += "nodes measured:   " + format_count(report.total_nodes) + " across " +
         format_count(report.unique_ases) + " ASes, " +
         format_count(report.unique_countries) + " countries\n";
  out += "replaced certs:   " + format_count(report.replaced_nodes) + " nodes (" +
         format_percent(report.replaced_ratio(), 2) + ")   [paper: ~0.5%]\n";
  out += "selective nodes:  " + format_count(report.selective_nodes) +
         " (some but not all certificates replaced)\n";
  out += "unique issuers:   " + format_count(report.unique_issuers) +
         "   [paper: 320]\n";
  out += "ASes with >10% of nodes replaced: " +
         format_percent(report.concentrated_as_fraction) + "   [paper: 1.2%]\n\n";

  stats::Table table8({"Issuer Name", "Exit Nodes", "Type", "Key reuse", "Masks invalid"});
  for (const auto& row : report.issuers) {
    table8.add_row({row.issuer_cn, format_count(row.nodes), row.type,
                    format_count(row.key_reuse_nodes),
                    format_count(row.masks_invalid_nodes)});
  }
  out += "Table 8: issuers of replaced certificates (>=5 nodes)\n" + table8.render();
  return out;
}

std::string render_monitor_report(const MonitorReport& report) {
  std::string out = stats::banner("Content monitoring (S7)");
  out += "nodes measured:      " + format_count(report.total_nodes) + " across " +
         format_count(report.unique_ases) + " ASes, " +
         format_count(report.unique_countries) + " countries\n";
  out += "monitored nodes:     " + format_count(report.monitored_nodes) + " (" +
         format_percent(report.monitored_ratio(), 1) + ")   [paper: 1.5%]\n";
  out += "requester IPs:       " + format_count(report.unique_requester_ips) +
         " in " + format_count(report.requester_groups) +
         " org groups   [paper: 424 IPs, 54 groups]\n";
  out += "top-6 request share: " + format_percent(report.top_share) +
         "   [paper: 94.0%]\n\n";

  stats::Table table9({"Name", "IPs", "Exit nodes", "ASes", "Countries"});
  for (const auto& row : report.top_entities) {
    table9.add_row({row.entity, format_count(row.source_ips), format_count(row.nodes),
                    format_count(row.ases), format_count(row.countries)});
  }
  out += "Table 9: top monitoring entities\n" + table9.render() + "\n";

  out += "Figure 5: CDF of delay between node request and unexpected request\n";
  out += "          (log-x from 0.1s to 12,500s; '@'=1.0)\n";
  for (const auto& row : report.top_entities) {
    if (row.delay_cdf.empty()) continue;
    std::string name = row.entity;
    name.resize(14, ' ');
    out += "  " + name + " |" + row.delay_cdf.ascii_curve(0.1, 12500, 48) + "|";
    out += "  p50=" + format_double(row.delay_cdf.median(), 1) + "s";
    out += " p90=" + format_double(row.delay_cdf.percentile(90), 1) + "s\n";
  }
  return out;
}

std::string render_coverage(const std::vector<ExperimentCoverage>& coverage) {
  std::string out = stats::banner("Table 2: dataset overview");
  stats::Table table({"Experiment", "Exit Nodes", "ASes", "Countries", "Sessions"});
  for (const auto& row : coverage) {
    table.add_row({row.name, format_count(row.exit_nodes), format_count(row.ases),
                   format_count(row.countries), format_count(row.sessions)});
  }
  out += table.render();
  return out;
}

}  // namespace tft::core
