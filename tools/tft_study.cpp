// tft-study: command-line front end for the measurement pipeline.
//
//   tft-study [--experiment dns|http|https|monitor|smtp|all]
//             [--scale 0.05] [--seed 2016] [--target 100000]
//             [--mini] [--vpn-overlay] [--out report.txt] [--quiet]
//
// Builds the paper-scale world (or the small --mini scenario), runs the
// requested experiment(s), and writes the paper-style report to stdout or
// --out.
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <vector>

#include "tft/net/server/proxy_server.hpp"
#include "tft/net/server/socket_channel.hpp"

#include "tft/core/report_json.hpp"
#include "tft/core/smtp_probe.hpp"
#include "tft/core/study.hpp"
#include "tft/obs/build_info.hpp"
#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/obs/trace_codec.hpp"
#include "tft/util/file_io.hpp"
#include "tft/util/flags.hpp"
#include "tft/util/json.hpp"
#include "tft/util/thread_pool.hpp"
#include "tft/world/spec_io.hpp"
#include "tft/world/world.hpp"

namespace {

constexpr const char* kUsage = R"(tft-study: end-to-end violation measurement (Chung et al., IMC'16)

Flags:
  --experiment <dns|http|https|monitor|smtp|all>   what to run (default: all)
  --scale <f>        population scale vs. the paper's 750K nodes (default 0.05)
  --seed <n>         world + crawl seed (default 2016)
  --target <n>       max unique exit nodes per experiment (default: exhaustive)
  --jobs <n>         worker threads (default: one per hardware thread;
                     1 = fully sequential). Reports are byte-identical for
                     every value
  --mini             use the small test scenario instead of the paper world
  --spec <path>      load the scenario from a JSON file (see --dump-spec)
  --dump-spec        print the selected scenario as JSON and exit
  --vpn-overlay      allow arbitrary ports (required for --experiment smtp)
  --shared-world     run every experiment sequentially against one shared
                     world instance instead of per-experiment worlds. Keyed
                     counter-based RNG streams make the report byte-identical
                     either way (the composition-invariance contract)
  --shard-mem        memory-bounded worlds: exit nodes stay described by a
                     compact plan and materialize on demand behind an LRU
                     cache of at most ceil(nodes/shards) agents. Peak RSS is
                     O(shard), not O(world); the report, metrics (minus
                     timing and world.shard.*), and trace are byte-identical
                     to the materialized default
  --shards <n>       with --shard-mem: shard count (default 16; higher =
                     smaller resident cache)
  --materialize      escape hatch: force the fully materialized node table.
                     Appended after --shard-mem it wins, so wrappers that
                     default to sharded worlds can still be overridden
  --order <list>     comma-separated execution order for the selected
                     experiments (e.g. smtp,https,http,dns,monitor). Report
                     sections always render in canonical order, so the
                     output must not depend on this flag
  --json             emit machine-readable JSON instead of tables
  --out <path>       write the report to a file instead of stdout
  --metrics-out <path>  write the observability registry (counters, spans,
                     timings) as JSON. Everything outside the `timing`
                     section is byte-identical for every --jobs value
  --metrics-omit-timing  drop the wall-clock `timing` section from
                     --metrics-out so files can be compared byte-for-byte
  --trace-out <path>  write the flight recorder's per-transaction evidence
                     chains as NDJSON (one tft-txn line per transaction;
                     see tft-trace). Byte-identical for every --jobs value
  --trace-sample <n>  with --trace-out: keep every violation transaction
                     plus one in every n clean/discarded ones
  --trace-violations-only  with --trace-out: keep only transactions whose
                     verdict is a violation
  --stats            append a human-readable metrics summary to the report
  --connect          drive the measurement through the socket front-end: a
                     real epoll proxy server on 127.0.0.1 backed by the same
                     world, pumped cooperatively on the crawl thread. The
                     report is byte-identical to the in-process default
  --serve            build the world, expose the super proxy as a listening
                     HTTP proxy on 127.0.0.1, and serve until SIGINT/SIGTERM
                     or stdin EOF (try: curl -x http://127.0.0.1:<port>
                     http://m1.probe.tft-study.net/)
  --port <n>         with --serve: listen on a fixed port (default ephemeral)
  --version          print build provenance (git describe, build type,
                     sanitizer) and exit
  --quiet            suppress progress on stderr
  --help             this text
)";

int fail(const std::string& message) {
  std::cerr << "tft-study: " << message << "\n" << kUsage;
  return 2;
}

/// Actionable diagnosis for an unopenable output path: name the missing
/// parent directory instead of a bare "cannot open".
std::string describe_open_failure(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty() && !std::filesystem::exists(parent, ec)) {
    return "cannot write " + path + ": parent directory '" + parent.string() +
           "' does not exist (create it first, e.g. mkdir -p " +
           parent.string() + ")";
  }
  return "cannot open " + path + " for writing";
}

/// Failure text for an atomic output write: prefer the actionable
/// missing-parent diagnosis over the low-level temp-file error.
std::string describe_write_failure(const std::string& path,
                                   const tft::util::Error& error) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty() && !std::filesystem::exists(parent, ec)) {
    return describe_open_failure(path);
  }
  return error.to_string();
}

/// Peak resident set size (VmHWM) in kB. A wall-clock-class value: it
/// varies with --jobs and allocator behavior, so it lives in the metrics
/// `timing` section, never among the deterministic gauges. Returns 0 where
/// /proc is unavailable.
std::int64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atoll(line.c_str() + 6);
    }
  }
  return 0;
}

volatile std::sig_atomic_t g_stop_serving = 0;

extern "C" void handle_stop_signal(int) { g_stop_serving = 1; }

/// The loopback socket path for --connect: an epoll front-end bound to
/// 127.0.0.1 plus a SocketProxyChannel that pumps it cooperatively on the
/// crawl thread. The world's probes route through the channel; the SMTP
/// probe (no HTTP verb for it) keeps calling the engine directly.
struct LoopbackProxy {
  tft::world::World& world;
  tft::net::server::ProxyServer server;

  static tft::net::server::ProxyServerConfig loopback_config() {
    tft::net::server::ProxyServerConfig config;
    // Cooperatively pumped: wall-clock timeouts must never influence the
    // crawl, or slow CI would perturb the deterministic counters.
    config.read_timeout_ms = 0;
    return config;
  }

  explicit LoopbackProxy(tft::world::World& w)
      : world(w),
        server(*w.luminati, loopback_config(), &w.metrics, &w.recorder) {}

  tft::util::Result<void> start() {
    if (auto started = server.start(); !started.ok()) return started;
    world.proxy_channel =
        std::make_unique<tft::net::server::SocketProxyChannel>(server.port(),
                                                               &server);
    return {};
  }

  ~LoopbackProxy() {
    // Close the client side first so the server's teardown counters
    // (net.closed) land before the world's metrics are captured.
    world.proxy_channel.reset();
    server.shutdown();
  }
};

}  // namespace

int main(int argc, char** argv) {
  using tft::util::Flags;
  const auto parsed = Flags::parse(
      argc, argv,
      {"mini", "vpn-overlay", "quiet", "json", "dump-spec", "help", "stats",
       "version", "metrics-omit-timing", "shared-world",
       "trace-violations-only", "serve", "connect", "shard-mem",
       "materialize"});
  if (!parsed.ok()) return fail(parsed.error().to_string());
  const Flags& flags = *parsed;

  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  if (flags.get_bool("version")) {
    if (flags.get_bool("quiet")) {
      return fail("--quiet makes no sense with --version: the version line "
                  "is the only output");
    }
    std::cout << tft::obs::build_info_line() << "\n";
    return 0;
  }
  const auto unknown = flags.unknown(
      {"experiment", "scale", "seed", "target", "jobs", "mini", "vpn-overlay",
       "out", "quiet", "json", "spec", "dump-spec", "metrics-out",
       "metrics-omit-timing", "stats", "version", "shared-world", "order",
       "trace-out", "trace-sample", "trace-violations-only", "serve",
       "connect", "port", "shard-mem", "shards", "materialize"});
  if (!unknown.empty()) return fail("unknown flag --" + unknown.front());
  if (flags.get_bool("dump-spec") && flags.get_bool("quiet")) {
    return fail("--quiet makes no sense with --dump-spec: the spec dump is "
                "the only output");
  }

  // The mini scenario and user scenario files describe their own
  // populations; scale them 1:1 unless overridden. The paper world
  // defaults to a laptop-friendly 0.05.
  const double default_scale =
      (flags.get_bool("mini") || flags.has("spec")) ? 1.0 : 0.05;
  const auto scale = flags.get_double("scale", default_scale);
  if (!scale.ok()) return fail(scale.error().to_string());
  const auto seed = flags.get_int("seed", 2016);
  if (!seed.ok()) return fail(seed.error().to_string());
  const auto target = flags.get_int("target", 0);
  if (!target.ok()) return fail(target.error().to_string());
  const auto jobs_flag = flags.get_int("jobs", 0);
  if (!jobs_flag.ok()) return fail(jobs_flag.error().to_string());
  if (*jobs_flag < 0) return fail("--jobs must be >= 0");
  const std::size_t jobs = *jobs_flag == 0
                               ? tft::util::ThreadPool::default_workers()
                               : static_cast<std::size_t>(*jobs_flag);
  const std::string experiment = flags.get_or("experiment", "all");
  const bool quiet = flags.get_bool("quiet");
  const bool json = flags.get_bool("json");

  const bool serve = flags.get_bool("serve");
  const bool connect_mode = flags.get_bool("connect");
  if (serve && connect_mode) {
    return fail("--serve and --connect are exclusive (--serve exposes the "
                "proxy; --connect runs the study through one)");
  }
  const auto port_flag = flags.get_int("port", 0);
  if (!port_flag.ok()) return fail(port_flag.error().to_string());
  if (*port_flag < 0 || *port_flag > 65535) {
    return fail("--port must be in 0..65535");
  }
  if (*port_flag != 0 && !serve) return fail("--port requires --serve");

  const bool shard_mem =
      flags.get_bool("shard-mem") && !flags.get_bool("materialize");
  const auto shards_flag = flags.get_int("shards", 0);
  if (!shards_flag.ok()) return fail(shards_flag.error().to_string());
  if (*shards_flag < 0) return fail("--shards must be >= 1");
  if (*shards_flag > 0 && !flags.get_bool("shard-mem")) {
    return fail("--shards requires --shard-mem");
  }
  const std::size_t shards =
      *shards_flag == 0 ? 16 : static_cast<std::size_t>(*shards_flag);

  const auto trace_out = flags.get("trace-out");
  const auto trace_sample = flags.get_int("trace-sample", 0);
  if (!trace_sample.ok()) return fail(trace_sample.error().to_string());
  const bool trace_violations_only = flags.get_bool("trace-violations-only");
  if (*trace_sample < 0) return fail("--trace-sample must be >= 1");
  if ((*trace_sample > 0 || trace_violations_only) && !trace_out) {
    return fail("--trace-sample / --trace-violations-only require --trace-out");
  }
  if (*trace_sample > 0 && trace_violations_only) {
    return fail("--trace-sample and --trace-violations-only are exclusive "
                "(sampling already keeps every violation)");
  }

  auto spec = flags.get_bool("mini") ? tft::world::mini_spec()
                                     : tft::world::paper_spec();
  if (const auto spec_path = flags.get("spec")) {
    std::ifstream file(*spec_path);
    if (!file) return fail("cannot read scenario file " + *spec_path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    auto loaded = tft::world::spec_from_json(buffer.str());
    if (!loaded.ok()) {
      return fail("bad scenario file: " + loaded.error().to_string());
    }
    spec = *std::move(loaded);
  }
  if (flags.get_bool("vpn-overlay")) spec.arbitrary_port_overlay = true;
  if (flags.get_bool("dump-spec")) {
    std::cout << tft::world::spec_to_json(spec) << "\n";
    return 0;
  }
  if ((experiment == "smtp" || experiment == "all") &&
      !spec.arbitrary_port_overlay && experiment == "smtp") {
    return fail("--experiment smtp requires --vpn-overlay (Luminati-like "
                "overlays tunnel port 443 only)");
  }

  // Every world this invocation builds goes through one helper so
  // --shard-mem applies uniformly (per-experiment, --shared-world, --serve).
  const auto make_world = [&](std::uint64_t build_seed) {
    if (shard_mem) {
      return tft::world::build_world_lazy(spec, *scale, build_seed, shards);
    }
    return tft::world::build_world(spec, *scale, build_seed);
  };

  if (serve) {
    if (!quiet) {
      std::cerr << "[serve] building world (scale=" << *scale << ")...\n";
    }
    const auto world = make_world(static_cast<std::uint64_t>(*seed));
    tft::net::server::ProxyServerConfig server_config;
    server_config.port = static_cast<std::uint16_t>(*port_flag);
    tft::net::server::ProxyServer server(*world->luminati, server_config,
                                         &world->metrics, &world->recorder);
    if (const auto started = server.start(); !started.ok()) {
      std::cerr << "tft-study: " << started.error().to_string() << "\n";
      return 1;
    }
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    // Scripts wait for this line before connecting; endl flushes it.
    std::cout << "tft-study: proxy listening on 127.0.0.1:" << server.port()
              << std::endl;
    while (g_stop_serving == 0) {
      server.poll_once(200);
      // stdin EOF also stops the server, so scripted runs
      // (`tft-study --serve </dev/null`) terminate without signals.
      pollfd stdin_probe{0, POLLIN, 0};
      if (::poll(&stdin_probe, 1, 0) > 0) {
        char discard[4096];
        if (::read(0, discard, sizeof(discard)) <= 0) break;
      }
    }
    return 0;
  }

  const std::size_t target_nodes =
      *target > 0 ? static_cast<std::size_t>(*target) : (1u << 22);
  auto config = tft::core::StudyConfig::for_scale(*scale, target_nodes);
  config.jobs = jobs;
  config.dns.jobs = jobs;
  config.http.jobs = jobs;
  config.https.jobs = jobs;
  config.monitoring.jobs = jobs;
  const auto world_seed = static_cast<std::uint64_t>(*seed);

  std::vector<std::string> experiments;
  if (experiment == "all") {
    experiments = {"dns", "http", "https", "monitor", "smtp"};
  } else {
    experiments = {experiment};
  }
  for (const auto& name : experiments) {
    if (name != "dns" && name != "http" && name != "https" &&
        name != "monitor" && name != "smtp") {
      return fail("unknown experiment '" + name + "'");
    }
  }

  // Execution order (canonical indices). --order permutes when the
  // experiments run; section placement never changes.
  std::vector<std::size_t> exec_order(experiments.size());
  for (std::size_t i = 0; i < exec_order.size(); ++i) exec_order[i] = i;
  if (const auto order_flag = flags.get("order")) {
    std::vector<std::string> wanted;
    std::istringstream order_stream(*order_flag);
    std::string token;
    while (std::getline(order_stream, token, ',')) {
      if (!token.empty()) wanted.push_back(token);
    }
    if (wanted.size() != experiments.size()) {
      return fail("--order must list each selected experiment exactly once (" +
                  std::to_string(experiments.size()) + " expected)");
    }
    std::vector<bool> used(experiments.size(), false);
    exec_order.clear();
    for (const auto& name : wanted) {
      bool matched = false;
      for (std::size_t i = 0; i < experiments.size(); ++i) {
        if (!used[i] && experiments[i] == name) {
          used[i] = true;
          exec_order.push_back(i);
          matched = true;
          break;
        }
      }
      if (!matched) {
        return fail("--order entry '" + name +
                    "' is not among the selected experiments");
      }
    }
  }
  const bool shared_world = flags.get_bool("shared-world");

  std::mutex progress_mutex;
  const auto progress = [&](const std::string& line) {
    if (quiet) return;
    const std::lock_guard<std::mutex> lock(progress_mutex);
    std::cerr << line << "\n";
  };

  const auto pool_before = tft::util::pool_telemetry_snapshot();
  // Per-experiment metrics and flight-recorder traces land in fixed slots
  // (like report sections) and merge in experiment order after the run, so
  // the deterministic sections are byte-identical for every --jobs value.
  std::vector<tft::obs::Registry> metric_slots(experiments.size());
  std::vector<tft::obs::Recorder> trace_slots(experiments.size());

  // By default every experiment builds its own world from the identical
  // (spec, scale, seed) triple, so the crawls cannot interact through
  // shared proxy state and the report is byte-identical for every --jobs
  // value. --shared-world runs them all against one world instead: keyed
  // counter-based RNG streams guarantee the same bytes either way.
  std::unique_ptr<tft::world::World> shared;
  if (shared_world) {
    progress("[shared] building world (scale=" + std::to_string(*scale) +
             ")...");
    shared = make_world(world_seed);
    progress("[shared] population: " +
             std::to_string(shared->luminati->node_count()) + " exit nodes, " +
             std::to_string(shared->topology.as_count()) + " ASes");
  }
  const auto run_named = [&](const std::string& name,
                             std::size_t index) -> std::string {
    if (name == "smtp" && !spec.arbitrary_port_overlay) {
      return "SMTP experiment skipped: overlay tunnels port 443 only "
             "(pass --vpn-overlay).\n";
    }
    std::unique_ptr<tft::world::World> owned;
    if (!shared) {
      progress("[" + name + "] building world (scale=" +
               std::to_string(*scale) + ")...");
      owned = make_world(world_seed);
      progress("[" + name + "] population: " +
               std::to_string(owned->luminati->node_count()) +
               " exit nodes, " + std::to_string(owned->topology.as_count()) +
               " ASes; running...");
    }
    tft::world::World* world = shared ? shared.get() : owned.get();
    // Capture the world's registry whichever branch returns; the experiment
    // span wraps the probe run + analysis. With a shared world the registry
    // accumulates across experiments, so it is exported once at the end
    // instead of per slot.
    struct MetricsCapture {
      tft::world::World& world;
      tft::obs::Registry* slot;
      tft::obs::Recorder* trace_slot;
      MetricsCapture(tft::world::World& w, tft::obs::Registry* s,
                     tft::obs::Recorder* t, std::string_view label)
          : world(w), slot(s), trace_slot(t) {
        world.metrics.begin_span(label, world.clock.now());
      }
      ~MetricsCapture() {
        world.metrics.end_span(world.clock.now());
        if (slot) *slot = world.metrics;
        if (trace_slot) *trace_slot = world.recorder;
      }
    } capture(*world, shared ? nullptr : &metric_slots[index],
              shared ? nullptr : &trace_slots[index],
              name == "monitor" ? std::string_view("monitoring") : name);
    // --connect: route this experiment's proxy transactions through a real
    // localhost socket. Declared after `capture` so the front-end tears
    // down (and books its net.closed counters) before metrics are captured.
    std::optional<LoopbackProxy> loopback;
    if (connect_mode) {
      loopback.emplace(*world);
      if (const auto started = loopback->start(); !started.ok()) {
        return "socket front-end failed to start: " +
               started.error().to_string() + "\n";
      }
    }
    if (name == "dns") {
      tft::core::DnsHijackProbe probe(*world, config.dns);
      probe.run();
      const auto analyzed =
          tft::core::analyze_dns(*world, probe.observations(), config.dns_analysis);
      return json ? tft::core::dns_report_json(analyzed)
                  : tft::core::render_dns_report(analyzed);
    }
    if (name == "http") {
      tft::core::HttpModificationProbe probe(*world, config.http);
      probe.run();
      const auto analyzed = tft::core::analyze_http(
          *world, probe.observations(), config.http_analysis);
      return json ? tft::core::http_report_json(analyzed)
                  : tft::core::render_http_report(analyzed);
    }
    if (name == "https") {
      tft::core::CertReplacementProbe probe(*world, config.https);
      probe.run();
      const auto analyzed = tft::core::analyze_https(
          *world, probe.observations(), config.https_analysis);
      return json ? tft::core::https_report_json(analyzed)
                  : tft::core::render_https_report(analyzed);
    }
    if (name == "monitor") {
      tft::core::ContentMonitorProbe probe(*world, config.monitoring);
      probe.run();
      const auto analyzed = tft::core::analyze_monitoring(
          *world, probe.observations(), config.monitoring_analysis);
      return json ? tft::core::monitor_report_json(analyzed)
                  : tft::core::render_monitor_report(analyzed);
    }
    tft::core::SmtpProbeConfig smtp_config;
    smtp_config.target_nodes = target_nodes;
    tft::core::SmtpProbe probe(*world, smtp_config);
    probe.run();
    tft::core::SmtpAnalysisConfig analysis;
    analysis.min_nodes_per_as =
        std::max<std::size_t>(3, static_cast<std::size_t>(10 * *scale));
    const auto analyzed =
        tft::core::analyze_smtp(*world, probe.observations(), analysis);
    return json ? tft::core::smtp_report_json(analyzed)
                : tft::core::render_smtp_report(analyzed);
  };

  // Sections are merged in canonical experiment order no matter which
  // worker finishes first or what --order requested. A shared world forces
  // sequential experiments (one world is not thread-safe across probes);
  // --jobs still parallelizes each probe's internal passes.
  std::vector<std::string> sections(experiments.size());
  if (shared_world || jobs <= 1 || experiments.size() == 1) {
    for (const std::size_t i : exec_order) {
      sections[i] = run_named(experiments[i], i);
    }
  } else {
    tft::util::ThreadPool pool(jobs);
    std::vector<std::future<std::string>> futures(experiments.size());
    for (const std::size_t i : exec_order) {
      futures[i] = pool.submit([&run_named, name = experiments[i], i] {
        return run_named(name, i);
      });
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      sections[i] = futures[i].get();
    }
  }
  if (shared) {
    metric_slots[0] = shared->metrics;
    trace_slots[0] = shared->recorder;
  }

  // Assemble the merged registry: experiment registries in fixed order under
  // a synthetic "study" root (each world had its own clock, so span
  // sim-times are experiment-relative), then pool telemetry and the
  // run-shape values that may vary between runs (timing section only).
  tft::obs::Registry metrics;
  metrics.begin_span("study", tft::sim::Instant{0});
  for (const auto& slot : metric_slots) metrics.merge_from(slot);
  std::int64_t sim_end = 0;
  for (const auto& span : metrics.spans()) {
    sim_end = std::max(sim_end, span.sim_end_us);
  }
  metrics.end_span(tft::sim::Instant{sim_end});
  tft::core::record_pool_telemetry(metrics, pool_before,
                                   tft::util::pool_telemetry_snapshot());
  metrics.set_timing("jobs", static_cast<std::int64_t>(jobs));
  metrics.set_timing("hardware_threads",
                     static_cast<std::int64_t>(
                         tft::util::ThreadPool::default_workers()));
  metrics.set_timing("peak_rss_kb", peak_rss_kb());

  std::string report;
  for (const auto& section : sections) {
    report += section;
    if (experiments.size() > 1) report += "\n";
  }
  if (flags.get_bool("stats")) {
    report += metrics.render_stats();
  }

  if (const auto metrics_out = flags.get("metrics-out")) {
    tft::util::JsonWriter writer;
    writer.begin_object();
    tft::obs::write_build_info(writer);
    metrics.write_json(writer, !flags.get_bool("metrics-omit-timing"));
    writer.end_object();
    const auto written = tft::util::write_file_atomic(
        *metrics_out, std::move(writer).take() + "\n");
    if (!written.ok()) {
      return fail(describe_write_failure(*metrics_out, written.error()));
    }
    if (!quiet) std::cerr << "metrics written to " << *metrics_out << "\n";
  }

  if (trace_out) {
    // Merge per-experiment recorders in fixed experiment order (mirroring
    // the metrics merge), then apply the sampling policy: violations are
    // always kept, clean/discarded transactions are thinned.
    tft::obs::Recorder trace;
    for (const auto& slot : trace_slots) trace.merge_from(slot);
    const auto is_violation = [](const tft::obs::TxnRecord& record) {
      return !record.verdict.empty() && record.verdict != "clean" &&
             record.verdict != "discarded";
    };
    std::vector<tft::obs::TxnRecord> kept;
    std::size_t clean_seen = 0;
    for (const auto& record : trace.records()) {
      if (is_violation(record)) {
        kept.push_back(record);
        continue;
      }
      if (trace_violations_only) continue;
      if (*trace_sample > 0 &&
          ++clean_seen % static_cast<std::size_t>(*trace_sample) != 0) {
        continue;
      }
      kept.push_back(record);
    }
    const auto written =
        tft::util::write_file_atomic(*trace_out, tft::obs::encode_trace(kept));
    if (!written.ok()) {
      return fail(describe_write_failure(*trace_out, written.error()));
    }
    if (!quiet) {
      std::cerr << "trace written to " << *trace_out << " (" << kept.size()
                << " of " << trace.records().size() << " transactions)\n";
    }
  }

  if (const auto out = flags.get("out")) {
    const auto written = tft::util::write_file_atomic(*out, report);
    if (!written.ok()) {
      return fail(describe_write_failure(*out, written.error()));
    }
    if (!quiet) std::cerr << "report written to " << *out << "\n";
  } else {
    std::cout << report;
  }
  return 0;
}
