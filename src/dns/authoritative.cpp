#include "tft/dns/authoritative.hpp"

#include <algorithm>

namespace tft::dns {

void AuthoritativeServer::add_record(ResourceRecord record) {
  records_[record.name.canonical()].push_back(std::move(record));
}

void AuthoritativeServer::add_a(const DnsName& name, net::Ipv4Address address,
                                std::uint32_t ttl) {
  add_record(ResourceRecord::a(name, address, ttl));
}

void AuthoritativeServer::add_wildcard_a(const DnsName& suffix,
                                         net::Ipv4Address address,
                                         std::uint32_t ttl) {
  wildcards_.push_back(Wildcard{suffix, address, ttl});
}

Message AuthoritativeServer::handle(const Message& query, net::Ipv4Address source,
                                    sim::Instant now) {
  if (query.questions.empty()) {
    return Message::response_to(query, Rcode::kFormErr);
  }
  const Question& question = query.questions.front();
  query_log_.push_back(QueryLogEntry{now, source, question.name, question.type});

  if (!question.name.is_within(origin_)) {
    return Message::response_to(query, Rcode::kRefused);
  }

  if (policy_) {
    if (auto overridden = policy_(question, source, query)) {
      return *std::move(overridden);
    }
  }

  Message response = Message::response_to(query, Rcode::kNoError);
  response.flags.authoritative = true;

  const auto it = records_.find(question.name.canonical());
  if (it != records_.end()) {
    bool found_type = false;
    for (const auto& record : it->second) {
      if (record.type == question.type ||
          record.type == RecordType::kCname) {
        response.answers.push_back(record);
        found_type = true;
      }
    }
    if (found_type) return response;
    // Name exists but not with this type: NODATA (NOERROR, empty answer).
    return response;
  }

  // Wildcard synthesis: most specific (longest) matching suffix wins.
  const Wildcard* best = nullptr;
  for (const auto& wildcard : wildcards_) {
    if (question.name.is_within(wildcard.suffix) &&
        !question.name.equals(wildcard.suffix)) {
      if (best == nullptr ||
          wildcard.suffix.label_count() > best->suffix.label_count()) {
        best = &wildcard;
      }
    }
  }
  if (best != nullptr && question.type == RecordType::kA) {
    response.answers.push_back(
        ResourceRecord::a(question.name, best->address, best->ttl));
    return response;
  }
  if (best != nullptr) {
    return response;  // name exists via wildcard, but NODATA for this type
  }

  return Message::response_to(query, Rcode::kNxDomain);
}

}  // namespace tft::dns
