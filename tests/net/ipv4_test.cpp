#include "tft/net/ipv4.hpp"

#include <gtest/gtest.h>

namespace tft::net {
namespace {

TEST(Ipv4AddressTest, ParseAndFormat) {
  const auto addr = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->to_string(), "192.168.1.200");
  EXPECT_EQ(addr->value(), 0xC0A801C8u);
}

TEST(Ipv4AddressTest, OctetConstructor) {
  constexpr Ipv4Address addr(8, 8, 8, 8);
  EXPECT_EQ(addr.value(), 0x08080808u);
  EXPECT_EQ(addr.to_string(), "8.8.8.8");
}

struct BadAddressCase {
  const char* text;
};

class Ipv4ParseRejectTest : public ::testing::TestWithParam<BadAddressCase> {};

TEST_P(Ipv4ParseRejectTest, Rejects) {
  EXPECT_FALSE(Ipv4Address::parse(GetParam().text).ok()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    BadAddresses, Ipv4ParseRejectTest,
    ::testing::Values(BadAddressCase{""}, BadAddressCase{"1.2.3"},
                      BadAddressCase{"1.2.3.4.5"}, BadAddressCase{"256.1.1.1"},
                      BadAddressCase{"1.2.3.x"}, BadAddressCase{"1..3.4"},
                      BadAddressCase{" 1.2.3.4"}, BadAddressCase{"1.2.3.4 "},
                      BadAddressCase{"-1.2.3.4"}));

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), *Ipv4Address::parse("1.2.3.4"));
}

TEST(Ipv4PrefixTest, MakeZeroesHostBits) {
  const auto prefix = Ipv4Prefix::make(Ipv4Address(10, 1, 2, 3), 8);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->to_string(), "10.0.0.0/8");
  EXPECT_EQ(prefix->size(), 1u << 24);
}

TEST(Ipv4PrefixTest, ParseRoundTrip) {
  const auto prefix = Ipv4Prefix::parse("74.125.0.0/16");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->to_string(), "74.125.0.0/16");
  EXPECT_TRUE(prefix->contains(Ipv4Address(74, 125, 3, 9)));
  EXPECT_FALSE(prefix->contains(Ipv4Address(74, 126, 0, 0)));
}

TEST(Ipv4PrefixTest, RejectsBadInput) {
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3.4").ok());
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3.4/33").ok());
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3.4/-1").ok());
  EXPECT_FALSE(Ipv4Prefix::parse("bad/8").ok());
  EXPECT_FALSE(Ipv4Prefix::make(Ipv4Address(0), 33).ok());
}

TEST(Ipv4PrefixTest, SlashZeroCoversEverything) {
  const auto prefix = Ipv4Prefix::parse("0.0.0.0/0");
  ASSERT_TRUE(prefix.ok());
  EXPECT_TRUE(prefix->contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(prefix->contains(Ipv4Address(0)));
  EXPECT_EQ(prefix->size(), std::uint64_t{1} << 32);
}

TEST(Ipv4PrefixTest, Slash32IsSingleHost) {
  const auto prefix = Ipv4Prefix::make(Ipv4Address(5, 6, 7, 8), 32);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->size(), 1u);
  EXPECT_TRUE(prefix->contains(Ipv4Address(5, 6, 7, 8)));
  EXPECT_FALSE(prefix->contains(Ipv4Address(5, 6, 7, 9)));
}

TEST(Ipv4PrefixTest, HostIndexing) {
  const auto prefix = *Ipv4Prefix::parse("10.0.0.0/30");
  EXPECT_EQ(prefix.host(0)->to_string(), "10.0.0.0");
  EXPECT_EQ(prefix.host(3)->to_string(), "10.0.0.3");
  EXPECT_FALSE(prefix.host(4).ok());
}

class PrefixContainsSweep
    : public ::testing::TestWithParam<int> {};

TEST_P(PrefixContainsSweep, NetworkAndBroadcastInside) {
  const int length = GetParam();
  const auto prefix = *Ipv4Prefix::make(Ipv4Address(172, 16, 33, 7), length);
  EXPECT_TRUE(prefix.contains(prefix.network()));
  const auto last = *prefix.host(prefix.size() - 1);
  EXPECT_TRUE(prefix.contains(last));
  if (length > 0) {
    EXPECT_FALSE(prefix.contains(Ipv4Address(prefix.network().value() - 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixContainsSweep,
                         ::testing::Values(1, 4, 8, 12, 16, 20, 24, 28, 31, 32));

}  // namespace
}  // namespace tft::net
