// Scenario specification: the knobs of the simulated Internet, with a
// `paper_spec()` instance whose values are transcribed from the paper's
// tables (Tables 3-9). Node counts are at paper scale; WorldBuilder applies
// a scale factor at build time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tft/net/topology.hpp"

namespace tft::world {

/// An ISP whose resolvers hijack NXDOMAIN (Table 4), with the landing page
/// its hijacked responses link to (Table 5's top rows).
struct IspResolverHijackSpec {
  std::string isp;
  net::CountryCode country;
  int dns_servers = 1;
  int nodes = 0;             // paper-scale exit-node count
  std::string landing_host;  // e.g. "searchassist.verizon.com"
  /// Five ISPs share byte-identical redirect JavaScript (§4.3.1) —
  /// evidence of a common vendor box.
  bool shared_vendor_js = false;
  bool operator==(const IspResolverHijackSpec&) const = default;
};

/// On-path NXDOMAIN rewriting that hits even Google-DNS users (Table 5 top
/// rows; attributed to path middleboxes / ISP software).
struct PathHijackSpec {
  std::string isp;  // must match an IspResolverHijackSpec or generic ISP
  net::CountryCode country;
  int google_dns_nodes = 0;  // how many of the ISP's nodes use 8.8.8.8
  std::string landing_host;
  int as_spread = 1;  // distinct ASes the affected nodes sit in
  bool operator==(const PathHijackSpec&) const = default;
};

/// End-host software rewriting NXDOMAIN (Norton, Comodo — Table 5 shaded
/// rows). Spread across many ASes/countries, which is how §4.3.3 tells it
/// apart from ISP behaviour.
struct HostDnsHijackSpec {
  std::string product;
  std::string landing_host;
  int nodes = 0;
  int as_spread = 1;
  int country_spread = 1;
  bool operator==(const HostDnsHijackSpec&) const = default;
};

/// A hijacking public resolver service (§4.3.2).
struct PublicResolverHijackSpec {
  std::string operator_name;  // "Comodo DNS", "UltraDNS", ...
  int servers = 1;
  int nodes = 0;  // nodes configured to use it
  std::string landing_host;
  bool identifiable = true;  // the 3 mystery servers are not
  bool operator==(const PublicResolverHijackSpec&) const = default;
};

/// Per-country exit-node population and resolver-level hijack target
/// (Table 3 rows for featured countries; synthesized for filler).
struct CountrySpec {
  net::CountryCode code;
  int total_nodes = 0;
  /// Nodes hijacked via ISP resolvers *beyond* those covered by the
  /// explicit IspResolverHijackSpecs in this country (generic hijacking
  /// ISPs making up Table 3's remainder).
  int extra_hijacked_nodes = 0;
  /// Structural knobs for the filler ISPs of this country.
  int isp_count = 3;
  int ases_per_isp = 2;
  double google_dns_fraction = 0.06;
  double public_dns_fraction = 0.03;
  bool operator==(const CountrySpec&) const = default;
};

/// HTML-injecting host adware (Table 6). The snippet carries the signature
/// URL or keyword the analysis recovers.
struct AdwareSpec {
  std::string name;
  std::string snippet;
  int nodes = 0;
  int as_spread = 1;
  int country_spread = 1;
  bool operator==(const AdwareSpec&) const = default;
};

/// An ISP-level web filter modifying all nodes' HTML (Internet Rimon).
struct IspFilterSpec {
  std::string isp;
  net::CountryCode country;
  net::Asn asn = 0;
  int nodes = 0;
  std::string snippet;  // the NetSpark meta tag
  bool operator==(const IspFilterSpec&) const = default;
};

/// A mobile carrier transcoding images (Table 7).
struct TranscoderSpec {
  net::Asn asn = 0;
  std::string isp;
  net::CountryCode country;
  int nodes = 0;           // population in this AS
  double fraction = 1.0;   // share of nodes affected
  std::vector<int> qualities;  // one = consistent; several = "M"
  bool operator==(const TranscoderSpec&) const = default;
};

/// A TLS-intercepting product (Table 8).
struct CertReplacerSpec {
  enum class Kind { kAntiVirus, kContentFilter, kMalware, kUnknown };
  std::string product;      // "Avast", "OpenDNS", ...
  std::string issuer_cn;    // what lands in the forged Issuer CN
  Kind kind = Kind::kAntiVirus;
  int nodes = 0;
  bool reuse_public_key = true;       // all but Avast
  /// Product checks upstream validity and uses a distinct "untrusted"
  /// issuer for originally-invalid sites (Avast/BitDefender/Dr.Web).
  bool untrusted_issuer_for_invalid = false;
  /// Product intercepts only when upstream verified (OpenDNS).
  bool only_if_upstream_valid = false;
  /// Restrict to a blocked-host list (content filters).
  bool only_blocked_hosts = false;
  /// Restrict install base to one country's ISPs (Cloudguard: Russia).
  std::optional<net::CountryCode> only_country;
  /// Product also injects HTML (Cloudguard).
  bool also_injects_html = false;
  bool operator==(const CertReplacerSpec&) const = default;
};

/// A content-monitoring entity (Table 9 / Figure 5).
struct MonitorSpec {
  enum class Kind { kHostSoftware, kIspService, kVpn, kPathMiddlebox };
  struct Refetch {
    double min_delay_s = 1;
    double max_delay_s = 60;
    double prefetch_probability = 0;
    double hold_s = 0.5;
    bool fixed_source_last = false;  // AnchorFree: always Menlo Park
    bool operator==(const Refetch&) const = default;
  };

  std::string entity;  // "Trend Micro", "TalkTalk", ...
  Kind kind = Kind::kHostSoftware;
  net::CountryCode home_country = "US";
  int source_ips = 1;
  int nodes = 0;              // affected exit nodes (host software / path)
  double isp_node_fraction = 0;  // for kIspService: share of the ISP's nodes
  std::string isp;               // for kIspService
  int as_spread = 1;
  int country_spread = 1;
  std::vector<Refetch> refetches;
  bool operator==(const MonitorSpec&) const = default;
};

/// SMTP-layer interception (the §3.4 future-work extension; the paper has
/// no measured numbers here, so these are synthetic-but-plausible
/// prevalences, documented as a substitution in DESIGN.md).
struct SmtpInterceptSpec {
  enum class Kind { kStripStarttls, kBlockPort, kRewriteBanner, kTagBody };
  std::string name;
  Kind kind = Kind::kStripStarttls;
  int nodes = 0;
  int as_spread = 1;
  int country_spread = 1;
  bool operator==(const SmtpInterceptSpec&) const = default;
};

std::string_view to_string(SmtpInterceptSpec::Kind kind) noexcept;

/// HTTPS measurement targets (§6.1).
struct HttpsSiteSpec {
  int popular_sites_per_country = 20;
  int countries_with_rankings = 115;  // Alexa coverage limit
  std::vector<std::string> universities;
  bool operator==(const HttpsSiteSpec&) const = default;
};

/// An ISP that must exist by name (monitor hosts, path-hijack-only ISPs)
/// even though no resolver-hijack spec creates it.
struct NamedIspSpec {
  std::string name;
  net::CountryCode country;
  int as_count = 1;
  int nodes = 0;
  net::OrgKind kind = net::OrgKind::kBroadbandIsp;
  bool operator==(const NamedIspSpec&) const = default;
};

struct WorldSpec {
  std::vector<CountrySpec> countries;
  std::vector<NamedIspSpec> named_isps;
  std::vector<IspResolverHijackSpec> isp_resolver_hijackers;
  std::vector<PathHijackSpec> path_hijackers;
  std::vector<HostDnsHijackSpec> host_dns_hijackers;
  std::vector<PublicResolverHijackSpec> public_resolver_hijackers;
  /// Google-DNS users hijacked by small, per-ISP CPE boxes whose landing
  /// URLs each stay below the paper's 5-node reporting threshold — the gap
  /// between the 927 hijacked Google-DNS nodes of §4.3.3 and Table 5's rows.
  int scattered_google_hijack_nodes = 360;
  int clean_public_resolvers = 1089;  // paper: 1110 public servers, 21 bad
  std::vector<AdwareSpec> adware;
  /// Table 6's numbers are what the paper's 3-per-AS adaptive sample
  /// *found*; the installed base must be larger for a sample to recover
  /// them. The builder multiplies adware/error-box populations by this.
  double adware_install_boost = 5.0;
  std::vector<IspFilterSpec> isp_filters;
  std::vector<TranscoderSpec> transcoders;
  /// Block pages / error-replacement boxes (§5.2 filtered cases).
  int blockpage_nodes = 32;
  int js_error_nodes = 45;
  int css_error_nodes = 11;
  std::vector<CertReplacerSpec> cert_replacers;
  std::vector<MonitorSpec> monitors;
  int tail_monitor_groups = 48;   // the long tail of the "54 groups"
  int tail_monitor_nodes = 715;   // ~6% of unexpected-request sources
  /// Size of the HTML reference object served at /page.html (§5.1: the
  /// paper initially used very small objects and saw much less
  /// modification; 9 KB is their final choice). The probe must fetch the
  /// same size — World carries the value.
  std::size_t probe_html_bytes = 9 * 1024;
  HttpsSiteSpec https;
  /// SMTP extension: interceptors on the path to port 25, measurable only
  /// when `arbitrary_port_overlay` is enabled (VPN-style tunneling).
  std::vector<SmtpInterceptSpec> smtp_interceptors;
  bool arbitrary_port_overlay = false;
  int google_anycast_instances = 8;
  double node_failure_probability = 0.01;

  bool operator==(const WorldSpec&) const = default;
};

/// The full scenario transcribed from the paper's evaluation.
WorldSpec paper_spec();

/// A tiny deterministic scenario for unit/integration tests (hundreds of
/// nodes, a handful of ISPs, one instance of each violation type).
WorldSpec mini_spec();

}  // namespace tft::world
