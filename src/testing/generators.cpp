#include "tft/testing/generators.hpp"

#include "tft/net/ipv4.hpp"

namespace tft::testing {

using util::Rng;

std::string random_label(Rng& rng) {
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  const std::size_t length = 1 + rng.index(12);
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out += kChars[rng.index(kChars.size())];
  return out;
}

std::string random_token(Rng& rng) {
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-";
  const std::size_t length = 1 + rng.index(10);
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out += kChars[rng.index(kChars.size())];
  return out;
}

std::string random_bytes(Rng& rng, std::size_t max_length) {
  std::string out;
  const std::size_t length = max_length == 0 ? 0 : rng.index(max_length);
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += static_cast<char>(rng.next_u64() & 0xFF);
  }
  return out;
}

// --- DNS ---------------------------------------------------------------------

dns::DnsName random_dns_name(Rng& rng) {
  std::vector<std::string> labels;
  const std::size_t count = 1 + rng.index(5);
  for (std::size_t i = 0; i < count; ++i) labels.push_back(random_label(rng));
  return *dns::DnsName::from_labels(std::move(labels));
}

dns::Message random_dns_message(Rng& rng) {
  auto message = dns::Message::query(
      static_cast<std::uint16_t>(rng.next_u64() & 0xFFFF), random_dns_name(rng),
      rng.chance(0.5) ? dns::RecordType::kA : dns::RecordType::kTxt);
  if (!rng.chance(0.7)) return message;

  message.flags.response = true;
  message.flags.authoritative = rng.chance(0.3);
  message.flags.recursion_available = rng.chance(0.5);
  message.flags.rcode =
      rng.chance(0.3) ? dns::Rcode::kNxDomain : dns::Rcode::kNoError;

  const auto random_record = [&rng](const dns::DnsName& reuse_name) {
    // Re-use an earlier name half the time to exercise compression.
    const dns::DnsName name =
        rng.chance(0.5) ? reuse_name : random_dns_name(rng);
    switch (rng.index(3)) {
      case 0:
        return dns::ResourceRecord::a(
            name, net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())),
            static_cast<std::uint32_t>(rng.uniform(100000)));
      case 1:
        return dns::ResourceRecord::cname(name, random_dns_name(rng));
      default: {
        std::string text;
        const std::size_t text_length = rng.index(600);
        for (std::size_t j = 0; j < text_length; ++j) {
          text += static_cast<char>('a' + rng.index(26));
        }
        return dns::ResourceRecord::txt(name, text);
      }
    }
  };

  const std::size_t answers = rng.index(4);
  for (std::size_t i = 0; i < answers; ++i) {
    message.answers.push_back(random_record(message.questions[0].name));
  }
  if (rng.chance(0.3)) {
    message.authorities.push_back(
        dns::ResourceRecord::cname(random_dns_name(rng),
                                   message.questions[0].name));
  }
  if (rng.chance(0.2)) {
    message.additionals.push_back(random_record(message.questions[0].name));
  }
  return message;
}

// --- HTTP --------------------------------------------------------------------

http::Request random_http_request(Rng& rng) {
  http::Request request;
  switch (rng.index(4)) {
    case 0:
      request.method = http::Method::kGet;
      break;
    case 1:
      request.method = http::Method::kHead;
      break;
    case 2:
      request.method = http::Method::kPost;
      break;
    default:
      request.method = http::Method::kConnect;
      break;
  }
  if (request.method == http::Method::kConnect) {
    request.target = random_token(rng) + ".example:443";
  } else if (rng.chance(0.5)) {
    request.target = "http://" + random_token(rng) + ".example/" + random_token(rng);
  } else {
    request.target = "/" + random_token(rng);
  }
  request.headers.set("Host", random_token(rng) + ".example");
  const std::size_t extra = rng.index(5);
  for (std::size_t i = 0; i < extra; ++i) {
    request.headers.add("X-" + random_token(rng), random_token(rng));
  }
  if (request.method == http::Method::kPost) {
    request.body = random_bytes(rng, 1000);
  }
  return request;
}

http::Response random_http_response(Rng& rng) {
  http::Response response;
  response.status = 100 + static_cast<int>(rng.uniform(500));
  response.reason = "Reason " + random_token(rng);
  const std::size_t header_count = rng.index(6);
  for (std::size_t i = 0; i < header_count; ++i) {
    response.headers.add("X-" + random_token(rng), random_token(rng));
  }
  response.body = random_bytes(rng, 2000);
  return response;
}

// --- TLS ---------------------------------------------------------------------

tls::Certificate random_tls_certificate(Rng& rng) {
  tls::Certificate certificate;
  certificate.subject = {random_token(rng), random_token(rng), "US"};
  certificate.issuer = {random_token(rng), random_token(rng), "DE"};
  certificate.serial = rng.next_u64();
  certificate.not_before =
      sim::Instant{static_cast<std::int64_t>(rng.next_u64() % (1LL << 50)) -
                   (1LL << 49)};
  certificate.not_after =
      certificate.not_before + sim::Duration::hours(1 + rng.index(100000));
  const std::size_t sans = rng.index(5);
  for (std::size_t i = 0; i < sans; ++i) {
    certificate.subject_alt_names.push_back(random_token(rng) + ".example.com");
  }
  certificate.public_key = rng.next_u64();
  certificate.signed_by = rng.next_u64();
  certificate.is_ca = rng.chance(0.2);
  return certificate;
}

tls::CertificateChain random_tls_chain(Rng& rng) {
  tls::CertificateChain chain;
  const std::size_t length = rng.index(5);
  for (std::size_t i = 0; i < length; ++i) {
    chain.push_back(random_tls_certificate(rng));
  }
  return chain;
}

// --- SMTP --------------------------------------------------------------------

smtp::Reply random_smtp_reply(Rng& rng) {
  smtp::Reply reply;
  reply.code = 200 + static_cast<int>(rng.uniform(355));
  const std::size_t line_count = 1 + rng.index(5);
  for (std::size_t i = 0; i < line_count; ++i) {
    reply.lines.push_back(rng.chance(0.2) ? "" : random_token(rng));
  }
  return reply;
}

smtp::Command random_smtp_command(Rng& rng) {
  static constexpr std::string_view kVerbs[] = {"EHLO", "HELO", "MAIL", "RCPT",
                                                "DATA", "STARTTLS", "RSET",
                                                "NOOP", "QUIT"};
  smtp::Command command;
  command.verb = std::string(kVerbs[rng.index(std::size(kVerbs))]);
  if (command.verb == "MAIL") {
    command.argument = "FROM:<" + random_token(rng) + "@" + random_token(rng) + ".net>";
  } else if (command.verb == "RCPT") {
    command.argument = "TO:<" + random_token(rng) + "@" + random_token(rng) + ".net>";
  } else if (command.verb == "EHLO" || command.verb == "HELO") {
    command.argument = random_token(rng) + ".example";
  }
  return command;
}

std::string SmtpDialogue::serialize() const {
  std::string out;
  for (std::size_t i = 0; i < commands.size(); ++i) {
    out += commands[i].serialize();
    if (i < replies.size()) out += replies[i].serialize();
  }
  return out;
}

SmtpDialogue random_smtp_dialogue(Rng& rng) {
  SmtpDialogue dialogue;
  const auto add = [&](std::string verb, std::string argument, int code) {
    smtp::Command command;
    command.verb = std::move(verb);
    command.argument = std::move(argument);
    dialogue.commands.push_back(std::move(command));
    smtp::Reply reply;
    reply.code = code;
    const std::size_t lines = 1 + rng.index(3);
    for (std::size_t i = 0; i < lines; ++i) {
      reply.lines.push_back(random_token(rng));
    }
    dialogue.replies.push_back(std::move(reply));
  };
  add("EHLO", random_token(rng) + ".example", 250);
  if (rng.chance(0.5)) add("STARTTLS", "", rng.chance(0.8) ? 220 : 454);
  add("MAIL", "FROM:<" + random_token(rng) + "@probe.net>", 250);
  const std::size_t rcpts = 1 + rng.index(3);
  for (std::size_t i = 0; i < rcpts; ++i) {
    add("RCPT", "TO:<" + random_token(rng) + "@mail.net>", rng.chance(0.9) ? 250 : 550);
  }
  add("DATA", "", 354);
  add("QUIT", "", 221);
  return dialogue;
}

// --- JSON --------------------------------------------------------------------

namespace {

void append_json_value(std::string& out, Rng& rng, int depth) {
  // Leaves get likelier as depth shrinks; depth 0 forces a scalar.
  const std::size_t kind = depth <= 0 ? rng.index(4) : rng.index(6);
  switch (kind) {
    case 0:
      out += "null";
      break;
    case 1:
      out += rng.chance(0.5) ? "true" : "false";
      break;
    case 2: {
      const std::int64_t value = rng.uniform_range(-1000000, 1000000);
      out += std::to_string(value);
      if (rng.chance(0.3)) out += "." + std::to_string(rng.uniform(1000));
      break;
    }
    case 3:
      out += '"' + random_token(rng) + '"';
      break;
    case 4: {
      out += '[';
      const std::size_t items = rng.index(5);
      for (std::size_t i = 0; i < items; ++i) {
        if (i > 0) out += ',';
        append_json_value(out, rng, depth - 1);
      }
      out += ']';
      break;
    }
    default: {
      out += '{';
      const std::size_t items = rng.index(5);
      for (std::size_t i = 0; i < items; ++i) {
        if (i > 0) out += ',';
        out += '"' + random_token(rng) + "\":";
        append_json_value(out, rng, depth - 1);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string random_json_document(Rng& rng, int max_depth) {
  std::string out;
  append_json_value(out, rng, max_depth);
  return out;
}

util::StreamCheckpoint random_stream_checkpoint(Rng& rng) {
  util::StreamCheckpoint checkpoint;
  const std::size_t rounds = rng.index(6);
  checkpoint.next_round = rounds;
  for (std::size_t round = 0; round < rounds; ++round) {
    util::StreamState state;
    state.label = "round" + std::to_string(round) + "/country";
    state.key.study_seed = rng.next_u64();
    state.key.entity = rng.next_u64();
    state.key.purpose = rng.next_u64();
    state.counter = rng.next_u64();
    checkpoint.streams.push_back(std::move(state));
  }
  return checkpoint;
}

namespace {

/// Free-form trace text: mostly tokens, sometimes laced with the ASCII
/// characters JSON must escape (quotes, backslashes, control bytes) so the
/// codec's escape/unescape paths get exercised — but never bytes >= 0x80,
/// which are not guaranteed to round-trip through the UTF-8 parser.
std::string random_trace_text(Rng& rng) {
  std::string out = random_token(rng);
  if (rng.chance(0.3)) {
    static constexpr std::string_view kHostile = "\"\\\n\r\t\b\f/ ->:.\x01\x1f";
    const std::size_t extras = 1 + rng.index(6);
    for (std::size_t i = 0; i < extras; ++i) {
      out += kHostile[rng.index(kHostile.size())];
    }
    out += random_token(rng);
  }
  return out;
}

}  // namespace

obs::TxnRecord random_txn_record(Rng& rng) {
  static constexpr std::string_view kKinds[] = {"dns", "http", "https",
                                                "monitor", "smtp"};
  static constexpr obs::Hop kHops[] = {
      obs::Hop::kClient,   obs::Hop::kSuperProxy, obs::Hop::kExitNode,
      obs::Hop::kResolver, obs::Hop::kMiddlebox,  obs::Hop::kOrigin};

  obs::TxnRecord record;
  record.txn_id = rng.next_u64();
  record.kind = rng.chance(0.8) ? std::string(kKinds[rng.index(5)])
                                : random_trace_text(rng);
  record.zid = rng.chance(0.2) ? std::string() : random_token(rng);
  record.asn = static_cast<std::uint32_t>(rng.next_u64());
  record.country = rng.chance(0.2) ? std::string() : random_token(rng);
  record.target = random_trace_text(rng);
  record.verdict = rng.chance(0.3) ? std::string() : random_trace_text(rng);
  record.culprit = rng.chance(0.5) ? std::string() : random_trace_text(rng);
  const std::size_t events = rng.index(8);
  record.events.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    obs::TraceEvent event;
    event.hop = kHops[rng.index(6)];
    event.actor = random_trace_text(rng);
    event.action = random_trace_text(rng);
    event.detail = random_trace_text(rng);
    event.sim_us = rng.next_u64();
    record.events.push_back(std::move(event));
  }
  return record;
}

}  // namespace tft::testing
