// Connection-level scenarios against the real socket front-end: keep-alive
// reuse, pipelining, slow-header timeouts, mid-tunnel disconnects, CONNECT
// admission — each asserting the `net.*` observability counters and clean
// fd teardown. Most scenarios run the fixture in pumped mode (no second
// thread), so counters can be asserted between steps and the tests replay
// deterministically; one threaded smoke covers the run()-on-a-thread path.
#include <dirent.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tft/net/server/framing.hpp"
#include "tft/testing/test_proxy_server.hpp"

namespace tft::testing {
namespace {

using net::server::ProxyServerConfig;

constexpr std::string_view kProxiedUrl = "http://m1.probe.tft-study.net/";

std::string simple_get(bool close = false) {
  std::string out = "GET ";
  out += kProxiedUrl;
  out += " HTTP/1.1\r\nHost: m1.probe.tft-study.net\r\n";
  if (close) out += "Connection: close\r\n";
  out += "\r\n";
  return out;
}

/// Open fds in this process — the leak check around fixture lifetimes.
std::size_t open_fd_count() {
  std::size_t count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

TestProxyServer::Options pumped() {
  TestProxyServer::Options options;
  options.threaded = false;
  return options;
}

TEST(SocketServerTest, KeepAliveReuseThenConnectionClose) {
  TestProxyServer fixture(pumped());
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_all(simple_get()).ok());
  const auto response1 = client.recv_message();
  ASSERT_TRUE(response1.ok());
  EXPECT_NE(response1->find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response1->find("X-TFT-Proxy-Status:"), std::string::npos);

  // Same connection, second request: keep-alive reuse.
  ASSERT_TRUE(client.send_all(simple_get(/*close=*/true)).ok());
  const auto response2 = client.recv_message();
  ASSERT_TRUE(response2.ok());
  EXPECT_NE(response2->find("HTTP/1.1 200"), std::string::npos);

  // Connection: close -> the server hangs up after the response.
  const auto rest = client.recv_until_eof();
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->empty());

  EXPECT_EQ(fixture.counter("net.accepted"), 1u);
  EXPECT_EQ(fixture.counter("net.http.requests"), 2u);
  EXPECT_EQ(fixture.counter("net.http.keepalive_reuse"), 1u);
  EXPECT_EQ(fixture.counter("net.closed"), 1u);
  EXPECT_EQ(fixture.counter("net.http.parse_errors"), 0u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);
}

TEST(SocketServerTest, PipelinedGetsAnswerInOrder) {
  TestProxyServer fixture(pumped());
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());

  // Both requests in one write: the server sees them in one buffer and
  // must answer both, in order.
  ASSERT_TRUE(client.send_all(simple_get() + simple_get()).ok());
  const auto response1 = client.recv_message();
  ASSERT_TRUE(response1.ok());
  const auto response2 = client.recv_message();
  ASSERT_TRUE(response2.ok());
  EXPECT_NE(response1->find("HTTP/1.1 200"), std::string::npos);
  // Same target, same session-less request -> byte-identical answers.
  EXPECT_EQ(*response1, *response2);

  EXPECT_EQ(fixture.counter("net.http.requests"), 2u);
  EXPECT_GE(fixture.counter("net.http.pipelined"), 1u);
}

TEST(SocketServerTest, SlowHeadersHitReadTimeout) {
  auto options = pumped();
  options.configure = [](ProxyServerConfig& config) {
    config.read_timeout_ms = 100;  // opt back into wall-clock guarding
  };
  TestProxyServer fixture(std::move(options));
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());

  // A slowloris peer: starts the head, never finishes it.
  ASSERT_TRUE(client.send_all("GET http://m1.probe.tft-s").ok());
  fixture.pump();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  fixture.pump();  // deadline sweep fires here

  EXPECT_EQ(fixture.counter("net.http.read_timeouts"), 1u);
  EXPECT_EQ(fixture.counter("net.http.idle_timeouts"), 0u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);

  // The server sent a best-effort 408 before hanging up.
  const auto rest = client.recv_until_eof();
  ASSERT_TRUE(rest.ok());
  EXPECT_NE(rest->find("408"), std::string::npos);
}

TEST(SocketServerTest, IdleConnectionHitsIdleTimeout) {
  auto options = pumped();
  options.configure = [](ProxyServerConfig& config) {
    config.read_timeout_ms = 100;
  };
  TestProxyServer fixture(std::move(options));
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());
  fixture.pump();  // accept; no bytes ever arrive
  ASSERT_EQ(fixture.counter("net.accepted"), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  fixture.pump();
  EXPECT_EQ(fixture.counter("net.http.idle_timeouts"), 1u);
  EXPECT_EQ(fixture.counter("net.http.read_timeouts"), 0u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);
}

TEST(SocketServerTest, MidTunnelClientDisconnect) {
  TestProxyServer fixture(pumped());
  ASSERT_FALSE(fixture.world().https_sites.empty());
  const auto target = fixture.world().https_sites.front().address;

  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(
      client.send_all(net::server::build_connect(target, 443, {})).ok());
  const auto established = client.recv_message();
  ASSERT_TRUE(established.ok());
  EXPECT_NE(established->find("200 Connection Established"),
            std::string::npos);
  EXPECT_EQ(fixture.counter("net.connect.tunnels"), 1u);

  // Vanish mid-tunnel, before the handshake hello.
  client.close();
  fixture.pump();

  EXPECT_EQ(fixture.counter("net.tunnel.client_disconnects"), 1u);
  EXPECT_EQ(fixture.counter("net.tunnel.handshakes"), 0u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);
}

TEST(SocketServerTest, TunnelHandshakeDeliversChain) {
  TestProxyServer fixture(pumped());
  ASSERT_FALSE(fixture.world().https_sites.empty());
  const auto& site = fixture.world().https_sites.front();

  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(
      client.send_all(net::server::build_connect(site.address, 443, {})).ok());
  ASSERT_TRUE(client.recv_message().ok());  // 200 Established

  ASSERT_TRUE(client
                  .send_all(net::server::frame(net::server::encode_tunnel_hello(
                      net::server::TunnelHello{site.host})))
                  .ok());
  // The reply is one length-prefixed frame; read it off the raw stream.
  net::server::FrameReader frames;
  std::string reply_payload;
  while (true) {
    if (auto payload = frames.next_frame()) {
      reply_payload = *std::move(payload);
      break;
    }
    client.shutdown_write();  // no more client bytes are coming
    const auto bytes = client.recv_until_eof();
    ASSERT_TRUE(bytes.ok());
    ASSERT_FALSE(bytes->empty());
    ASSERT_TRUE(frames.feed(*bytes).ok());
  }
  const auto reply = net::server::decode_tunnel_reply(reply_payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, proxy::ProxyStatus::kOk);
  EXPECT_FALSE(reply->zid.empty());
  EXPECT_FALSE(reply->chain.empty());

  EXPECT_EQ(fixture.counter("net.tunnel.handshakes"), 1u);
  fixture.pump();  // server observes our EOF
  EXPECT_EQ(fixture.counter("net.tunnel.closed"), 1u);
  EXPECT_EQ(fixture.counter("net.tunnel.client_disconnects"), 0u);
}

TEST(SocketServerTest, ConnectToDisallowedPortIsRefused) {
  TestProxyServer fixture(pumped());
  ASSERT_FALSE(fixture.world().https_sites.empty());
  const auto target = fixture.world().https_sites.front().address;

  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all(net::server::build_connect(target, 80, {})).ok());
  const auto refusal = client.recv_message();
  ASSERT_TRUE(refusal.ok());
  EXPECT_NE(refusal->find("HTTP/1.1 403"), std::string::npos);
  EXPECT_NE(refusal->find("X-TFT-Proxy-Status: port_not_allowed"),
            std::string::npos);
  const auto rest = client.recv_until_eof();
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->empty());

  EXPECT_EQ(fixture.counter("net.connect.rejected_port"), 1u);
  EXPECT_EQ(fixture.counter("net.connect.tunnels"), 0u);
}

TEST(SocketServerTest, GarbageRequestGets400AndClose) {
  TestProxyServer fixture(pumped());
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("NOT-HTTP AT ALL\r\n\r\n").ok());
  const auto response = client.recv_message();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("HTTP/1.1 400"), std::string::npos);
  const auto rest = client.recv_until_eof();
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->empty());
  EXPECT_EQ(fixture.counter("net.http.parse_errors"), 1u);
}

// Satellite regression: headers split across arbitrary TCP segment
// boundaries, through a real socket (one byte per write).
TEST(SocketServerTest, ByteAtATimeRequestStillParses) {
  TestProxyServer fixture(pumped());
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());
  const std::string request = simple_get();
  for (const char byte : request) {
    ASSERT_TRUE(client.send_all(std::string_view(&byte, 1)).ok());
    fixture.pump();
  }
  const auto response = client.recv_message();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(fixture.counter("net.http.requests"), 1u);
  EXPECT_EQ(fixture.counter("net.http.parse_errors"), 0u);
}

TEST(SocketServerTest, AbortedRequestCountsAsAborted) {
  TestProxyServer fixture(pumped());
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("GET http://half-a-request").ok());
  fixture.pump();
  client.close();  // hang up mid-head
  fixture.pump();
  EXPECT_EQ(fixture.counter("net.http.aborted"), 1u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);
}

// The run()-on-a-thread path: counters are asserted only after stop()
// joins the server thread (the happens-before edge).
TEST(SocketServerTest, ThreadedServerSmoke) {
  TestProxyServer fixture;  // threaded by default
  TestSocket client(fixture.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all(simple_get(/*close=*/true)).ok());
  const auto response = client.recv_message();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("HTTP/1.1 200"), std::string::npos);
  client.close();
  fixture.stop();
  EXPECT_EQ(fixture.counter("net.accepted"), 1u);
  EXPECT_EQ(fixture.counter("net.http.requests"), 1u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);
}

// Satellite regression: many connections expiring in the SAME deadline
// sweep must be classified independently — slow headers get a 408 and
// count as read timeouts, silent connections count as idle, and a peer
// with queued-but-unread responses counts as a write timeout WITHOUT a
// 408 (a raw 408 would splice garbage into the middle of the response
// stream it stopped reading).
TEST(SocketServerTest, SimultaneousExpirySplitsTimeoutClasses) {
  auto options = pumped();
  options.configure = [](ProxyServerConfig& config) {
    config.read_timeout_ms = 150;
    config.send_buffer_bytes = 4096;     // tiny SO_SNDBUF: writes back up
    config.max_outbox_bytes = 64 << 20;  // the cap must not fire here
  };
  TestProxyServer fixture(std::move(options));

  std::vector<std::unique_ptr<TestSocket>> idle, slow;
  for (int i = 0; i < 4; ++i) {
    idle.push_back(
        std::make_unique<TestSocket>(fixture.port(), &fixture.server()));
    ASSERT_TRUE(idle.back()->connected());
    slow.push_back(
        std::make_unique<TestSocket>(fixture.port(), &fixture.server()));
    ASSERT_TRUE(slow.back()->connected());
    ASSERT_TRUE(slow.back()->send_all("GET http://m1.probe.tft-s").ok());
  }
  // The slow reader: hundreds of pipelined requests, never reads a byte of
  // the responses — the outbox jams behind the tiny socket buffer.
  TestSocket reader_stall(fixture.port(), &fixture.server());
  ASSERT_TRUE(reader_stall.connected());
  std::string burst;
  for (int i = 0; i < 600; ++i) burst += simple_get();
  ASSERT_TRUE(reader_stall.send_all(burst).ok());
  fixture.pump();
  ASSERT_EQ(fixture.counter("net.accepted"), 9u);

  // One sweep reaps all nine.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  fixture.pump();
  EXPECT_EQ(fixture.counter("net.http.read_timeouts"), 4u);
  EXPECT_EQ(fixture.counter("net.http.idle_timeouts"), 4u);
  EXPECT_EQ(fixture.counter("net.http.write_timeouts"), 1u);
  EXPECT_EQ(fixture.counter("net.write_queue_overflows"), 0u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);

  // Slow-header peers got a parseable 408; idle peers got silence.
  for (auto& client : slow) {
    const auto rest = client->recv_until_eof();
    ASSERT_TRUE(rest.ok());
    EXPECT_NE(rest->find("HTTP/1.1 408"), std::string::npos);
  }
  for (auto& client : idle) {
    const auto rest = client->recv_until_eof();
    ASSERT_TRUE(rest.ok());
    EXPECT_TRUE(rest->empty());
  }
  // The stalled reader's stream ends mid-response — but with NO 408 spliced
  // into it. Whatever arrived is a clean prefix of well-formed responses.
  const auto tail = reader_stall.recv_until_eof();
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->find("408"), std::string::npos);
}

// Accept-burst backpressure: beyond max_connections the server sheds new
// arrivals at accept time instead of grinding existing ones down.
TEST(SocketServerTest, AcceptBurstShedsBeyondMaxConnections) {
  auto options = pumped();
  options.configure = [](ProxyServerConfig& config) {
    config.max_connections = 2;
  };
  TestProxyServer fixture(std::move(options));

  TestSocket first(fixture.port(), &fixture.server());
  TestSocket second(fixture.port(), &fixture.server());
  TestSocket third(fixture.port(), &fixture.server());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  ASSERT_TRUE(third.connected());
  fixture.pump();

  EXPECT_EQ(fixture.counter("net.accepted"), 2u);
  EXPECT_EQ(fixture.counter("net.accept.rejected"), 1u);
  EXPECT_EQ(fixture.server().open_connections(), 2u);

  // The shed connection sees an immediate close...
  const auto rest = third.recv_until_eof();
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->empty());

  // ...while the admitted ones still get full service.
  ASSERT_TRUE(first.send_all(simple_get()).ok());
  const auto response = first.recv_message();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("HTTP/1.1 200"), std::string::npos);

  // Freeing a slot re-opens the door.
  second.close();
  fixture.pump();
  TestSocket fourth(fixture.port(), &fixture.server());
  ASSERT_TRUE(fourth.connected());
  ASSERT_TRUE(fourth.send_all(simple_get()).ok());
  ASSERT_TRUE(fourth.recv_message().ok());
  EXPECT_EQ(fixture.counter("net.accepted"), 3u);
}

// Per-connection write-queue cap: a peer that keeps asking but never reads
// is cut off once its pending outbox exceeds max_outbox_bytes — the queue
// must not grow without bound.
TEST(SocketServerTest, WriteQueueOverflowClosesConnection) {
  auto options = pumped();
  options.configure = [](ProxyServerConfig& config) {
    config.send_buffer_bytes = 4096;
    config.max_outbox_bytes = 16 * 1024;
  };
  TestProxyServer fixture(std::move(options));
  TestSocket client(fixture.port(), &fixture.server());
  ASSERT_TRUE(client.connected());

  std::string burst;
  for (int i = 0; i < 600; ++i) burst += simple_get();
  ASSERT_TRUE(client.send_all(burst).ok());
  fixture.pump();

  EXPECT_EQ(fixture.counter("net.write_queue_overflows"), 1u);
  EXPECT_EQ(fixture.server().open_connections(), 0u);
  const auto rest = client.recv_until_eof();
  ASSERT_TRUE(rest.ok());  // stream ends; whatever arrived is a clean prefix
}

// Everything the fixture opens — listener, epoll, eventfd, connections —
// must be gone when it leaves scope.
TEST(SocketServerTest, FixtureLeaksNoFds) {
  const std::size_t before = open_fd_count();
  {
    TestProxyServer fixture(pumped());
    TestSocket client(fixture.port(), &fixture.server());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all(simple_get()).ok());
    ASSERT_TRUE(client.recv_message().ok());
    TestSocket second(fixture.port(), &fixture.server());
    ASSERT_TRUE(second.connected());
    fixture.pump();
    EXPECT_EQ(fixture.server().open_connections(), 2u);
  }
  EXPECT_EQ(open_fd_count(), before);
}

}  // namespace
}  // namespace tft::testing
