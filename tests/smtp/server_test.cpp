#include "tft/smtp/server.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace tft::smtp {
namespace {

const net::Ipv4Address kClient(203, 0, 113, 8);

class SmtpServerTest : public ::testing::Test {
 protected:
  SmtpServerTest()
      : server_(SmtpServer::Config{"mail.tft-study.net", "TFT-SMTPD 1.0", true, true}),
        session_(server_.open(kClient, sim::Instant::epoch())) {}

  SmtpServer server_;
  SmtpServer::Session session_;
};

TEST_F(SmtpServerTest, Banner) {
  const Reply banner = server_.banner();
  EXPECT_EQ(banner.code, 220);
  EXPECT_EQ(banner.lines.front(), "mail.tft-study.net ESMTP TFT-SMTPD 1.0");
}

TEST_F(SmtpServerTest, EhloAdvertisesCapabilities) {
  const Reply reply = session_.handle_line("EHLO probe.tft-study.net");
  EXPECT_EQ(reply.code, 250);
  EXPECT_TRUE(reply.has_capability("STARTTLS"));
  EXPECT_TRUE(reply.has_capability("PIPELINING"));
  EXPECT_TRUE(reply.has_capability("8BITMIME"));
}

TEST_F(SmtpServerTest, StarttlsUpgrade) {
  session_.handle_line("EHLO probe");
  const Reply reply = session_.handle_line("STARTTLS");
  EXPECT_EQ(reply.code, 220);
  EXPECT_TRUE(session_.tls_active());
  // After the upgrade, EHLO no longer advertises STARTTLS.
  EXPECT_FALSE(session_.handle_line("EHLO probe").has_capability("STARTTLS"));
  // And a second STARTTLS is rejected.
  EXPECT_EQ(session_.handle_line("STARTTLS").code, 503);
}

TEST_F(SmtpServerTest, StarttlsUnsupportedServer) {
  SmtpServer plain(SmtpServer::Config{"plain.example", "X", false, true});
  auto session = plain.open(kClient, sim::Instant::epoch());
  session.handle_line("EHLO probe");
  EXPECT_EQ(session.handle_line("STARTTLS").code, 502);
}

TEST_F(SmtpServerTest, FullTransactionDeliversMessage) {
  session_.handle_line("EHLO probe");
  EXPECT_EQ(session_.handle_line("MAIL FROM:<a@b.c>").code, 250);
  EXPECT_EQ(session_.handle_line("RCPT TO:<x@y.z>").code, 250);
  EXPECT_EQ(session_.handle_line("RCPT TO:<w@y.z>").code, 250);
  EXPECT_EQ(session_.handle_line("DATA").code, 354);
  EXPECT_TRUE(session_.in_data_mode());
  session_.handle_line("Subject: hi");
  session_.handle_line("");
  session_.handle_line("body line");
  const Reply accepted = session_.handle_line(".");
  EXPECT_EQ(accepted.code, 250);
  EXPECT_FALSE(session_.in_data_mode());

  ASSERT_EQ(server_.received().size(), 1u);
  const ReceivedMessage& message = server_.received().front();
  EXPECT_EQ(message.mail_from, "<a@b.c>");
  ASSERT_EQ(message.rcpt_to.size(), 2u);
  EXPECT_EQ(message.rcpt_to[0], "<x@y.z>");
  EXPECT_EQ(message.body, "Subject: hi\n\nbody line\n");
  EXPECT_EQ(message.client, kClient);
  EXPECT_FALSE(message.over_tls);
}

TEST_F(SmtpServerTest, TlsFlagRecordedOnMessages) {
  session_.handle_line("EHLO probe");
  session_.handle_line("STARTTLS");
  session_.handle_line("MAIL FROM:<a@b.c>");
  session_.handle_line("RCPT TO:<x@y.z>");
  session_.handle_line("DATA");
  session_.handle_line(".");
  ASSERT_EQ(server_.received().size(), 1u);
  EXPECT_TRUE(server_.received().front().over_tls);
}

TEST_F(SmtpServerTest, SequenceEnforcement) {
  EXPECT_EQ(session_.handle_line("MAIL FROM:<a@b.c>").code, 503);  // no EHLO
  session_.handle_line("EHLO probe");
  EXPECT_EQ(session_.handle_line("RCPT TO:<x@y.z>").code, 503);  // no MAIL
  session_.handle_line("MAIL FROM:<a@b.c>");
  EXPECT_EQ(session_.handle_line("DATA").code, 503);  // no RCPT
}

TEST_F(SmtpServerTest, SyntaxErrors) {
  session_.handle_line("EHLO probe");
  EXPECT_EQ(session_.handle_line("MAIL TO:<a@b.c>").code, 501);
  session_.handle_line("MAIL FROM:<a@b.c>");
  EXPECT_EQ(session_.handle_line("RCPT FROM:<a@b.c>").code, 501);
  EXPECT_EQ(session_.handle_line("BOGUS").code, 502);
  EXPECT_EQ(session_.handle_line("@@@").code, 500);
}

TEST_F(SmtpServerTest, RsetClearsEnvelope) {
  session_.handle_line("EHLO probe");
  session_.handle_line("MAIL FROM:<a@b.c>");
  session_.handle_line("RSET");
  EXPECT_EQ(session_.handle_line("RCPT TO:<x@y.z>").code, 503);
}

TEST_F(SmtpServerTest, QuitAndNoop) {
  session_.handle_line("EHLO probe");
  EXPECT_EQ(session_.handle_line("NOOP").code, 250);
  EXPECT_EQ(session_.handle_line("QUIT").code, 221);
}

TEST(SmtpRegistryTest, RoutesByAddress) {
  SmtpServerRegistry registry;
  auto server = std::make_shared<SmtpServer>(SmtpServer::Config{});
  const net::Ipv4Address address(198, 51, 100, 25);
  registry.add(address, server);
  EXPECT_EQ(registry.find(address), server.get());
  EXPECT_EQ(registry.find(net::Ipv4Address(1, 1, 1, 1)), nullptr);
}

}  // namespace
}  // namespace tft::smtp
