// Absolute-form URL parsing (the form HTTP proxies receive:
// "GET http://host/path"). Only http/https schemes are modeled.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "tft/util/result.hpp"

namespace tft::http {

struct Url {
  std::string scheme;  // "http" | "https"
  std::string host;    // lowercased
  std::uint16_t port = 80;
  std::string path = "/";   // always starts with '/'
  std::string query;        // without '?', may be empty

  /// Parse an absolute URL. Rejects unknown schemes, empty hosts and
  /// malformed ports. Defaults port from the scheme.
  static util::Result<Url> parse(std::string_view text);

  /// Recompose; omits default ports.
  std::string to_string() const;

  /// "host" or "host:port" as used in a Host header (default port omitted).
  std::string host_header() const;

  /// Path plus "?query" when non-empty (origin-form request target).
  std::string request_target() const;

  bool operator==(const Url&) const = default;
};

}  // namespace tft::http
