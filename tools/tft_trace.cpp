// tft-trace: forensics over flight-recorder trace files.
//
//   tft-study --mini --trace-out trace.ndjson
//   tft-trace --in trace.ndjson --summarize
//   tft-trace --in trace.ndjson --verdict hijacked
//   tft-trace --in trace.ndjson --txn 0x2f91b776b258a4a7
//
// Answers the question the aggregate report cannot: for one attributed
// violation, what exactly happened at every hop — and which middlebox or
// resolver is to blame. `--txn` replays the full chain as a hop table;
// the filter flags (--node / --asn / --verdict / --kind) list matching
// transactions one per line so their ids can be fed back into --txn.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tft/obs/recorder.hpp"
#include "tft/obs/trace_codec.hpp"
#include "tft/util/flags.hpp"

namespace {

constexpr const char* kUsage = R"(tft-trace: flight-recorder forensics (see tft-study --trace-out)

Flags:
  --in <path>        trace file to load (NDJSON of tft-txn lines); required
  --txn <0x...>      print the full hop-by-hop chain of one transaction
  --node <zid>       list transactions served by this exit node
  --asn <n>          list transactions attributed to this AS
  --verdict <v>      list transactions with this verdict (e.g. hijacked,
                     injected, replaced, monitored, clean)
  --kind <k>         list transactions of one probe kind
                     (dns|http|https|monitor|smtp)
  --summarize        aggregate counts by kind, verdict, and culprit
  --help             this text

Filter flags combine (AND). With no query flag, prints the transaction
count and exits.
)";

int fail(const std::string& message) {
  std::cerr << "tft-trace: " << message << "\n" << kUsage;
  return 2;
}

/// Parse a transaction id in the codec's "0x…" hex convention (decimal
/// accepted too, for hand-typed ids).
bool parse_txn_id(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

std::string hex_id(std::uint64_t txn_id) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(txn_id));
  return buffer;
}

/// One-line listing form: id, kind, verdict, node identity, target, blame.
void print_row(const tft::obs::TxnRecord& record) {
  std::cout << hex_id(record.txn_id) << "  " << record.kind;
  for (std::size_t i = record.kind.size(); i < 7; ++i) std::cout << ' ';
  std::cout << (record.verdict.empty() ? "?" : record.verdict);
  for (std::size_t i = record.verdict.empty() ? 1 : record.verdict.size();
       i < 16; ++i) {
    std::cout << ' ';
  }
  std::cout << (record.zid.empty() ? "-" : record.zid)
            << "  AS" << record.asn << "/"
            << (record.country.empty() ? "--" : record.country) << "  "
            << record.target;
  if (!record.culprit.empty()) std::cout << "  <- " << record.culprit;
  std::cout << "\n";
}

/// Full forensic view of one transaction: identity header plus the
/// hop-by-hop event table, naming the blamed middlebox / resolver.
void print_chain(const tft::obs::TxnRecord& record) {
  std::cout << "txn      " << hex_id(record.txn_id) << "\n"
            << "kind     " << record.kind << "\n"
            << "target   " << record.target << "\n"
            << "node     " << (record.zid.empty() ? "-" : record.zid) << "  AS"
            << record.asn << "  "
            << (record.country.empty() ? "--" : record.country) << "\n"
            << "verdict  " << (record.verdict.empty() ? "?" : record.verdict)
            << "\n"
            << "culprit  "
            << (record.culprit.empty() ? "- (no violating actor recorded)"
                                       : record.culprit)
            << "\n\n";

  // Column widths sized to content so the table stays readable for long
  // interceptor names and URLs alike.
  std::size_t hop_width = 3, actor_width = 5, action_width = 6;
  for (const auto& event : record.events) {
    hop_width = std::max(hop_width, tft::obs::to_string(event.hop).size());
    actor_width = std::max(actor_width, event.actor.size());
    action_width = std::max(action_width, event.action.size());
  }
  const auto pad = [](const std::string_view text, std::size_t width) {
    std::cout << text;
    for (std::size_t i = text.size(); i < width + 2; ++i) std::cout << ' ';
  };
  pad("t_us", 10);
  pad("hop", hop_width);
  pad("actor", actor_width);
  pad("action", action_width);
  std::cout << "detail\n";
  for (const auto& event : record.events) {
    char t_us[24];
    std::snprintf(t_us, sizeof(t_us), "%llu",
                  static_cast<unsigned long long>(event.sim_us));
    pad(t_us, 10);
    pad(tft::obs::to_string(event.hop), hop_width);
    pad(event.actor, actor_width);
    pad(event.action, action_width);
    std::cout << event.detail << "\n";
  }
  if (record.events.empty()) std::cout << "(no events recorded)\n";
}

void print_summary(const std::vector<tft::obs::TxnRecord>& records) {
  std::map<std::string, std::size_t> by_kind;
  std::map<std::string, std::size_t> by_verdict;
  std::map<std::string, std::size_t> by_culprit;
  for (const auto& record : records) {
    ++by_kind[record.kind];
    ++by_verdict[record.verdict.empty() ? "?" : record.verdict];
    if (!record.culprit.empty()) ++by_culprit[record.culprit];
  }
  std::cout << records.size() << " transactions\n\nby kind:\n";
  for (const auto& [kind, count] : by_kind) {
    std::cout << "  " << kind << ": " << count << "\n";
  }
  std::cout << "\nby verdict:\n";
  for (const auto& [verdict, count] : by_verdict) {
    std::cout << "  " << verdict << ": " << count << "\n";
  }
  // Culprits sorted by blame count: the "who is doing this" answer.
  std::vector<std::pair<std::string, std::size_t>> culprits(by_culprit.begin(),
                                                            by_culprit.end());
  std::sort(culprits.begin(), culprits.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::cout << "\nblamed actors:\n";
  for (const auto& [culprit, count] : culprits) {
    std::cout << "  " << culprit << ": " << count << "\n";
  }
  if (culprits.empty()) std::cout << "  (none)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using tft::util::Flags;
  const auto parsed = Flags::parse(argc, argv, {"summarize", "help"});
  if (!parsed.ok()) return fail(parsed.error().to_string());
  const Flags& flags = *parsed;

  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.unknown(
      {"in", "txn", "node", "asn", "verdict", "kind", "summarize", "help"});
  if (!unknown.empty()) return fail("unknown flag --" + unknown.front());

  const auto in = flags.get("in");
  if (!in) return fail("--in <trace file> is required");
  std::ifstream file(*in, std::ios::binary);
  if (!file) return fail("cannot read " + *in);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const auto decoded = tft::obs::decode_trace(buffer.str());
  if (!decoded.ok()) {
    std::cerr << "tft-trace: " << *in
              << " is not a valid trace: " << decoded.error().to_string()
              << "\n";
    return 1;
  }
  const std::vector<tft::obs::TxnRecord>& records = *decoded;

  if (const auto txn = flags.get("txn")) {
    std::uint64_t txn_id = 0;
    if (!parse_txn_id(*txn, txn_id)) {
      return fail("--txn wants a transaction id like 0x2f91b776b258a4a7");
    }
    for (const auto& record : records) {
      if (record.txn_id == txn_id) {
        print_chain(record);
        return 0;
      }
    }
    std::cerr << "tft-trace: transaction " << hex_id(txn_id) << " not in "
              << *in << " (sampled out, or from a different run?)\n";
    return 1;
  }

  const auto asn_flag = flags.get_int("asn", -1);
  if (!asn_flag.ok()) return fail(asn_flag.error().to_string());
  const auto node = flags.get("node");
  const auto verdict = flags.get("verdict");
  const auto kind = flags.get("kind");

  if (flags.get_bool("summarize")) {
    print_summary(records);
    return 0;
  }
  if (!node && !verdict && !kind && *asn_flag < 0) {
    std::cout << records.size() << " transactions in " << *in
              << " (use --summarize, --txn, or a filter flag)\n";
    return 0;
  }

  std::size_t matched = 0;
  for (const auto& record : records) {
    if (node && record.zid != *node) continue;
    if (*asn_flag >= 0 &&
        record.asn != static_cast<std::uint32_t>(*asn_flag)) {
      continue;
    }
    if (verdict && record.verdict != *verdict) continue;
    if (kind && record.kind != *kind) continue;
    print_row(record);
    ++matched;
  }
  std::cerr << matched << " of " << records.size() << " transactions matched\n";
  return 0;
}
