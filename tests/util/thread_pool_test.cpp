#include "tft/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "tft/util/rng.hpp"

namespace tft::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> results;
  for (int i = 0; i < 32; ++i) {
    results.push_back(pool.submit([i, &counter] {
      ++counter;
      return i * i;
    }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, SubmitAcceptsMoveOnlyTasks) {
  ThreadPool pool(2);
  auto payload = std::make_unique<int>(7);
  auto result =
      pool.submit([payload = std::move(payload)] { return *payload * 3; });
  EXPECT_EQ(result.get(), 21);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto result = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(result.get(), std::runtime_error);
}

TEST(ShardingTest, ShardCountDependsOnlyOnInput) {
  EXPECT_EQ(shard_count(0), 0u);  // no items, no shards
  EXPECT_EQ(shard_count(1), 1u);
  EXPECT_EQ(shard_count(256), 1u);
  EXPECT_EQ(shard_count(257), 2u);
  // Huge inputs are capped.
  EXPECT_EQ(shard_count(1u << 24), 64u);
  // Custom grain.
  EXPECT_EQ(shard_count(100, 10), 10u);
}

TEST(ShardingTest, ShardSeedsAreDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t shard = 0; shard < 256; ++shard) {
    seeds.insert(shard_seed(0x2016, shard));
  }
  EXPECT_EQ(seeds.size(), 256u);
  // And distinct from the raw xor (it is mixed, not just offset).
  EXPECT_NE(shard_seed(0x2016, 1), 0x2016 ^ 1u);
}

TEST(ShardingTest, ParallelForShardsCoversRangeExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    const std::size_t n = 1000;
    std::vector<int> hits(n, 0);
    parallel_for_shards(n, shard_count(n, 37), jobs,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) ++hits[i];
                        });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n))
        << "jobs=" << jobs;
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

std::vector<std::string> shard_labels(std::size_t jobs) {
  // Per-shard RNG streams: results must not depend on worker count.
  return parallel_map_shards<std::string>(
      500, shard_count(500, 17), jobs,
      [](std::size_t shard, std::size_t begin, std::size_t end) {
        Rng rng(shard_seed(0xABCD, shard));
        std::vector<std::string> out;
        for (std::size_t i = begin; i < end; ++i) {
          out.push_back(std::to_string(i) + ":" +
                        std::to_string(rng.next_u64()));
        }
        return out;
      });
}

TEST(ShardingTest, ParallelMapShardsIsWorkerCountInvariant) {
  const auto sequential = shard_labels(1);
  ASSERT_EQ(sequential.size(), 500u);
  EXPECT_EQ(shard_labels(2), sequential);
  EXPECT_EQ(shard_labels(8), sequential);
}

TEST(ShardingTest, ParallelForShardsRethrowsFromShard) {
  EXPECT_THROW(
      parallel_for_shards(100, 4, 2,
                          [](std::size_t shard, std::size_t, std::size_t) {
                            if (shard == 2) throw std::runtime_error("shard");
                          }),
      std::runtime_error);
}

}  // namespace
}  // namespace tft::util
