// Content monitoring (§7): software or middleboxes that record the URLs a
// user requests and later re-fetch them from their own infrastructure. The
// per-entity delay models here generate Figure 5's CDFs; the prefetch
// behaviour models Bluecoat's fetch-before-forward proxies.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tft/middlebox/interceptor.hpp"

namespace tft::middlebox {

/// One scheduled re-fetch of a monitored URL.
struct RefetchSpec {
  /// Delay after the user's request, sampled log-uniformly in
  /// [min_delay_s, max_delay_s] (matching the straight-line-on-log-x CDF
  /// segments of Figure 5). Set both equal for a fixed delay (TalkTalk's
  /// exactly-30s first request).
  double min_delay_s = 1.0;
  double max_delay_s = 60.0;
  /// With this probability the re-fetch instead happens *before* the
  /// user's request reaches the server: the monitor fetches immediately
  /// and holds the user's request for `hold_s` (Bluecoat: 83%).
  double prefetch_probability = 0.0;
  double hold_s = 0.5;
  /// Fixed index into the profile's source addresses (AnchorFree's second
  /// request always comes from Menlo Park); nullopt = random source.
  std::optional<std::size_t> source_index;
};

struct MonitorProfile {
  std::string name;                                // "Trend Micro"
  std::vector<net::Ipv4Address> source_addresses;  // where re-fetches originate
  std::string user_agent;                          // re-fetch User-Agent
  std::vector<RefetchSpec> refetches;
  /// Fraction of requests monitored (TalkTalk monitored ~45% of nodes;
  /// per-request sampling also occurs).
  double probability = 1.0;
};

class ContentMonitor : public HttpInterceptor {
 public:
  explicit ContentMonitor(MonitorProfile profile) : profile_(std::move(profile)) {}

  std::string_view name() const override { return profile_.name; }

  /// Never short-circuits; schedules re-fetches and may add a hold.
  std::optional<http::Response> before_request(const http::Request& request,
                                               FetchContext& context) override;

  const MonitorProfile& profile() const noexcept { return profile_; }

 private:
  MonitorProfile profile_;
};

/// VPN services (AnchorFree) relay the user's own request through their
/// egress network, so the origin sees a VPN address instead of the exit
/// node's. Attach before any monitor so the rewrite is visible to it.
class VpnEgressRewriter : public HttpInterceptor {
 public:
  VpnEgressRewriter(std::string name, std::vector<net::Ipv4Address> egress_addresses)
      : name_(std::move(name)), egress_addresses_(std::move(egress_addresses)) {}

  std::string_view name() const override { return name_; }
  std::optional<http::Response> before_request(const http::Request& request,
                                               FetchContext& context) override;

 private:
  std::string name_;
  std::vector<net::Ipv4Address> egress_addresses_;
};

}  // namespace tft::middlebox
