#include "tft/util/json.hpp"

#include <cmath>
#include <cstdio>

namespace tft::util {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::set_sink(Sink sink, std::size_t flush_threshold) {
  sink_ = std::move(sink);
  flush_threshold_ = flush_threshold;
}

void JsonWriter::flush() {
  if (!sink_ || out_.empty()) return;
  flushed_bytes_ += out_.size();
  sink_(out_);
  out_.clear();
}

void JsonWriter::maybe_flush() {
  if (sink_ && out_.size() >= flush_threshold_) flush();
}

void JsonWriter::comma() {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_.push_back(true);
  has_items_.push_back(false);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  stack_.push_back(true);
  has_items_.push_back(false);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_.push_back(false);
  has_items_.push_back(false);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  stack_.push_back(false);
  has_items_.push_back(false);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  if (std::isfinite(number)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", number);
    out_ += buffer;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view text) {
  key_prefix(key);
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, double number) {
  key_prefix(key);
  if (std::isfinite(number)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", number);
    out_ += buffer;
  } else {
    out_ += "null";
  }
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::int64_t number) {
  key_prefix(key);
  out_ += std::to_string(number);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t number) {
  key_prefix(key);
  out_ += std::to_string(number);
  maybe_flush();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool flag) {
  key_prefix(key);
  out_ += flag ? "true" : "false";
  maybe_flush();
  return *this;
}

}  // namespace tft::util
