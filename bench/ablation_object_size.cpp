// Ablation (§5.1): "we initially tried using very small files ... but found
// that when fetched objects [were] smaller than 1 KB, we observed much
// lower levels of content modification." Injectors skip tiny objects (not
// worth the breakage), so a probe with sub-1KB objects under-detects.
// This bench sweeps the probe HTML size and reports the detection rate.
#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.04);
  const auto base = tft::bench::study_config(options);

  std::cout << tft::stats::banner("Ablation: probe object size (S5.1)");
  tft::stats::Table table({"HTML object size", "Measured", "HTML modified",
                           "Detection rate"});
  for (const std::size_t bytes : {std::size_t{512}, std::size_t{2048}, std::size_t{9216}, std::size_t{65536}}) {
    auto spec = tft::world::paper_spec();
    spec.probe_html_bytes = bytes;
    auto world = tft::world::build_world(spec, options.scale, options.seed);
    tft::core::HttpModificationProbe probe(*world, base.http);
    probe.run();
    const auto report =
        tft::core::analyze_http(*world, probe.observations(), base.http_analysis);
    table.add_row({std::to_string(bytes) + " B",
                   tft::util::format_count(report.total_nodes),
                   tft::util::format_count(report.html_modified),
                   report.total_nodes == 0
                       ? "0%"
                       : tft::util::format_percent(
                             static_cast<double>(report.html_modified) /
                                 report.total_nodes,
                             2)});
  }
  std::cout << table.render() << "\n";
  std::cout << "Reading: ad injectors skip sub-1KB objects, so a 512 B probe\n"
               "page detects almost nothing; the paper settled on 9 KB.\n";
  return 0;
}
