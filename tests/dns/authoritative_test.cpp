#include "tft/dns/authoritative.hpp"

#include <gtest/gtest.h>

namespace tft::dns {
namespace {

const net::Ipv4Address kClient(203, 0, 113, 5);
const net::Ipv4Address kGoogleEgress(74, 125, 10, 20);

class AuthoritativeTest : public ::testing::Test {
 protected:
  AuthoritativeTest() : server_(*DnsName::parse("tft-study.net")) {
    server_.add_a(*DnsName::parse("web.tft-study.net"), net::Ipv4Address(198, 51, 100, 1));
  }

  Message ask(const std::string& name, RecordType type = RecordType::kA,
              net::Ipv4Address source = kClient) {
    const auto query = Message::query(1, *DnsName::parse(name), type);
    return server_.handle(query, source, sim::Instant::epoch());
  }

  AuthoritativeServer server_;
};

TEST_F(AuthoritativeTest, AnswersKnownName) {
  const auto response = ask("web.tft-study.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  EXPECT_TRUE(response.flags.authoritative);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].a_address()->to_string(), "198.51.100.1");
}

TEST_F(AuthoritativeTest, NxdomainForUnknownName) {
  const auto response = ask("missing.tft-study.net");
  EXPECT_TRUE(response.is_nxdomain());
  EXPECT_TRUE(response.answers.empty());
}

TEST_F(AuthoritativeTest, NodataForKnownNameWrongType) {
  const auto response = ask("web.tft-study.net", RecordType::kTxt);
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  EXPECT_TRUE(response.answers.empty());
}

TEST_F(AuthoritativeTest, RefusesOutOfZone) {
  const auto response = ask("www.google.com");
  EXPECT_EQ(response.flags.rcode, Rcode::kRefused);
}

TEST_F(AuthoritativeTest, WildcardSynthesis) {
  server_.add_wildcard_a(*DnsName::parse("probe.tft-study.net"),
                         net::Ipv4Address(198, 51, 100, 2));
  const auto response = ask("node-abc123.probe.tft-study.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].a_address()->to_string(), "198.51.100.2");
  EXPECT_EQ(response.answers[0].name.to_string(), "node-abc123.probe.tft-study.net");
}

TEST_F(AuthoritativeTest, ExactRecordBeatsWildcard) {
  server_.add_wildcard_a(*DnsName::parse("tft-study.net"), net::Ipv4Address(9, 9, 9, 9));
  const auto response = ask("web.tft-study.net");
  EXPECT_EQ(response.answers[0].a_address()->to_string(), "198.51.100.1");
}

TEST_F(AuthoritativeTest, MoreSpecificWildcardWins) {
  server_.add_wildcard_a(*DnsName::parse("tft-study.net"), net::Ipv4Address(1, 1, 1, 1));
  server_.add_wildcard_a(*DnsName::parse("deep.tft-study.net"), net::Ipv4Address(2, 2, 2, 2));
  EXPECT_EQ(ask("x.deep.tft-study.net").answers[0].a_address()->to_string(), "2.2.2.2");
  EXPECT_EQ(ask("x.other.tft-study.net").answers[0].a_address()->to_string(), "1.1.1.1");
}

TEST_F(AuthoritativeTest, WildcardDoesNotMatchApexItself) {
  server_.add_wildcard_a(*DnsName::parse("probe.tft-study.net"), net::Ipv4Address(2, 2, 2, 2));
  const auto response = ask("probe.tft-study.net");
  EXPECT_TRUE(response.is_nxdomain());
}

TEST_F(AuthoritativeTest, SourceConditionalPolicy) {
  // The paper's d2 trick: A record only for Google's egress netblock.
  const auto d2 = *DnsName::parse("d2.cond.tft-study.net");
  const auto google_block = *net::Ipv4Prefix::parse("74.125.0.0/16");
  server_.set_policy([d2, google_block](const Question& question,
                                        net::Ipv4Address source,
                                        const Message& query) -> std::optional<Message> {
    if (!question.name.equals(d2)) return std::nullopt;
    if (google_block.contains(source)) {
      auto response = Message::response_to(query, Rcode::kNoError);
      response.flags.authoritative = true;
      response.answers.push_back(ResourceRecord::a(question.name, net::Ipv4Address(198, 51, 100, 1)));
      return response;
    }
    return Message::response_to(query, Rcode::kNxDomain);
  });

  EXPECT_EQ(ask("d2.cond.tft-study.net", RecordType::kA, kGoogleEgress).flags.rcode,
            Rcode::kNoError);
  EXPECT_TRUE(ask("d2.cond.tft-study.net", RecordType::kA, kClient).is_nxdomain());
  // Policy does not affect other names.
  EXPECT_EQ(ask("web.tft-study.net").flags.rcode, Rcode::kNoError);
}

TEST_F(AuthoritativeTest, QueryLogRecordsSourcesAndNames) {
  ask("web.tft-study.net");
  ask("missing.tft-study.net", RecordType::kA, kGoogleEgress);
  const auto& log = server_.query_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].source, kClient);
  EXPECT_EQ(log[0].name.to_string(), "web.tft-study.net");
  EXPECT_EQ(log[1].source, kGoogleEgress);
  server_.clear_query_log();
  EXPECT_TRUE(server_.query_log().empty());
}

TEST_F(AuthoritativeTest, EmptyQuestionIsFormErr) {
  Message query;
  query.id = 5;
  const auto response = server_.handle(query, kClient, sim::Instant::epoch());
  EXPECT_EQ(response.flags.rcode, Rcode::kFormErr);
}

TEST_F(AuthoritativeTest, MultipleARecordsAllReturned) {
  server_.add_a(*DnsName::parse("multi.tft-study.net"), net::Ipv4Address(10, 0, 0, 1));
  server_.add_a(*DnsName::parse("multi.tft-study.net"), net::Ipv4Address(10, 0, 0, 2));
  const auto response = ask("multi.tft-study.net");
  EXPECT_EQ(response.answers.size(), 2u);
}

}  // namespace
}  // namespace tft::dns
