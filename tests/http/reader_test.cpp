#include "tft/http/reader.hpp"

#include <gtest/gtest.h>

#include <string>

#include "tft/http/message.hpp"

namespace tft::http {
namespace {

constexpr std::string_view kGet =
    "GET http://example.com/ HTTP/1.1\r\nHost: example.com\r\n\r\n";
constexpr std::string_view kPost =
    "POST /submit HTTP/1.1\r\nHost: example.com\r\nContent-Length: 5\r\n\r\n"
    "hello";

TEST(MessageReaderTest, WholeMessageInOneFeed) {
  MessageReader reader;
  ASSERT_TRUE(reader.feed(kGet).ok());
  const auto message = reader.next_message();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, kGet);
  EXPECT_FALSE(reader.next_message().has_value());
  EXPECT_EQ(reader.partial_bytes(), 0u);
}

// The regression the socket front-end exists to guard: TCP hands the server
// arbitrary segments, so every split point of the wire image — including
// one byte at a time — must frame identically.
TEST(MessageReaderTest, ByteAtATimeFeed) {
  MessageReader reader;
  for (const char byte : kPost) {
    ASSERT_TRUE(reader.feed(std::string_view(&byte, 1)).ok());
  }
  const auto message = reader.next_message();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, kPost);
  const auto parsed = Request::parse(*message);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body, "hello");
}

TEST(MessageReaderTest, EverySplitPointOfHeadAndBody) {
  for (std::size_t split = 1; split < kPost.size(); ++split) {
    MessageReader reader;
    ASSERT_TRUE(reader.feed(kPost.substr(0, split)).ok());
    ASSERT_TRUE(reader.feed(kPost.substr(split)).ok());
    const auto message = reader.next_message();
    ASSERT_TRUE(message.has_value()) << "split at " << split;
    EXPECT_EQ(*message, kPost) << "split at " << split;
  }
}

// The terminator scan must resume far enough back to see a "\r\n\r\n" that
// straddles two feeds.
TEST(MessageReaderTest, TerminatorStraddlesFeeds) {
  MessageReader reader;
  const std::string head = "GET / HTTP/1.1\r\nHost: h\r";
  ASSERT_TRUE(reader.feed(head).ok());
  EXPECT_FALSE(reader.next_message().has_value());
  ASSERT_TRUE(reader.feed("\n\r\n").ok());
  const auto message = reader.next_message();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, head + "\n\r\n");
}

TEST(MessageReaderTest, PipelinedMessagesInOneFeed) {
  MessageReader reader;
  std::string wire;
  wire.append(kGet);
  wire.append(kPost);
  wire.append(kGet);
  ASSERT_TRUE(reader.feed(wire).ok());
  EXPECT_EQ(reader.ready(), 3u);
  EXPECT_EQ(*reader.next_message(), kGet);
  EXPECT_EQ(*reader.next_message(), kPost);
  EXPECT_EQ(*reader.next_message(), kGet);
  EXPECT_FALSE(reader.next_message().has_value());
}

TEST(MessageReaderTest, BodySplitAcrossFeeds) {
  MessageReader reader;
  ASSERT_TRUE(reader.feed(kPost.substr(0, kPost.size() - 2)).ok());
  EXPECT_FALSE(reader.next_message().has_value());
  EXPECT_GT(reader.partial_bytes(), 0u);
  ASSERT_TRUE(reader.feed(kPost.substr(kPost.size() - 2)).ok());
  EXPECT_EQ(*reader.next_message(), kPost);
}

TEST(MessageReaderTest, TakeLeftoverSurrendersTunnelBytes) {
  MessageReader reader;
  std::string wire(kGet);
  wire += std::string("\x00\x00\x00\x04", 4);  // tunnel bytes behind the head
  wire += "TFTH";
  ASSERT_TRUE(reader.feed(wire).ok());
  EXPECT_EQ(*reader.next_message(), kGet);
  EXPECT_EQ(reader.take_leftover(), std::string("\x00\x00\x00\x04", 4) + "TFTH");
  EXPECT_EQ(reader.partial_bytes(), 0u);
}

// Satellite regression: the proxy's CONNECT-upgrade path. Queued GETs are
// pipelined ahead of a CONNECT whose tunnel bytes follow immediately; at
// EVERY split boundary of the wire image, consuming the GETs and the
// CONNECT must leave take_leftover() holding exactly the tunnel bytes.
TEST(MessageReaderTest, ConnectAfterPipelinedGetsLeftoverAtEverySplit) {
  constexpr std::string_view kConnect =
      "CONNECT 93.184.216.34:443 HTTP/1.1\r\nHost: 93.184.216.34:443\r\n\r\n";
  std::string tunnel_bytes("\x00\x00\x00\x08", 4);  // one framed payload
  tunnel_bytes += "TFTHsni!";
  std::string wire;
  wire.append(kGet);
  wire.append(kGet);
  wire.append(kConnect);
  wire.append(tunnel_bytes);

  for (std::size_t split = 0; split <= wire.size(); ++split) {
    MessageReader reader;
    if (split > 0) {
      ASSERT_TRUE(reader.feed(wire.substr(0, split)).ok()) << split;
    }
    if (split < wire.size()) {
      ASSERT_TRUE(reader.feed(wire.substr(split)).ok()) << split;
    }
    ASSERT_EQ(*reader.next_message(), kGet) << "split at " << split;
    ASSERT_EQ(*reader.next_message(), kGet) << "split at " << split;
    ASSERT_EQ(*reader.next_message(), kConnect) << "split at " << split;
    EXPECT_FALSE(reader.next_message().has_value()) << "split at " << split;
    EXPECT_EQ(reader.take_leftover(), tunnel_bytes) << "split at " << split;
    EXPECT_EQ(reader.partial_bytes(), 0u) << "split at " << split;
  }
}

// After take_leftover() the reader must be reusable from a clean slate —
// the surrendered bytes are gone, not lurking in the scan window.
TEST(MessageReaderTest, ReaderIsCleanAfterTakeLeftover) {
  MessageReader reader;
  std::string wire(kGet);
  wire += "leftover-bytes";
  ASSERT_TRUE(reader.feed(wire).ok());
  ASSERT_TRUE(reader.next_message().has_value());
  EXPECT_EQ(reader.take_leftover(), "leftover-bytes");

  ASSERT_TRUE(reader.feed(kPost).ok());
  const auto message = reader.next_message();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, kPost);
  EXPECT_EQ(reader.take_leftover(), "");
}

TEST(MessageReaderTest, OversizeHeadFails) {
  MessageReader reader(MessageReader::Limits{64, 1024});
  const std::string long_head =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(100, 'a');
  EXPECT_FALSE(reader.feed(long_head).ok());
}

TEST(MessageReaderTest, OversizeBodyFails) {
  MessageReader reader(MessageReader::Limits{1024, 16});
  EXPECT_FALSE(
      reader.feed("POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n").ok());
}

TEST(MessageReaderTest, MalformedContentLengthFails) {
  MessageReader reader;
  EXPECT_FALSE(
      reader.feed("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").ok());
}

TEST(MessageReaderTest, ConflictingContentLengthsFail) {
  MessageReader reader;
  EXPECT_FALSE(reader
                   .feed("POST / HTTP/1.1\r\nContent-Length: 4\r\n"
                         "Content-Length: 5\r\n\r\n")
                   .ok());
}

TEST(MessageReaderTest, ChunkedFramingRejected) {
  MessageReader reader;
  EXPECT_FALSE(
      reader.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").ok());
}

TEST(MessageReaderTest, ErrorsAreSticky) {
  MessageReader reader;
  ASSERT_FALSE(
      reader.feed("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").ok());
  const auto after = reader.feed(kGet);
  EXPECT_FALSE(after.ok());
  EXPECT_FALSE(reader.next_message().has_value());
}

}  // namespace
}  // namespace tft::http
