// SMTP protocol primitives (RFC 5321 subset): command lines and
// (possibly multiline) replies. This substrate backs the paper's §3.4
// future-work extension: measuring end-to-end violations in SMTP through
// VPN services that tunnel arbitrary traffic.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"

namespace tft::smtp {

/// A client command: verb (upper-cased canonical) plus the argument text.
struct Command {
  std::string verb;      // "EHLO", "MAIL", "RCPT", "DATA", "STARTTLS", "QUIT"
  std::string argument;  // e.g. "FROM:<probe@tft-study.net>"

  /// Parse a command line (without CRLF). Verb matching is case-insensitive.
  static util::Result<Command> parse(std::string_view line);

  std::string serialize() const;
};

/// A server reply: 3-digit code plus one or more text lines.
/// Multiline form: "250-first\r\n250-mid\r\n250 last\r\n".
struct Reply {
  int code = 250;
  std::vector<std::string> lines;

  static Reply single(int code, std::string_view text);
  static Reply multi(int code, std::vector<std::string> lines);

  bool positive() const noexcept { return code >= 200 && code < 400; }

  /// Wire form with CRLFs.
  std::string serialize() const;

  /// Parse a full (possibly multiline) reply.
  static util::Result<Reply> parse(std::string_view wire);

  /// True when any reply line equals `token` (case-insensitive) — used for
  /// EHLO capability checks such as STARTTLS.
  bool has_capability(std::string_view token) const;
};

}  // namespace tft::smtp
