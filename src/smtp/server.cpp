#include "tft/smtp/server.hpp"

#include "tft/util/strings.hpp"

namespace tft::smtp {

Reply SmtpServer::banner() const {
  return Reply::single(220, config_.hostname + " ESMTP " + config_.software);
}

Reply SmtpServer::Session::handle_line(std::string_view line) {
  if (in_data_) {
    if (util::trim(line) == ".") {
      in_data_ = false;
      server_->received_.push_back(ReceivedMessage{
          mail_from_, rcpt_to_, data_, client_, connected_at_, tls_active_});
      mail_from_.clear();
      rcpt_to_.clear();
      data_.clear();
      return Reply::single(250, "OK: message accepted");
    }
    data_.append(line);
    data_.append("\n");
    // No reply while accumulating DATA; callers should not send the next
    // command until the terminator. Model that with an empty 0-code reply.
    return Reply{0, {}};
  }

  const auto command = Command::parse(line);
  if (!command) {
    return Reply::single(500, "Syntax error, command unrecognized");
  }
  return handle_command(*command);
}

Reply SmtpServer::Session::handle_command(const Command& command) {
  if (command.verb == "HELO") {
    greeted_ = true;
    return Reply::single(250, server_->config_.hostname);
  }
  if (command.verb == "EHLO") {
    greeted_ = true;
    std::vector<std::string> lines = {server_->config_.hostname + " greets " +
                                      command.argument};
    if (server_->config_.supports_pipelining) lines.push_back("PIPELINING");
    if (server_->config_.supports_starttls && !tls_active_) {
      lines.push_back("STARTTLS");
    }
    lines.push_back("8BITMIME");
    return Reply::multi(250, std::move(lines));
  }
  if (command.verb == "STARTTLS") {
    if (!server_->config_.supports_starttls) {
      return Reply::single(502, "Command not implemented");
    }
    if (tls_active_) {
      return Reply::single(503, "TLS already active");
    }
    tls_active_ = true;
    return Reply::single(220, "Ready to start TLS");
  }
  if (!greeted_) {
    return Reply::single(503, "Bad sequence: say EHLO first");
  }
  if (command.verb == "MAIL") {
    if (!util::to_lower(command.argument).starts_with("from:")) {
      return Reply::single(501, "Syntax: MAIL FROM:<address>");
    }
    mail_from_ = std::string(util::trim(command.argument.substr(5)));
    return Reply::single(250, "OK");
  }
  if (command.verb == "RCPT") {
    if (mail_from_.empty()) {
      return Reply::single(503, "Bad sequence: MAIL first");
    }
    if (!util::to_lower(command.argument).starts_with("to:")) {
      return Reply::single(501, "Syntax: RCPT TO:<address>");
    }
    rcpt_to_.emplace_back(util::trim(command.argument.substr(3)));
    return Reply::single(250, "OK");
  }
  if (command.verb == "DATA") {
    if (rcpt_to_.empty()) {
      return Reply::single(503, "Bad sequence: RCPT first");
    }
    in_data_ = true;
    return Reply::single(354, "End data with <CR><LF>.<CR><LF>");
  }
  if (command.verb == "RSET") {
    mail_from_.clear();
    rcpt_to_.clear();
    data_.clear();
    in_data_ = false;
    return Reply::single(250, "OK");
  }
  if (command.verb == "NOOP") {
    return Reply::single(250, "OK");
  }
  if (command.verb == "QUIT") {
    return Reply::single(221, server_->config_.hostname + " closing connection");
  }
  return Reply::single(502, "Command not implemented");
}

void SmtpServerRegistry::add(net::Ipv4Address address,
                             std::shared_ptr<SmtpServer> server) {
  servers_[address.value()] = std::move(server);
}

SmtpServer* SmtpServerRegistry::find(net::Ipv4Address address) const {
  const auto it = servers_.find(address.value());
  return it == servers_.end() ? nullptr : it->second.get();
}

}  // namespace tft::smtp
