// AS-level topology model: Autonomous Systems, the organizations (ISPs)
// that operate them, and the countries those organizations are registered
// in. Mirrors the paper's §3.1 preliminaries: IP -> AS via RouteViews-style
// announcements, AS -> organization/country via a CAIDA-style database.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tft/net/ipv4.hpp"
#include "tft/net/prefix_table.hpp"
#include "tft/util/result.hpp"

namespace tft::net {

using Asn = std::uint32_t;
using OrgId = std::uint32_t;

/// ISO-3166-style two-letter country code (e.g. "US", "MY").
using CountryCode = std::string;

/// Broad category of the organization, used by the world generator and by
/// Table 7's mobile-ISP analysis.
enum class OrgKind {
  kBroadbandIsp,
  kMobileIsp,
  kHosting,
  kPublicDnsOperator,
  kSecurityVendor,
  kVpnProvider,
  kAcademic,
  kOther,
};

std::string_view to_string(OrgKind kind) noexcept;

/// An organization (ISP/company) that may operate several ASes.
struct Organization {
  OrgId id = 0;
  std::string name;
  CountryCode country;
  OrgKind kind = OrgKind::kOther;
};

/// CAIDA-style AS-to-organization database plus RouteViews-style
/// prefix-to-AS announcements.
class AsOrgDb {
 public:
  /// Register an organization; returns its id. Names need not be unique
  /// (real-world orgs collide), ids are.
  OrgId add_organization(std::string name, CountryCode country, OrgKind kind);

  /// Register an AS operated by `org`. Re-registering an ASN overwrites.
  void add_as(Asn asn, OrgId org);

  /// Announce a prefix as originated by `asn` (RouteViews snapshot entry).
  void announce(Ipv4Prefix prefix, Asn asn);

  // --- Lookups used by the measurement pipeline ---------------------------

  std::optional<Asn> origin_as(Ipv4Address address) const;
  std::optional<OrgId> org_of(Asn asn) const;
  const Organization* organization(OrgId id) const;
  /// Organization operating the AS that originates `address`, if known.
  const Organization* organization_of(Ipv4Address address) const;
  std::optional<CountryCode> country_of(Asn asn) const;

  /// True when both addresses map to ASes run by the same organization.
  bool same_organization(Ipv4Address a, Ipv4Address b) const;

  std::vector<Asn> all_asns() const;
  std::size_t organization_count() const noexcept { return organizations_.size(); }
  std::size_t as_count() const noexcept { return as_to_org_.size(); }
  std::size_t announced_prefix_count() const noexcept { return prefixes_.size(); }

 private:
  std::vector<Organization> organizations_;
  std::unordered_map<Asn, OrgId> as_to_org_;
  PrefixTable<Asn> prefixes_;
};

}  // namespace tft::net
