#include "tft/net/topology.hpp"

#include <algorithm>

namespace tft::net {

std::string_view to_string(OrgKind kind) noexcept {
  switch (kind) {
    case OrgKind::kBroadbandIsp:
      return "broadband_isp";
    case OrgKind::kMobileIsp:
      return "mobile_isp";
    case OrgKind::kHosting:
      return "hosting";
    case OrgKind::kPublicDnsOperator:
      return "public_dns";
    case OrgKind::kSecurityVendor:
      return "security_vendor";
    case OrgKind::kVpnProvider:
      return "vpn_provider";
    case OrgKind::kAcademic:
      return "academic";
    case OrgKind::kOther:
      return "other";
  }
  return "unknown";
}

OrgId AsOrgDb::add_organization(std::string name, CountryCode country, OrgKind kind) {
  const OrgId id = static_cast<OrgId>(organizations_.size());
  organizations_.push_back(Organization{id, std::move(name), std::move(country), kind});
  return id;
}

void AsOrgDb::add_as(Asn asn, OrgId org) { as_to_org_[asn] = org; }

void AsOrgDb::announce(Ipv4Prefix prefix, Asn asn) { prefixes_.insert(prefix, asn); }

std::optional<Asn> AsOrgDb::origin_as(Ipv4Address address) const {
  return prefixes_.lookup(address);
}

std::optional<OrgId> AsOrgDb::org_of(Asn asn) const {
  const auto it = as_to_org_.find(asn);
  if (it == as_to_org_.end()) return std::nullopt;
  return it->second;
}

const Organization* AsOrgDb::organization(OrgId id) const {
  if (id >= organizations_.size()) return nullptr;
  return &organizations_[id];
}

const Organization* AsOrgDb::organization_of(Ipv4Address address) const {
  const auto asn = origin_as(address);
  if (!asn) return nullptr;
  const auto org = org_of(*asn);
  if (!org) return nullptr;
  return organization(*org);
}

std::optional<CountryCode> AsOrgDb::country_of(Asn asn) const {
  const auto org = org_of(asn);
  if (!org) return std::nullopt;
  const Organization* info = organization(*org);
  if (!info) return std::nullopt;
  return info->country;
}

bool AsOrgDb::same_organization(Ipv4Address a, Ipv4Address b) const {
  const Organization* org_a = organization_of(a);
  const Organization* org_b = organization_of(b);
  return org_a != nullptr && org_b != nullptr && org_a->id == org_b->id;
}

std::vector<Asn> AsOrgDb::all_asns() const {
  std::vector<Asn> out;
  out.reserve(as_to_org_.size());
  for (const auto& [asn, _] : as_to_org_) out.push_back(asn);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tft::net
