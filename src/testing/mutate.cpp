#include "tft/testing/mutate.hpp"

#include <algorithm>

namespace tft::testing {

using util::Rng;

const std::vector<std::string>& mutation_dictionary() {
  static const std::vector<std::string> kDictionary = {
      // HTTP chunked framing: terminators, extensions, and chunk sizes at
      // the edge of std::size_t (overflow bait for `length + 2` checks).
      "0\r\n\r\n",
      "\r\n\r\n",
      "ffffffffffffffff\r\n",
      "fffffffffffffffe\r\n",
      "7fffffffffffffff\r\n",
      "1;ext=1\r\n",
      "Transfer-Encoding: chunked\r\n",
      "Content-Length: 18446744073709551615\r\n",
      "Content-Length: -1\r\n",
      // DNS compression pointers: self-pointing, header-pointing, and the
      // reserved label types.
      std::string("\xc0\x00", 2),
      std::string("\xc0\x0c", 2),
      std::string("\xc0\xff", 2),
      std::string("\x40", 1),
      std::string("\x3f", 1),
      // TLS chain framing: magic, version, extreme counts and lengths.
      "TFTC",
      std::string("\xff\xff", 2),
      std::string("\x00\x00", 2),
      std::string("\xff\xff\xff\xff", 4),
      // SMTP reply shapes.
      "250-",
      "250 ",
      "599 x\r\n",
      // Tunnel frame layer (shared with the chaos client's malformed-frame
      // generator in src/net/client): payload magics and u32 length-prefix
      // extremes — empty, one, and just-under-2^31.
      "TFTH",
      "TFTR",
      std::string("\x00\x00\x00\x00", 4),
      std::string("\x00\x00\x00\x01", 4),
      std::string("\x7f\xff\xff\xff", 4),
      // JSON structure tokens.
      "{\"\":",
      "[[[[[[[[",
      "\\u0000",
      "\\ud800",
      "1e309",
  };
  return kDictionary;
}

std::string mutate_with(MutationKind kind, std::string_view input, Rng& rng) {
  std::string out(input);
  switch (kind) {
    case MutationKind::kBitFlip: {
      if (out.empty()) return out;
      const std::size_t at = rng.index(out.size());
      out[at] = static_cast<char>(out[at] ^ (1 << rng.index(8)));
      return out;
    }
    case MutationKind::kByteSet: {
      if (out.empty()) return out;
      out[rng.index(out.size())] = static_cast<char>(rng.next_u64() & 0xFF);
      return out;
    }
    case MutationKind::kByteSwap: {
      if (out.size() < 2) return out;
      const std::size_t a = rng.index(out.size());
      const std::size_t b = rng.index(out.size());
      std::swap(out[a], out[b]);
      return out;
    }
    case MutationKind::kTruncate: {
      if (out.empty()) return out;
      out.resize(rng.index(out.size()));
      return out;
    }
    case MutationKind::kDeleteBlock: {
      if (out.size() < 2) return out;
      const std::size_t begin = rng.index(out.size() - 1);
      const std::size_t length = 1 + rng.index(out.size() - begin - 1 + 1);
      out.erase(begin, length);
      return out;
    }
    case MutationKind::kDuplicateBlock: {
      if (out.empty()) return out;
      const std::size_t begin = rng.index(out.size());
      const std::size_t length =
          1 + rng.index(std::min<std::size_t>(out.size() - begin, 32));
      const std::string block = out.substr(begin, length);
      out.insert(begin, block);
      return out;
    }
    case MutationKind::kInsertRandom: {
      const std::size_t at = out.empty() ? 0 : rng.index(out.size() + 1);
      const std::size_t length = 1 + rng.index(16);
      std::string noise;
      for (std::size_t i = 0; i < length; ++i) {
        noise += static_cast<char>(rng.next_u64() & 0xFF);
      }
      out.insert(at, noise);
      return out;
    }
    case MutationKind::kMagicToken: {
      const auto& dictionary = mutation_dictionary();
      const std::string& token = dictionary[rng.index(dictionary.size())];
      const std::size_t at = out.empty() ? 0 : rng.index(out.size() + 1);
      if (!out.empty() && rng.chance(0.5)) {
        // Overwrite in place rather than insert, keeping framing offsets.
        const std::size_t length = std::min(token.size(), out.size() - at);
        out.replace(at, length, token.substr(0, length));
      } else {
        out.insert(at, token);
      }
      return out;
    }
    case MutationKind::kLengthSmash: {
      if (out.size() < 2) return out;
      const std::size_t at = rng.index(out.size() - 1);
      static constexpr std::uint16_t kExtremes[] = {0x0000, 0x0001, 0x00FF,
                                                    0x7FFF, 0x8000, 0xFFFE,
                                                    0xFFFF};
      const std::uint16_t value = kExtremes[rng.index(std::size(kExtremes))];
      out[at] = static_cast<char>(value >> 8);
      out[at + 1] = static_cast<char>(value & 0xFF);
      return out;
    }
  }
  return out;
}

std::string mutate(std::string_view input, Rng& rng) {
  const auto kind = static_cast<MutationKind>(rng.index(kMutationKindCount));
  return mutate_with(kind, input, rng);
}

std::string mutate_many(std::string_view input, Rng& rng, std::size_t rounds) {
  std::string out(input);
  const std::size_t count = 1 + (rounds <= 1 ? 0 : rng.index(rounds));
  for (std::size_t i = 0; i < count; ++i) out = mutate(out, rng);
  return out;
}

}  // namespace tft::testing
