// Study orchestration: run the four experiments end-to-end against a world
// and render the paper's tables/figures from the reports. This is the
// public entry point most users want — see examples/quickstart.cpp.
#pragma once

#include <string>

#include "tft/core/dns_probe.hpp"
#include "tft/core/http_probe.hpp"
#include "tft/core/https_probe.hpp"
#include "tft/core/monitor_probe.hpp"
#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/util/thread_pool.hpp"
#include "tft/world/spec.hpp"

namespace tft::core {

struct StudyConfig {
  DnsProbeConfig dns;
  DnsAnalysisConfig dns_analysis;
  HttpProbeConfig http;
  HttpAnalysisConfig http_analysis;
  HttpsProbeConfig https;
  HttpsAnalysisConfig https_analysis;
  MonitorProbeConfig monitoring;
  MonitorAnalysisConfig monitoring_analysis;

  /// Worker threads for the study. run_study copies this into every probe
  /// config (overriding their own `jobs` fields) and, in the world-building
  /// overload, also runs the four experiments concurrently. 0 = one worker
  /// per hardware thread. Results are byte-identical for every value — see
  /// util/thread_pool.hpp for the determinism contract.
  std::size_t jobs = 1;

  /// Memory-bounded mode (world-building overload only): build each
  /// experiment's world lazily (world::build_world_lazy) so at most
  /// ceil(nodes/shards) exit-node agents are resident at once. Peak memory
  /// is O(shard), not O(world); reports, metrics (minus timings), and
  /// traces are byte-identical to the materialized build for every shard
  /// count and jobs value. `world.shard.*` gauges record the geometry.
  bool shard_mem = false;
  /// Shard count for shard_mem. 0 picks the default (16).
  std::size_t shards = 0;

  /// Scale analysis thresholds to a down-scaled world: a world built with
  /// scale s has ~s times the paper's nodes per country/server/AS group.
  static StudyConfig for_scale(double scale, std::size_t target_nodes);
};

/// Table 2-style dataset summary for one experiment.
struct ExperimentCoverage {
  std::string name;
  std::size_t exit_nodes = 0;
  std::size_t ases = 0;
  std::size_t countries = 0;
  std::size_t sessions = 0;  // proxy sessions spent (crawl cost)
};

struct StudyResult {
  DnsReport dns;
  HttpReport http;
  HttpsReport https;
  MonitorReport monitoring;
  std::vector<ExperimentCoverage> coverage;  // Table 2

  /// Observability: counters/histograms/spans from every experiment,
  /// merged in fixed experiment order (dns, http, https, monitoring) plus
  /// thread-pool telemetry for the run. The non-`timing` content is
  /// byte-identical for every jobs value.
  obs::Registry metrics;

  /// Flight recorder: per-transaction evidence chains from every
  /// experiment, merged in the same fixed order. Byte-identical (as NDJSON
  /// via obs::encode_trace) for every jobs value.
  obs::Recorder trace;
};

/// Fold the pool-telemetry delta between two snapshots into a registry:
/// shard batch/task counts (deterministic) become counters; task counts,
/// busy time, and queue high-water (scheduling-dependent) become timings.
void record_pool_telemetry(obs::Registry& metrics,
                           const util::PoolTelemetrySnapshot& before,
                           const util::PoolTelemetrySnapshot& after);

/// Run all four experiments (DNS, HTTP, HTTPS, monitoring) sequentially
/// against one shared world. Probe crawls interleave through the shared
/// super proxy, exactly as a single measurement client would.
StudyResult run_study(world::World& world, const StudyConfig& config);

/// Run the four experiments against per-experiment worlds built from the
/// identical (spec, scale, seed) triple, using up to `config.jobs` worker
/// threads across experiments. Each experiment owns its world, so the
/// crawls cannot interact; results land in fixed slots and the assembled
/// StudyResult is byte-identical for every jobs value (including 1).
StudyResult run_study(const world::WorldSpec& spec, double scale,
                      std::uint64_t seed, const StudyConfig& config);

// --- Rendering (shared by bench binaries and examples) -----------------------

std::string render_dns_report(const DnsReport& report);
std::string render_http_report(const HttpReport& report);
std::string render_https_report(const HttpsReport& report);
std::string render_monitor_report(const MonitorReport& report);
std::string render_coverage(const std::vector<ExperimentCoverage>& coverage);

}  // namespace tft::core
