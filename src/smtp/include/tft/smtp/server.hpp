// A stateful SMTP server (RFC 5321 subset) plus the registry routing
// connections by destination address, mirroring the HTTP/TLS substrates.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tft/net/ipv4.hpp"
#include "tft/sim/time.hpp"
#include "tft/smtp/protocol.hpp"

namespace tft::smtp {

/// A message accepted by the server (its DATA payload and envelope).
struct ReceivedMessage {
  std::string mail_from;
  std::vector<std::string> rcpt_to;
  std::string body;
  net::Ipv4Address client;
  sim::Instant received_at;
  bool over_tls = false;
};

class SmtpServer {
 public:
  struct Config {
    std::string hostname = "mail.tft-study.net";
    std::string software = "TFT-SMTPD 1.0";
    bool supports_starttls = true;
    bool supports_pipelining = true;
  };

  explicit SmtpServer(Config config) : config_(std::move(config)) {}

  const Config& config() const noexcept { return config_; }

  /// The 220 greeting sent on connect.
  Reply banner() const;

  /// One client connection's state machine.
  class Session {
   public:
    Session(SmtpServer* server, net::Ipv4Address client, sim::Instant now)
        : server_(server), client_(client), connected_at_(now) {}

    /// Feed one client line; returns the server's reply. In DATA mode,
    /// lines accumulate until the lone "." terminator.
    Reply handle_line(std::string_view line);

    bool in_data_mode() const noexcept { return in_data_; }
    bool tls_active() const noexcept { return tls_active_; }

   private:
    Reply handle_command(const Command& command);

    SmtpServer* server_;
    net::Ipv4Address client_;
    sim::Instant connected_at_;
    bool greeted_ = false;
    bool in_data_ = false;
    bool tls_active_ = false;
    std::string mail_from_;
    std::vector<std::string> rcpt_to_;
    std::string data_;
  };

  Session open(net::Ipv4Address client, sim::Instant now) {
    return Session(this, client, now);
  }

  const std::vector<ReceivedMessage>& received() const noexcept { return received_; }
  void clear_received() { received_.clear(); }

 private:
  friend class Session;

  Config config_;
  std::vector<ReceivedMessage> received_;
};

class SmtpServerRegistry {
 public:
  void add(net::Ipv4Address address, std::shared_ptr<SmtpServer> server);
  SmtpServer* find(net::Ipv4Address address) const;

 private:
  std::unordered_map<std::uint32_t, std::shared_ptr<SmtpServer>> servers_;
};

}  // namespace tft::smtp
