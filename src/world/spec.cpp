#include "tft/world/spec.hpp"

namespace tft::world {

std::string_view to_string(SmtpInterceptSpec::Kind kind) noexcept {
  switch (kind) {
    case SmtpInterceptSpec::Kind::kStripStarttls:
      return "strip_starttls";
    case SmtpInterceptSpec::Kind::kBlockPort:
      return "block_port";
    case SmtpInterceptSpec::Kind::kRewriteBanner:
      return "rewrite_banner";
    case SmtpInterceptSpec::Kind::kTagBody:
      return "tag_body";
  }
  return "unknown";
}

namespace {

/// 9 KB-ish ad payload with a signature marker, modeling injected ad code.
std::string ad_snippet(std::string_view marker, std::size_t pad_bytes) {
  std::string out = "\n<script type=\"text/javascript\">\n";
  out += marker;
  out += "\n</script>\n";
  out += "<!-- ";
  out.append(pad_bytes, 'A');
  out += " -->\n";
  return out;
}

void add_featured_countries(WorldSpec& spec) {
  // Table 3 rows (total nodes, hijacked ratio) minus the Table 4 ISPs'
  // nodes gives each country's extra_hijacked_nodes (generic hijacking
  // ISPs below the paper's reporting thresholds).
  spec.countries.push_back({"MY", 6983, 1976, 6, 2, 0.06, 0.03});
  spec.countries.push_back({"ID", 8568, 3178, 8, 2, 0.06, 0.03});
  spec.countries.push_back({"CN", 671, 237, 3, 2, 0.02, 0.02});
  spec.countries.push_back({"GB", 37156, 5336, 24, 2, 0.06, 0.03});
  spec.countries.push_back({"DE", 19076, 3318, 14, 2, 0.06, 0.03});
  spec.countries.push_back({"US", 33398, 1192, 22, 2, 0.08, 0.05});
  spec.countries.push_back({"IN", 6868, 76, 6, 2, 0.06, 0.03});
  spec.countries.push_back({"BR", 24298, 342, 16, 2, 0.06, 0.03});
  spec.countries.push_back({"BJ", 716, 90, 2, 2, 0.90, 0.02});
  spec.countries.push_back({"JO", 1117, 76, 2, 2, 0.06, 0.03});
  // Countries hosting other featured behaviour (Table 4 ISPs, Table 7
  // carriers, Rimon, Cloudguard) but absent from Table 3's top 10.
  spec.countries.push_back({"AR", 6000, 0, 5, 2, 0.06, 0.03});
  // AU is large enough that Dodo's hijacking keeps it out of Table 3's
  // top 10 (the paper lists Dodo in Table 4 but not AU in Table 3).
  spec.countries.push_back({"AU", 25000, 0, 14, 2, 0.06, 0.03});
  spec.countries.push_back({"ES", 9000, 0, 7, 2, 0.06, 0.03});
  spec.countries.push_back({"IL", 2500, 0, 3, 2, 0.06, 0.03});
  spec.countries.push_back({"RU", 20000, 0, 12, 2, 0.04, 0.03});
  spec.countries.push_back({"GR", 4000, 0, 4, 2, 0.06, 0.03});
  spec.countries.push_back({"TR", 8000, 0, 6, 2, 0.06, 0.03});
  spec.countries.push_back({"ZA", 5000, 0, 4, 2, 0.06, 0.03});
  spec.countries.push_back({"EG", 4000, 0, 4, 2, 0.06, 0.03});
  spec.countries.push_back({"MA", 3000, 0, 3, 2, 0.06, 0.03});
  spec.countries.push_back({"TN", 2000, 0, 3, 2, 0.06, 0.03});
  spec.countries.push_back({"PH", 7000, 0, 5, 2, 0.06, 0.03});
  spec.countries.push_back({"FR", 15000, 0, 10, 2, 0.06, 0.03});
}

void add_filler_countries(WorldSpec& spec) {
  // ~144 synthetic countries to reach the paper's ~167, with populations
  // that land the global totals and a thin tail of hijacking.
  static const char* const kAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  int added = 0;
  for (int a = 0; a < 26 && added < 144; ++a) {
    for (int b = 0; b < 26 && added < 144; ++b) {
      const net::CountryCode code{kAlphabet[a], kAlphabet[b]};
      // Skip codes already used by featured countries.
      bool used = false;
      for (const auto& country : spec.countries) used = used || country.code == code;
      if (used) continue;
      const int total = 800 + (added * 977) % 6000;
      const int hijacked = total / 250;  // ~0.4% thin tail
      spec.countries.push_back(
          {code, total, hijacked, 6 + added % 7, 1 + added % 3, 0.06, 0.03});
      ++added;
    }
  }
}

void add_dns_hijackers(WorldSpec& spec) {
  // Table 4: ISP DNS servers hijacking responses for >=90% of exit nodes,
  // with Table 5's landing hosts. shared_vendor_js marks the five ISPs
  // whose hijack pages carry byte-identical JavaScript.
  spec.isp_resolver_hijackers = {
      {"Telefonica de Argentina", "AR", 14, 276, "ayudaenlabusqueda.telefonica.com.ar", false},
      {"Dodo Australia", "AU", 21, 1404, "google.dodo.com.au", false},
      {"Oi Fixo", "BR", 21, 2558, "dnserros.oi.com.br", true},
      {"CTBC", "BR", 4, 290, "nodomain.ctbc.com.br", false},
      {"Deutsche Telekom AG", "DE", 8, 1385, "navigationshilfe.t-online.de", false},
      {"Airtel Broadband", "IN", 9, 735, "airtelforum.com", false},
      {"BSNL", "IN", 2, 71, "bsnl-search.in", false},
      {"Ntl. Int. Backbone", "IN", 8, 245, "nib-assist.in", false},
      {"TMnet", "MY", 8, 1676, "midascdn.nervesis.com", false},
      {"ONO", "ES", 2, 71, "buscador.ono.es", false},
      {"BT Internet", "GB", 6, 479, "www.webaddresshelp.bt.com", true},
      {"Talk Talk", "GB", 46, 3738, "error.talktalk.co.uk", true},
      {"AT&T", "US", 37, 561, "dnserrorassist.att.net", false},
      {"Cable One", "US", 4, 108, "search.cableone.net", false},
      {"Cox Communications", "US", 63, 1789, "finder.cox.net", true},
      {"Mediacom Cable", "US", 6, 219, "search.mediacomcable.com", false},
      {"Suddenlink", "US", 9, 98, "finder.suddenlink.net", false},
      {"Verizon", "US", 98, 2102, "searchassist.verizon.com", true},
      {"WideOpenWest", "US", 1, 39, "search.wideopenwest.com", false},
  };

  // Table 5 (top rows): hijacks observed on nodes using Google DNS — path
  // middleboxes / ISP CPE software, counted per landing URL and AS spread.
  spec.path_hijackers = {
      {"Deutsche Telekom AG", "DE", 80, "navigationshilfe.t-online.de", 1},
      {"BT Internet", "GB", 73, "www.webaddresshelp.bt.com", 1},
      {"Uzone", "ID", 53, "v3.mercusuar.uzone.id", 1},
      {"Talk Talk", "GB", 46, "error.talktalk.co.uk", 3},
      {"Oi Fixo", "BR", 40, "dnserros.oi.com.br", 2},
      {"AT&T", "US", 32, "dnserrorassist.att.net", 1},
      {"Verizon", "US", 30, "searchassist.verizon.com", 1},
      {"Cox Communications", "US", 17, "finder.cox.net", 1},
      {"Telefonica de Argentina", "AR", 16, "ayudaenlabusqueda.telefonica.com.ar", 1},
      {"Airtel Broadband", "IN", 14, "airtelforum.com", 1},
      {"Dodo Australia", "AU", 13, "google.dodo.com.au", 1},
      {"TMnet", "MY", 68, "midascdn.nervesis.com", 1},
      {"CTBC", "BR", 7, "nodomain.ctbc.com.br", 1},
      {"Mediacom Cable", "US", 7, "search.mediacomcable.com", 1},
  };

  // Table 5 (shaded rows): host software spread across many ASes/countries.
  spec.host_dns_hijackers = {
      {"Norton ConnectSafe", "nortonsafe.search.ask.com", 25, 18, 18},
      {"Comodo SecureDNS", "securedns.comodo.com", 9, 9, 9},
  };

  // §4.3.2: 21 hijacking public resolvers across four identifiable
  // operators plus three nobody could identify; 1,512 affected nodes.
  spec.public_resolver_hijackers = {
      {"Comodo DNS", 9, 650, "securedns.comodo.com", true},
      {"UltraDNS", 4, 290, "redirect.ultradns.net", true},
      {"LookSafe", 2, 140, "looksafe-search.com", true},
      {"Level 3", 3, 215, "search.level3.com", true},
      {"Unknown-A", 1, 80, "adlanding-a.example.net", false},
      {"Unknown-B", 1, 74, "adlanding-b.example.net", false},
      {"Unknown-C", 1, 63, "adlanding-c.example.net", false},
  };
}

void add_http_modifiers(WorldSpec& spec) {
  // Table 6: signatures of injected JavaScript. Sizes model the paper's
  // observations (oiasudoj +23 KB, AdTaily +335 KB).
  spec.adware = {
      {"cloudfront-loader",
       ad_snippet("var s=document.createElement('script');"
                  "s.src='http://d36mw5gp02ykm5.cloudfront.net/loader.js';"
                  "document.head.appendChild(s);",
                  2048),
       201, 99, 44},
      {"msmdzbsyrw",
       ad_snippet("(function(){var u='http://msmdzbsyrw.org/inject.js';"
                  "var s=document.createElement('script');s.src=u;"
                  "document.body.appendChild(s);})();",
                  1024),
       97, 76, 4},
      {"pgjs",
       ad_snippet("document.write('<scr'+'ipt src=\"http://pgjs.me/p.js\"></scr'+'ipt>');",
                  512),
       16, 12, 1},
      {"jswrite",
       ad_snippet("var w=document.createElement('script');"
                  "w.src='http://jswrite.com/script1.js';"
                  "document.head.appendChild(w);",
                  512),
       15, 10, 9},
      {"oiasudoj", ad_snippet("var oiasudoj; /* ad rotation state */", 23 * 1024),
       11, 11, 1},
      {"adtaily",
       ad_snippet("<div class=\"AdTaily_Widget_Container\"></div>", 335 * 1024),
       11, 9, 8},
      // Beyond Table 6's top 7: part of the remaining identified signatures.
      {"generic-adbar",
       ad_snippet("var genericAdbarState='http://adbar-cdn.example.org/bar.js';", 4096),
       40, 30, 15},
      {"generic-tracker",
       ad_snippet("var __trackerPixelQueue='http://trk-pixel.example.org/t.gif';", 1024),
       25, 20, 12},
  };

  // §5.2: AS 42925 Internet Rimon — every node's HTML carries NetSpark's
  // filter tag.
  spec.isp_filters = {
      {"Internet Rimon ISP", "IL", 42925, 21,
       "\n<meta name=\"NetsparkQuiltingResult\" content=\"filtered\">\n"},
  };

  // Table 7: mobile carriers transcoding images. `qualities` with several
  // entries reproduces the "M" (multiple ratios) rows.
  spec.transcoders = {
      {15617, "Wind Hellas", "GR", 10, 1.00, {53}},
      {29180, "Telefonica UK", "GB", 17, 1.00, {47}},
      {29975, "Vodacom", "ZA", 88, 0.94, {37, 61}},
      {25135, "Vodafone UK", "GB", 18, 0.83, {54}},
      {36935, "Vodafone Egypt", "EG", 81, 0.77, {40, 57}},
      {36925, "Meditelecom", "MA", 128, 0.68, {34}},
      {16135, "Turkcell", "TR", 65, 0.68, {54}},
      {15897, "Vodafone Turkey", "TR", 25, 0.56, {53}},
      {12361, "Vodafone Greece", "GR", 23, 0.48, {52}},
      {37492, "Orange Tunisia", "TN", 331, 0.29, {34}},
      {132199, "Globe Telecom", "PH", 1374, 0.14, {51}},
      {12844, "Bouygues Telecom", "FR", 615, 0.06, {53}},
  };
}

void add_cert_replacers(WorldSpec& spec) {
  using Kind = CertReplacerSpec::Kind;
  // Table 8: issuers of replaced certificates.
  // reuse_public_key: every product but Avast reused one key per host.
  // untrusted_issuer_for_invalid: Avast/BitDefender/Dr.Web (and AVG, which
  // shares Avast's engine) re-sign invalid sites under a distinct issuer;
  // Cyberoam/ESET/Kaspersky/McAfee/Fortigate dangerously make them look
  // valid; OpenDNS only intercepts valid sites on its block list.
  spec.cert_replacers = {
      {"Avast", "Avast! Web/Mail Shield Root", Kind::kAntiVirus, 3283,
       /*reuse=*/false, /*untrusted=*/true, false, false, std::nullopt, false},
      {"AVG Technology", "AVG Technologies", Kind::kAntiVirus, 247, true, true,
       false, false, std::nullopt, false},
      {"BitDefender", "BitDefender Personal CA", Kind::kAntiVirus, 241, true,
       true, false, false, std::nullopt, false},
      {"Eset SSL Filter", "ESET SSL Filter CA", Kind::kAntiVirus, 217, true,
       false, false, false, std::nullopt, false},
      {"Kaspersky", "Kaspersky Anti-Virus Personal Root", Kind::kAntiVirus, 68,
       true, false, false, false, std::nullopt, false},
      {"OpenDNS", "OpenDNS Root Certificate Authority", Kind::kContentFilter, 64,
       true, false, /*only_if_valid=*/true, /*only_blocked=*/true, std::nullopt,
       false},
      {"Cyberoam SSL", "Cyberoam SSL CA", Kind::kAntiVirus, 35, true, false,
       false, false, std::nullopt, false},
      {"Sample CA 2", "Sample CA 2", Kind::kUnknown, 29, true, false, false,
       false, std::nullopt, false},
      {"Fortigate", "Fortigate CA", Kind::kAntiVirus, 17, true, false, false,
       false, std::nullopt, false},
      {"Empty", "", Kind::kUnknown, 14, true, false, false, false, std::nullopt,
       false},
      {"Cloudguard.me", "Cloudguard.me CA", Kind::kMalware, 14, true, false,
       false, false, net::CountryCode("RU"), /*also_injects_html=*/true},
      {"Dr. Web", "Dr.Web SSL Scanner Root", Kind::kAntiVirus, 13, true, true,
       false, false, std::nullopt, false},
      {"McAfee", "McAfee Web Gateway", Kind::kAntiVirus, 6, true, false, false,
       false, std::nullopt, false},
  };
}

void add_monitors(WorldSpec& spec) {
  using Kind = MonitorSpec::Kind;
  using Refetch = MonitorSpec::Refetch;
  // Table 9 / Figure 5. Delay windows transcribed from §7.2.
  spec.monitors = {
      // Two re-fetches: 12-120s then 200-12,500s (the y=0.5 step).
      {"Trend Micro", Kind::kHostSoftware, "US", 55, 6571, 0, "", 734, 13,
       {Refetch{12, 120, 0, 0, false}, Refetch{200, 12500, 0, 0, false}}},
      // First request almost exactly 30s, second over the next hour; hits
      // 45.2% of TalkTalk's own nodes.
      {"TalkTalk", Kind::kIspService, "GB", 6, 0, 0.452, "Talk Talk", 5, 1,
       {Refetch{30, 30, 0, 0, false}, Refetch{60, 3600, 0, 0, false}}},
      // One re-fetch, 1-10 minutes out.
      {"Commtouch", Kind::kHostSoftware, "US", 20, 1154, 0, "", 371, 79,
       {Refetch{60, 600, 0, 0, false}}},
      // VPN: user traffic exits via AnchorFree; the extra request follows
      // within a second from Menlo Park.
      {"AnchorFree", Kind::kVpn, "US", 223, 461, 0, "", 225, 98,
       {Refetch{0.05, 0.9, 0, 0, /*fixed_source_last=*/true}}},
      // Fetch-before-forward proxy: 83% of first re-fetches precede the
      // user's own request.
      {"Bluecoat", Kind::kPathMiddlebox, "US", 12, 453, 0, "", 162, 64,
       {Refetch{1, 30, 0.83, 0.5, false}, Refetch{30, 3600, 0, 0, false}}},
      // Single re-fetch at almost exactly 30s; 11.4% of Tiscali's nodes.
      {"Tiscali U.K.", Kind::kIspService, "GB", 2, 0, 0.114, "Tiscali U.K.", 2, 1,
       {Refetch{30, 30, 0, 0, false}}},
  };
}

}  // namespace

WorldSpec paper_spec() {
  WorldSpec spec;
  add_featured_countries(spec);
  // ISPs that must exist by name: Tiscali (monitored ISP, 363 nodes being
  // 11.4% of its base) and Uzone (path hijacker with no resolver entry).
  spec.named_isps = {
      {"Tiscali U.K.", "GB", 2, 3184, net::OrgKind::kBroadbandIsp},
      {"Uzone", "ID", 1, 900, net::OrgKind::kBroadbandIsp},
  };
  add_filler_countries(spec);
  add_dns_hijackers(spec);
  add_http_modifiers(spec);
  add_cert_replacers(spec);
  add_monitors(spec);
  spec.https.universities = {
      "northeastern.edu", "stanford.edu",   "berkeley.edu", "princeton.edu",
      "umich.edu",        "washington.edu", "usc.edu",      "umd.edu",
      "illinois.edu",     "gatech.edu",
  };
  // SMTP extension (§3.4 future work — synthetic prevalences, see DESIGN.md):
  // residential port-25 blocking is widespread; STARTTLS stripping and
  // banner rewriting follow the shapes reported by prior SMTP middlebox
  // studies (e.g. the 2015 STARTTLS degradation measurements).
  using SKind = SmtpInterceptSpec::Kind;
  spec.smtp_interceptors = {
      {"residential-port25-block", SKind::kBlockPort, 60000, 1200, 120},
      {"fixup-starttls-stripper", SKind::kStripStarttls, 9000, 300, 40},
      {"smtp-banner-gateway", SKind::kRewriteBanner, 2200, 150, 30},
      {"av-outbound-tagger", SKind::kTagBody, 400, 80, 20},
  };
  spec.arbitrary_port_overlay = false;  // Luminati: CONNECT :443 only
  return spec;
}

WorldSpec mini_spec() {
  WorldSpec spec;
  spec.countries = {
      {"US", 300, 0, 3, 2, 0.10, 0.05},
      {"GB", 200, 20, 2, 2, 0.10, 0.05},
      {"DE", 150, 0, 2, 2, 0.10, 0.05},
  };
  spec.named_isps = {
      {"Tiscali U.K.", "GB", 1, 50, net::OrgKind::kBroadbandIsp},
      {"Deutsche Telekom AG", "DE", 1, 80, net::OrgKind::kBroadbandIsp},
  };
  spec.isp_resolver_hijackers = {
      {"Verizon", "US", 3, 60, "searchassist.verizon.com", true},
  };
  spec.path_hijackers = {
      {"Deutsche Telekom AG", "DE", 12, "navigationshilfe.t-online.de", 1},
  };
  spec.host_dns_hijackers = {
      {"Norton ConnectSafe", "nortonsafe.search.ask.com", 6, 4, 2},
  };
  spec.public_resolver_hijackers = {
      {"Comodo DNS", 2, 15, "securedns.comodo.com", true},
  };
  spec.scattered_google_hijack_nodes = 4;
  spec.clean_public_resolvers = 12;
  spec.adware_install_boost = 1.0;
  spec.adware = {
      {"adtaily", ad_snippet("<div class=\"AdTaily_Widget_Container\"></div>", 8 * 1024),
       24, 4, 2},
  };
  spec.isp_filters = {
      {"Internet Rimon ISP", "IL", 42925, 12,
       "\n<meta name=\"NetsparkQuiltingResult\" content=\"filtered\">\n"},
  };
  // Rimon needs its country in the population.
  spec.countries.push_back({"IL", 60, 0, 2, 1, 0.10, 0.05});
  spec.transcoders = {
      {15617, "Wind Hellas", "GR", 15, 1.0, {53}},
      {29975, "Vodacom", "ZA", 20, 0.9, {37, 61}},
  };
  spec.countries.push_back({"GR", 60, 0, 2, 1, 0.10, 0.05});
  spec.countries.push_back({"ZA", 60, 0, 2, 1, 0.10, 0.05});
  spec.blockpage_nodes = 3;
  spec.js_error_nodes = 3;
  spec.css_error_nodes = 2;
  using Kind = CertReplacerSpec::Kind;
  spec.cert_replacers = {
      {"Avast", "Avast! Web/Mail Shield Root", Kind::kAntiVirus, 25, false, true,
       false, false, std::nullopt, false},
      {"Kaspersky", "Kaspersky Anti-Virus Personal Root", Kind::kAntiVirus, 10,
       true, false, false, false, std::nullopt, false},
      {"OpenDNS", "OpenDNS Root Certificate Authority", Kind::kContentFilter, 8,
       true, false, true, true, std::nullopt, false},
  };
  using MKind = MonitorSpec::Kind;
  using Refetch = MonitorSpec::Refetch;
  spec.monitors = {
      {"Trend Micro", MKind::kHostSoftware, "US", 5, 30, 0, "", 10, 3,
       {Refetch{12, 120, 0, 0, false}, Refetch{200, 12500, 0, 0, false}}},
      {"Bluecoat", MKind::kPathMiddlebox, "US", 3, 15, 0, "", 8, 4,
       {Refetch{1, 30, 0.83, 0.5, false}}},
      {"Tiscali U.K.", MKind::kIspService, "GB", 1, 0, 0.2, "Tiscali U.K.", 1, 1,
       {Refetch{30, 30, 0, 0, false}}},
  };
  spec.tail_monitor_groups = 2;
  spec.tail_monitor_nodes = 6;
  spec.https.popular_sites_per_country = 5;
  spec.https.countries_with_rankings = 6;
  spec.https.universities = {"northeastern.edu", "stanford.edu", "umich.edu"};
  using SKind = SmtpInterceptSpec::Kind;
  spec.smtp_interceptors = {
      {"residential-port25-block", SKind::kBlockPort, 80, 10, 3},
      {"fixup-starttls-stripper", SKind::kStripStarttls, 30, 6, 2},
      {"smtp-banner-gateway", SKind::kRewriteBanner, 10, 4, 2},
      {"av-outbound-tagger", SKind::kTagBody, 6, 3, 2},
  };
  spec.arbitrary_port_overlay = true;  // mini world models the VPN overlay
  spec.google_anycast_instances = 4;
  spec.node_failure_probability = 0.01;
  return spec;
}

}  // namespace tft::world
