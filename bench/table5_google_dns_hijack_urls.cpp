// Regenerates Table 5: landing-page hosts observed by exit nodes that use
// Google DNS yet still receive hijacked NXDOMAIN responses — i.e. path
// middleboxes and end-host software.
#include <map>

#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);

  tft::core::DnsHijackProbe probe(*world, config.dns);
  probe.run();
  const auto report =
      tft::core::analyze_dns(*world, probe.observations(), config.dns_analysis);

  std::cout << tft::stats::banner("Table 5: hijack URLs seen by Google-DNS users");
  std::cout << "hijacked Google-DNS nodes: " << report.google_hijacked_nodes
            << "   [paper: 927]\n\n";

  const std::map<std::string, std::string> paper = {
      {"navigationshilfe.t-online.de", "80 / 1"},
      {"www.webaddresshelp.bt.com", "73 / 1"},
      {"v3.mercusuar.uzone.id", "53 / 1"},
      {"error.talktalk.co.uk", "46 / 3"},
      {"dnserros.oi.com.br", "40 / 2"},
      {"dnserrorassist.att.net", "32 / 1"},
      {"searchassist.verizon.com", "30 / 1"},
      {"finder.cox.net", "17 / 1"},
      {"ayudaenlabusqueda.telefonica.com.ar", "16 / 1"},
      {"google.dodo.com.au", "13 / 1"},
      {"airtelforum.com", "14 / 1"},
      {"nodomain.ctbc.com.br", "7 / 1"},
      {"search.mediacomcable.com", "7 / 1"},
      {"midascdn.nervesis.com", "68 / 1"},
      {"nortonsafe.search.ask.com", "25 / 18"},
      {"securedns.comodo.com", "9 / 9"},
  };

  tft::stats::Table table(
      {"URL host", "Exit Nodes", "ASes", "Likely source", "Paper (nodes/ASes)"});
  for (const auto& row : report.google_urls) {
    const auto it = paper.find(row.host);
    table.add_row({row.host, std::to_string(row.nodes), std::to_string(row.ases),
                   row.likely_host_software ? "host software" : "ISP",
                   it == paper.end() ? "-" : it->second});
  }
  std::cout << table.render();
  return 0;
}
