#include "tft/http/content.hpp"

#include <algorithm>
#include <cctype>

#include "tft/util/bytes.hpp"
#include "tft/util/rng.hpp"

namespace tft::http {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

constexpr std::string_view kSimgMagic = "SIMG";

const char* const kLoremWords[] = {
    "lorem",   "ipsum",    "dolor",  "sit",     "amet",      "consectetur",
    "adipisc", "elit",     "sed",    "eiusmod", "tempor",    "incididunt",
    "labore",  "dolore",   "magna",  "aliqua",  "enim",      "minim",
    "veniam",  "quis",     "nostrud", "exercitation", "ullamco", "laboris"};

std::string lorem_paragraph(util::Rng& rng, std::size_t words) {
  std::string out;
  for (std::size_t i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kLoremWords[rng.index(std::size(kLoremWords))];
  }
  out += '.';
  return out;
}

/// Pad `content` with deterministic filler inside `open`/`close` wrappers
/// until it reaches `target` bytes, then return it.
std::string pad_to(std::string content, std::size_t target, util::Rng& rng,
                   std::string_view open, std::string_view close) {
  while (content.size() < target) {
    std::string chunk{open};
    chunk += lorem_paragraph(rng, 12);
    chunk += close;
    chunk += '\n';
    if (content.size() + chunk.size() > target) {
      // Trim the final chunk so the object lands exactly on target size.
      chunk.resize(target - content.size());
    }
    content += chunk;
  }
  return content;
}

}  // namespace

std::string_view to_string(ContentKind kind) noexcept {
  switch (kind) {
    case ContentKind::kHtml:
      return "html";
    case ContentKind::kImage:
      return "image";
    case ContentKind::kJavaScript:
      return "javascript";
    case ContentKind::kCss:
      return "css";
  }
  return "unknown";
}

std::string_view content_type(ContentKind kind) noexcept {
  switch (kind) {
    case ContentKind::kHtml:
      return "text/html; charset=utf-8";
    case ContentKind::kImage:
      return "image/simg";
    case ContentKind::kJavaScript:
      return "application/javascript";
    case ContentKind::kCss:
      return "text/css";
  }
  return "application/octet-stream";
}

std::string reference_html(std::size_t target_bytes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string html =
      "<!DOCTYPE html>\n"
      "<html>\n<head>\n"
      "<title>TFT reference page</title>\n"
      "<link rel=\"stylesheet\" href=\"/style.css\">\n"
      "<script src=\"/library.js\"></script>\n"
      "</head>\n<body>\n"
      "<h1>Reference content</h1>\n"
      "<img src=\"/image.simg\" alt=\"reference image\">\n";
  const std::string closing = "</body>\n</html>\n";
  html = pad_to(std::move(html), target_bytes - closing.size(), rng, "<p>", "</p>");
  html += closing;
  return html;
}

std::string reference_javascript(std::size_t target_bytes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string js =
      "/* TFT reference library (un-minified) */\n"
      "function tftInit() {\n  return 'reference';\n}\n";
  return pad_to(std::move(js), target_bytes, rng, "// ", "");
}

std::string reference_css(std::size_t target_bytes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string css = "/* TFT reference stylesheet (un-minified) */\n"
                    "body { font-family: sans-serif; margin: 2em; }\n";
  return pad_to(std::move(css), target_bytes, rng, "/* ", " */");
}

std::string reference_image(std::size_t target_bytes, std::uint64_t seed) {
  const std::size_t header = 4 + 2 + 2 + 1 + 4;
  const std::size_t payload = target_bytes > header ? target_bytes - header : 0;
  // Quality 100 so a transcode to quality q yields a size ratio of q/100,
  // directly comparable to Table 7's compression column.
  return make_simg(1024, 768, 100, static_cast<std::uint32_t>(payload), seed);
}

std::string make_simg(std::uint16_t width, std::uint16_t height, std::uint8_t quality,
                      std::uint32_t payload_bytes, std::uint64_t seed) {
  util::ByteWriter writer;
  writer.bytes(kSimgMagic);
  writer.u16(width);
  writer.u16(height);
  writer.u8(quality);
  writer.u32(payload_bytes);
  util::Rng rng(seed);
  std::string payload;
  payload.reserve(payload_bytes);
  for (std::uint32_t i = 0; i < payload_bytes; ++i) {
    payload.push_back(static_cast<char>(rng.next_u64() & 0xFF));
  }
  writer.bytes(payload);
  return std::move(writer).take();
}

Result<SimgInfo> parse_simg(std::string_view bytes) {
  util::ByteReader reader(bytes);
  auto magic = reader.bytes(4);
  if (!magic || *magic != kSimgMagic) {
    return make_error(ErrorCode::kParseError, "bad SIMG magic");
  }
  SimgInfo info;
  auto width = reader.u16();
  if (!width) return width.error();
  auto height = reader.u16();
  if (!height) return height.error();
  auto quality = reader.u8();
  if (!quality) return quality.error();
  auto payload_bytes = reader.u32();
  if (!payload_bytes) return payload_bytes.error();
  if (*quality == 0 || *quality > 100) {
    return make_error(ErrorCode::kParseError, "SIMG quality out of range");
  }
  if (reader.remaining() != *payload_bytes) {
    return make_error(ErrorCode::kParseError, "SIMG payload length mismatch");
  }
  info.width = *width;
  info.height = *height;
  info.quality = *quality;
  info.payload_bytes = *payload_bytes;
  return info;
}

Result<std::string> transcode_simg(std::string_view bytes, std::uint8_t new_quality) {
  if (new_quality == 0 || new_quality > 100) {
    return make_error(ErrorCode::kInvalidArgument, "quality must be in 1..100");
  }
  auto info = parse_simg(bytes);
  if (!info) return info.error();
  if (new_quality >= info->quality) {
    return std::string(bytes);  // cannot add information; keep original
  }
  const double scale = static_cast<double>(new_quality) / info->quality;
  const auto new_payload =
      static_cast<std::uint32_t>(static_cast<double>(info->payload_bytes) * scale);
  // Re-encode deterministically from the truncated original payload.
  util::ByteWriter writer;
  writer.bytes(kSimgMagic);
  writer.u16(info->width);
  writer.u16(info->height);
  writer.u8(new_quality);
  writer.u32(new_payload);
  writer.bytes(bytes.substr(13, new_payload));
  return std::move(writer).take();
}

double compression_ratio(std::string_view original, std::string_view modified) {
  if (original.empty()) return 1.0;
  return static_cast<double>(modified.size()) / static_cast<double>(original.size());
}

std::vector<std::string> extract_urls(std::string_view content) {
  std::vector<std::string> out;
  const auto is_url_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           std::string_view("-._~:/?#[]@!$&'()*+,;=%").find(c) != std::string_view::npos;
  };
  std::size_t pos = 0;
  while (pos < content.size()) {
    const auto http_at = content.find("http", pos);
    if (http_at == std::string_view::npos) break;
    std::size_t scheme_end = http_at + 4;
    if (scheme_end < content.size() && content[scheme_end] == 's') ++scheme_end;
    if (content.substr(scheme_end, 3) != "://") {
      pos = http_at + 4;
      continue;
    }
    std::size_t end = scheme_end + 3;
    while (end < content.size() && is_url_char(content[end])) ++end;
    // Trim trailing punctuation that is likely sentence/JS syntax.
    while (end > scheme_end + 3 &&
           std::string_view(".,;:!?)'\"").find(content[end - 1]) != std::string_view::npos) {
      --end;
    }
    if (end > scheme_end + 3) {
      std::string url(content.substr(http_at, end - http_at));
      if (std::find(out.begin(), out.end(), url) == out.end()) {
        out.push_back(std::move(url));
      }
    }
    pos = end;
  }
  return out;
}

std::vector<std::string> extract_url_hosts(std::string_view content) {
  std::vector<std::string> out;
  for (const auto& url : extract_urls(content)) {
    const auto scheme_end = url.find("://");
    auto rest = std::string_view(url).substr(scheme_end + 3);
    const auto host_end = rest.find_first_of("/?#:");
    std::string host(host_end == std::string_view::npos ? rest : rest.substr(0, host_end));
    if (!host.empty() && std::find(out.begin(), out.end(), host) == out.end()) {
      out.push_back(std::move(host));
    }
  }
  return out;
}

}  // namespace tft::http
