#include "tft/dns/message.hpp"

#include "tft/dns/codec.hpp"
#include "tft/util/bytes.hpp"

namespace tft::dns {

using util::ErrorCode;
using util::make_error;
using util::Result;

std::string_view to_string(RecordType type) noexcept {
  switch (type) {
    case RecordType::kA:
      return "A";
    case RecordType::kNs:
      return "NS";
    case RecordType::kCname:
      return "CNAME";
    case RecordType::kSoa:
      return "SOA";
    case RecordType::kPtr:
      return "PTR";
    case RecordType::kMx:
      return "MX";
    case RecordType::kTxt:
      return "TXT";
    case RecordType::kAaaa:
      return "AAAA";
  }
  return "TYPE?";
}

std::string_view to_string(Rcode rcode) noexcept {
  switch (rcode) {
    case Rcode::kNoError:
      return "NOERROR";
    case Rcode::kFormErr:
      return "FORMERR";
    case Rcode::kServFail:
      return "SERVFAIL";
    case Rcode::kNxDomain:
      return "NXDOMAIN";
    case Rcode::kNotImp:
      return "NOTIMP";
    case Rcode::kRefused:
      return "REFUSED";
  }
  return "RCODE?";
}

ResourceRecord ResourceRecord::a(DnsName name, net::Ipv4Address address,
                                 std::uint32_t ttl) {
  util::ByteWriter writer;
  writer.u32(address.value());
  return ResourceRecord{std::move(name), RecordType::kA, RecordClass::kIn, ttl,
                        std::move(writer).take()};
}

ResourceRecord ResourceRecord::cname(DnsName name, const DnsName& target,
                                     std::uint32_t ttl) {
  return ResourceRecord{std::move(name), RecordType::kCname, RecordClass::kIn,
                        ttl, encode_name_uncompressed(target)};
}

ResourceRecord ResourceRecord::txt(DnsName name, std::string_view text,
                                   std::uint32_t ttl) {
  std::string rdata;
  // Split into 255-byte character-strings.
  while (!text.empty()) {
    const std::size_t chunk = std::min<std::size_t>(text.size(), 255);
    rdata.push_back(static_cast<char>(chunk));
    rdata.append(text.substr(0, chunk));
    text.remove_prefix(chunk);
  }
  if (rdata.empty()) rdata.push_back('\0');  // single empty character-string
  return ResourceRecord{std::move(name), RecordType::kTxt, RecordClass::kIn,
                        ttl, std::move(rdata)};
}

Result<net::Ipv4Address> ResourceRecord::a_address() const {
  if (type != RecordType::kA || rdata.size() != 4) {
    return make_error(ErrorCode::kProtocolViolation, "not a well-formed A record");
  }
  util::ByteReader reader(rdata);
  return net::Ipv4Address(*reader.u32());
}

Result<DnsName> ResourceRecord::name_target() const {
  if (type != RecordType::kCname && type != RecordType::kNs &&
      type != RecordType::kPtr) {
    return make_error(ErrorCode::kProtocolViolation, "record has no name target");
  }
  return decode_name_uncompressed(rdata);
}

Result<std::string> ResourceRecord::txt_text() const {
  if (type != RecordType::kTxt) {
    return make_error(ErrorCode::kProtocolViolation, "not a TXT record");
  }
  std::string out;
  util::ByteReader reader(rdata);
  while (!reader.at_end()) {
    auto length = reader.u8();
    if (!length) return length.error();
    auto chunk = reader.bytes(*length);
    if (!chunk) return chunk.error();
    out.append(*chunk);
  }
  return out;
}

Message Message::query(std::uint16_t id, DnsName name, RecordType type) {
  Message message;
  message.id = id;
  message.flags.recursion_desired = true;
  message.questions.push_back(Question{std::move(name), type, RecordClass::kIn});
  return message;
}

Message Message::response_to(const Message& query, Rcode rcode) {
  Message message;
  message.id = query.id;
  message.flags.response = true;
  message.flags.recursion_desired = query.flags.recursion_desired;
  message.flags.rcode = rcode;
  message.questions = query.questions;
  return message;
}

std::optional<net::Ipv4Address> Message::first_a() const {
  for (const auto& record : answers) {
    if (record.type == RecordType::kA) {
      if (auto address = record.a_address()) return *address;
    }
  }
  return std::nullopt;
}

}  // namespace tft::dns
