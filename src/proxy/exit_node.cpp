#include "tft/proxy/exit_node.hpp"

#include "tft/obs/recorder.hpp"
#include "tft/util/hash.hpp"

namespace tft::proxy {

double stable_hijack_roll(std::string_view zid) {
  const std::uint64_t hash = util::fnv1a64(std::string("hijack-roll|") + std::string(zid));
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

std::uint16_t ephemeral_client_port(util::StreamRng& stream) {
  return static_cast<std::uint16_t>(49152 + stream.uniform(16384));
}

ExitNodeAgent::ExitNodeAgent(Config config, Environment environment)
    : config_(std::move(config)),
      environment_(environment),
      stream_seed_(config_.rng_seed != 0 ? config_.rng_seed
                                         : util::fnv1a64(config_.zid)) {}

middlebox::FetchContext ExitNodeAgent::make_context(net::Ipv4Address destination,
                                                    std::uint64_t scope,
                                                    std::string_view purpose) {
  request_rng_.reseed(util::stream_seed(stream_seed_, scope, purpose));
  middlebox::FetchContext context;
  context.client_address = config_.address;
  context.destination = destination;
  context.clock = environment_.clock;
  context.rng = &request_rng_;
  context.web = environment_.web;
  context.metrics = environment_.metrics;
  context.recorder = environment_.recorder;
  return context;
}

dns::Message ExitNodeAgent::resolve(const dns::DnsName& name,
                                    std::uint64_t scope) {
  util::StreamRng port_stream(stream_seed_, scope, "dns-port");
  const auto query =
      dns::Message::query(ephemeral_client_port(port_stream), name);

  const net::Ipv4Address resolver =
      middlebox::effective_resolver(config_.dns_interceptors, config_.dns_resolver);
  if (environment_.recorder != nullptr) {
    const std::uint64_t now =
        static_cast<std::uint64_t>(environment_.clock->now().micros);
    if (resolver != config_.dns_resolver) {
      // A transparent DNS proxy diverted the query: scan the chain for the
      // interceptor responsible so the evidence chain can name it.
      for (const auto& interceptor : config_.dns_interceptors) {
        if (interceptor->redirect_resolver(config_.dns_resolver)) {
          environment_.recorder->violation(
              obs::Hop::kMiddlebox, interceptor->name(), "redirect-resolver",
              config_.dns_resolver.to_string() + " -> " + resolver.to_string(),
              now);
          break;
        }
      }
    }
    environment_.recorder->event(obs::Hop::kExitNode, config_.zid, "dns-query",
                                 name.to_string() + " via " +
                                     resolver.to_string(),
                                 now);
  }

  dns::Message response = environment_.resolvers->resolve_via(
      resolver, config_.address, query, stable_hijack_roll(config_.zid));

  middlebox::FetchContext context =
      make_context(net::Ipv4Address{}, scope, "dns-intercept");
  return middlebox::intercepted_response(config_.dns_interceptors, query,
                                         std::move(response), context);
}

ExitNodeAgent::FetchOutcome ExitNodeAgent::fetch_http(
    const http::Url& url, std::optional<net::Ipv4Address> resolved,
    std::uint64_t scope) {
  FetchOutcome outcome;

  net::Ipv4Address destination;
  if (resolved) {
    destination = *resolved;
  } else {
    const auto name = dns::DnsName::parse(url.host);
    if (!name) {
      outcome.dns_failed = true;
      return outcome;
    }
    const dns::Message answer = resolve(*name, scope);
    if (answer.is_nxdomain()) {
      outcome.dns_nxdomain = true;
      return outcome;
    }
    const auto address = answer.first_a();
    if (!address) {
      outcome.dns_failed = true;
      return outcome;
    }
    destination = *address;
  }

  middlebox::FetchContext context =
      make_context(destination, scope, "http-intercept");
  const http::Request request = http::Request::origin_get(url);
  outcome.response =
      middlebox::intercepted_fetch(config_.http_interceptors, request, context);
  outcome.destination = destination;
  return outcome;
}

std::optional<smtp::Transcript> ExitNodeAgent::run_smtp(
    net::Ipv4Address destination, const smtp::ClientScript& script) {
  if (environment_.smtp == nullptr) return std::nullopt;
  smtp::SmtpServer* server = environment_.smtp->find(destination);
  if (server == nullptr) return std::nullopt;
  return smtp::run_session(*server, config_.smtp_interceptors, script,
                           config_.address, environment_.clock->now(),
                           environment_.recorder);
}

std::optional<tls::CertificateChain> ExitNodeAgent::fetch_certificate_chain(
    net::Ipv4Address destination, std::string_view sni, std::uint64_t scope) {
  const tls::CertificateChain* upstream =
      environment_.tls->handshake(destination, sni);
  if (upstream == nullptr) return std::nullopt;

  middlebox::FetchContext context =
      make_context(destination, scope, "tls-intercept");
  return middlebox::intercepted_chain(config_.tls_interceptors, sni, *upstream,
                                      context);
}

}  // namespace tft::proxy
