#include "tft/tls/endpoint.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "tft/tls/authority.hpp"

namespace tft::tls {
namespace {

CertificateChain chain_for_host(const std::string& host) {
  auto root = CertificateAuthority::make_root(
      {"Root", "", ""}, 1, sim::Instant::epoch(),
      sim::Instant::epoch() + sim::Duration::hours(24));
  CertificateAuthority::LeafOptions options;
  options.hosts = {host};
  return root.chain_for(root.issue(options));
}

TEST(TlsServerTest, SniSelectsSite) {
  TlsServer server("multi");
  server.add_site("a.example.com", chain_for_host("a.example.com"));
  server.add_site("b.example.com", chain_for_host("b.example.com"));
  ASSERT_NE(server.chain_for("a.example.com"), nullptr);
  EXPECT_EQ(server.chain_for("a.example.com")->front().subject.common_name,
            "a.example.com");
  EXPECT_EQ(server.chain_for("B.EXAMPLE.COM")->front().subject.common_name,
            "b.example.com");
  EXPECT_EQ(server.chain_for("unknown.example.com"), nullptr);
}

TEST(TlsServerTest, DefaultChainFallback) {
  TlsServer server("single");
  server.set_default_chain(chain_for_host("only.example.com"));
  EXPECT_NE(server.chain_for(""), nullptr);
  EXPECT_NE(server.chain_for("anything.example.net"), nullptr);
}

TEST(TlsServerTest, SingleSiteServesWithoutSni) {
  TlsServer server("single-site");
  server.add_site("x.example.com", chain_for_host("x.example.com"));
  EXPECT_NE(server.chain_for(""), nullptr);
}

TEST(TlsServerTest, NoChainsMeansRefused) {
  TlsServer server("empty");
  EXPECT_EQ(server.chain_for("x"), nullptr);
}

TEST(TlsEndpointRegistryTest, HandshakeRouting) {
  TlsEndpointRegistry registry;
  auto server = std::make_shared<TlsServer>("site");
  server->set_default_chain(chain_for_host("site.example.com"));
  const net::Ipv4Address address(198, 51, 100, 20);
  registry.add(address, server);

  EXPECT_NE(registry.handshake(address, "site.example.com"), nullptr);
  EXPECT_EQ(registry.handshake(net::Ipv4Address(1, 1, 1, 1), "x"), nullptr);
  EXPECT_EQ(registry.find(address), server.get());
}

}  // namespace
}  // namespace tft::tls
