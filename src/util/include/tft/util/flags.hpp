// Minimal command-line flag parser for the tools and benches:
// --name=value / --name value / --bool-flag, plus positional arguments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"

namespace tft::util {

class Flags {
 public:
  /// Parse argv. Flags start with "--"; everything else is positional.
  /// "--" alone ends flag parsing. A flag followed by a non-flag token
  /// consumes it as its value unless the flag was declared boolean via
  /// `boolean_flags`.
  static Result<Flags> parse(int argc, const char* const* argv,
                             const std::vector<std::string>& boolean_flags = {});

  bool has(std::string_view name) const;

  std::optional<std::string> get(std::string_view name) const;
  std::string get_or(std::string_view name, std::string_view fallback) const;

  /// Typed accessors; parse errors surface as Result errors.
  Result<double> get_double(std::string_view name, double fallback) const;
  Result<long long> get_int(std::string_view name, long long fallback) const;
  bool get_bool(std::string_view name, bool fallback = false) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }
  const std::string& program() const noexcept { return program_; }

  /// Flags that were provided but not consumed by any accessor — callers
  /// can reject typos.
  std::vector<std::string> unknown(const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace tft::util
