// Minimal JSON parser (RFC 8259 subset: UTF-8 passthrough, \uXXXX for the
// BMP, doubles for all numbers). Counterpart to JsonWriter; used to load
// scenario files.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"

namespace tft::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(JsonArray value)
      : kind_(Kind::kArray), array_(std::make_shared<JsonArray>(std::move(value))) {}
  JsonValue(JsonObject value)
      : kind_(Kind::kObject),
        object_(std::make_shared<JsonObject>(std::move(value))) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(number_) : fallback;
  }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }
  const JsonArray& as_array() const {
    static const JsonArray kEmpty;
    return is_array() ? *array_ : kEmpty;
  }
  const JsonObject& as_object() const {
    static const JsonObject kEmpty;
    return is_object() ? *object_ : kEmpty;
  }

  /// Object member lookup; returns a null value when absent or not an
  /// object (chainable).
  const JsonValue& operator[](std::string_view key) const;

  bool has(std::string_view key) const {
    return is_object() && object_->find(std::string(key)) != object_->end();
  }

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parse a complete JSON document (one value, optional surrounding
/// whitespace; trailing garbage is an error).
Result<JsonValue> parse_json(std::string_view text);

}  // namespace tft::util
