// Binary serialization for certificates and chains — the DER stand-in that
// lets observed chains be stored, exchanged, and replayed (the paper
// published its measurement data; this is the equivalent facility).
//
// Format (big-endian):
//   chain  := magic "TFTC" u16 version(1) u16 count, then `count` certs
//   cert   := u32 length, then the body:
//     dn(subject) dn(issuer) u64 serial i64 not_before i64 not_after
//     u16 san_count { u16 len bytes }* u64 public_key u64 signed_by u8 is_ca
//   dn     := u16 len bytes (CN) u16 len bytes (O) u16 len bytes (C)
#pragma once

#include <string>
#include <string_view>

#include "tft/tls/certificate.hpp"
#include "tft/util/result.hpp"

namespace tft::tls {

std::string encode_certificate(const Certificate& certificate);
util::Result<Certificate> decode_certificate(std::string_view wire);

std::string encode_chain(const CertificateChain& chain);
util::Result<CertificateChain> decode_chain(std::string_view wire);

}  // namespace tft::tls
