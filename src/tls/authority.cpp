#include "tft/tls/authority.hpp"

#include "tft/util/hash.hpp"

namespace tft::tls {

CertificateAuthority CertificateAuthority::make_root(DistinguishedName name, KeyId key,
                                                     sim::Instant not_before,
                                                     sim::Instant not_after) {
  CertificateAuthority ca;
  ca.certificate_.subject = name;
  ca.certificate_.issuer = std::move(name);
  ca.certificate_.serial = 1;
  ca.certificate_.not_before = not_before;
  ca.certificate_.not_after = not_after;
  ca.certificate_.public_key = key;
  ca.certificate_.signed_by = key;  // self-signed
  ca.certificate_.is_ca = true;
  return ca;
}

CertificateAuthority CertificateAuthority::make_intermediate(
    const CertificateAuthority& parent, DistinguishedName name, KeyId key) {
  CertificateAuthority ca;
  ca.certificate_.subject = std::move(name);
  ca.certificate_.issuer = parent.certificate_.subject;
  ca.certificate_.serial = 1;
  ca.certificate_.not_before = parent.certificate_.not_before;
  ca.certificate_.not_after = parent.certificate_.not_after;
  ca.certificate_.public_key = key;
  ca.certificate_.signed_by = parent.key();
  ca.certificate_.is_ca = true;
  ca.parents_ = parent.parents_;
  ca.parents_.insert(ca.parents_.begin(), parent.certificate_);
  return ca;
}

Certificate CertificateAuthority::issue(const LeafOptions& options) {
  Certificate leaf;
  if (options.subject_override) {
    leaf.subject = *options.subject_override;
  } else if (!options.hosts.empty()) {
    leaf.subject.common_name = options.hosts.front();
  }
  leaf.issuer = certificate_.subject;
  leaf.serial = next_serial_++;
  leaf.not_before = options.not_before.value_or(certificate_.not_before);
  leaf.not_after = options.not_after.value_or(certificate_.not_after);
  leaf.subject_alt_names = options.hosts;
  leaf.public_key = options.public_key != 0
                        ? options.public_key
                        : util::hash_combine(certificate_.public_key, leaf.serial);
  leaf.signed_by = certificate_.public_key;
  leaf.is_ca = false;
  return leaf;
}

CertificateChain CertificateAuthority::chain_for(const Certificate& leaf) const {
  CertificateChain chain;
  chain.push_back(leaf);
  chain.push_back(certificate_);
  chain.insert(chain.end(), parents_.begin(), parents_.end());
  return chain;
}

Certificate forge_leaf(const Certificate& original, const ForgeProfile& profile,
                       std::uint64_t host_key_seed, bool upstream_valid,
                       sim::Instant now) {
  Certificate forged;

  if (profile.copy_subject_fields) {
    forged.subject = original.subject;
    forged.subject_alt_names = original.subject_alt_names;
  } else {
    forged.subject.common_name = original.subject.common_name;
    forged.subject_alt_names = original.subject_alt_names;
  }

  const bool use_untrusted_issuer =
      !upstream_valid && profile.untrusted_issuer.has_value();
  forged.issuer = use_untrusted_issuer ? *profile.untrusted_issuer : profile.issuer;

  // Forged certs get a fresh-looking validity window around "now".
  forged.not_before = now - sim::Duration::hours(24);
  forged.not_after = now + sim::Duration::hours(24 * 365);
  forged.serial = util::hash_combine(host_key_seed,
                                     util::fnv1a64(original.subject.common_name));

  if (profile.reuse_public_key) {
    // One key per host per product: every spoofed cert on this host shares it.
    forged.public_key = util::hash_combine(profile.signing_key, host_key_seed);
  } else {
    // Fresh key per forged certificate (Avast behaviour).
    forged.public_key = util::hash_combine(
        util::hash_combine(profile.signing_key, host_key_seed), forged.serial);
  }
  forged.signed_by = use_untrusted_issuer
                         ? util::hash_combine(profile.signing_key, 0xBADu)
                         : profile.signing_key;
  forged.is_ca = false;
  return forged;
}

}  // namespace tft::tls
