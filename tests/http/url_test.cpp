#include "tft/http/url.hpp"

#include <gtest/gtest.h>

namespace tft::http {
namespace {

TEST(UrlTest, ParseBasicHttp) {
  const auto url = Url::parse("http://example.com/path?x=1");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "example.com");
  EXPECT_EQ(url->port, 80);
  EXPECT_EQ(url->path, "/path");
  EXPECT_EQ(url->query, "x=1");
}

TEST(UrlTest, DefaultsPathToRoot) {
  const auto url = Url::parse("http://example.com");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(url->to_string(), "http://example.com/");
}

TEST(UrlTest, HttpsDefaultPort) {
  const auto url = Url::parse("https://secure.example.com/");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->port, 443);
  EXPECT_EQ(url->host_header(), "secure.example.com");
}

TEST(UrlTest, ExplicitPort) {
  const auto url = Url::parse("http://example.com:8080/a");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->port, 8080);
  EXPECT_EQ(url->host_header(), "example.com:8080");
  EXPECT_EQ(url->to_string(), "http://example.com:8080/a");
}

TEST(UrlTest, HostIsLowercased) {
  const auto url = Url::parse("HTTP://ExAmPle.COM/Path");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "example.com");
  EXPECT_EQ(url->path, "/Path");  // path case is preserved
}

TEST(UrlTest, QueryWithoutPath) {
  const auto url = Url::parse("http://example.com?q=abc");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(url->query, "q=abc");
  EXPECT_EQ(url->request_target(), "/?q=abc");
}

struct BadUrlCase {
  const char* text;
};

class UrlRejectTest : public ::testing::TestWithParam<BadUrlCase> {};

TEST_P(UrlRejectTest, Rejects) {
  EXPECT_FALSE(Url::parse(GetParam().text).ok()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    BadUrls, UrlRejectTest,
    ::testing::Values(BadUrlCase{""}, BadUrlCase{"example.com"},
                      BadUrlCase{"ftp://example.com/"}, BadUrlCase{"http://"},
                      BadUrlCase{"http:///path"}, BadUrlCase{"http://host:0/"},
                      BadUrlCase{"http://host:99999/"},
                      BadUrlCase{"http://host:12ab/"}));

TEST(UrlTest, RoundTripEquality) {
  const auto a = Url::parse("https://example.com:444/x?y=z");
  const auto b = Url::parse(a->to_string());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(UrlTest, DefaultPortOmittedInToString) {
  EXPECT_EQ(Url::parse("http://a.com:80/")->to_string(), "http://a.com/");
  EXPECT_EQ(Url::parse("https://a.com:443/")->to_string(), "https://a.com/");
}

}  // namespace
}  // namespace tft::http
