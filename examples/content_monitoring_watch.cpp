// Example: detecting content monitoring (§7) with custom delay models.
// Shows the unique-domain methodology, the 24h watch window on the
// simulated clock, and how Figure-5-style delay CDFs separate entities.
#include <iostream>

#include "tft/core/study.hpp"
#include "tft/util/strings.hpp"
#include "tft/world/world.hpp"

using namespace tft;  // NOLINT — example brevity

int main() {
  world::WorldSpec spec;
  spec.countries = {
      {"US", 1000, 0, 3, 2, 0.10, 0.05},
      {"GB", 600, 0, 2, 2, 0.10, 0.05},
  };
  spec.named_isps = {{"WatchfulNet", "GB", 2, 400, net::OrgKind::kBroadbandIsp}};
  spec.scattered_google_hijack_nodes = 0;
  spec.clean_public_resolvers = 8;
  spec.adware.clear();
  spec.adware_install_boost = 1.0;
  spec.transcoders.clear();
  spec.cert_replacers.clear();
  spec.blockpage_nodes = 0;
  spec.js_error_nodes = 0;
  spec.css_error_nodes = 0;
  spec.https.popular_sites_per_country = 3;
  spec.https.countries_with_rankings = 2;
  spec.https.universities = {"example.edu"};

  using MKind = world::MonitorSpec::Kind;
  using Refetch = world::MonitorSpec::Refetch;
  spec.monitors = {
      // A cloud AV that re-fetches twice: quickly, then up to ~3.5 hours out.
      {"CloudScan AV", MKind::kHostSoftware, "US", 25, 120, 0, "", 40, 2,
       {Refetch{12, 120, 0, 0, false}, Refetch{200, 12500, 0, 0, false}}},
      // An ISP that samples 30% of its subscribers, exactly 30s later.
      {"WatchfulNet", MKind::kIspService, "GB", 4, 0, 0.30, "WatchfulNet", 2, 1,
       {Refetch{30, 30, 0, 0, false}}},
      // A scan-before-forward proxy (Bluecoat-style prefetch).
      {"PrefetchBox", MKind::kPathMiddlebox, "US", 3, 60, 0, "", 20, 2,
       {Refetch{1, 30, /*prefetch=*/0.83, /*hold_s=*/0.5, false}}},
  };
  spec.tail_monitor_groups = 0;

  auto world = world::build_world(spec, 1.0, 21);
  std::cout << "Watching " << world->luminati->node_count() << " exit nodes...\n\n";

  core::MonitorProbeConfig probe_config;
  probe_config.target_nodes = 0;     // crawl everyone
  probe_config.watch_hours = 24.0;   // then watch the server log for a day
  core::ContentMonitorProbe probe(*world, probe_config);
  probe.run();

  const auto report = core::analyze_monitoring(*world, probe.observations(),
                                               core::MonitorAnalysisConfig{});
  std::cout << core::render_monitor_report(report) << "\n";

  // Drill into the negative-delay prefetches: requests that beat the user's
  // own request to the server.
  std::size_t prefetches = 0, total_unexpected = 0;
  for (const auto& observation : probe.observations()) {
    for (const auto& unexpected : observation.unexpected) {
      ++total_unexpected;
      if (unexpected.delay_seconds < 0) ++prefetches;
    }
  }
  std::cout << "unexpected requests arriving BEFORE the user's own request: "
            << prefetches << " of " << total_unexpected
            << " (scan-before-forward proxies)\n";
  return 0;
}
