#include "tft/stats/table.hpp"

#include <algorithm>

namespace tft::stats {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) line += "  ";
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      line += cell;
      line.append(widths[i] - cell.size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(columns_);
  std::size_t rule = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) rule += widths[i] + (i > 0 ? 2 : 0);
  out += std::string(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string banner(std::string_view title) {
  std::string out = "== ";
  out += title;
  out += ' ';
  if (out.size() < 72) out += std::string(72 - out.size(), '=');
  out += '\n';
  return out;
}

}  // namespace tft::stats
