#include "tft/testing/golden.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tft/util/json.hpp"

namespace tft::testing {

using util::ErrorCode;
using util::JsonValue;
using util::make_error;
using util::Result;

const std::vector<std::string>& default_stripped_keys() {
  static const std::vector<std::string> kKeys = {"build", "timing"};
  return kKeys;
}

namespace {

bool is_stripped(const std::string& key, const std::vector<std::string>& keys) {
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

void append_indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

void append_number(std::string& out, double value) {
  // Integers (the overwhelmingly common case: counters, counts, ids) print
  // without a fraction so canonical text is independent of double quirks.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    out += buffer;
    return;
  }
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_canonical(std::string& out, const JsonValue& value,
                      const std::vector<std::string>& stripped, int depth) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      append_number(out, value.as_number());
      return;
    case JsonValue::Kind::kString:
      out += '"' + util::JsonWriter::escape(value.as_string()) + '"';
      return;
    case JsonValue::Kind::kArray: {
      const auto& items = value.as_array();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items.size(); ++i) {
        append_indent(out, depth + 1);
        append_canonical(out, items[i], stripped, depth + 1);
        if (i + 1 < items.size()) out += ',';
        out += '\n';
      }
      append_indent(out, depth);
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      // JsonObject is a std::map, so iteration is already key-sorted.
      const auto& members = value.as_object();
      std::size_t kept = 0;
      for (const auto& [key, member] : members) {
        (void)member;
        if (!is_stripped(key, stripped)) ++kept;
      }
      if (kept == 0) {
        out += "{}";
        return;
      }
      out += "{\n";
      std::size_t emitted = 0;
      for (const auto& [key, member] : members) {
        if (is_stripped(key, stripped)) continue;
        append_indent(out, depth + 1);
        out += '"' + util::JsonWriter::escape(key) + "\": ";
        append_canonical(out, member, stripped, depth + 1);
        if (++emitted < kept) out += ',';
        out += '\n';
      }
      append_indent(out, depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string canonical_json_text(const JsonValue& value) {
  std::string out;
  append_canonical(out, value, {}, 0);
  out += '\n';
  return out;
}

Result<std::string> canonicalize_json(std::string_view text,
                                      const std::vector<std::string>& stripped_keys) {
  auto parsed = util::parse_json(text);
  if (!parsed.ok()) return parsed.error();
  std::string out;
  append_canonical(out, *parsed, stripped_keys, 0);
  out += '\n';
  return out;
}

std::string first_difference(std::string_view expected, std::string_view actual) {
  if (expected == actual) return "";
  std::size_t at = 0;
  const std::size_t limit = std::min(expected.size(), actual.size());
  while (at < limit && expected[at] == actual[at]) ++at;

  std::size_t line = 1;
  std::size_t column = 1;
  for (std::size_t i = 0; i < at; ++i) {
    if (expected[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }

  const auto excerpt = [at](std::string_view text) -> std::string {
    const std::size_t begin = at < 30 ? 0 : at - 30;
    const std::size_t length = std::min<std::size_t>(60, text.size() - begin);
    std::string out;
    for (const char c : text.substr(begin, length)) {
      out += (c == '\n') ? ' ' : c;
    }
    return out;
  };

  std::string out = "first difference at line " + std::to_string(line) +
                    ", column " + std::to_string(column) + " (byte " +
                    std::to_string(at) + ")\n";
  out += "  expected: ..." + excerpt(expected) + "\n";
  out += "  actual:   ..." + excerpt(actual) + "\n";
  if (expected.size() != actual.size()) {
    out += "  sizes: expected " + std::to_string(expected.size()) +
           " bytes, actual " + std::to_string(actual.size()) + " bytes\n";
  }
  return out;
}

GoldenOutcome check_golden(const std::string& path, std::string_view actual) {
  GoldenOutcome outcome;
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    outcome.snapshot_missing = true;
    outcome.diff = "snapshot " + path +
                   " does not exist (run tools/update_goldens to create it)";
    return outcome;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string expected = buffer.str();
  if (expected == actual) {
    outcome.matched = true;
    return outcome;
  }
  outcome.diff = first_difference(expected, actual);
  return outcome;
}

Result<void> update_golden(const std::string& path, std::string_view actual) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return make_error(ErrorCode::kInternal, "cannot create " +
                                                  parent.string() + ": " +
                                                  ec.message());
    }
  }
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return make_error(ErrorCode::kInternal, "cannot write snapshot " + path);
  }
  file.write(actual.data(), static_cast<std::streamsize>(actual.size()));
  if (!file) {
    return make_error(ErrorCode::kInternal, "short write to snapshot " + path);
  }
  return {};
}

}  // namespace tft::testing
