#include <gtest/gtest.h>

#include <set>

#include "tft/core/dns_probe.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

TEST(ContentShapeHashTest, IdenticalUpToUrlsCollapses) {
  const std::string a =
      "<script>var t=\"http://searchassist.verizon.com/search\";"
      "go(t);go(t);</script>";
  const std::string b =
      "<script>var t=\"http://finder.cox.net/search\";"
      "go(t);go(t);</script>";
  EXPECT_EQ(content_shape_hash(a), content_shape_hash(b));
}

TEST(ContentShapeHashTest, DifferentCodeDiffers) {
  EXPECT_NE(content_shape_hash("<script>redirect('http://a.example/x')</script>"),
            content_shape_hash("<b>sponsored: <a href='http://a.example/x'>go</a></b>"));
}

TEST(ContentShapeHashTest, RawHostTextKeepsPagesApart) {
  // The landing host appearing as visible TEXT (not a URL) is not stripped,
  // so per-ISP generic pages stay distinct.
  const std::string a = "visit <a href=\"http://x.example/s\">x.example</a>";
  const std::string b = "visit <a href=\"http://y.example/s\">y.example</a>";
  EXPECT_NE(content_shape_hash(a), content_shape_hash(b));
}

TEST(ContentShapeHashTest, RepeatedUrlsAllStripped) {
  const std::string once = "go http://a.example/x now";
  const std::string twice = "go http://a.example/x now http://a.example/x";
  // Both URLs are placeholders, so the second page differs only by the
  // extra placeholder, not by host.
  EXPECT_EQ(content_shape_hash("p http://h1.example/q p http://h1.example/q"),
            content_shape_hash("p http://h2.example/q p http://h2.example/q"));
  EXPECT_NE(content_shape_hash(once), content_shape_hash(twice));
}

TEST(SharedVendorClusterTest, RecoveredFromSyntheticObservations) {
  // Three ISPs, two of which serve byte-identical (up to URL) hijack pages.
  const auto world = world::build_world(world::mini_spec(), 0.3, 3);

  const auto page = [](const std::string& host) {
    return "<html><script>var t=\"http://" + host +
           "/search\";window.onload=function(){location=t;}</script></html>";
  };
  // Pick six nodes from six DISTINCT organizations so the cluster spans
  // ISPs (a cluster within one ISP is not vendor evidence).
  std::vector<const proxy::ExitNodeAgent*> picked;
  std::set<std::string> seen_orgs;
  for (const auto& node : world->luminati->nodes()) {
    const auto* org = world->topology.organization_of(node->address());
    if (org == nullptr || !seen_orgs.insert(org->name).second) continue;
    picked.push_back(node.get());
    if (picked.size() == 6) break;
  }
  ASSERT_EQ(picked.size(), 6u);

  std::vector<DnsNodeObservation> observations;
  for (std::size_t i = 0; i < picked.size(); ++i) {
    DnsNodeObservation observation;
    observation.zid = picked[i]->zid();
    observation.exit_address = picked[i]->address();
    observation.asn = picked[i]->asn();
    observation.country = picked[i]->country();
    observation.dns_server = picked[i]->address();  // same org as the node
    observation.hijacked = true;
    // Nodes 0-2: vendor page (URL differs per ISP). 3-5: bespoke pages.
    observation.hijack_content =
        i < 3 ? page("assist-" + std::to_string(i) + ".example")
              : "<html>bespoke " + std::to_string(i) + "</html>";
    observations.push_back(std::move(observation));
  }

  const auto report = analyze_dns(*world, observations, DnsAnalysisConfig{});
  ASSERT_FALSE(report.shared_vendor_clusters.empty());
  const auto& cluster = report.shared_vendor_clusters.front();
  EXPECT_EQ(cluster.nodes, 3u);
  EXPECT_GE(cluster.isps.size(), 2u);
}

TEST(SharedVendorClusterTest, PaperWorldSharedVendorIspsCluster) {
  // End-to-end: the five shared-vendor ISPs of §4.3.1 must land in one
  // cluster after a real probe run.
  auto world = world::build_world(world::paper_spec(), 0.01, 11);
  DnsProbeConfig config;
  config.target_nodes = 0;
  config.stall_limit = 2000;
  DnsHijackProbe probe(*world, config);
  probe.run();
  const auto report = analyze_dns(*world, probe.observations(), DnsAnalysisConfig{});

  bool found = false;
  for (const auto& cluster : report.shared_vendor_clusters) {
    std::size_t hits = 0;
    for (const auto& isp : cluster.isps) {
      for (const char* expected : {"Cox Communications", "Oi Fixo", "Talk Talk",
                                   "BT Internet", "Verizon"}) {
        if (isp == expected) ++hits;
      }
    }
    if (hits >= 4) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tft::core
