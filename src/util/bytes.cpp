#include "tft/util/bytes.hpp"

namespace tft::util {

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t value) {
  buffer_.at(offset) = static_cast<char>(value >> 8);
  buffer_.at(offset + 1) = static_cast<char>(value & 0xFF);
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) {
    return make_error(ErrorCode::kOutOfRange, "u8 read past end of buffer");
  }
  return static_cast<std::uint8_t>(data_[offset_++]);
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) {
    return make_error(ErrorCode::kOutOfRange, "u16 read past end of buffer");
  }
  const auto hi = static_cast<std::uint8_t>(data_[offset_]);
  const auto lo = static_cast<std::uint8_t>(data_[offset_ + 1]);
  offset_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> ByteReader::u32() {
  auto hi = u16();
  if (!hi) return hi.error();
  auto lo = u16();
  if (!lo) return lo.error();
  return (static_cast<std::uint32_t>(*hi) << 16) | *lo;
}

Result<std::uint64_t> ByteReader::u64() {
  auto hi = u32();
  if (!hi) return hi.error();
  auto lo = u32();
  if (!lo) return lo.error();
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

Result<std::string_view> ByteReader::bytes(std::size_t count) {
  if (remaining() < count) {
    return make_error(ErrorCode::kOutOfRange, "bytes read past end of buffer");
  }
  auto out = data_.substr(offset_, count);
  offset_ += count;
  return out;
}

Result<void> ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    return make_error(ErrorCode::kOutOfRange, "seek past end of buffer");
  }
  offset_ = offset;
  return {};
}

}  // namespace tft::util
