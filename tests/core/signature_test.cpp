#include <gtest/gtest.h>

#include "tft/core/http_probe.hpp"
#include "tft/core/https_probe.hpp"
#include "tft/http/content.hpp"
#include "tft/middlebox/http_modifiers.hpp"

namespace tft::core {
namespace {

std::string inject(const std::string& original, const std::string& snippet) {
  return middlebox::inject_before_body_end(original, snippet);
}

TEST(InjectionSignatureTest, ExtractsUrlHost) {
  const std::string original = http::reference_html();
  const std::string modified = inject(
      original,
      "<script src=\"http://d36mw5gp02ykm5.cloudfront.net/loader.js\"></script>");
  EXPECT_EQ(extract_injection_signature(original, modified),
            "d36mw5gp02ykm5.cloudfront.net");
}

TEST(InjectionSignatureTest, ExtractsVarDeclaration) {
  const std::string original = http::reference_html();
  const std::string modified =
      inject(original, "<script>var oiasudoj; /* ads */</script>");
  EXPECT_EQ(extract_injection_signature(original, modified), "var oiasudoj;");
}

TEST(InjectionSignatureTest, ExtractsClassIdentifier) {
  const std::string original = http::reference_html();
  const std::string modified =
      inject(original, "<div class=\"AdTaily_Widget_Container\"></div>");
  EXPECT_EQ(extract_injection_signature(original, modified),
            "AdTaily_Widget_Container");
}

TEST(InjectionSignatureTest, ExtractsMetaTagKeyword) {
  const std::string original = http::reference_html();
  const std::string modified = inject(
      original, "<meta name=\"NetsparkQuiltingResult\" content=\"filtered\">");
  EXPECT_EQ(extract_injection_signature(original, modified),
            "NetsparkQuiltingResult");
}

TEST(InjectionSignatureTest, UrlWinsOverKeyword) {
  const std::string original = http::reference_html();
  const std::string modified = inject(
      original,
      "<script>var Something_Long_Identifier;"
      "var u='http://jswrite.com/script1.js';</script>");
  EXPECT_EQ(extract_injection_signature(original, modified), "jswrite.com");
}

TEST(InjectionSignatureTest, RewrittenContent) {
  EXPECT_EQ(extract_injection_signature("aaaa", "aaaa"), "(rewritten)");
  EXPECT_EQ(extract_injection_signature("abcdef", "abXdef"), "(unidentified)");
}

TEST(InjectionSignatureTest, FullReplacementHandled) {
  const std::string original = http::reference_html();
  EXPECT_EQ(extract_injection_signature(original, "<html>blocked</html>"),
            "(unidentified)");
}

TEST(IssuerClassificationTest, KnownVendors) {
  EXPECT_EQ(classify_issuer("Avast! Web/Mail Shield Root"), "Anti-Virus/Security");
  EXPECT_EQ(classify_issuer("Kaspersky Anti-Virus Personal Root"),
            "Anti-Virus/Security");
  EXPECT_EQ(classify_issuer("ESET SSL Filter CA"), "Anti-Virus/Security");
  EXPECT_EQ(classify_issuer("BITDEFENDER Personal CA"), "Anti-Virus/Security");
  EXPECT_EQ(classify_issuer("OpenDNS Root Certificate Authority"), "Content filter");
  EXPECT_EQ(classify_issuer("Cloudguard.me CA"), "Malware");
  EXPECT_EQ(classify_issuer("Sample CA 2"), "N/A");
  EXPECT_EQ(classify_issuer(""), "N/A");
}

}  // namespace
}  // namespace tft::core
