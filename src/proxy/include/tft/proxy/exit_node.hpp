// Exit nodes: the Hola end hosts that Luminati routes traffic through.
// An ExitNodeAgent owns the node's network identity (address, AS, country),
// its DNS configuration, and the interceptor chains modeling whatever
// middleboxes sit on its path and whatever software runs on its host.
#pragma once

#include <memory>
#include <string>

#include "tft/dns/resolver.hpp"
#include "tft/http/server.hpp"
#include "tft/middlebox/dns_interceptor.hpp"
#include "tft/middlebox/interceptor.hpp"
#include "tft/middlebox/tls_interceptor.hpp"
#include "tft/net/topology.hpp"
#include "tft/smtp/session.hpp"
#include "tft/tls/endpoint.hpp"
#include "tft/util/rng.hpp"

namespace tft::proxy {

/// Per-node deterministic roll in [0,1) used for probabilistic resolver
/// behaviour (per-subscriber-plan hijacking): a node's resolver treats it
/// consistently across queries, and the world builder can precompute the
/// ground truth from the same roll.
double stable_hijack_roll(std::string_view zid);

/// Shared environment every node operates in (the simulated Internet).
struct Environment {
  dns::ResolverDirectory* resolvers = nullptr;
  http::WebServerRegistry* web = nullptr;
  tls::TlsEndpointRegistry* tls = nullptr;
  smtp::SmtpServerRegistry* smtp = nullptr;  // optional (SMTP extension)
  sim::EventQueue* clock = nullptr;
  const net::AsOrgDb* topology = nullptr;
  /// Observability sink (the owning world's registry); threaded into every
  /// FetchContext and read by the super proxy. May stay null in tests.
  obs::Registry* metrics = nullptr;
};

class ExitNodeAgent {
 public:
  struct Config {
    std::string zid;               // persistent Luminati identifier
    net::Ipv4Address address;
    net::Asn asn = 0;
    net::CountryCode country;
    net::Ipv4Address dns_resolver;  // configured resolver service address
    middlebox::DnsInterceptorList dns_interceptors;
    middlebox::HttpInterceptorList http_interceptors;
    middlebox::TlsInterceptorList tls_interceptors;
    smtp::SmtpInterceptorList smtp_interceptors;
    /// Probability a request through this node fails (churn / NAT issues);
    /// exercises Luminati's retry behaviour.
    double failure_probability = 0.0;
    std::uint64_t rng_seed = 0;
  };

  ExitNodeAgent(Config config, Environment environment);

  const std::string& zid() const noexcept { return config_.zid; }
  net::Ipv4Address address() const noexcept { return config_.address; }
  net::Asn asn() const noexcept { return config_.asn; }
  const net::CountryCode& country() const noexcept { return config_.country; }
  net::Ipv4Address configured_resolver() const noexcept { return config_.dns_resolver; }

  bool online() const noexcept { return online_; }
  void set_online(bool online) noexcept { online_ = online; }

  /// Simulate a DHCP renumbering: the host gets a new address while its
  /// zID stays fixed (§2.3: zIDs identify nodes across IP changes).
  void set_address(net::Ipv4Address address) noexcept { config_.address = address; }

  /// Roll the churn dice for one request attempt.
  bool attempt_fails() { return rng_.chance(config_.failure_probability); }

  /// Resolve a name using the node's configured resolver, traversing any
  /// DNS interceptors (transparent proxies, host rewriters).
  dns::Message resolve(const dns::DnsName& name);

  /// Fetch an HTTP URL: resolve (unless `resolved` is supplied by the super
  /// proxy), then run the request through the node's HTTP interceptors.
  struct FetchOutcome {
    bool dns_nxdomain = false;   // name did not resolve (clean NXDOMAIN)
    bool dns_failed = false;     // SERVFAIL or no resolver
    http::Response response;     // valid unless a dns_* flag is set
    net::Ipv4Address destination;  // where the request actually went
  };
  FetchOutcome fetch_http(const http::Url& url,
                          std::optional<net::Ipv4Address> resolved = std::nullopt);

  /// Open a TCP tunnel to destination:443 and perform a TLS handshake with
  /// the given SNI, traversing the node's TLS interceptors. Returns the
  /// chain the *client* observes, or nullopt if the endpoint is
  /// unreachable.
  std::optional<tls::CertificateChain> fetch_certificate_chain(
      net::Ipv4Address destination, std::string_view sni);

  /// Run an SMTP transaction to destination:25 through the node's SMTP
  /// interceptors (the §3.4 arbitrary-traffic extension). nullopt when no
  /// SMTP server is reachable at the destination.
  std::optional<smtp::Transcript> run_smtp(net::Ipv4Address destination,
                                           const smtp::ClientScript& script);

  const Config& config() const noexcept { return config_; }

 private:
  middlebox::FetchContext make_context(net::Ipv4Address destination);

  Config config_;
  Environment environment_;
  util::Rng rng_;
  bool online_ = true;
};

}  // namespace tft::proxy
