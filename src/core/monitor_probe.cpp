#include "tft/core/monitor_probe.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/obs/shards.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"
#include "tft/util/thread_pool.hpp"

namespace tft::core {

ContentMonitorProbe::ContentMonitorProbe(world::World& world,
                                         MonitorProbeConfig config)
    : world_(world), config_(config) {}

std::size_t ContentMonitorProbe::run() {
  // One keyed counter step per session (see DnsHijackProbe for rationale).
  util::StreamRng rng(config_.seed, 0, "country");

  std::vector<net::CountryCode> countries;
  std::vector<double> weights;
  for (const auto& [country, count] : world_.luminati->country_counts()) {
    countries.push_back(country);
    weights.push_back(static_cast<double>(count));
  }

  std::unordered_set<std::string> seen_zids;
  // host -> index into observations_
  std::unordered_map<std::string, std::size_t> by_host;

  const std::size_t log_start = world_.measurement_web->request_log().size();
  std::size_t stall = 0;
  std::size_t session_id = 0;

  world_.metrics.begin_span("monitor.crawl", world_.clock.now());
  while ((config_.target_nodes == 0 || observations_.size() < config_.target_nodes) &&
         stall < config_.stall_limit) {
    proxy::RequestOptions options;
    options.country = countries[rng.weighted_index(weights)];
    // Evidence chain: the id is a keyed stream derivation from the probe's
    // seed and session counter — stable across --jobs and composition.
    const std::uint64_t txn_id =
        util::StreamKey{config_.seed, session_id, util::purpose_tag("monitor-txn")}
            .mixed();
    options.session = "mon-" + std::to_string(session_id++);
    ++sessions_issued_;
    world_.metrics.add("monitor.sessions");

    const std::string host =
        "m" + std::to_string(session_id) + ".probe.tft-study.net";
    world_.recorder.begin(txn_id, "monitor", host);
    world_.recorder.event(obs::Hop::kClient, "monitor-probe", "fetch", host,
                          static_cast<std::uint64_t>(world_.clock.now().micros));
    const auto result =
        world_.proxy().fetch(*http::Url::parse("http://" + host + "/"), options);
    if (!result.ok()) {
      ++stall;
      world_.recorder.end("discarded");
      continue;
    }
    if (!seen_zids.insert(result.zid).second) {
      ++stall;
      world_.recorder.end("discarded");
      continue;
    }
    stall = 0;

    MonitorObservation observation;
    observation.txn_id = txn_id;
    observation.zid = result.zid;
    observation.reported_exit_address = result.exit_address;
    observation.asn = result.exit_asn;
    observation.country = result.exit_country;
    observation.probe_host = host;
    world_.metrics.add("monitor.observations");
    world_.recorder.end("clean");
    world_.recorder.amend_node(txn_id, observation.zid, observation.asn,
                               observation.country);
    by_host.emplace(host, observations_.size());
    observations_.push_back(std::move(observation));
  }
  world_.metrics.end_span(world_.clock.now());

  // Watch window: let scheduled re-fetches arrive.
  world_.metrics.begin_span("monitor.watch", world_.clock.now());
  world_.clock.run_until(world_.clock.now() +
                         sim::Duration::hours(config_.watch_hours));
  world_.metrics.end_span(world_.clock.now());

  // Harvest: for each probed domain, the node's own request is the one from
  // its reported address (or, failing that — VPN relaying — the earliest);
  // everything else is unexpected.
  struct Arrival {
    sim::Instant time;
    net::Ipv4Address source;
    std::string user_agent;
  };
  std::unordered_map<std::string, std::vector<Arrival>> arrivals;
  const auto& log = world_.measurement_web->request_log();
  for (std::size_t i = log_start; i < log.size(); ++i) {
    if (!by_host.contains(log[i].host)) continue;
    arrivals[log[i].host].push_back(Arrival{log[i].time, log[i].source, log[i].user_agent});
  }

  // Each probe host belongs to exactly one observation, so sharding over
  // observation indices touches every arrival list exactly once and every
  // write lands in the shard's own index range — byte-identical output for
  // every jobs value.
  obs::traced_for_shards(
      world_.metrics, "monitor.harvest", world_.clock.now(),
      observations_.size(), util::shard_count(observations_.size()),
      config_.jobs, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t index = begin; index < end; ++index) {
          MonitorObservation& observation = observations_[index];
          const auto found = arrivals.find(observation.probe_host);
          if (found == arrivals.end()) continue;
          auto& list = found->second;
          std::stable_sort(
              list.begin(), list.end(),
              [](const Arrival& a, const Arrival& b) { return a.time < b.time; });

          // Find the node's own request.
          std::ptrdiff_t own = -1;
          for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].source == observation.reported_exit_address) {
              own = static_cast<std::ptrdiff_t>(i);
              break;
            }
          }
          if (own < 0) {
            observation.own_request_address_mismatch = true;
            own = 0;  // earliest request stands in for the node's own
          }
          observation.own_request_source =
              list[static_cast<std::size_t>(own)].source;
          const sim::Instant own_time = list[static_cast<std::size_t>(own)].time;

          for (std::size_t i = 0; i < list.size(); ++i) {
            if (static_cast<std::ptrdiff_t>(i) == own) continue;
            UnexpectedRequest unexpected;
            unexpected.source = list[i].source;
            unexpected.delay_seconds = (list[i].time - own_time).to_seconds();
            unexpected.user_agent = list[i].user_agent;
            if (const auto asn = world_.topology.origin_as(list[i].source)) {
              unexpected.asn = *asn;
              if (const auto org = world_.topology.org_of(*asn)) {
                if (const auto* info = world_.topology.organization(*org)) {
                  unexpected.organization = info->name;
                }
              }
            }
            if (unexpected.organization.empty()) unexpected.organization = "(unknown)";
            observation.unexpected.push_back(std::move(unexpected));
          }
        }
      });
  std::size_t unexpected_total = 0;
  for (const auto& observation : observations_) {
    unexpected_total += observation.unexpected.size();
    // Monitor re-fetches fire from the event queue long after the probe's
    // transaction closed, so they cannot be recorded live; graft them onto
    // the chain at harvest. Serial, in observation order: the sharded pass
    // above never touches the recorder.
    if (!observation.monitored()) continue;
    for (const auto& unexpected : observation.unexpected) {
      char delay[64];
      std::snprintf(delay, sizeof(delay), "+%.0fs", unexpected.delay_seconds);
      world_.recorder.amend_event(
          observation.txn_id,
          obs::TraceEvent{obs::Hop::kOrigin, unexpected.organization,
                          "re-fetch",
                          unexpected.source.to_string() + " " + delay + " " +
                              unexpected.user_agent,
                          0});
    }
    world_.recorder.amend_verdict(observation.txn_id, "monitored",
                                  observation.unexpected.front().organization);
  }
  world_.metrics.add("monitor.unexpected_requests", unexpected_total);

  return observations_.size();
}

namespace {
/// Partial per-entity tallies for one observation shard. Everything here
/// merges associatively: sets union, counts add, and the delay CDF folds
/// via EmpiricalCdf::merge_from, so shard partials combined in shard order
/// equal a single pass over all observations exactly.
struct EntityAccumulator {
  std::set<std::uint32_t> ips;
  std::set<std::string> nodes;
  std::set<net::Asn> node_ases;
  std::set<net::CountryCode> node_countries;
  std::vector<double> delays;          // shard-local staging
  stats::EmpiricalCdf delay_cdf;       // sorted once per shard in seal()
  std::size_t requests = 0;

  /// Fold staged delays into the sorted partial CDF (once per shard).
  void seal() {
    delay_cdf.merge_from(stats::EmpiricalCdf(std::move(delays)));
    delays.clear();
  }

  void merge_from(EntityAccumulator&& other) {
    ips.insert(other.ips.begin(), other.ips.end());
    nodes.insert(other.nodes.begin(), other.nodes.end());
    node_ases.insert(other.node_ases.begin(), other.node_ases.end());
    node_countries.insert(other.node_countries.begin(),
                          other.node_countries.end());
    delay_cdf.merge_from(other.delay_cdf);
    requests += other.requests;
  }
};

/// One shard's view of the whole analysis. The final report reads only the
/// shard-0 accumulator after every other shard merged into it in order.
struct MonitorAccumulator {
  std::size_t total_nodes = 0;
  std::size_t monitored_nodes = 0;
  std::vector<std::uint64_t> monitored_txns;  // observation order within shard
  std::set<net::Asn> ases;
  std::set<net::CountryCode> countries;
  std::set<std::uint32_t> requester_ips;
  std::map<std::string, EntityAccumulator> by_entity;
  std::size_t total_unexpected = 0;

  void accumulate(const world::World& world,
                  const MonitorObservation& observation) {
    ++total_nodes;
    ases.insert(observation.asn);
    countries.insert(observation.country);
    if (!observation.monitored()) return;
    ++monitored_nodes;
    monitored_txns.push_back(observation.txn_id);
    if (observation.own_request_address_mismatch) {
      // VPN-relayed own requests also arrive from an address that is not
      // the exit node's (the paper counts these IPs too: AnchorFree's 223).
      requester_ips.insert(observation.own_request_source.value());
      if (const auto asn = world.topology.origin_as(observation.own_request_source)) {
        if (const auto org = world.topology.org_of(*asn)) {
          if (const auto* info = world.topology.organization(*org)) {
            by_entity[info->name].ips.insert(observation.own_request_source.value());
          }
        }
      }
    }
    for (const auto& unexpected : observation.unexpected) {
      requester_ips.insert(unexpected.source.value());
      ++total_unexpected;
      auto& entity = by_entity[unexpected.organization];
      entity.ips.insert(unexpected.source.value());
      entity.nodes.insert(observation.zid);
      entity.node_ases.insert(observation.asn);
      entity.node_countries.insert(observation.country);
      entity.delays.push_back(unexpected.delay_seconds);
      ++entity.requests;
    }
  }

  void seal() {
    for (auto& [name, entity] : by_entity) entity.seal();
  }

  /// Fold a later shard in. Shards cover contiguous observation blocks and
  /// merge in shard order, so txn evidence keeps observation order.
  void merge_from(MonitorAccumulator&& other) {
    total_nodes += other.total_nodes;
    monitored_nodes += other.monitored_nodes;
    monitored_txns.insert(monitored_txns.end(),
                          std::make_move_iterator(other.monitored_txns.begin()),
                          std::make_move_iterator(other.monitored_txns.end()));
    ases.insert(other.ases.begin(), other.ases.end());
    countries.insert(other.countries.begin(), other.countries.end());
    requester_ips.insert(other.requester_ips.begin(),
                         other.requester_ips.end());
    total_unexpected += other.total_unexpected;
    for (auto& [name, entity] : other.by_entity) {
      by_entity[name].merge_from(std::move(entity));
    }
  }
};
}  // namespace

MonitorReport analyze_monitoring(const world::World& world,
                                 const std::vector<MonitorObservation>& observations,
                                 const MonitorAnalysisConfig& config) {
  MonitorReport report;

  // Accumulate over contiguous observation shards, then merge the partials
  // in shard order. The result is identical for every shard count (the
  // merge algebra above is exact, not approximate); the sharded study mode
  // leans on the same property to aggregate without holding the world.
  const std::size_t shards = std::max<std::size_t>(
      1, std::min(config.merge_shards == 0 ? 1 : config.merge_shards,
                  std::max<std::size_t>(observations.size(), 1)));
  std::vector<MonitorAccumulator> partials(shards);
  const std::size_t per_shard = (observations.size() + shards - 1) / shards;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const std::size_t begin = shard * per_shard;
    const std::size_t end = std::min(begin + per_shard, observations.size());
    for (std::size_t i = begin; i < end; ++i) {
      partials[shard].accumulate(world, observations[i]);
    }
    partials[shard].seal();
  }
  MonitorAccumulator merged = std::move(partials[0]);
  for (std::size_t shard = 1; shard < shards; ++shard) {
    merged.merge_from(std::move(partials[shard]));
  }

  report.total_nodes = merged.total_nodes;
  report.monitored_nodes = merged.monitored_nodes;
  if (!merged.monitored_txns.empty()) {
    report.evidence["monitored"] = std::move(merged.monitored_txns);
  }
  report.unique_ases = merged.ases.size();
  report.unique_countries = merged.countries.size();
  report.unique_requester_ips = merged.requester_ips.size();
  report.requester_groups = merged.by_entity.size();

  std::vector<std::pair<std::string, EntityAccumulator*>> ranked;
  ranked.reserve(merged.by_entity.size());
  for (auto& [name, accumulator] : merged.by_entity) {
    ranked.emplace_back(name, &accumulator);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second->nodes.size() > b.second->nodes.size();
  });

  std::size_t top_requests = 0;
  for (std::size_t i = 0; i < ranked.size() && i < config.top_entities; ++i) {
    auto& [name, accumulator] = ranked[i];
    MonitorEntityRow row;
    row.entity = name;
    row.source_ips = accumulator->ips.size();
    row.nodes = accumulator->nodes.size();
    row.ases = accumulator->node_ases.size();
    row.countries = accumulator->node_countries.size();
    row.delay_cdf = std::move(accumulator->delay_cdf);
    report.top_entities.push_back(std::move(row));
    top_requests += accumulator->requests;
  }
  report.top_share = merged.total_unexpected == 0
                         ? 0
                         : static_cast<double>(top_requests) /
                               merged.total_unexpected;
  return report;
}

}  // namespace tft::core
