// tft::obs v2 — the per-transaction flight recorder.
//
// A Recorder captures, for every probe transaction (one DNS d1+d2 session,
// one HTTP object sweep, one CONNECT scan, one SMTP dialogue, one monitor
// fetch), the hop-by-hop story the aggregate reports throw away: client →
// super proxy (pre-check outcome, retry attempts, serving zID) → exit node
// → resolver / middlebox hops (which interceptor fired and what it
// rewrote) → origin. The study layer links each recorded chain to the
// violation verdict the analysis pipeline reached, so `report_json`
// evidence refs and `tft-trace` forensics can replay the exact blame path.
//
// Determinism contract (same as metrics.hpp): recording happens only while
// a world is driven serially — probe crawls open and close transactions,
// instrumented components blindly append to the currently open one, and the
// post-crawl sharded passes never record (verdicts discovered there are
// amended serially afterwards, in observation order). Per-experiment
// recorders merge in fixed experiment order. The resulting transaction
// stream — ids, events, verdicts — is byte-identical for every --jobs
// value.
//
// `txn_id`s derive from the probe's util::StreamRng stream key (see each
// probe), so they are stable under probe composition and across runs of
// the same seed: the id *is* the (seed, entity, purpose, counter) address
// of the draw stream that created the session.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tft::obs {

/// Which layer of the tunnel an event happened at.
enum class Hop : std::uint8_t {
  kClient = 0,      // the measurement client itself
  kSuperProxy = 1,  // the overlay's super proxy
  kExitNode = 2,    // the exit node agent
  kResolver = 3,    // a recursive resolver service
  kMiddlebox = 4,   // an on-path / on-host interceptor
  kOrigin = 5,      // the destination server (ours or a site)
};

std::string_view to_string(Hop hop);
/// Reverse of to_string. Returns false (and leaves `out` alone) on an
/// unknown name — the codec treats that as a decode error.
bool hop_from_string(std::string_view name, Hop& out);

/// One hop event in a transaction chain. `sim_us` is simulated time
/// (deterministic); wall clocks never enter the recorder.
struct TraceEvent {
  Hop hop = Hop::kClient;
  std::string actor;   // who acted: "super-proxy", a zID, a resolver IP, an interceptor name
  std::string action;  // what happened: "pre-check", "attempt", "rewrite", ...
  std::string detail;  // free-form specifics: error string, rewritten target, body signature
  std::uint64_t sim_us = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// One recorded probe transaction.
struct TxnRecord {
  std::uint64_t txn_id = 0;
  std::string kind;     // "dns" | "http" | "https" | "smtp" | "monitor"
  std::string zid;      // measured exit node (filled when known)
  std::uint32_t asn = 0;
  std::string country;
  std::string target;   // probed name / URL / SNI host
  /// Analysis outcome: "" while unresolved, "clean", or a violation verb
  /// ("hijacked", "injected", "transcoded", "replaced", "blocked",
  /// "monitored", "stripped", "tampered", ...).
  std::string verdict;
  /// The middlebox / resolver the attribution pipeline blamed (first
  /// violating actor in the chain wins; empty when nothing fired).
  std::string culprit;
  std::vector<TraceEvent> events;

  bool operator==(const TxnRecord&) const = default;
};

/// Ring-buffered transaction store. One Recorder per world; never shared
/// across threads (see file comment for the determinism rules).
class Recorder {
 public:
  /// Default ring capacity: large enough that mini/bench studies never
  /// wrap; a wrap is observable via dropped().
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  /// Ring size in transactions. Shrinking drops oldest records.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const noexcept { return capacity_; }

  // --- recording (serial crawl only) ---------------------------------------
  /// Open a transaction. Any previously open transaction is closed first
  /// (defensive; probes normally close explicitly).
  void begin(std::uint64_t txn_id, std::string_view kind, std::string_view target);
  /// True while a transaction is open (components use this implicitly:
  /// event() outside a transaction is a no-op).
  bool open() const noexcept { return open_; }
  /// Fill node identity on the open transaction once the serving node is
  /// known (the super proxy calls this when an attempt is served).
  void annotate_node(std::string_view zid);
  /// Append a hop event to the open transaction. No-op when none is open
  /// (e.g. monitor re-fetches firing from the event queue between crawls).
  void event(Hop hop, std::string_view actor, std::string_view action,
             std::string_view detail, std::uint64_t sim_us);
  /// Append a hop event AND blame its actor: the first violation in a
  /// chain sets the transaction's culprit (matching the middlebox rule
  /// that the first interceptor to fire wins).
  void violation(Hop hop, std::string_view actor, std::string_view action,
                 std::string_view detail, std::uint64_t sim_us);
  /// Close the open transaction with a verdict ("" = not yet known).
  void end(std::string_view verdict);

  // --- serial post-pass amendment ------------------------------------------
  /// Verdicts discovered after the crawl (sharded classify/verify/harvest
  /// passes) are folded back in here, serially, in observation order.
  /// Returns false when the transaction is unknown (e.g. dropped by the
  /// ring).
  bool amend_verdict(std::uint64_t txn_id, std::string_view verdict,
                     std::string_view culprit);
  /// Late node identity (e.g. ASN/country resolved in the attribution pass).
  bool amend_node(std::uint64_t txn_id, std::string_view zid, std::uint32_t asn,
                  std::string_view country);
  /// Late chain events (e.g. a monitor's re-fetch, harvested from server
  /// logs after the watch window).
  bool amend_event(std::uint64_t txn_id, const TraceEvent& event);

  // --- access ----------------------------------------------------------------
  const std::vector<TxnRecord>& records() const noexcept { return records_; }
  const TxnRecord* find(std::uint64_t txn_id) const;
  /// Transactions evicted by the ring so far.
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Append another recorder's records (in its order). Call in fixed
  /// experiment order, mirroring Registry::merge_from.
  void merge_from(const Recorder& other);

  void clear();

 private:
  void evict_to_capacity();

  std::size_t capacity_ = kDefaultCapacity;
  std::vector<TxnRecord> records_;
  /// txn_id -> index into records_. Rebuilt lazily after evictions.
  std::map<std::uint64_t, std::size_t> index_;
  bool open_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace tft::obs
