// Build provenance captured at CMake configure time (satellite of the
// observability subsystem): git describe, build type, sanitizer. Stamped
// into JSON reports/metrics headers and printed by `tft-study --version`.
#pragma once

#include <string>

namespace tft::util {
class JsonWriter;
}

namespace tft::obs {

struct BuildInfo {
  std::string git_describe;  // `git describe --always --dirty`, or "unknown"
  std::string build_type;    // CMAKE_BUILD_TYPE
  std::string sanitizer;     // TFT_SANITIZE value ("" = none)
};

const BuildInfo& build_info();

/// One-line rendering for --version: "tft <describe> (<type>[, sanitize=x])".
std::string build_info_line();

/// Emit a "build" object field into an open JSON object.
void write_build_info(util::JsonWriter& json);

}  // namespace tft::obs
