// Study-level integration: the one-call orchestration path, determinism
// across identical seeds, and the JSON export of a full run.
#include <gtest/gtest.h>

#include "tft/core/report_json.hpp"
#include "tft/core/study.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

StudyResult run_once(std::uint64_t seed) {
  auto world = world::build_world(world::mini_spec(), 0.6, seed);
  auto config = StudyConfig::for_scale(0.6, 0);
  config.dns.target_nodes = 0;
  config.dns.stall_limit = 1500;
  config.http.max_nodes = 1000;
  config.http.stall_limit = 1500;
  config.https.target_nodes = 1000;
  config.https.stall_limit = 1500;
  config.monitoring.target_nodes = 0;
  config.monitoring.stall_limit = 1500;
  return run_study(*world, config);
}

TEST(StudyTest, RunsAllFourExperimentsWithCoverage) {
  const StudyResult result = run_once(404);
  ASSERT_EQ(result.coverage.size(), 4u);
  for (const auto& row : result.coverage) {
    EXPECT_GT(row.exit_nodes, 0u) << row.name;
    EXPECT_GT(row.ases, 0u) << row.name;
    EXPECT_GT(row.countries, 0u) << row.name;
  }
  // The DNS and monitoring crawls cover (nearly) the whole pool; HTTPS only
  // ranked countries; HTTP is AS-quota-limited.
  EXPECT_GT(result.coverage[0].exit_nodes, result.coverage[1].exit_nodes);
  EXPECT_GT(result.dns.hijacked_nodes, 0u);
  EXPECT_GT(result.https.replaced_nodes, 0u);
  EXPECT_GT(result.monitoring.monitored_nodes, 0u);
}

TEST(StudyTest, DeterministicForSameSeed) {
  const StudyResult a = run_once(777);
  const StudyResult b = run_once(777);
  EXPECT_EQ(a.dns.total_nodes, b.dns.total_nodes);
  EXPECT_EQ(a.dns.hijacked_nodes, b.dns.hijacked_nodes);
  EXPECT_EQ(a.http.html_modified, b.http.html_modified);
  EXPECT_EQ(a.https.replaced_nodes, b.https.replaced_nodes);
  EXPECT_EQ(a.monitoring.monitored_nodes, b.monitoring.monitored_nodes);
  // Byte-identical rendered reports.
  EXPECT_EQ(render_dns_report(a.dns), render_dns_report(b.dns));
  EXPECT_EQ(study_result_json(a), study_result_json(b));
}

TEST(StudyTest, DifferentSeedsDiffer) {
  const StudyResult a = run_once(1);
  const StudyResult b = run_once(2);
  // Same spec, different random worlds: totals land close but not equal.
  EXPECT_NE(study_result_json(a), study_result_json(b));
}

TEST(StudyTest, RenderedReportsMentionEveryHeadline) {
  const StudyResult result = run_once(404);
  const std::string dns = render_dns_report(result.dns);
  EXPECT_NE(dns.find("Table 3"), std::string::npos);
  EXPECT_NE(dns.find("Table 4"), std::string::npos);
  EXPECT_NE(dns.find("Table 5"), std::string::npos);
  const std::string http = render_http_report(result.http);
  EXPECT_NE(http.find("Table 6"), std::string::npos);
  EXPECT_NE(http.find("Table 7"), std::string::npos);
  const std::string https = render_https_report(result.https);
  EXPECT_NE(https.find("Table 8"), std::string::npos);
  const std::string monitoring = render_monitor_report(result.monitoring);
  EXPECT_NE(monitoring.find("Table 9"), std::string::npos);
  EXPECT_NE(monitoring.find("Figure 5"), std::string::npos);
  const std::string coverage = render_coverage(result.coverage);
  EXPECT_NE(coverage.find("Table 2"), std::string::npos);
}

}  // namespace
}  // namespace tft::core
