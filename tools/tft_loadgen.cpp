// tft-loadgen: drive a live proxy front-end (`tft-study --serve`, or a
// self-hosted mini world) with an epoll client swarm — concurrent
// connections, a GET / pipelined / CONNECT request mix, optional open-loop
// pacing, and optional chaos clients — then report validated throughput,
// per-class latency percentiles, and the error taxonomy.
//
//   tft-loadgen --connect-to 8080 --connections 64 --duration-ms 2000
//   tft-loadgen --self-serve --connections 32 --chaos --json
#include <dirent.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "tft/net/client/load_client.hpp"
#include "tft/testing/test_proxy_server.hpp"
#include "tft/util/flags.hpp"
#include "tft/world/world.hpp"

namespace {

using tft::net::client::ConnectTarget;
using tft::net::client::LoadGenConfig;
using tft::net::client::LoadGenerator;
using tft::net::client::LoadReport;

int fail(const std::string& message) {
  std::cerr << "tft-loadgen: " << message << "\n";
  std::cerr << "try: tft-loadgen --help\n";
  return 2;
}

void print_help() {
  std::cout << R"(tft-loadgen: concurrent load + fault injection for the socket front-end

target (exactly one):
  --connect-to <port>   attack an already-running proxy on 127.0.0.1:<port>
                        (e.g. the port `tft-study --serve` printed)
  --self-serve          build the mini world and serve it on a thread inside
                        this process (chaos smokes, benches)

load shape:
  --connections <n>     well-behaved concurrent connections (default 8)
  --duration-ms <n>     run length (default 1000)
  --rps <r>             open-loop total request rate; 0 = closed loop (default)
  --mix g:p:c           GET : pipelined-burst : CONNECT weights (default 6:2:2)
  --pipeline-depth <n>  GETs per pipelined burst (default 4)
  --target <urls>       comma-separated absolute GET targets
                        (default http://m1.probe.tft-study.net/page.html)
  --connect-target <l>  comma-separated CONNECT targets as ip:port@sni;
                        --self-serve fills these from the world's HTTPS sites
  --seed <n>            swarm RNG seed (default 2016)

chaos:
  --chaos               add misbehaving clients (slow-drip, malformed frames,
                        half-close, reset, idle hold)
  --chaos-clients <n>   how many (default 5 with --chaos)

self-serve server knobs:
  --scale <s>           world scale (default 1.0)
  --server-timeout-ms   server read/idle timeout (default 10000; chaos smokes
                        want something short, e.g. 150)

output & assertions:
  --json                print the full JSON report to stdout
  --out <path>          also write the JSON report to a file
  --quiet               suppress the human summary
  --expect-zero-failures  exit 1 if any response failed validation
  --slo-p95-us <n>      exit 1 if the GET-class p95 exceeds n microseconds
  --fd-check            exit 1 if the swarm leaked fds (checked client-side)
)";
}

std::size_t open_fd_count() {
  std::size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

bool parse_connect_target(const std::string& text, ConnectTarget& out) {
  const auto at = text.find('@');
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  const std::string ip = text.substr(0, colon);
  const std::string port_text =
      text.substr(colon + 1, at == std::string::npos ? std::string::npos
                                                     : at - colon - 1);
  const auto address = tft::net::Ipv4Address::parse(ip);
  if (!address.ok()) return false;
  const int port = std::atoi(port_text.c_str());
  if (port <= 0 || port > 65535) return false;
  out.address = *address;
  out.port = static_cast<std::uint16_t>(port);
  out.sni = at == std::string::npos ? ip : text.substr(at + 1);
  return true;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const auto comma = text.find(',', begin);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

void print_summary(const LoadReport& report) {
  std::cout << "loadgen: sent=" << report.requests_sent
            << " ok=" << report.responses_ok
            << " failures=" << report.validation_failures
            << " abandoned=" << report.abandoned_in_flight << " rps="
            << static_cast<long long>(report.achieved_rps) << "\n";
  for (const auto& [name, stats] : report.classes) {
    std::cout << "  " << name << ": sent=" << stats.sent
              << " completed=" << stats.completed
              << " failed=" << stats.failed_validation
              << " p50=" << stats.p50_us << "us p95=" << stats.p95_us
              << "us p99=" << stats.p99_us << "us\n";
  }
  for (const auto& [name, value] : report.errors) {
    std::cout << "  error." << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : report.chaos) {
    std::cout << "  chaos." << name << " = " << value << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = tft::util::Flags::parse(
      argc, argv,
      {"self-serve", "chaos", "json", "quiet", "expect-zero-failures",
       "fd-check", "help"});
  if (!parsed.ok()) return fail(parsed.error().to_string());
  const tft::util::Flags& flags = *parsed;
  if (flags.get_bool("help")) {
    print_help();
    return 0;
  }
  const auto unknown = flags.unknown(
      {"connect-to", "self-serve", "connections", "duration-ms", "rps", "mix",
       "pipeline-depth", "target", "connect-target", "seed", "chaos",
       "chaos-clients", "scale", "server-timeout-ms", "json", "out", "quiet",
       "expect-zero-failures", "slo-p95-us", "fd-check", "help"});
  if (!unknown.empty()) return fail("unknown flag --" + unknown.front());

  const bool self_serve = flags.get_bool("self-serve");
  const auto connect_to = flags.get_int("connect-to", 0);
  if (!connect_to.ok()) return fail(connect_to.error().to_string());
  if (self_serve == (*connect_to != 0)) {
    return fail("pick exactly one of --connect-to <port> or --self-serve");
  }
  if (*connect_to < 0 || *connect_to > 65535) {
    return fail("--connect-to must be in 1..65535");
  }

  LoadGenConfig config;
  const auto connections = flags.get_int("connections", 8);
  const auto duration_ms = flags.get_int("duration-ms", 1000);
  const auto rps = flags.get_double("rps", 0.0);
  const auto pipeline_depth = flags.get_int("pipeline-depth", 4);
  const auto seed = flags.get_int("seed", 2016);
  const auto scale = flags.get_double("scale", 1.0);
  const auto server_timeout = flags.get_int("server-timeout-ms", 10'000);
  const auto slo_p95 = flags.get_int("slo-p95-us", 0);
  for (const auto& result :
       {connections.ok(), duration_ms.ok(), pipeline_depth.ok(), seed.ok(),
        server_timeout.ok(), slo_p95.ok()}) {
    if (!result) return fail("malformed numeric flag value");
  }
  if (!rps.ok() || !scale.ok()) return fail("malformed numeric flag value");
  if (*connections <= 0) return fail("--connections must be positive");
  if (*duration_ms <= 0) return fail("--duration-ms must be positive");
  config.connections = static_cast<std::size_t>(*connections);
  config.duration_ms = static_cast<int>(*duration_ms);
  config.target_rps = *rps;
  config.pipeline_depth = static_cast<std::size_t>(std::max(1LL, *pipeline_depth));
  config.seed = static_cast<std::uint64_t>(*seed);

  if (const auto mix = flags.get("mix")) {
    if (std::sscanf(mix->c_str(), "%d:%d:%d", &config.weight_get,
                    &config.weight_pipeline, &config.weight_connect) != 3) {
      return fail("--mix wants g:p:c, e.g. 6:2:2");
    }
  }
  if (flags.get_bool("chaos") || flags.has("chaos-clients")) {
    const auto chaos_clients = flags.get_int("chaos-clients", 5);
    if (!chaos_clients.ok() || *chaos_clients < 0) {
      return fail("--chaos-clients must be >= 0");
    }
    config.chaos_clients = static_cast<std::size_t>(*chaos_clients);
  }
  if (const auto targets = flags.get("target")) {
    config.get_targets = split_commas(*targets);
  }
  if (const auto targets = flags.get("connect-target")) {
    for (const auto& part : split_commas(*targets)) {
      ConnectTarget target;
      if (!parse_connect_target(part, target)) {
        return fail("bad --connect-target entry '" + part +
                    "' (want ip:port@sni)");
      }
      config.connect_targets.push_back(target);
    }
  }

  // Self-serve: a threaded mini-world server inside this process, with the
  // CONNECT targets filled from its own HTTPS site table.
  std::unique_ptr<tft::testing::TestProxyServer> server;
  if (self_serve) {
    tft::testing::TestProxyServer::Options options;
    options.scale = *scale;
    options.seed = static_cast<std::uint64_t>(*seed);
    options.threaded = true;
    options.configure = [&](tft::net::server::ProxyServerConfig& server_config) {
      server_config.read_timeout_ms = static_cast<int>(*server_timeout);
    };
    server = std::make_unique<tft::testing::TestProxyServer>(options);
    config.port = server->port();
    if (config.connect_targets.empty()) {
      for (const auto& site : server->world().https_sites) {
        config.connect_targets.push_back({site.address, 443, site.host});
        if (config.connect_targets.size() >= 8) break;
      }
    }
  } else {
    config.port = static_cast<std::uint16_t>(*connect_to);
  }

  const bool fd_check = flags.get_bool("fd-check");
  const std::size_t fds_before = fd_check ? open_fd_count() : 0;

  LoadReport report;
  {
    LoadGenerator generator(config);
    auto result = generator.run();
    if (!result.ok()) return fail(result.error().to_string());
    report = *std::move(result);
  }

  int exit_code = 0;
  if (fd_check) {
    // The swarm's fds close with the generator; allow the kernel a moment
    // to retire them before declaring a leak.
    std::size_t fds_after = open_fd_count();
    for (int round = 0; round < 100 && fds_after > fds_before; ++round) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      fds_after = open_fd_count();
    }
    if (fds_after > fds_before) {
      std::cerr << "tft-loadgen: fd leak: " << fds_before << " -> "
                << fds_after << "\n";
      exit_code = 1;
    }
  }

  if (!flags.get_bool("quiet")) print_summary(report);
  if (flags.get_bool("json")) std::cout << report.to_json() << "\n";
  if (const auto out = flags.get("out")) {
    std::ofstream file(*out, std::ios::trunc);
    if (!file) return fail("cannot write --out " + *out);
    file << report.to_json() << "\n";
  }

  if (flags.get_bool("expect-zero-failures") && report.validation_failures > 0) {
    std::cerr << "tft-loadgen: " << report.validation_failures
              << " validation failures (expected zero)\n";
    exit_code = 1;
  }
  if (*slo_p95 > 0) {
    const auto it = report.classes.find("get");
    if (it != report.classes.end() && it->second.p95_us > *slo_p95) {
      std::cerr << "tft-loadgen: GET p95 " << it->second.p95_us
                << "us exceeds SLO " << *slo_p95 << "us\n";
      exit_code = 1;
    }
  }
  return exit_code;
}
