#include "tft/net/server/proxy_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"

namespace tft::net::server {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

constexpr std::string_view kEstablished =
    "HTTP/1.1 200 Connection Established\r\n\r\n";

void set_result_headers(http::Response& response,
                        const proxy::ProxyFetchResult& result) {
  response.headers.set("X-TFT-Proxy-Status", proxy::to_string(result.status));
  response.headers.set("X-TFT-Zid", result.zid);
  response.headers.set("X-TFT-Exit-Ip", result.exit_address.to_string());
  response.headers.set("X-TFT-Exit-Asn", std::to_string(result.exit_asn));
  response.headers.set("X-TFT-Exit-Country", result.exit_country);
  response.headers.set("X-TFT-Timeline", encode_attempts(result.timeline));
}

}  // namespace

ProxyServer::ProxyServer(proxy::SuperProxy& engine, ProxyServerConfig config,
                         obs::Registry* metrics, obs::Recorder* recorder)
    : engine_(engine),
      config_(config),
      metrics_(metrics),
      recorder_(recorder) {}

ProxyServer::~ProxyServer() { shutdown(); }

void ProxyServer::count(std::string_view name, std::uint64_t delta) {
  if (metrics_ != nullptr) metrics_->add(name, delta);
}

void ProxyServer::record(std::string_view action, std::string_view detail) {
  if (recorder_ == nullptr) return;
  recorder_->event(obs::Hop::kSuperProxy, "socket-front-end", action, detail,
                   static_cast<std::uint64_t>(engine_.now().micros));
}

Result<void> ProxyServer::start() {
  if (listen_fd_ >= 0) {
    return make_error(ErrorCode::kInvalidArgument, "server already started");
  }
  if (auto loop = loop_.init(); !loop.ok()) return loop;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("socket: ") + std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("bind 127.0.0.1:") +
                          std::to_string(config_.port) + ": " +
                          std::strerror(errno));
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("getsockname: ") + std::strerror(errno));
  }
  port_ = ntohs(address.sin_port);
  if (::listen(listen_fd_, config_.backlog) != 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("listen: ") + std::strerror(errno));
  }
  return loop_.add(listen_fd_, EPOLLIN, [this](std::uint32_t) {
    handle_listener();
  });
}

void ProxyServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    poll_once(-1);
  }
}

bool ProxyServer::poll_once(int timeout_ms) {
  const int dispatched = loop_.poll(clamp_timeout(timeout_ms));
  sweep_deadlines();
  return dispatched > 0;
}

void ProxyServer::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  loop_.wake();
}

void ProxyServer::shutdown() {
  request_stop();
  // connections_ owns the fds; close_connection mutates the map, so drain
  // from a snapshot of keys.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

int ProxyServer::clamp_timeout(int timeout_ms) const {
  if (config_.read_timeout_ms <= 0 || connections_.empty()) return timeout_ms;
  const auto now = std::chrono::steady_clock::now();
  auto nearest = std::chrono::milliseconds::max();
  for (const auto& [fd, conn] : connections_) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        conn->deadline - now);
    if (remaining < nearest) nearest = remaining;
  }
  int until_deadline = static_cast<int>(
      std::max<std::chrono::milliseconds::rep>(nearest.count(), 0));
  if (timeout_ms < 0) return until_deadline;
  return std::min(timeout_ms, until_deadline);
}

void ProxyServer::arm_deadline(Connection& conn) {
  if (config_.read_timeout_ms <= 0) return;
  conn.deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.read_timeout_ms);
}

void ProxyServer::sweep_deadlines() {
  if (config_.read_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> expired;
  for (const auto& [fd, conn] : connections_) {
    if (conn->deadline <= now) expired.push_back(fd);
  }
  for (const int fd : expired) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    const bool write_pending = conn.outbox_sent < conn.outbox.size();
    if (conn.state == Connection::State::kTunnel) {
      count("net.tunnel.read_timeouts");
    } else if (write_pending) {
      // Responses are still queued: the peer is a slow *reader*, not idle,
      // and injecting a raw 408 here would splice garbage into the middle
      // of a framed response. Just drop the connection.
      count("net.http.write_timeouts");
    } else if (conn.reader.partial_bytes() > 0) {
      // The slowloris shape: a started-but-unfinished request head.
      count("net.http.read_timeouts");
      const auto goodbye =
          http::Response::make(408, "Request Timeout").serialize();
      [[maybe_unused]] const auto sent =
          ::send(fd, goodbye.data(), goodbye.size(), MSG_NOSIGNAL);
    } else {
      count("net.http.idle_timeouts");
    }
    close_connection(fd);
  }
}

void ProxyServer::handle_listener() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: both benign
    if (config_.max_connections > 0 &&
        connections_.size() >= config_.max_connections) {
      // Accept-burst backpressure: shed the connection immediately rather
      // than let a flood exhaust fds or starve admitted peers.
      count("net.accept.rejected");
      ::close(fd);
      continue;
    }
    if (config_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.send_buffer_bytes,
                   sizeof(config_.send_buffer_bytes));
    }
    // Pipelined peers see Nagle + delayed-ACK stalls (~40ms per queued
    // response) without this; the load harness measures the difference.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->reader = http::MessageReader(
        {config_.max_head_bytes, config_.max_body_bytes});
    conn->frames = FrameReader(config_.max_frame_bytes);
    arm_deadline(*conn);
    const auto added = loop_.add(fd, EPOLLIN, [this, fd](std::uint32_t events) {
      handle_connection(fd, events);
    });
    if (!added.ok()) {
      ::close(fd);
      continue;
    }
    connections_[fd] = std::move(conn);
    ++accepted_;
    count("net.accepted");
    if (metrics_ != nullptr) {
      metrics_->max_gauge("net.max_open_connections",
                          static_cast<std::int64_t>(connections_.size()));
    }
  }
}

void ProxyServer::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_.remove(fd);
  ::close(fd);
  connections_.erase(it);
  count("net.closed");
}

void ProxyServer::handle_connection(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  if ((events & EPOLLOUT) != 0) {
    if (!flush(conn)) return;
  }
  if ((events & EPOLLIN) == 0 && (events & (EPOLLHUP | EPOLLERR)) != 0) {
    // Peer vanished with nothing readable left.
    if (conn.state == Connection::State::kTunnel) {
      count(conn.tunnel_replied ? "net.tunnel.closed"
                                : "net.tunnel.client_disconnects");
    }
    close_connection(fd);
    return;
  }
  if ((events & EPOLLIN) == 0) return;

  char buffer[16384];
  for (;;) {
    const ssize_t received = ::recv(fd, buffer, sizeof(buffer), 0);
    if (received > 0) {
      count("net.bytes_read", static_cast<std::uint64_t>(received));
      const std::string_view bytes(buffer, static_cast<std::size_t>(received));
      Result<void> fed;
      if (conn.state == Connection::State::kTunnel) {
        fed = conn.frames.feed(bytes);
      } else {
        fed = conn.reader.feed(bytes);
      }
      if (!fed.ok()) {
        count("net.http.parse_errors");
        const int status = fed.error().code == ErrorCode::kOutOfRange ? 431 : 400;
        const auto goodbye =
            http::Response::make(status,
                                 status == 431 ? "Request Header Fields Too Large"
                                               : "Bad Request",
                                 fed.error().message + "\n", "text/plain")
                .serialize();
        conn.close_after_write = true;
        queue(conn, goodbye);
        return;
      }
      if (!drain_ready(conn)) return;
      continue;
    }
    if (received == 0) {
      if (conn.state == Connection::State::kTunnel) {
        count(conn.tunnel_replied ? "net.tunnel.closed"
                                  : "net.tunnel.client_disconnects");
      } else if (conn.reader.partial_bytes() > 0) {
        count("net.http.aborted");
      }
      close_connection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }
}

bool ProxyServer::drain_ready(Connection& conn) {
  const int fd = conn.fd;
  if (conn.state == Connection::State::kRequest && conn.reader.ready() > 1) {
    count("net.http.pipelined", conn.reader.ready() - 1);
  }
  while (conn.state == Connection::State::kRequest) {
    const auto wire = conn.reader.next_message();
    if (!wire) break;
    arm_deadline(conn);
    dispatch_request(conn, *wire);
    if (connections_.find(fd) == connections_.end()) return false;
    if (conn.close_after_write) return true;  // later pipelined input ignored
    if (conn.state == Connection::State::kTunnel) {
      // Bytes past the CONNECT head belong to the tunnel protocol.
      if (conn.reader.ready() > 0) {
        count("net.tunnel.protocol_errors");
        close_connection(fd);
        return false;
      }
      const std::string leftover = conn.reader.take_leftover();
      if (!leftover.empty()) {
        if (const auto fed = conn.frames.feed(leftover); !fed.ok()) {
          count("net.tunnel.protocol_errors");
          close_connection(fd);
          return false;
        }
      }
    }
  }
  while (conn.state == Connection::State::kTunnel) {
    const auto payload = conn.frames.next_frame();
    if (!payload) break;
    arm_deadline(conn);
    dispatch_tunnel_frame(conn, *payload);
    if (connections_.find(fd) == connections_.end()) return false;
  }
  return true;
}

http::Response ProxyServer::describe_fetch(
    const proxy::ProxyFetchResult& result) const {
  // Failures have no proxied response to forward; a 502 with the engine
  // status in plain text serves human clients (curl), while the socket
  // channel rebuilds the result from the X-TFT-* headers alone.
  return http::Response::make(
      502, "Bad Gateway",
      "super proxy error: " + std::string(proxy::to_string(result.status)) +
          "\n",
      "text/plain");
}

void ProxyServer::dispatch_request(Connection& conn, const std::string& wire) {
  auto head = parse_proxy_request(wire);
  if (!head.ok()) {
    count("net.http.parse_errors");
    const auto goodbye =
        http::Response::make(400, "Bad Request", head.error().message + "\n",
                             "text/plain")
            .serialize();
    conn.close_after_write = true;
    queue(conn, goodbye);
    return;
  }

  if (head->kind == ProxyRequestHead::Kind::kConnect) {
    count("net.connect.requests");
    if (!engine_.tunnel_port_allowed(head->connect_port)) {
      count("net.connect.rejected_port");
      http::Response refusal = http::Response::make(
          403, "Forbidden", "CONNECT port not allowed\n", "text/plain");
      refusal.headers.set("X-TFT-Proxy-Status",
                          proxy::to_string(proxy::ProxyStatus::kPortNotAllowed));
      conn.close_after_write = true;
      queue(conn, refusal.serialize());
      return;
    }
    count("net.connect.tunnels");
    record("connect", head->connect_address.to_string() + ":" +
                          std::to_string(head->connect_port));
    conn.state = Connection::State::kTunnel;
    conn.tunnel_address = head->connect_address;
    conn.tunnel_port = head->connect_port;
    conn.tunnel_options = head->options;
    queue(conn, kEstablished);
    return;
  }

  count("net.http.requests");
  if (conn.requests_served > 0) count("net.http.keepalive_reuse");
  ++conn.requests_served;
  record("http-request", head->url.to_string());

  const proxy::ProxyFetchResult result = engine_.fetch(head->url, head->options);
  http::Response response =
      result.ok() ? result.response : describe_fetch(result);
  set_result_headers(response, result);
  if (head->close) conn.close_after_write = true;
  queue(conn, response.serialize());
}

void ProxyServer::dispatch_tunnel_frame(Connection& conn,
                                        const std::string& payload) {
  const int fd = conn.fd;
  if (conn.tunnel_replied) {
    // One handshake per tunnel; anything after the reply is a protocol
    // violation.
    count("net.tunnel.protocol_errors");
    close_connection(fd);
    return;
  }
  auto hello = decode_tunnel_hello(payload);
  if (!hello.ok()) {
    count("net.tunnel.protocol_errors");
    close_connection(fd);
    return;
  }
  count("net.tunnel.handshakes");
  record("tunnel-handshake", hello->sni);

  const proxy::ConnectResult result = engine_.connect_and_handshake(
      conn.tunnel_address, conn.tunnel_port, hello->sni, conn.tunnel_options);
  TunnelReply reply;
  reply.status = result.status;
  reply.zid = result.zid;
  reply.exit_address = result.exit_address;
  reply.exit_country = result.exit_country;
  reply.chain = result.chain;
  conn.tunnel_replied = true;
  queue(conn, frame(encode_tunnel_reply(reply)));
}

bool ProxyServer::queue(Connection& conn, std::string_view bytes) {
  if (config_.max_outbox_bytes > 0 &&
      conn.outbox.size() - conn.outbox_sent + bytes.size() >
          config_.max_outbox_bytes) {
    // The peer pipelines requests faster than it drains responses; capping
    // the queue bounds per-connection memory under adversarial load.
    count("net.write_queue_overflows");
    close_connection(conn.fd);
    return false;
  }
  conn.outbox.append(bytes);
  return flush(conn);
}

bool ProxyServer::flush(Connection& conn) {
  const int fd = conn.fd;
  while (conn.outbox_sent < conn.outbox.size()) {
    const ssize_t sent =
        ::send(fd, conn.outbox.data() + conn.outbox_sent,
               conn.outbox.size() - conn.outbox_sent, MSG_NOSIGNAL);
    if (sent > 0) {
      conn.outbox_sent += static_cast<std::size_t>(sent);
      count("net.bytes_written", static_cast<std::uint64_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.modify(fd, EPOLLIN | EPOLLOUT);
      }
      return true;
    }
    if (sent < 0 && errno == EINTR) continue;
    // Write failure: the peer is gone (EPIPE/ECONNRESET).
    if (conn.state == Connection::State::kTunnel && !conn.tunnel_replied) {
      count("net.tunnel.client_disconnects");
    }
    count("net.write_errors");
    close_connection(fd);
    return false;
  }
  conn.outbox.clear();
  conn.outbox_sent = 0;
  if (conn.want_write) {
    conn.want_write = false;
    loop_.modify(fd, EPOLLIN);
  }
  if (conn.close_after_write) {
    close_connection(fd);
    return false;
  }
  return true;
}

}  // namespace tft::net::server
