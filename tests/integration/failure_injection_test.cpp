// Failure injection: the measurement pipeline must degrade cleanly when
// the platform misbehaves — dead nodes, total churn, renumbered hosts,
// missing rankings — rather than crash or fabricate results.
#include <gtest/gtest.h>

#include "tft/core/study.hpp"
#include "tft/world/validate.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

world::WorldSpec tiny_spec() {
  auto spec = world::mini_spec();
  // Shrink further: failure scenarios don't need a full mini world.
  spec.countries = {{"US", 120, 0, 2, 2, 0.10, 0.05},
                    {"GB", 80, 10, 2, 2, 0.10, 0.05}};
  spec.named_isps.clear();
  spec.path_hijackers.clear();
  spec.monitors = {};
  spec.tail_monitor_groups = 0;
  return spec;
}

TEST(FailureInjectionTest, MiniWorldValidates) {
  const auto world = world::build_world(world::mini_spec(), 1.0, 99);
  const auto problems = world::validate(*world);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(FailureInjectionTest, PaperWorldValidates) {
  const auto world = world::build_world(world::paper_spec(), 0.005, 7);
  const auto problems = world::validate(*world);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(FailureInjectionTest, AllNodesOfflineYieldsNothing) {
  auto world = world::build_world(tiny_spec(), 1.0, 5);
  for (const auto& node : world->luminati->nodes()) node->set_online(false);

  DnsProbeConfig dns_config;
  dns_config.target_nodes = 0;
  dns_config.stall_limit = 50;
  DnsHijackProbe dns_probe(*world, dns_config);
  EXPECT_EQ(dns_probe.run(), 0u);

  MonitorProbeConfig monitor_config;
  monitor_config.target_nodes = 0;
  monitor_config.stall_limit = 50;
  ContentMonitorProbe monitor_probe(*world, monitor_config);
  EXPECT_EQ(monitor_probe.run(), 0u);
}

TEST(FailureInjectionTest, TotalChurnYieldsNothingButNoCrash) {
  auto spec = tiny_spec();
  spec.node_failure_probability = 1.0;  // every attempt fails, retries exhaust
  auto world = world::build_world(spec, 1.0, 5);

  HttpProbeConfig http_config;
  http_config.stall_limit = 50;
  HttpModificationProbe http_probe(*world, http_config);
  EXPECT_EQ(http_probe.run(), 0u);

  const auto report = analyze_http(*world, http_probe.observations(), {});
  EXPECT_EQ(report.total_nodes, 0u);
  EXPECT_EQ(report.html_modified, 0u);
}

TEST(FailureInjectionTest, NoAlexaRankingsMeansNoHttpsMeasurement) {
  auto spec = tiny_spec();
  spec.https.countries_with_rankings = 0;  // no popular-site lists anywhere
  auto world = world::build_world(spec, 1.0, 5);

  HttpsProbeConfig config;
  config.stall_limit = 50;
  CertReplacementProbe probe(*world, config);
  EXPECT_EQ(probe.run(), 0u);
  const auto report = analyze_https(*world, probe.observations(), {});
  EXPECT_EQ(report.replaced_nodes, 0u);
}

TEST(FailureInjectionTest, ZidSurvivesRenumbering) {
  // §2.3: the zID is a persistent node identifier; the paper uses it to
  // track nodes across IP changes. Renumber a node mid-session and confirm
  // the proxy reports the same zID with the new address.
  auto world = world::build_world(tiny_spec(), 1.0, 5);

  proxy::RequestOptions options;
  options.session = "renumber-test";
  const auto url = *http::Url::parse("http://a.probe.tft-study.net/");
  const auto first = world->luminati->fetch(url, options);
  ASSERT_TRUE(first.ok());

  // Find the serving node and renumber it within its own prefix.
  proxy::ExitNodeAgent* serving = nullptr;
  for (const auto& node : world->luminati->nodes()) {
    if (node->zid() == first.zid) serving = node.get();
  }
  ASSERT_NE(serving, nullptr);
  const net::Ipv4Address new_address(serving->address().value() + 7);
  serving->set_address(new_address);

  const auto second =
      world->luminati->fetch(*http::Url::parse("http://b.probe.tft-study.net/"),
                             options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.zid, first.zid);                 // identity persists
  EXPECT_EQ(second.exit_address, new_address);      // address changed
  EXPECT_NE(second.exit_address, first.exit_address);
}

TEST(FailureInjectionTest, EmptyWorldProbesAreSafe) {
  // A world with essentially no nodes: everything returns zero cleanly.
  auto spec = tiny_spec();
  spec.countries = {{"US", 1, 0, 1, 1, 0.0, 0.0}};
  spec.isp_resolver_hijackers.clear();
  spec.public_resolver_hijackers.clear();
  spec.host_dns_hijackers.clear();
  spec.scattered_google_hijack_nodes = 0;
  spec.adware.clear();
  spec.isp_filters.clear();
  spec.transcoders.clear();
  spec.cert_replacers.clear();
  spec.smtp_interceptors.clear();
  spec.blockpage_nodes = 0;
  spec.js_error_nodes = 0;
  spec.css_error_nodes = 0;
  auto world = world::build_world(spec, 1.0, 5);

  DnsProbeConfig config;
  config.target_nodes = 0;
  config.stall_limit = 20;
  DnsHijackProbe probe(*world, config);
  const std::size_t measured = probe.run();
  EXPECT_LE(measured, world->luminati->node_count());
  const auto report = analyze_dns(*world, probe.observations(), {});
  EXPECT_EQ(report.hijacked_nodes, 0u);
}

}  // namespace
}  // namespace tft::core
