#include "tft/dns/resolver.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace tft::dns {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto zone = std::make_shared<AuthoritativeServer>(*DnsName::parse("tft-study.net"));
    zone->add_a(*DnsName::parse("web.tft-study.net"), net::Ipv4Address(198, 51, 100, 1), 300);
    zone_ = zone.get();
    registry_.register_zone(std::move(zone));

    resolver_ = std::make_shared<RecursiveResolver>(
        net::Ipv4Address(10, 0, 0, 53), net::Ipv4Address(10, 0, 0, 53), &registry_, &clock_);
  }

  Message ask(const std::string& name, double roll = 0.0) {
    return resolver_->resolve(Message::query(1, *DnsName::parse(name)), roll);
  }

  sim::EventQueue clock_;
  AuthorityRegistry registry_;
  AuthoritativeServer* zone_ = nullptr;
  std::shared_ptr<RecursiveResolver> resolver_;
};

TEST_F(ResolverTest, ResolvesThroughAuthority) {
  const auto response = ask("web.tft-study.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  EXPECT_TRUE(response.flags.recursion_available);
  EXPECT_FALSE(response.flags.authoritative);
  EXPECT_EQ(response.first_a()->to_string(), "198.51.100.1");
}

TEST_F(ResolverTest, ServfailWhenNoAuthority) {
  const auto response = ask("www.unknown-tld-zone.org");
  EXPECT_EQ(response.flags.rcode, Rcode::kServFail);
}

TEST_F(ResolverTest, NxdomainPassesThrough) {
  EXPECT_TRUE(ask("missing.tft-study.net").is_nxdomain());
}

TEST_F(ResolverTest, PositiveCachingAvoidsSecondAuthorityQuery) {
  ask("web.tft-study.net");
  ask("web.tft-study.net");
  EXPECT_EQ(zone_->query_log().size(), 1u);
  EXPECT_EQ(resolver_->cache_size(), 1u);
}

TEST_F(ResolverTest, CacheExpiresAfterTtl) {
  ask("web.tft-study.net");
  clock_.advance(sim::Duration::seconds(301));
  ask("web.tft-study.net");
  EXPECT_EQ(zone_->query_log().size(), 2u);
}

TEST_F(ResolverTest, NegativeCaching) {
  ask("missing.tft-study.net");
  ask("missing.tft-study.net");
  EXPECT_EQ(zone_->query_log().size(), 1u);
}

TEST_F(ResolverTest, FlushCacheForcesRequery) {
  ask("web.tft-study.net");
  resolver_->flush_cache();
  ask("web.tft-study.net");
  EXPECT_EQ(zone_->query_log().size(), 2u);
}

TEST_F(ResolverTest, NxdomainHijackRewritesToRedirect) {
  resolver_->set_nxdomain_hijack(
      NxdomainHijackPolicy{net::Ipv4Address(198, 51, 100, 99), 60, 1.0});
  const auto response = ask("typo-domain.tft-study.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  EXPECT_EQ(response.first_a()->to_string(), "198.51.100.99");
}

TEST_F(ResolverTest, HijackDoesNotTouchValidAnswers) {
  resolver_->set_nxdomain_hijack(
      NxdomainHijackPolicy{net::Ipv4Address(198, 51, 100, 99), 60, 1.0});
  EXPECT_EQ(ask("web.tft-study.net").first_a()->to_string(), "198.51.100.1");
}

TEST_F(ResolverTest, ProbabilisticHijackRespectsRoll) {
  resolver_->set_nxdomain_hijack(
      NxdomainHijackPolicy{net::Ipv4Address(198, 51, 100, 99), 60, 0.5});
  EXPECT_FALSE(ask("a.tft-study.net", 0.2).is_nxdomain());  // roll < p: hijacked
  EXPECT_TRUE(ask("b.tft-study.net", 0.7).is_nxdomain());   // roll >= p: clean
}

TEST_F(ResolverTest, HijackAppliesToCachedNegativeToo) {
  ask("cached-neg.tft-study.net");  // NXDOMAIN enters the negative cache
  resolver_->set_nxdomain_hijack(
      NxdomainHijackPolicy{net::Ipv4Address(198, 51, 100, 99), 60, 1.0});
  const auto response = ask("cached-neg.tft-study.net");
  EXPECT_EQ(response.first_a()->to_string(), "198.51.100.99");
  EXPECT_EQ(zone_->query_log().size(), 1u);  // served from cache
}

TEST_F(ResolverTest, EmptyQueryIsFormErr) {
  Message query;
  EXPECT_EQ(resolver_->resolve(query).flags.rcode, Rcode::kFormErr);
}

TEST(AuthorityRegistryTest, LongestZoneMatchWins) {
  sim::EventQueue clock;
  AuthorityRegistry registry;
  auto parent = std::make_shared<AuthoritativeServer>(*DnsName::parse("example.com"));
  auto child = std::make_shared<AuthoritativeServer>(*DnsName::parse("sub.example.com"));
  registry.register_zone(parent);
  registry.register_zone(child);
  EXPECT_EQ(registry.find(*DnsName::parse("x.sub.example.com")), child.get());
  EXPECT_EQ(registry.find(*DnsName::parse("x.example.com")), parent.get());
  EXPECT_EQ(registry.find(*DnsName::parse("other.org")), nullptr);
}

TEST(AnycastTest, StableInstanceSelection) {
  sim::EventQueue clock;
  AuthorityRegistry registry;
  AnycastResolverGroup group(net::Ipv4Address(8, 8, 8, 8), "google");
  for (int i = 0; i < 4; ++i) {
    group.add_instance(std::make_shared<RecursiveResolver>(
        net::Ipv4Address(8, 8, 8, 8), net::Ipv4Address(74, 125, 0, static_cast<std::uint8_t>(i + 1)),
        &registry, &clock));
  }
  const net::Ipv4Address client(203, 0, 113, 77);
  RecursiveResolver& first = group.instance_for(client);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(&group.instance_for(client), &first);
  }
  // Different clients spread over instances.
  std::set<const RecursiveResolver*> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(&group.instance_for(net::Ipv4Address(203, 0, 113, static_cast<std::uint8_t>(i))));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(ResolverDirectoryTest, RoutesUnicastAndAnycast) {
  sim::EventQueue clock;
  AuthorityRegistry registry;
  auto zone = std::make_shared<AuthoritativeServer>(*DnsName::parse("z.net"));
  zone->add_a(*DnsName::parse("a.z.net"), net::Ipv4Address(1, 2, 3, 4));
  registry.register_zone(zone);

  ResolverDirectory directory;
  directory.add_resolver(std::make_shared<RecursiveResolver>(
      net::Ipv4Address(10, 0, 0, 53), net::Ipv4Address(10, 0, 0, 53), &registry, &clock));
  auto group = std::make_shared<AnycastResolverGroup>(net::Ipv4Address(8, 8, 8, 8), "google");
  group->add_instance(std::make_shared<RecursiveResolver>(
      net::Ipv4Address(8, 8, 8, 8), net::Ipv4Address(74, 125, 0, 1), &registry, &clock));
  directory.add_anycast(group);

  const net::Ipv4Address client(203, 0, 113, 9);
  const auto query = Message::query(3, *DnsName::parse("a.z.net"));
  EXPECT_EQ(directory.resolve_via(net::Ipv4Address(10, 0, 0, 53), client, query)
                .first_a()->to_string(),
            "1.2.3.4");
  EXPECT_EQ(directory.resolve_via(net::Ipv4Address(8, 8, 8, 8), client, query)
                .first_a()->to_string(),
            "1.2.3.4");
  // Unknown resolver address -> SERVFAIL.
  EXPECT_EQ(directory.resolve_via(net::Ipv4Address(9, 9, 9, 9), client, query).flags.rcode,
            Rcode::kServFail);
  EXPECT_EQ(directory.instance_for(net::Ipv4Address(9, 9, 9, 9), client), nullptr);
}

}  // namespace
}  // namespace tft::dns
