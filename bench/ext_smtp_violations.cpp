// Extension experiment (§3.4): the paper notes its methodology could be
// extended to protocols like SMTP through VPN services that tunnel
// arbitrary traffic. This bench runs exactly that: the paper-scale world
// with an arbitrary-port overlay enabled, one SMTP probe per exit node.
// The interception prevalences are synthetic (no paper ground truth) —
// see DESIGN.md's substitution table.
#include "common.hpp"

#include "tft/core/smtp_probe.hpp"

int main(int argc, char** argv) {
  auto options = tft::bench::parse_options(argc, argv, 0.05);
  auto spec = tft::world::paper_spec();
  spec.arbitrary_port_overlay = true;  // the VPN-style overlay
  std::cerr << "[bench] building world: scale=" << options.scale
            << " seed=" << options.seed << " (arbitrary-port overlay)\n";
  auto world = tft::world::build_world(spec, options.scale, options.seed);

  tft::core::SmtpProbeConfig config;
  config.target_nodes = options.target_nodes;
  tft::core::SmtpProbe probe(*world, config);
  probe.run();

  tft::core::SmtpAnalysisConfig analysis;
  analysis.min_nodes_per_as =
      std::max<std::size_t>(3, static_cast<std::size_t>(10 * options.scale));
  const auto report = tft::core::analyze_smtp(*world, probe.observations(), analysis);
  std::cout << tft::core::render_smtp_report(report) << "\n";

  std::cout << "Ground-truth configuration (synthetic, paper-scale counts):\n"
               "  port-25 blocking 60,000 nodes  STARTTLS stripping 9,000\n"
               "  banner rewriting 2,200         body tagging 400\n";

  // Demonstrate the Luminati restriction the paper calls out: on the real
  // service this methodology cannot run at all.
  auto luminati_spec = tft::world::paper_spec();
  auto luminati_world = tft::world::build_world(luminati_spec, 0.002, options.seed);
  tft::core::SmtpProbe rejected(*luminati_world, config);
  rejected.run();
  std::cout << "\nOn a Luminati-like overlay (CONNECT :443 only): "
            << (rejected.overlay_rejected() ? "probe rejected, as expected"
                                            : "UNEXPECTEDLY RAN")
            << "\n";
  return 0;
}
