#include "tft/stats/table.hpp"

#include <gtest/gtest.h>

namespace tft::stats {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table table({"Country", "Nodes"});
  table.add_row({"MY", "6,983"});
  table.add_row({"US", "33,398"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Country  Nodes"), std::string::npos);
  EXPECT_NE(out.find("MY       6,983"), std::string::npos);
  EXPECT_NE(out.find("US       33,398"), std::string::npos);
  EXPECT_NE(out.find("--------"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, ColumnsWidenToContent) {
  Table table({"A"});
  table.add_row({"a-very-long-cell"});
  const std::string out = table.render();
  // The rule line must span the widest cell.
  const auto rule_start = out.find('\n') + 1;
  const auto rule_end = out.find('\n', rule_start);
  EXPECT_EQ(rule_end - rule_start, std::string("a-very-long-cell").size());
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table table({"A", "B", "C"});
  table.add_row({"1"});
  table.add_row({"1", "2", "3", "4-dropped"});
  const std::string out = table.render();
  EXPECT_EQ(out.find("4-dropped"), std::string::npos);
}

TEST(TableTest, EmptyTableIsJustHeader) {
  Table table({"X"});
  const std::string out = table.render();
  EXPECT_EQ(out, "X\n-\n");
}

TEST(BannerTest, PadsTo72) {
  const std::string out = banner("Table 3");
  EXPECT_TRUE(out.starts_with("== Table 3 ="));
  EXPECT_EQ(out.size(), 73u);  // 72 + newline
  EXPECT_EQ(out.back(), '\n');
}

}  // namespace
}  // namespace tft::stats
