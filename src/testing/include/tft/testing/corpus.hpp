// Seed-corpus management for the fuzz targets. A corpus directory holds one
// file per input (`seed-NNN.bin` for generated seeds, `crash-*.bin` for
// regression inputs that once broke a decoder). The same files feed both
// the libFuzzer entry points under fuzz/ and the `tft-fuzz --run-corpus`
// ctest regression pass.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"

namespace tft::testing {

/// Hand-written regression inputs for a target: inputs that previously
/// crashed, hung, or mis-parsed, kept forever. Every target has at least
/// the adversarial framing shapes its decoder must survive.
std::vector<std::string> regression_inputs(std::string_view target);

/// Deterministically generate `count` valid seed inputs for a target (the
/// structure-aware generators drive this; same seed => same bytes).
util::Result<std::vector<std::string>> generate_seed_inputs(
    std::string_view target, std::uint64_t seed, std::size_t count);

/// Write a full corpus (generated seeds + regression inputs) for one target
/// into `directory` (created if missing). Returns the number of files
/// written.
util::Result<std::size_t> write_seed_corpus(std::string_view target,
                                            const std::string& directory,
                                            std::uint64_t seed,
                                            std::size_t count);

/// Load every regular file in `directory`, sorted by filename so replay
/// order is stable. Returns (filename, contents) pairs.
util::Result<std::vector<std::pair<std::string, std::string>>> load_corpus(
    const std::string& directory);

/// Replay every corpus file through the target's entry point. Returns the
/// number of inputs processed; decoder crashes propagate (that is the
/// point). Unknown target or unreadable directory is an error.
util::Result<std::size_t> run_corpus(std::string_view target,
                                     const std::string& directory);

}  // namespace tft::testing
