// World dynamics: the mutation hooks longitudinal scenarios rely on.
#include <gtest/gtest.h>

#include "tft/world/world.hpp"

namespace tft::world {
namespace {

class DynamicsTest : public ::testing::Test {
 protected:
  DynamicsTest() : world_(build_world(mini_spec(), 1.0, 404)) {}
  std::unique_ptr<World> world_;
};

TEST_F(DynamicsTest, IspResolverDirectoryPopulated) {
  // Every named ISP with resolvers is addressable for dynamics.
  EXPECT_TRUE(world_->isp_resolvers.contains("Verizon"));
  EXPECT_TRUE(world_->isp_resolvers.contains("Tiscali U.K."));
  EXPECT_TRUE(world_->isp_resolvers.contains("US ISP 1"));
  for (const auto& [isp, resolvers] : world_->isp_resolvers) {
    EXPECT_FALSE(resolvers.empty()) << isp;
  }
}

TEST_F(DynamicsTest, UnknownIspChangesNothing) {
  EXPECT_EQ(world_->set_isp_hijack("No Such ISP", std::nullopt), 0u);
}

TEST_F(DynamicsTest, DeployAndRetireFlipsResolverBehaviour) {
  const net::Ipv4Address client(192, 0, 2, 251);
  const auto& resolvers = world_->isp_resolvers.at("US ISP 1");
  ASSERT_FALSE(resolvers.empty());
  dns::RecursiveResolver* resolver =
      world_->resolvers.instance_for(resolvers.front(), client);
  ASSERT_NE(resolver, nullptr);
  EXPECT_FALSE(resolver->nxdomain_hijack().has_value());

  const std::size_t deployed = world_->set_isp_hijack(
      "US ISP 1",
      dns::NxdomainHijackPolicy{net::Ipv4Address(203, 0, 113, 199), 60, 1.0});
  EXPECT_EQ(deployed, resolvers.size());
  ASSERT_TRUE(resolver->nxdomain_hijack().has_value());
  EXPECT_EQ(resolver->nxdomain_hijack()->redirect_address,
            net::Ipv4Address(203, 0, 113, 199));

  // And the behaviour is live: an NXDOMAIN query now returns the redirect.
  const auto query = dns::Message::query(
      1, *dns::DnsName::parse("definitely-missing.tft-study.net"));
  const auto response = resolver->resolve(query, 0.0);
  EXPECT_EQ(response.first_a(), net::Ipv4Address(203, 0, 113, 199));

  EXPECT_EQ(world_->set_isp_hijack("US ISP 1", std::nullopt), resolvers.size());
  EXPECT_FALSE(resolver->nxdomain_hijack().has_value());
}

TEST(SpecEnumTest, SmtpKindNames) {
  EXPECT_EQ(to_string(SmtpInterceptSpec::Kind::kStripStarttls), "strip_starttls");
  EXPECT_EQ(to_string(SmtpInterceptSpec::Kind::kBlockPort), "block_port");
  EXPECT_EQ(to_string(SmtpInterceptSpec::Kind::kRewriteBanner), "rewrite_banner");
  EXPECT_EQ(to_string(SmtpInterceptSpec::Kind::kTagBody), "tag_body");
}

}  // namespace
}  // namespace tft::world
