#include "tft/world/describe.hpp"

#include <set>

#include "tft/stats/table.hpp"
#include "tft/util/strings.hpp"

namespace tft::world {

WorldSummary summarize(const World& world) {
  WorldSummary summary;
  summary.nodes = world.luminati ? world.luminati->node_count() : 0;
  summary.ases = world.topology.as_count();
  summary.organizations = world.topology.organization_count();
  summary.https_sites = world.https_sites.size();

  std::set<net::CountryCode> countries;
  if (world.luminati) {
    for (const auto& [country, count] : world.luminati->country_counts()) {
      countries.insert(country);
    }
  }
  summary.countries = countries.size();

  for (const auto& [zid, truth] : world.truth.all()) {
    switch (truth.dns_hijack) {
      case DnsHijackSource::kIspResolver:
        ++summary.dns_hijacked_isp;
        break;
      case DnsHijackSource::kPublicResolver:
        ++summary.dns_hijacked_public;
        break;
      case DnsHijackSource::kPathMiddlebox:
        ++summary.dns_hijacked_path;
        break;
      case DnsHijackSource::kHostSoftware:
        ++summary.dns_hijacked_host;
        break;
      case DnsHijackSource::kNone:
        break;
    }
    if (!truth.html_injector.empty()) ++summary.html_injected;
    if (!truth.image_transcoder.empty()) ++summary.image_transcoded;
    if (!truth.content_blocker.empty()) ++summary.content_blocked;
    if (!truth.cert_replacer.empty()) ++summary.cert_replaced;
    if (!truth.monitor.empty()) ++summary.monitored;
    if (truth.uses_vpn) ++summary.vpn_users;
    if (!truth.smtp_interceptor.empty()) ++summary.smtp_intercepted;
  }
  return summary;
}

std::string describe(const World& world) {
  using util::format_count;
  using util::format_percent;
  const WorldSummary summary = summarize(world);
  const auto pct = [&](std::size_t n) {
    return summary.nodes == 0
               ? std::string("0%")
               : format_percent(static_cast<double>(n) / summary.nodes, 2);
  };

  std::string out = stats::banner("World inventory (ground truth)");
  out += "population: " + format_count(summary.nodes) + " exit nodes, " +
         format_count(summary.ases) + " ASes, " +
         format_count(summary.organizations) + " organizations, " +
         format_count(summary.countries) + " countries\n";
  out += "HTTPS target sites: " + format_count(summary.https_sites) + "\n\n";

  stats::Table table({"Violation", "Nodes", "Share"});
  table.add_row({"DNS hijack via ISP resolver", format_count(summary.dns_hijacked_isp),
                 pct(summary.dns_hijacked_isp)});
  table.add_row({"DNS hijack via public resolver",
                 format_count(summary.dns_hijacked_public),
                 pct(summary.dns_hijacked_public)});
  table.add_row({"DNS hijack via path middlebox",
                 format_count(summary.dns_hijacked_path),
                 pct(summary.dns_hijacked_path)});
  table.add_row({"DNS hijack via host software",
                 format_count(summary.dns_hijacked_host),
                 pct(summary.dns_hijacked_host)});
  table.add_row({"HTML injection", format_count(summary.html_injected),
                 pct(summary.html_injected)});
  table.add_row({"Image transcoding", format_count(summary.image_transcoded),
                 pct(summary.image_transcoded)});
  table.add_row({"Content blocking", format_count(summary.content_blocked),
                 pct(summary.content_blocked)});
  table.add_row({"Certificate replacement", format_count(summary.cert_replaced),
                 pct(summary.cert_replaced)});
  table.add_row({"Content monitoring", format_count(summary.monitored),
                 pct(summary.monitored)});
  table.add_row({"VPN relaying", format_count(summary.vpn_users),
                 pct(summary.vpn_users)});
  table.add_row({"SMTP interception", format_count(summary.smtp_intercepted),
                 pct(summary.smtp_intercepted)});
  out += table.render();
  return out;
}

}  // namespace tft::world
