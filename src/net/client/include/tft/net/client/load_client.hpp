// An epoll-driven open-loop client swarm for the socket front-end: N
// concurrent loopback connections driving a configurable mix of
// absolute-URI GETs, keep-alive pipelined bursts, and CONNECT tunnels
// against a live proxy port, validating every response byte-for-byte the
// way SocketProxyChannel would (status, X-TFT-* metadata echo, tunnel frame
// round-trip) and recording per-request latency into obs fixed-bucket
// histograms.
//
// Open-loop model: with target_rps > 0 every connection issues requests on
// a fixed schedule (total rate / connections), regardless of whether
// earlier responses have arrived — a lagging server sees requests pile up
// (pipelining), exactly how aggregate client load behaves in the paper's
// setting. target_rps == 0 degrades to closed-loop: each connection keeps
// exactly one burst in flight and reissues on completion, i.e. "as fast as
// the server answers".
//
// Chaos mode adds misbehaving connections (chaos.hpp behaviors) to the same
// swarm, so the report shows whether well-behaved latency holds its SLO
// *while* the server fends off slowloris drips, malformed frames,
// half-closes, resets, and idle holds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tft/net/client/chaos.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/obs/metrics.hpp"
#include "tft/util/result.hpp"

namespace tft::util {
class JsonWriter;
}

namespace tft::net::client {

enum class RequestClass { kGet, kPipeline, kConnect };

std::string_view to_string(RequestClass klass) noexcept;

/// A CONNECT-class destination: the literal IPv4 the tunnel targets plus
/// the SNI the hello frame names (the world's HTTPS sites, when the caller
/// has one to ask).
struct ConnectTarget {
  net::Ipv4Address address;
  std::uint16_t port = 443;
  std::string sni;
};

struct LoadGenConfig {
  /// The proxy under test, listening on 127.0.0.1.
  std::uint16_t port = 0;
  /// Well-behaved swarm size (concurrent connections).
  std::size_t connections = 8;
  /// Misbehaving extras on top (0 = no chaos). Behaviors are assigned
  /// round-robin over the ChaosBehavior repertoire.
  std::size_t chaos_clients = 0;
  int duration_ms = 1000;
  /// Total request rate across the swarm; 0 = closed loop.
  double target_rps = 0.0;
  std::uint64_t seed = 2016;
  /// Request-class mix (relative weights; connect weight is ignored when
  /// connect_targets is empty).
  int weight_get = 6;
  int weight_pipeline = 2;
  int weight_connect = 2;
  /// GETs per pipelined burst.
  std::size_t pipeline_depth = 4;
  /// Absolute-form GET targets; defaults to the mini-world measurement
  /// host when empty.
  std::vector<std::string> get_targets;
  /// CONNECT destinations; empty folds the connect weight into GETs.
  std::vector<ConnectTarget> connect_targets;
  /// Milliseconds between slow-drip bytes before the drip stalls for good.
  int drip_interval_ms = 10;
};

/// Per-request-class outcome summary. Percentiles are bucket upper bounds
/// from the fixed-bucket latency histogram (obs::Histogram::quantile) —
/// over-estimates by at most one bucket, the safe direction for SLOs.
struct ClassReport {
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed_validation = 0;
  std::int64_t p50_us = 0;
  std::int64_t p95_us = 0;
  std::int64_t p99_us = 0;
};

struct LoadReport {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t validation_failures = 0;
  /// Requests still in flight when the run ended (not failures).
  std::uint64_t abandoned_in_flight = 0;
  double duration_s = 0.0;
  double achieved_rps = 0.0;
  std::map<std::string, ClassReport> classes;
  /// Error taxonomy: parse_error / missing_metadata / bad_timeline /
  /// premature_close / connect_failed / ... plus non-failure observations
  /// (proxy_status.<name>, tunnel_status.<name>, server_closed_idle).
  std::map<std::string, std::uint64_t> errors;
  /// Chaos outcome counters per behavior (slow_drip.got_408, idle_hold
  /// .closed, ...). Empty without chaos clients.
  std::map<std::string, std::uint64_t> chaos;
  /// The swarm's own registry: load.latency_us.<class> histograms and
  /// load.* counters, for callers that want the raw buckets.
  obs::Registry metrics;

  /// Emit the report as one JSON object (the BENCH_socket_load.json row).
  void write_json(util::JsonWriter& json) const;
  std::string to_json() const;
};

/// Drives one load run. Construct, run() once, read the report.
class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenConfig config);
  ~LoadGenerator();
  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Blocks for ~duration_ms (plus a short drain grace). Errors only on
  /// harness-level failures (epoll init); per-connection errors land in the
  /// report's taxonomy instead.
  util::Result<LoadReport> run();

 private:
  struct Conn;
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tft::net::client
