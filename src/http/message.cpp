#include "tft/http/message.hpp"

#include <charconv>
#include <cstdio>

#include "tft/util/strings.hpp"

namespace tft::http {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

constexpr std::string_view kCrlf = "\r\n";

struct HeadBody {
  std::string_view start_line;
  std::vector<std::pair<std::string_view, std::string_view>> headers;
  std::string_view body;
};

Result<HeadBody> split_message(std::string_view wire) {
  const auto head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return make_error(ErrorCode::kParseError, "missing header terminator");
  }
  const std::string_view head = wire.substr(0, head_end);
  HeadBody out;
  out.body = wire.substr(head_end + 4);

  const auto first_crlf = head.find(kCrlf);
  out.start_line = first_crlf == std::string_view::npos ? head : head.substr(0, first_crlf);
  if (out.start_line.empty()) {
    return make_error(ErrorCode::kParseError, "empty start line");
  }

  std::string_view header_block =
      first_crlf == std::string_view::npos ? std::string_view{} : head.substr(first_crlf + 2);
  while (!header_block.empty()) {
    const auto line_end = header_block.find(kCrlf);
    const std::string_view line =
        line_end == std::string_view::npos ? header_block : header_block.substr(0, line_end);
    header_block = line_end == std::string_view::npos
                       ? std::string_view{}
                       : header_block.substr(line_end + 2);
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return make_error(ErrorCode::kParseError,
                        "malformed header line: " + std::string(line));
    }
    const std::string_view name = util::trim(line.substr(0, colon));
    if (name.size() != colon) {
      // Whitespace before the colon is forbidden (RFC 7230 §3.2.4).
      return make_error(ErrorCode::kParseError, "whitespace before header colon");
    }
    out.headers.emplace_back(name, util::trim(line.substr(colon + 1)));
  }
  return out;
}

Result<void> check_body_length(const HeaderMap& headers, std::string_view body) {
  const auto declared = headers.get("Content-Length");
  if (!declared) {
    if (!body.empty()) {
      return make_error(ErrorCode::kParseError, "body present without Content-Length");
    }
    return {};
  }
  std::size_t length = 0;
  const auto [ptr, ec] =
      std::from_chars(declared->data(), declared->data() + declared->size(), length);
  if (ec != std::errc{} || ptr != declared->data() + declared->size()) {
    return make_error(ErrorCode::kParseError, "bad Content-Length");
  }
  if (length != body.size()) {
    return make_error(ErrorCode::kParseError,
                      "Content-Length mismatch: declared " + std::to_string(length) +
                          ", got " + std::to_string(body.size()));
  }
  return {};
}

void append_headers_with_length(std::string& out, const HeaderMap& headers,
                                const std::string& body) {
  bool wrote_length = false;
  for (const auto& entry : headers.entries()) {
    if (util::iequals(entry.name, "Content-Length")) {
      // Recompute rather than trust a stale value.
      out += "Content-Length: " + std::to_string(body.size());
      out += kCrlf;
      wrote_length = true;
      continue;
    }
    out += entry.name;
    out += ": ";
    out += entry.value;
    out += kCrlf;
  }
  if (!wrote_length && !body.empty()) {
    out += "Content-Length: " + std::to_string(body.size());
    out += kCrlf;
  }
  out += kCrlf;
  out += body;
}

}  // namespace

std::string_view to_string(Method method) noexcept {
  switch (method) {
    case Method::kGet:
      return "GET";
    case Method::kHead:
      return "HEAD";
    case Method::kPost:
      return "POST";
    case Method::kConnect:
      return "CONNECT";
  }
  return "GET";
}

Result<Method> parse_method(std::string_view text) {
  if (text == "GET") return Method::kGet;
  if (text == "HEAD") return Method::kHead;
  if (text == "POST") return Method::kPost;
  if (text == "CONNECT") return Method::kConnect;
  return make_error(ErrorCode::kParseError, "unknown method: " + std::string(text));
}

Request Request::proxy_get(const Url& url) {
  Request request;
  request.method = Method::kGet;
  request.target = url.to_string();
  request.headers.set("Host", url.host_header());
  return request;
}

Request Request::origin_get(const Url& url) {
  Request request;
  request.method = Method::kGet;
  request.target = url.request_target();
  request.headers.set("Host", url.host_header());
  return request;
}

Request Request::connect(std::string_view host, std::uint16_t port) {
  Request request;
  request.method = Method::kConnect;
  request.target = std::string(host) + ':' + std::to_string(port);
  request.headers.set("Host", request.target);
  return request;
}

Result<Url> Request::target_url() const {
  return Url::parse(target);
}

std::string Request::serialize() const {
  std::string out{to_string(method)};
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += kCrlf;
  append_headers_with_length(out, headers, body);
  return out;
}

Result<Request> Request::parse(std::string_view wire) {
  auto parts = split_message(wire);
  if (!parts) return parts.error();

  const auto tokens = util::split(parts->start_line, ' ');
  if (tokens.size() != 3) {
    return make_error(ErrorCode::kParseError, "malformed request line");
  }
  auto method = parse_method(tokens[0]);
  if (!method) return method.error();
  if (tokens[1].empty()) {
    return make_error(ErrorCode::kParseError, "empty request target");
  }
  if (!tokens[2].starts_with("HTTP/")) {
    return make_error(ErrorCode::kParseError, "bad HTTP version");
  }

  Request request;
  request.method = *method;
  request.target = std::string(tokens[1]);
  request.version = std::string(tokens[2]);
  for (const auto& [name, value] : parts->headers) request.headers.add(name, value);
  request.body = std::string(parts->body);
  if (auto ok = check_body_length(request.headers, request.body); !ok) return ok.error();
  return request;
}

Response Response::make(int status, std::string_view reason, std::string body,
                        std::string_view content_type) {
  Response response;
  response.status = status;
  response.reason = std::string(reason);
  response.body = std::move(body);
  if (!response.body.empty()) {
    response.headers.set("Content-Type", content_type);
    response.headers.set("Content-Length", std::to_string(response.body.size()));
  }
  return response;
}

Response Response::not_found() {
  return make(404, "Not Found", "<html><body><h1>404 Not Found</h1></body></html>");
}

Response Response::bad_gateway(std::string_view detail) {
  return make(502, "Bad Gateway",
              "<html><body><h1>502 Bad Gateway</h1><p>" + std::string(detail) +
                  "</p></body></html>");
}

std::string Response::serialize() const {
  std::string out = version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += kCrlf;
  append_headers_with_length(out, headers, body);
  return out;
}

std::string encode_chunked_body(std::string_view payload, std::size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 1;
  std::string out;
  while (!payload.empty()) {
    const std::size_t take = std::min(chunk_size, payload.size());
    char size_line[32];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", take);
    out += size_line;
    out.append(payload.substr(0, take));
    out += "\r\n";
    payload.remove_prefix(take);
  }
  out += "0\r\n\r\n";
  return out;
}

Result<std::string> decode_chunked_body(std::string_view wire) {
  std::string out;
  for (;;) {
    const auto line_end = wire.find("\r\n");
    if (line_end == std::string_view::npos) {
      return make_error(ErrorCode::kParseError, "missing chunk-size line");
    }
    std::string_view size_text = wire.substr(0, line_end);
    // Chunk extensions (";...") are tolerated and ignored.
    if (const auto semicolon = size_text.find(';');
        semicolon != std::string_view::npos) {
      size_text = size_text.substr(0, semicolon);
    }
    std::size_t chunk_length = 0;
    const auto [ptr, ec] = std::from_chars(
        size_text.data(), size_text.data() + size_text.size(), chunk_length, 16);
    if (ec != std::errc{} || ptr != size_text.data() + size_text.size() ||
        size_text.empty()) {
      return make_error(ErrorCode::kParseError,
                        "bad chunk size: " + std::string(size_text));
    }
    wire.remove_prefix(line_end + 2);

    if (chunk_length == 0) {
      // Last chunk; expect the empty trailer section terminator.
      if (wire != "\r\n") {
        return make_error(ErrorCode::kParseError,
                          "unsupported trailers or garbage after last chunk");
      }
      return out;
    }
    // Compare without computing `chunk_length + 2`: a declared size near
    // SIZE_MAX would wrap, pass this check, and push the substr calls below
    // out of range.
    if (wire.size() < chunk_length || wire.size() - chunk_length < 2) {
      return make_error(ErrorCode::kParseError, "truncated chunk data");
    }
    out.append(wire.substr(0, chunk_length));
    if (wire.substr(chunk_length, 2) != "\r\n") {
      return make_error(ErrorCode::kParseError, "missing CRLF after chunk data");
    }
    wire.remove_prefix(chunk_length + 2);
  }
}

std::string Response::serialize_chunked(std::size_t chunk_size) const {
  std::string out = version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += kCrlf;
  for (const auto& entry : headers.entries()) {
    if (util::iequals(entry.name, "Content-Length") ||
        util::iequals(entry.name, "Transfer-Encoding")) {
      continue;  // framing headers are ours to set
    }
    out += entry.name;
    out += ": ";
    out += entry.value;
    out += kCrlf;
  }
  out += "Transfer-Encoding: chunked";
  out += kCrlf;
  out += kCrlf;
  out += encode_chunked_body(body, chunk_size);
  return out;
}

Result<Response> Response::parse(std::string_view wire) {
  auto parts = split_message(wire);
  if (!parts) return parts.error();

  // Status line: HTTP/1.1 SP 3DIGIT SP reason (reason may contain spaces).
  const std::string_view line = parts->start_line;
  const auto first_space = line.find(' ');
  if (first_space == std::string_view::npos || !line.starts_with("HTTP/")) {
    return make_error(ErrorCode::kParseError, "malformed status line");
  }
  const auto second_space = line.find(' ', first_space + 1);
  const std::string_view code_text =
      second_space == std::string_view::npos
          ? line.substr(first_space + 1)
          : line.substr(first_space + 1, second_space - first_space - 1);
  int status = 0;
  const auto [ptr, ec] =
      std::from_chars(code_text.data(), code_text.data() + code_text.size(), status);
  if (ec != std::errc{} || ptr != code_text.data() + code_text.size() ||
      code_text.size() != 3 || status < 100 || status > 599) {
    return make_error(ErrorCode::kParseError, "bad status code");
  }

  Response response;
  response.version = std::string(line.substr(0, first_space));
  response.status = status;
  response.reason = second_space == std::string_view::npos
                        ? std::string{}
                        : std::string(line.substr(second_space + 1));
  for (const auto& [name, value] : parts->headers) response.headers.add(name, value);

  const auto transfer_encoding = response.headers.get("Transfer-Encoding");
  if (transfer_encoding && util::iequals(*transfer_encoding, "chunked")) {
    auto body = decode_chunked_body(parts->body);
    if (!body) return body.error();
    response.body = *std::move(body);
    // Present the re-joined body as identity framing.
    response.headers.remove("Transfer-Encoding");
    response.headers.set("Content-Length", std::to_string(response.body.size()));
    return response;
  }

  response.body = std::string(parts->body);
  if (auto ok = check_body_length(response.headers, response.body); !ok) return ok.error();
  return response;
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 301:
      return "Moved Permanently";
    case 302:
      return "Found";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

}  // namespace tft::http
