// §6: SSL certificate replacement. CONNECT tunnels to three site classes
// (per-country popular, US universities, deliberately invalid) and a
// two-phase scan: one site per class first, all 33 sites when anything
// fails. Replaced certificates are clustered by Issuer Common Name.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tft/tls/verify.hpp"
#include "tft/world/world.hpp"

namespace tft::core {

struct HttpsProbeConfig {
  std::size_t target_nodes = 5000;
  std::size_t stall_limit = 3000;
  std::uint64_t seed = 0x443;
  /// Worker threads for the post-crawl chain-verification pass (phase-2
  /// scans of originally-valid sites). Results are byte-identical for
  /// every value.
  std::size_t jobs = 1;
};

struct CertSiteResult {
  std::string host;
  world::HttpsSite::Class site_class = world::HttpsSite::Class::kPopular;
  bool originally_invalid = false;  // we served an invalid cert on purpose
  bool replaced = false;
  std::string issuer_cn;       // issuer of the observed leaf
  tls::KeyId public_key = 0;   // observed leaf key (key-reuse analysis)
  /// For originally-invalid sites: would the forged cert look valid to a
  /// browser trusting the interceptor's root (same issuer as valid-site
  /// forgeries)?
  bool forged_masks_invalid = false;
};

struct CertObservation {
  /// Flight-recorder transaction behind this observation (0 when the world
  /// has no recorder); stable across --jobs and probe composition.
  std::uint64_t txn_id = 0;
  std::string zid;
  net::Ipv4Address exit_address;
  net::Asn asn = 0;
  net::CountryCode country;
  bool phase2 = false;  // a phase-1 check failed, full scan performed
  std::vector<CertSiteResult> sites;

  bool any_replaced() const {
    for (const auto& site : sites) {
      if (site.replaced) return true;
    }
    return false;
  }
};

class CertReplacementProbe {
 public:
  CertReplacementProbe(world::World& world, HttpsProbeConfig config);

  std::size_t run();

  const std::vector<CertObservation>& observations() const noexcept {
    return observations_;
  }
  std::size_t sessions_issued() const noexcept { return sessions_issued_; }

 private:
  world::World& world_;
  HttpsProbeConfig config_;
  std::vector<CertObservation> observations_;
  std::size_t sessions_issued_ = 0;
};

// --- Analysis (§6.2) ---------------------------------------------------------

struct HttpsAnalysisConfig {
  std::size_t min_nodes_per_issuer = 5;
  double as_concentration_threshold = 0.10;  // ">10% of nodes replaced"
};

struct IssuerRow {  // Table 8
  std::string issuer_cn;
  std::size_t nodes = 0;
  std::string type;  // "Anti-Virus/Security", "Content filter", "Malware", "N/A"
  /// Nodes whose replaced certificates all reuse a single public key.
  std::size_t key_reuse_nodes = 0;
  /// Nodes where an originally-invalid site's forgery shares the issuer of
  /// valid-site forgeries (invalid made to look valid — the dangerous case).
  std::size_t masks_invalid_nodes = 0;
};

struct HttpsReport {
  std::size_t total_nodes = 0;
  std::size_t unique_ases = 0;
  std::size_t unique_countries = 0;
  std::size_t replaced_nodes = 0;
  /// Nodes with replacements on some but not all scanned sites (selective).
  std::size_t selective_nodes = 0;
  std::size_t unique_issuers = 0;
  std::vector<IssuerRow> issuers;  // Table 8
  /// Evidence chains: violation category -> flight-recorder txn ids of
  /// every observation counted under it ("0x…" refs in report_json).
  std::map<std::string, std::vector<std::uint64_t>> evidence;
  /// Fraction of (sufficiently measured) ASes with >threshold replaced.
  double concentrated_as_fraction = 0;

  double replaced_ratio() const {
    return total_nodes == 0 ? 0
                            : static_cast<double>(replaced_nodes) / total_nodes;
  }
};

HttpsReport analyze_https(const world::World& world,
                          const std::vector<CertObservation>& observations,
                          const HttpsAnalysisConfig& config);

/// The paper's manual issuer classification (§6.2).
std::string classify_issuer(std::string_view issuer_cn);

}  // namespace tft::core
