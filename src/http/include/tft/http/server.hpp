// Origin web servers and the registry that routes requests to them by
// destination IP. The measurement web server's request log is a primary
// data source in the paper: §4 reads exit-node IPs from it and §7 detects
// monitoring from unexpected extra requests.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tft/http/message.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/sim/time.hpp"

namespace tft::http {

class OriginServer {
 public:
  explicit OriginServer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Serve `response` for GETs of exactly (host, path). Host matching is
  /// case-insensitive; path matching is exact.
  void add_resource(std::string_view host, std::string_view path, Response response);

  /// Serve `response` for a path under any host (used by probe wildcard
  /// domains where each exit node gets a unique host).
  void add_path_for_any_host(std::string_view path, Response response);

  /// Fallback handler when no resource matches (e.g. ad landing pages that
  /// answer every URL). Without one, unmatched requests get 404.
  using Handler = std::function<Response(const Request&)>;
  void set_default_handler(Handler handler) { default_handler_ = std::move(handler); }

  Response handle(const Request& request, net::Ipv4Address source, sim::Instant now);

  struct RequestLogEntry {
    sim::Instant time;
    net::Ipv4Address source;
    std::string host;
    std::string path;
    std::string user_agent;
  };
  const std::vector<RequestLogEntry>& request_log() const noexcept { return request_log_; }
  void clear_request_log() { request_log_.clear(); }

 private:
  std::string name_;
  std::unordered_map<std::string, Response> resources_;       // "host|path"
  std::unordered_map<std::string, Response> any_host_paths_;  // "path"
  Handler default_handler_;
  std::vector<RequestLogEntry> request_log_;
};

/// Routes by destination address; the "network" between clients and
/// origin servers.
class WebServerRegistry {
 public:
  void add(net::Ipv4Address address, std::shared_ptr<OriginServer> server);
  OriginServer* find(net::Ipv4Address address) const;

  /// Deliver `request` to the server at `destination`; 504 if unreachable.
  Response fetch(net::Ipv4Address destination, const Request& request,
                 net::Ipv4Address source, sim::Instant now) const;

 private:
  std::unordered_map<std::uint32_t, std::shared_ptr<OriginServer>> servers_;
};

/// Host (without port) a request is addressed to: Host header, falling back
/// to the absolute-form target.
std::string request_host(const Request& request);

/// Path component of the request target (strips absolute-form prefix and
/// query string).
std::string request_path(const Request& request);

}  // namespace tft::http
