// End-to-end observability: the longitudinal study and the SMTP probe must
// leave an accurate trail in the world's metrics registry — counters that
// reconcile with the returned observations, and spans for every crawl.
#include <gtest/gtest.h>

#include <algorithm>

#include "tft/core/longitudinal.hpp"
#include "tft/core/smtp_probe.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

std::size_t span_count(const world::World& world, std::string_view name) {
  const auto& spans = world.metrics.spans();
  return static_cast<std::size_t>(
      std::count_if(spans.begin(), spans.end(),
                    [&](const obs::Span& span) { return span.name == name; }));
}

TEST(ProbeMetricsTest, LongitudinalStudyRecordsRoundsAndTotals) {
  auto world = world::build_world(world::mini_spec(), 1.0, 811);
  LongitudinalConfig config;
  config.rounds = 3;
  config.probe.target_nodes = 0;
  config.probe.stall_limit = 1500;
  LongitudinalDnsStudy study(*world, config);
  const auto rounds = study.run();
  ASSERT_EQ(rounds.size(), 3u);

  const auto& metrics = world->metrics;
  EXPECT_EQ(metrics.counter("longitudinal.rounds"), 3u);

  std::size_t measured = 0, hijacked = 0, attributions = 0;
  for (const auto& round : rounds) {
    measured += round.measured;
    hijacked += round.hijacked;
    attributions += round.isp_hijackers.size();
  }
  EXPECT_EQ(metrics.counter("longitudinal.nodes_measured"), measured);
  EXPECT_EQ(metrics.counter("longitudinal.nodes_hijacked"), hijacked);
  EXPECT_EQ(metrics.counter("longitudinal.isp_attributions"), attributions);
  EXPECT_GT(hijacked, 0u);

  // One study span enclosing one span per round; each round also ran a DNS
  // crawl, which records its own sessions under the round span.
  EXPECT_EQ(span_count(*world, "longitudinal.study"), 1u);
  EXPECT_EQ(span_count(*world, "longitudinal.round"), 3u);
  EXPECT_GT(metrics.counter("dns.sessions"), 0u);
}

TEST(ProbeMetricsTest, SmtpProbeCountsSessionsAndViolations) {
  auto world = world::build_world(world::mini_spec(), 1.0, 812);
  SmtpProbeConfig config;
  config.target_nodes = 0;
  config.stall_limit = 4000;
  SmtpProbe probe(*world, config);
  const std::size_t measured = probe.run();
  ASSERT_FALSE(probe.overlay_rejected());
  ASSERT_GT(measured, 0u);

  const auto& metrics = world->metrics;
  EXPECT_EQ(metrics.counter("smtp.sessions"), probe.sessions_issued());
  EXPECT_EQ(metrics.counter("smtp.observations"), measured);
  // Every issued session ends as exactly one of: observation, failure,
  // duplicate (the overlay-rejected early exit cannot happen here).
  EXPECT_EQ(probe.sessions_issued(),
            measured + metrics.counter("smtp.failed_sessions") +
                metrics.counter("smtp.duplicate_nodes"));
  EXPECT_EQ(metrics.counter("smtp.overlay_rejected"), 0u);
  EXPECT_EQ(span_count(*world, "smtp.crawl"), 1u);

  // Violation counters reconcile exactly with the observation list.
  std::size_t blocked = 0, rewritten = 0, stripped = 0, downgraded = 0,
              tampered = 0, lost = 0;
  for (const auto& observation : probe.observations()) {
    blocked += observation.connection_blocked;
    rewritten += observation.banner_rewritten;
    stripped += observation.starttls_stripped;
    downgraded += observation.starttls_downgraded;
    tampered += observation.body_tampered;
    lost += observation.message_lost;
  }
  EXPECT_EQ(metrics.counter("smtp.violations.port_blocked"), blocked);
  EXPECT_EQ(metrics.counter("smtp.violations.banner_rewritten"), rewritten);
  EXPECT_EQ(metrics.counter("smtp.violations.starttls_stripped"), stripped);
  EXPECT_EQ(metrics.counter("smtp.violations.starttls_downgraded"), downgraded);
  EXPECT_EQ(metrics.counter("smtp.violations.body_tampered"), tampered);
  EXPECT_EQ(metrics.counter("smtp.violations.message_lost"), lost);
  EXPECT_GT(blocked + stripped + tampered, 0u);
}

TEST(ProbeMetricsTest, SmtpProbeOnRestrictedOverlayCountsRejection) {
  auto spec = world::mini_spec();
  spec.arbitrary_port_overlay = false;
  auto world = world::build_world(spec, 0.5, 813);
  SmtpProbe probe(*world, SmtpProbeConfig{});
  EXPECT_EQ(probe.run(), 0u);
  EXPECT_TRUE(probe.overlay_rejected());
  EXPECT_EQ(world->metrics.counter("smtp.overlay_rejected"), 1u);
  EXPECT_EQ(world->metrics.counter("smtp.observations"), 0u);
  // The crawl span is still closed cleanly on the early-exit path.
  EXPECT_EQ(span_count(*world, "smtp.crawl"), 1u);
}

}  // namespace
}  // namespace tft::core
