#include "tft/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace tft::sim {

void EventQueue::schedule_at(Instant when, Handler handler) {
  if (when < now_) when = now_;
  heap_.push_back(Entry{when, next_sequence_++, std::move(handler)});
  std::push_heap(heap_.begin(), heap_.end(), &EventQueue::later);
}

void EventQueue::schedule_after(Duration delay, Handler handler) {
  schedule_at(now_ + delay, std::move(handler));
}

EventQueue::Entry EventQueue::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), &EventQueue::later);
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

std::size_t EventQueue::run_until(Instant deadline) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().when <= deadline) {
    Entry entry = pop_next();
    now_ = entry.when;
    entry.handler();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    Entry entry = pop_next();
    now_ = entry.when;
    entry.handler();
    ++executed;
  }
  return executed;
}

}  // namespace tft::sim
