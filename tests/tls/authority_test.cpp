#include "tft/tls/authority.hpp"

#include <gtest/gtest.h>

namespace tft::tls {
namespace {

const sim::Instant kStart = sim::Instant::epoch() - sim::Duration::hours(24);
const sim::Instant kEnd = sim::Instant::epoch() + sim::Duration::hours(24 * 3650);
const sim::Instant kNow = sim::Instant::epoch() + sim::Duration::hours(24);

CertificateAuthority make_test_root() {
  return CertificateAuthority::make_root({"Root", "Trust", "US"}, 900, kStart, kEnd);
}

TEST(AuthorityTest, RootIsSelfSignedCa) {
  const auto root = make_test_root();
  EXPECT_TRUE(root.certificate().self_signed());
  EXPECT_TRUE(root.certificate().is_ca);
  EXPECT_EQ(root.key(), 900u);
}

TEST(AuthorityTest, IntermediateLinksToParent) {
  const auto root = make_test_root();
  const auto intermediate =
      CertificateAuthority::make_intermediate(root, {"Mid", "Trust", "US"}, 901);
  EXPECT_EQ(intermediate.certificate().signed_by, root.key());
  EXPECT_EQ(intermediate.certificate().issuer, root.name());
  EXPECT_TRUE(intermediate.certificate().is_ca);
}

TEST(AuthorityTest, IssueAssignsMonotonicSerialsAndDistinctKeys) {
  auto root = make_test_root();
  CertificateAuthority::LeafOptions options;
  options.hosts = {"a.example.com"};
  const auto first = root.issue(options);
  const auto second = root.issue(options);
  EXPECT_LT(first.serial, second.serial);
  EXPECT_NE(first.public_key, second.public_key);
  EXPECT_EQ(first.subject.common_name, "a.example.com");
  EXPECT_FALSE(first.is_ca);
}

TEST(AuthorityTest, ChainForIncludesFullPath) {
  const auto root = make_test_root();
  auto intermediate =
      CertificateAuthority::make_intermediate(root, {"Mid", "Trust", "US"}, 901);
  CertificateAuthority::LeafOptions options;
  options.hosts = {"x.example.com"};
  const auto leaf = intermediate.issue(options);
  const auto chain = intermediate.chain_for(leaf);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].subject.common_name, "x.example.com");
  EXPECT_EQ(chain[1].subject.common_name, "Mid");
  EXPECT_EQ(chain[2].subject.common_name, "Root");
}

class ForgeTest : public ::testing::Test {
 protected:
  ForgeTest() {
    original_.subject = {"bank.example.com", "Bank", "US"};
    original_.issuer = {"Real CA", "Trust", "US"};
    original_.subject_alt_names = {"bank.example.com"};
    original_.public_key = 12345;
    original_.signed_by = 900;
    profile_.issuer = {"Kaspersky Anti-Virus Personal Root", "Kaspersky", "RU"};
    profile_.signing_key = 7777;
    profile_.reuse_public_key = true;
  }

  Certificate original_;
  ForgeProfile profile_;
};

TEST_F(ForgeTest, ForgedLeafCarriesProductIssuer) {
  const auto forged = forge_leaf(original_, profile_, 1, true, kNow);
  EXPECT_EQ(forged.issuer.common_name, "Kaspersky Anti-Virus Personal Root");
  EXPECT_EQ(forged.signed_by, 7777u);
  EXPECT_EQ(forged.subject_alt_names, original_.subject_alt_names);
  EXPECT_TRUE(forged.valid_at(kNow));
  EXPECT_NE(forged.public_key, original_.public_key);
}

TEST_F(ForgeTest, KeyReusePerHost) {
  // §6.2: every spoofed certificate on one host shares the same key.
  Certificate other = original_;
  other.subject.common_name = "mail.example.com";
  other.subject_alt_names = {"mail.example.com"};
  const auto a = forge_leaf(original_, profile_, 42, true, kNow);
  const auto b = forge_leaf(other, profile_, 42, true, kNow);
  EXPECT_EQ(a.public_key, b.public_key);
  // But different hosts (machines) use different keys.
  const auto c = forge_leaf(original_, profile_, 43, true, kNow);
  EXPECT_NE(a.public_key, c.public_key);
}

TEST_F(ForgeTest, AvastStyleFreshKeys) {
  profile_.reuse_public_key = false;
  Certificate other = original_;
  other.subject.common_name = "mail.example.com";
  const auto a = forge_leaf(original_, profile_, 42, true, kNow);
  const auto b = forge_leaf(other, profile_, 42, true, kNow);
  EXPECT_NE(a.public_key, b.public_key);
}

TEST_F(ForgeTest, UntrustedIssuerForInvalidUpstream) {
  profile_.untrusted_issuer =
      DistinguishedName{"Avast! untrusted root", "Avast", "CZ"};
  const auto valid = forge_leaf(original_, profile_, 1, /*upstream_valid=*/true, kNow);
  const auto invalid = forge_leaf(original_, profile_, 1, /*upstream_valid=*/false, kNow);
  EXPECT_EQ(valid.issuer.common_name, "Kaspersky Anti-Virus Personal Root");
  EXPECT_EQ(invalid.issuer.common_name, "Avast! untrusted root");
  EXPECT_NE(valid.signed_by, invalid.signed_by);
}

TEST_F(ForgeTest, DangerousProductsMaskInvalidUpstream) {
  // No untrusted_issuer configured: invalid upstreams get the same trusted
  // issuer as valid ones (the Kaspersky/ESET/... behaviour §6.2 flags).
  const auto valid = forge_leaf(original_, profile_, 1, true, kNow);
  const auto invalid = forge_leaf(original_, profile_, 1, false, kNow);
  EXPECT_EQ(valid.issuer, invalid.issuer);
  EXPECT_EQ(valid.signed_by, invalid.signed_by);
  EXPECT_EQ(valid.public_key, invalid.public_key);
}

TEST_F(ForgeTest, MalwareCopiesSubjectFields) {
  profile_.copy_subject_fields = true;
  const auto forged = forge_leaf(original_, profile_, 1, true, kNow);
  EXPECT_EQ(forged.subject, original_.subject);
  profile_.copy_subject_fields = false;
  const auto plain = forge_leaf(original_, profile_, 1, true, kNow);
  EXPECT_EQ(plain.subject.common_name, original_.subject.common_name);
  EXPECT_TRUE(plain.subject.organization.empty());
}

TEST_F(ForgeTest, ForgeIsDeterministic) {
  const auto a = forge_leaf(original_, profile_, 9, true, kNow);
  const auto b = forge_leaf(original_, profile_, 9, true, kNow);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace tft::tls
