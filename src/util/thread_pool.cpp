#include "tft/util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "tft/util/rng.hpp"

namespace tft::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::default_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(UniqueFunction<void()> task) {
  {
    std::lock_guard lock(mutex_);
    // Compact the consumed prefix occasionally so the queue never grows
    // unboundedly across long runs.
    if (queue_head_ > 64 && queue_head_ * 2 > queue_.size()) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
      queue_head_ = 0;
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    UniqueFunction<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] {
        return stopping_ || queue_head_ < queue_.size();
      });
      if (queue_head_ == queue_.size()) return;  // stopping, queue drained
      task = std::move(queue_[queue_head_++]);
    }
    task();
  }
}

std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t shard_index) {
  std::uint64_t state = seed ^ shard_index;
  return splitmix64(state);
}

std::size_t shard_count(std::size_t n, std::size_t grain,
                        std::size_t max_shards) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return std::clamp<std::size_t>((n + grain - 1) / grain, 1, max_shards);
}

namespace detail {

void run_shards(std::size_t shards, std::size_t jobs,
                const UniqueFunction<void(std::size_t)>& fn) {
  if (shards == 0) return;
  if (jobs <= 1 || shards == 1) {
    for (std::size_t shard = 0; shard < shards; ++shard) fn(shard);
    return;
  }
  const std::size_t workers = std::min(jobs, shards);
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(shards);
  auto drain = [&] {
    for (;;) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      try {
        fn(shard);
      } catch (...) {
        errors[shard] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) threads.emplace_back(drain);
  drain();
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace detail

}  // namespace tft::util
