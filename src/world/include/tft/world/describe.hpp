// Human-readable inventory of a built world: population, topology, and the
// configured ground-truth violations. Useful when assembling custom
// scenarios ("did the builder do what I asked?").
#pragma once

#include <string>

#include "tft/world/world.hpp"

namespace tft::world {

/// Aggregated ground-truth counts for a world.
struct WorldSummary {
  std::size_t nodes = 0;
  std::size_t ases = 0;
  std::size_t organizations = 0;
  std::size_t countries = 0;
  std::size_t https_sites = 0;

  std::size_t dns_hijacked_isp = 0;
  std::size_t dns_hijacked_public = 0;
  std::size_t dns_hijacked_path = 0;
  std::size_t dns_hijacked_host = 0;
  std::size_t html_injected = 0;
  std::size_t image_transcoded = 0;
  std::size_t content_blocked = 0;
  std::size_t cert_replaced = 0;
  std::size_t monitored = 0;
  std::size_t vpn_users = 0;
  std::size_t smtp_intercepted = 0;

  std::size_t dns_hijacked_total() const {
    return dns_hijacked_isp + dns_hijacked_public + dns_hijacked_path +
           dns_hijacked_host;
  }
};

WorldSummary summarize(const World& world);

/// Render the summary as text (what quickstart prints before probing).
std::string describe(const World& world);

}  // namespace tft::world
