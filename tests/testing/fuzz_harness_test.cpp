// The fuzz harness itself is under test here: the target registry, the
// differential-oracle shards (and their digest determinism), and the
// regression corpus replay. `ctest -L fuzz` runs the big shards; these are
// small in-process versions of the same paths.
#include "tft/testing/fuzz.hpp"

#include <gtest/gtest.h>

#include "tft/testing/corpus.hpp"

namespace tft::testing {
namespace {

TEST(FuzzHarnessTest, RegistryCoversEveryCodec) {
  const auto& targets = fuzz_targets();
  ASSERT_GE(targets.size(), 6u);
  for (const std::string_view name :
       {"dns_decode", "http_request", "http_response", "tls_chain",
        "smtp_reply", "json_parse"}) {
    const FuzzTarget* target = find_fuzz_target(name);
    ASSERT_NE(target, nullptr) << name;
    EXPECT_EQ(target->name, name);
    EXPECT_FALSE(target->description.empty());
    EXPECT_NE(target->one_input, nullptr);
  }
  EXPECT_EQ(find_fuzz_target("no_such_target"), nullptr);
  EXPECT_EQ(fuzz_one("no_such_target", nullptr, 0), -1);
  EXPECT_EQ(fuzz_one("dns_decode", nullptr, 0), 0);
}

TEST(FuzzHarnessTest, EveryTargetPassesASmallShard) {
  for (const auto& target : fuzz_targets()) {
    FuzzShardOptions options;
    options.seed = 77;
    options.iterations = 100;
    const auto report = run_fuzz_shard(target.name, options);
    ASSERT_TRUE(report.ok()) << target.name;
    EXPECT_TRUE(report->ok()) << report->to_line();
    EXPECT_EQ(report->iterations, 100u);
    // Every iteration also classified exactly one mutant.
    EXPECT_EQ(report->mutants_accepted + report->mutants_rejected, 100u)
        << target.name;
    // Mutation must actually break inputs some of the time, or the oracle
    // is vacuous.
    EXPECT_GT(report->mutants_rejected, 0u) << target.name;
  }
}

TEST(FuzzHarnessTest, SameSeedSameDigest) {
  FuzzShardOptions options;
  options.seed = 1234;
  options.iterations = 200;
  for (const auto& target : fuzz_targets()) {
    const auto first = run_fuzz_shard(target.name, options);
    const auto second = run_fuzz_shard(target.name, options);
    ASSERT_TRUE(first.ok() && second.ok()) << target.name;
    EXPECT_EQ(first->digest, second->digest) << target.name;
    EXPECT_EQ(first->to_line(), second->to_line()) << target.name;
  }
}

TEST(FuzzHarnessTest, DifferentSeedDifferentDigest) {
  FuzzShardOptions a, b;
  a.seed = 1;
  b.seed = 2;
  a.iterations = b.iterations = 200;
  const auto first = run_fuzz_shard("dns_decode", a);
  const auto second = run_fuzz_shard("dns_decode", b);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(first->digest, second->digest);
}

TEST(FuzzHarnessTest, UnknownTargetIsACleanError) {
  EXPECT_FALSE(run_fuzz_shard("no_such_target", FuzzShardOptions{}).ok());
}

TEST(FuzzHarnessTest, RegressionInputsReplayCleanly) {
  // Every checked-in crasher must run through its decoder without crashing
  // — this is the in-process version of `tft-fuzz --run-corpus`.
  for (const auto& target : fuzz_targets()) {
    const auto inputs = regression_inputs(target.name);
    EXPECT_FALSE(inputs.empty()) << target.name;
    for (const auto& input : inputs) {
      EXPECT_EQ(fuzz_one(target.name,
                         reinterpret_cast<const std::uint8_t*>(input.data()),
                         input.size()),
                0)
          << target.name;
    }
  }
}

TEST(FuzzHarnessTest, SeedInputsAreDeterministic) {
  for (const auto& target : fuzz_targets()) {
    const auto first = generate_seed_inputs(target.name, 5, 8);
    const auto second = generate_seed_inputs(target.name, 5, 8);
    ASSERT_TRUE(first.ok() && second.ok()) << target.name;
    ASSERT_EQ(first->size(), 8u);
    EXPECT_EQ(*first, *second) << target.name;
    // Seed inputs are valid wire images: the decoder accepts them.
    for (const auto& input : *first) {
      EXPECT_EQ(fuzz_one(target.name,
                         reinterpret_cast<const std::uint8_t*>(input.data()),
                         input.size()),
                0)
          << target.name;
    }
  }
  EXPECT_FALSE(generate_seed_inputs("no_such_target", 1, 1).ok());
}

}  // namespace
}  // namespace tft::testing
