#include "tft/core/report_json.hpp"

#include <gtest/gtest.h>

#include "tft/util/json_parse.hpp"
#include "tft/util/strings.hpp"

namespace tft::core {
namespace {

/// Tiny structural validator: balanced braces/brackets outside strings,
/// proper string termination. Enough to catch writer misuse.
bool structurally_valid_json(std::string_view text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string && !text.empty() && text.front() == '{';
}

DnsReport sample_dns_report() {
  DnsReport report;
  report.total_nodes = 1000;
  report.hijacked_nodes = 48;
  report.top_countries.push_back(DnsCountryRow{"MY", 52, 100});
  report.isp_hijackers.push_back(DnsIspRow{"Verizon \"east\"", "US", 9, 166});
  report.public_hijackers.push_back(DnsPublicRow{"Comodo DNS", 1, 51});
  report.google_urls.push_back(
      DnsGoogleUrlRow{"navigationshilfe.t-online.de", 6, 1, 1, false});
  return report;
}

TEST(ReportJsonTest, DnsReportStructureAndContent) {
  const std::string json = dns_report_json(sample_dns_report());
  EXPECT_TRUE(structurally_valid_json(json)) << json;
  EXPECT_TRUE(util::contains(json, "\"experiment\":\"dns_nxdomain_hijacking\""));
  EXPECT_TRUE(util::contains(json, "\"hijacked_nodes\":48"));
  EXPECT_TRUE(util::contains(json, "\"country\":\"MY\""));
  // Embedded quotes are escaped.
  EXPECT_TRUE(util::contains(json, "Verizon \\\"east\\\""));
}

TEST(ReportJsonTest, HttpReportStructure) {
  HttpReport report;
  report.total_nodes = 500;
  report.injections.push_back(InjectionRow{"AdTaily_Widget_Container", 11, 8, 9});
  TranscodeRow row;
  row.asn = 29975;
  row.isp = "Vodacom";
  row.country = "ZA";
  row.modified = 83;
  row.total = 88;
  row.mobile_isp = true;
  row.ratios = {0.37, 0.61};
  report.transcoders.push_back(row);
  report.fully_modified_ases.emplace_back(42925, "Internet Rimon ISP");
  const std::string json = http_report_json(report);
  EXPECT_TRUE(structurally_valid_json(json)) << json;
  EXPECT_TRUE(util::contains(json, "\"asn\":29975"));
  EXPECT_TRUE(util::contains(json, "\"compression_ratios\":[0.37,0.61]"));
  EXPECT_TRUE(util::contains(json, "Internet Rimon ISP"));
}

TEST(ReportJsonTest, HttpsReportStructure) {
  HttpsReport report;
  report.total_nodes = 100;
  report.replaced_nodes = 5;
  report.issuers.push_back(
      IssuerRow{"Avast! Web/Mail Shield Root", 5, "Anti-Virus/Security", 0, 0});
  const std::string json = https_report_json(report);
  EXPECT_TRUE(structurally_valid_json(json)) << json;
  EXPECT_TRUE(util::contains(json, "Avast! Web/Mail Shield Root"));
  EXPECT_TRUE(util::contains(json, "\"replaced_ratio\":0.05"));
}

TEST(ReportJsonTest, MonitorReportIncludesCdfSeries) {
  MonitorReport report;
  report.total_nodes = 100;
  report.monitored_nodes = 2;
  MonitorEntityRow entity;
  entity.entity = "Trend Micro";
  entity.source_ips = 55;
  entity.nodes = 2;
  entity.delay_cdf = stats::EmpiricalCdf({30.0, 300.0});
  report.top_entities.push_back(std::move(entity));
  const std::string json = monitor_report_json(report);
  EXPECT_TRUE(structurally_valid_json(json)) << json;
  EXPECT_TRUE(util::contains(json, "\"delay_cdf\":["));
  EXPECT_TRUE(util::contains(json, "\"delay_p50_s\":165"));
}

TEST(ReportJsonTest, SmtpReportStructure) {
  SmtpReport report;
  report.total_nodes = 200;
  report.blocked = 10;
  report.stripped = 3;
  report.top_ases.push_back(SmtpAsRow{64500, "X ISP", "US", 9, 10, "port blocked"});
  const std::string json = smtp_report_json(report);
  EXPECT_TRUE(structurally_valid_json(json)) << json;
  EXPECT_TRUE(util::contains(json, "\"starttls_stripped\":3"));
  EXPECT_TRUE(util::contains(json, "port blocked"));
}

TEST(ReportJsonTest, StudyResultAggregatesAll) {
  StudyResult result;
  result.coverage.push_back(ExperimentCoverage{"DNS (S4)", 10, 2, 1});
  result.dns = sample_dns_report();
  const std::string json = study_result_json(result);
  EXPECT_TRUE(structurally_valid_json(json)) << json;
  EXPECT_TRUE(util::contains(json, "\"coverage\":["));
  EXPECT_TRUE(util::contains(json, "\"dns\":{"));
  EXPECT_TRUE(util::contains(json, "\"https\":{"));
  EXPECT_TRUE(util::contains(json, "\"monitoring\":{"));
}

// The writer's output must round-trip through the repo's own JSON parser —
// structural validity alone misses escaping and number-format bugs.
TEST(ReportJsonTest, DnsReportRoundTripsThroughParser) {
  const auto parsed = util::parse_json(dns_report_json(sample_dns_report()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto& root = *parsed;
  EXPECT_EQ(root["experiment"].as_string(), "dns_nxdomain_hijacking");
  EXPECT_EQ(root["hijacked_nodes"].as_int(), 48);
  // The escaped embedded quotes come back verbatim.
  ASSERT_FALSE(root["isp_hijackers"].as_array().empty());
  EXPECT_EQ(root["isp_hijackers"].as_array()[0]["isp"].as_string(),
            "Verizon \"east\"");
  // Build provenance is stamped into every report header.
  EXPECT_FALSE(root["build"]["git_describe"].as_string().empty());
}

TEST(ReportJsonTest, StudyResultRoundTripsThroughParser) {
  StudyResult result;
  result.coverage.push_back(ExperimentCoverage{"DNS (S4)", 10, 2, 1, 37});
  result.dns = sample_dns_report();
  const auto parsed = util::parse_json(study_result_json(result));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto& root = *parsed;
  ASSERT_EQ(root["coverage"].as_array().size(), 1u);
  EXPECT_EQ(root["coverage"].as_array()[0]["sessions"].as_int(), 37);
  EXPECT_EQ(root["dns"]["total_nodes"].as_int(), 1000);
  EXPECT_TRUE(root["http"].is_object());
  EXPECT_TRUE(root["https"].is_object());
  EXPECT_TRUE(root["monitoring"].is_object());
  EXPECT_FALSE(root["build"]["git_describe"].as_string().empty());
}

// Every report header carries the full build-provenance object — the part
// the golden harness strips, so it must stay in its own `build` section.
TEST(ReportJsonTest, ProvenanceHeaderIsCompleteInEveryReport) {
  const std::vector<std::string> reports = {
      dns_report_json(sample_dns_report()),
      http_report_json(HttpReport{}),
      https_report_json(HttpsReport{}),
      monitor_report_json(MonitorReport{}),
      smtp_report_json(SmtpReport{}),
      study_result_json(StudyResult{}),
  };
  for (const auto& json : reports) {
    const auto parsed = util::parse_json(json);
    ASSERT_TRUE(parsed.ok()) << json.substr(0, 120);
    const auto& build = (*parsed)["build"];
    ASSERT_TRUE(build.is_object()) << json.substr(0, 120);
    EXPECT_FALSE(build["git_describe"].as_string().empty());
    EXPECT_FALSE(build["build_type"].as_string().empty());
    // `sanitizer` is always present; "" means an uninstrumented build.
    EXPECT_TRUE(build.has("sanitizer"));
  }
}

}  // namespace
}  // namespace tft::core
