// Minimal streaming JSON writer (objects, arrays, scalars, full string
// escaping). Used to export measurement reports in machine-readable form.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tft::util {

class JsonWriter {
 public:
  /// Begin/end containers. Keys apply inside objects only.
  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();

  /// Scalars inside arrays.
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Key/value pairs inside objects.
  JsonWriter& field(std::string_view key, std::string_view text);
  JsonWriter& field(std::string_view key, const char* text) {
    return field(key, std::string_view(text));
  }
  JsonWriter& field(std::string_view key, double number);
  JsonWriter& field(std::string_view key, std::int64_t number);
  JsonWriter& field(std::string_view key, std::uint64_t number);
  JsonWriter& field(std::string_view key, int number) {
    return field(key, static_cast<std::int64_t>(number));
  }
  JsonWriter& field(std::string_view key, bool flag);

  /// The document so far. Valid once all containers are closed.
  const std::string& str() const& noexcept { return out_; }
  std::string take() && { return std::move(out_); }

  /// True when every begin_* has a matching end_*.
  bool complete() const noexcept { return stack_.empty() && !out_.empty(); }

  /// Escape `text` per RFC 8259 (quotes not included).
  static std::string escape(std::string_view text);

 private:
  void comma();
  void key_prefix(std::string_view key);

  std::string out_;
  std::vector<bool> stack_;       // true = object, false = array
  std::vector<bool> has_items_;   // parallel: container has emitted items
};

}  // namespace tft::util
