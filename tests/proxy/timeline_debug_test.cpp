#include <gtest/gtest.h>

#include "tft/proxy/luminati.hpp"

namespace tft::proxy {
namespace {

TEST(TimelineDebugTest, ParsesSimpleHeader) {
  const auto parsed = parse_timeline_debug("zid=a1b2c3d4e5f60708");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->zid, "a1b2c3d4e5f60708");
  EXPECT_TRUE(parsed->attempts.empty());
}

TEST(TimelineDebugTest, ParsesRetryTrail) {
  const auto parsed = parse_timeline_debug(
      "zid=final99 tried=flaky01:connect_timeout,flaky02:dns_failure,final99:ok");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->zid, "final99");
  ASSERT_EQ(parsed->attempts.size(), 3u);
  EXPECT_EQ(parsed->attempts[0].zid, "flaky01");
  EXPECT_EQ(parsed->attempts[0].error, "connect_timeout");
  EXPECT_EQ(parsed->attempts[1].error, "dns_failure");
  EXPECT_EQ(parsed->attempts[2].zid, "final99");
  EXPECT_TRUE(parsed->attempts[2].error.empty());
}

TEST(TimelineDebugTest, RejectsMalformed) {
  EXPECT_FALSE(parse_timeline_debug("").ok());
  EXPECT_FALSE(parse_timeline_debug("zid=").ok());
  EXPECT_FALSE(parse_timeline_debug("nozid=abc").ok());
  EXPECT_FALSE(parse_timeline_debug("zid=a extra=1").ok());
  EXPECT_FALSE(parse_timeline_debug("zid=a tried=noseparator").ok());
  EXPECT_FALSE(parse_timeline_debug("zid=a tried=:err").ok());
}

TEST(TimelineDebugTest, RejectsTrailingColonAttempt) {
  // "zid:" with nothing after the colon is a truncated entry — the
  // serializer always writes an explicit "ok" for the final attempt, so an
  // empty status must parse as an error, not as success.
  EXPECT_FALSE(parse_timeline_debug("zid=a tried=b:").ok());
  EXPECT_FALSE(parse_timeline_debug("zid=a tried=b:err,a:").ok());
  EXPECT_FALSE(parse_timeline_debug("zid=a tried=:").ok());
}

TEST(TimelineDebugTest, RoundTripsWithRealHeaders) {
  // End-to-end: headers the super proxy actually attaches must parse back
  // to the result's own trail.
  sim::EventQueue clock;
  net::AsOrgDb topology;
  dns::AuthorityRegistry authorities;
  auto zone = std::make_shared<dns::AuthoritativeServer>(*dns::DnsName::parse("z.net"));
  zone->add_wildcard_a(*dns::DnsName::parse("z.net"), net::Ipv4Address(198, 51, 100, 10));
  authorities.register_zone(std::move(zone));
  dns::ResolverDirectory resolvers;
  auto google = std::make_shared<dns::AnycastResolverGroup>(
      net::Ipv4Address(8, 8, 8, 8), "google");
  google->add_instance(std::make_shared<dns::RecursiveResolver>(
      net::Ipv4Address(8, 8, 8, 8), net::Ipv4Address(74, 125, 1, 1), &authorities,
      &clock));
  resolvers.add_anycast(std::move(google));
  http::WebServerRegistry web;
  auto server = std::make_shared<http::OriginServer>("w");
  server->set_default_handler(
      [](const http::Request&) { return http::Response::make(200, "OK", "x"); });
  web.add(net::Ipv4Address(198, 51, 100, 10), std::move(server));
  tls::TlsEndpointRegistry tls;
  smtp::SmtpServerRegistry smtp;

  Environment environment{&resolvers, &web, &tls, &smtp, &clock, &topology};
  SuperProxy proxy(SuperProxy::Config{}, environment);
  ExitNodeAgent::Config flaky;
  flaky.zid = "flaky";
  flaky.address = net::Ipv4Address(203, 0, 113, 1);
  flaky.country = "US";
  flaky.dns_resolver = net::Ipv4Address(8, 8, 8, 8);
  flaky.failure_probability = 1.0;
  proxy.add_exit_node(std::make_shared<ExitNodeAgent>(std::move(flaky), environment));
  ExitNodeAgent::Config solid;
  solid.zid = "solid";
  solid.address = net::Ipv4Address(203, 0, 113, 2);
  solid.country = "US";
  solid.dns_resolver = net::Ipv4Address(8, 8, 8, 8);
  proxy.add_exit_node(std::make_shared<ExitNodeAgent>(std::move(solid), environment));

  for (int i = 0; i < 10; ++i) {
    const auto result =
        proxy.fetch(*http::Url::parse("http://a" + std::to_string(i) + ".z.net/"), {});
    if (!result.ok()) continue;
    const auto header = result.response.headers.get("X-Hola-Timeline-Debug");
    ASSERT_TRUE(header.has_value());
    const auto parsed = parse_timeline_debug(*header);
    ASSERT_TRUE(parsed.ok()) << *header;
    EXPECT_EQ(parsed->zid, result.zid);
    ASSERT_EQ(parsed->attempts.size(), result.timeline.size());
    for (std::size_t j = 0; j < result.timeline.size(); ++j) {
      EXPECT_EQ(parsed->attempts[j].zid, result.timeline[j].zid);
      EXPECT_EQ(parsed->attempts[j].error, result.timeline[j].error);
    }
  }
}

}  // namespace
}  // namespace tft::proxy
