#include "tft/core/https_probe.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/obs/shards.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"
#include "tft/util/strings.hpp"
#include "tft/util/thread_pool.hpp"

namespace tft::core {

namespace {

struct SiteIndex {
  std::map<net::CountryCode, std::vector<const world::HttpsSite*>> popular;
  std::vector<const world::HttpsSite*> universities;
  std::vector<const world::HttpsSite*> invalid;
};

SiteIndex index_sites(const world::World& world) {
  SiteIndex index;
  for (const auto& site : world.https_sites) {
    switch (site.site_class) {
      case world::HttpsSite::Class::kPopular:
        index.popular[site.country].push_back(&site);
        break;
      case world::HttpsSite::Class::kUniversity:
        index.universities.push_back(&site);
        break;
      case world::HttpsSite::Class::kInvalid:
        index.invalid.push_back(&site);
        break;
    }
  }
  return index;
}

}  // namespace

CertReplacementProbe::CertReplacementProbe(world::World& world,
                                           HttpsProbeConfig config)
    : world_(world), config_(config) {}

std::size_t CertReplacementProbe::run() {
  const SiteIndex index = index_sites(world_);
  const tls::CertificateVerifier verifier(&world_.public_roots);

  std::vector<net::CountryCode> countries;
  std::vector<double> weights;
  for (const auto& [country, count] : world_.luminati->country_counts()) {
    countries.push_back(country);
    weights.push_back(static_cast<double>(count));
  }

  std::unordered_set<std::string> seen_zids;
  std::size_t stall = 0;
  std::size_t session_id = 0;

  // Phase-2 verifications of originally-valid sites don't feed back into
  // the crawl (unlike phase 1, whose verdicts trigger the full scan), so we
  // capture the chain and a clock snapshot here and verify in a sharded
  // pass after the crawl.
  struct PendingVerify {
    std::size_t observation;  // index into observations_
    std::size_t site;         // index into that observation's sites
    std::string host;
    tls::CertificateChain chain;
    sim::Instant now;
  };
  std::vector<PendingVerify> pending;

  const auto scan_site = [&](const world::HttpsSite& site,
                             const proxy::RequestOptions& options,
                             const std::string& zid,
                             std::optional<PendingVerify>* deferred)
      -> std::optional<CertSiteResult> {
    world_.recorder.event(obs::Hop::kClient, "https-probe", "connect",
                          site.host,
                          static_cast<std::uint64_t>(world_.clock.now().micros));
    const auto result =
        world_.proxy().connect_and_handshake(site.address, 443, site.host, options);
    if (!result.ok() || result.zid != zid || result.chain.empty()) {
      return std::nullopt;
    }
    CertSiteResult out;
    out.host = site.host;
    out.site_class = site.site_class;
    out.originally_invalid = site.site_class == world::HttpsSite::Class::kInvalid;
    out.issuer_cn = result.chain.front().issuer.common_name;
    out.public_key = result.chain.front().public_key;
    if (out.originally_invalid) {
      // We know the exact certificate we serve: detect any substitution.
      out.replaced = result.chain.front().fingerprint() !=
                     site.genuine_chain.front().fingerprint();
    } else if (deferred != nullptr) {
      deferred->emplace(PendingVerify{0, 0, site.host, result.chain,
                                      world_.clock.now()});
    } else {
      // Valid-by-construction sites: a verification failure means a third
      // party replaced the chain (§6.1's chain-validation check).
      out.replaced =
          !verifier.verify(result.chain, site.host, world_.clock.now()).ok();
    }
    return out;
  };

  world_.metrics.begin_span("https.crawl", world_.clock.now());
  while (observations_.size() < config_.target_nodes && stall < config_.stall_limit) {
    // All of one session's sampling draws (country, phase-1 site picks)
    // come from a stream keyed by the session id: a session's variable
    // number of draws (phase-2 scans, rankings misses) can never shift a
    // later session's picks.
    util::StreamRng rng(config_.seed, session_id, "sample");
    // Evidence chain: the id is the session's own stream key (which embeds
    // the probe seed and session id) — stable across --jobs and under
    // probe composition.
    const std::uint64_t txn_id =
        util::StreamKey{config_.seed, session_id, util::purpose_tag("sample")}
            .mixed();
    proxy::RequestOptions options;
    options.country = countries[rng.weighted_index(weights)];
    options.session = "tls-" + std::to_string(session_id++);
    ++sessions_issued_;
    world_.metrics.add("https.sessions");
    world_.recorder.begin(txn_id, "https", *options.country);

    // Skip countries we have no Alexa-style rankings for (the paper's
    // 115-country limitation in §6.2).
    const auto ranked = index.popular.find(*options.country);
    if (ranked == index.popular.end() || ranked->second.empty()) {
      ++stall;
      world_.recorder.end("discarded");
      continue;
    }

    // Establish node identity with a first tunnel to a random popular site.
    const world::HttpsSite* first_site =
        ranked->second[rng.index(ranked->second.size())];
    world_.recorder.event(obs::Hop::kClient, "https-probe", "connect",
                          first_site->host,
                          static_cast<std::uint64_t>(world_.clock.now().micros));
    const auto first = world_.proxy().connect_and_handshake(
        first_site->address, 443, first_site->host, options);
    if (!first.ok()) {
      ++stall;
      world_.recorder.end("discarded");
      continue;
    }
    if (!seen_zids.insert(first.zid).second) {
      ++stall;
      world_.recorder.end("discarded");
      continue;
    }
    stall = 0;

    CertObservation observation;
    observation.txn_id = txn_id;
    observation.zid = first.zid;
    observation.exit_address = first.exit_address;
    observation.country = first.exit_country;
    if (const auto asn = world_.topology.origin_as(first.exit_address)) {
      observation.asn = *asn;
    }

    // Phase 1: one site from each class (re-using the already-fetched
    // popular handshake).
    CertSiteResult first_result;
    first_result.host = first_site->host;
    first_result.site_class = first_site->site_class;
    first_result.issuer_cn = first.chain.front().issuer.common_name;
    first_result.public_key = first.chain.front().public_key;
    first_result.replaced =
        !verifier.verify(first.chain, first_site->host, world_.clock.now()).ok();
    observation.sites.push_back(first_result);

    bool phase1_failed = first_result.replaced;
    if (!index.universities.empty()) {
      const auto* site = index.universities[rng.index(index.universities.size())];
      if (const auto result = scan_site(*site, options, observation.zid, nullptr)) {
        phase1_failed = phase1_failed || result->replaced;
        observation.sites.push_back(*result);
      }
    }
    if (!index.invalid.empty()) {
      const auto* site = index.invalid[rng.index(index.invalid.size())];
      if (const auto result = scan_site(*site, options, observation.zid, nullptr)) {
        phase1_failed = phase1_failed || result->replaced;
        observation.sites.push_back(*result);
      }
    }

    // Phase 2: on any failure, scan every site in all three classes.
    if (phase1_failed) {
      observation.phase2 = true;
      world_.metrics.add("https.phase2_scans");
      std::set<std::string> already;
      for (const auto& site : observation.sites) already.insert(site.host);
      const auto scan_all = [&](const std::vector<const world::HttpsSite*>& sites) {
        for (const auto* site : sites) {
          if (already.contains(site->host)) continue;
          std::optional<PendingVerify> deferred;
          if (const auto result =
                  scan_site(*site, options, observation.zid, &deferred)) {
            observation.sites.push_back(*result);
            if (deferred) {
              deferred->observation = observations_.size();
              deferred->site = observation.sites.size() - 1;
              pending.push_back(std::move(*deferred));
            }
          }
        }
      };
      scan_all(ranked->second);
      scan_all(index.universities);
      scan_all(index.invalid);
    }

    world_.metrics.add("https.observations");
    world_.metrics.add("https.sites_scanned", observation.sites.size());
    world_.recorder.end(observation.any_replaced() ? "replaced" : "clean");
    world_.recorder.amend_node(txn_id, observation.zid, observation.asn,
                               observation.country);
    observations_.push_back(std::move(observation));
  }
  world_.metrics.end_span(world_.clock.now());
  world_.metrics.add("https.deferred_verifications", pending.size());

  // Deferred chain verifications: pure function of (chain, host, snapshot),
  // each entry writes one distinct site slot, shard geometry depends only
  // on the entry count — byte-identical output for every jobs value.
  obs::traced_for_shards(
      world_.metrics, "https.verify", world_.clock.now(),
      pending.size(), util::shard_count(pending.size(), 16), config_.jobs,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto& entry = pending[i];
          observations_[entry.observation].sites[entry.site].replaced =
              !verifier.verify(entry.chain, entry.host, entry.now).ok();
        }
      });

  // Deferred verifications may have flipped a site to `replaced` after the
  // crawl-time verdict was written. The sharded pass never touches the
  // recorder; re-judging serially here, in observation order, keeps the
  // trace byte-identical for every --jobs.
  for (const auto& observation : observations_) {
    if (observation.any_replaced()) {
      world_.recorder.amend_verdict(observation.txn_id, "replaced", "");
    }
  }

  return observations_.size();
}

std::string classify_issuer(std::string_view issuer_cn) {
  static const char* const kAntiVirus[] = {
      "avast", "avg", "bitdefender", "eset", "kaspersky",
      "cyberoam", "fortigate", "dr.web", "mcafee", "norton"};
  static const char* const kFilters[] = {"opendns"};
  static const char* const kMalware[] = {"cloudguard"};
  for (const char* needle : kAntiVirus) {
    if (util::icontains(issuer_cn, needle)) return "Anti-Virus/Security";
  }
  for (const char* needle : kFilters) {
    if (util::icontains(issuer_cn, needle)) return "Content filter";
  }
  for (const char* needle : kMalware) {
    if (util::icontains(issuer_cn, needle)) return "Malware";
  }
  return "N/A";
}

HttpsReport analyze_https(const world::World& world,
                          const std::vector<CertObservation>& observations,
                          const HttpsAnalysisConfig& config) {
  (void)world;
  HttpsReport report;

  std::set<net::Asn> ases;
  std::set<net::CountryCode> countries;
  std::map<net::Asn, std::pair<std::size_t, std::size_t>> as_replaced;  // (replaced, total)

  struct IssuerAccumulator {
    std::size_t nodes = 0;
    std::size_t key_reuse = 0;
    std::size_t masks_invalid = 0;
  };
  std::map<std::string, IssuerAccumulator> by_issuer;

  for (const auto& observation : observations) {
    ++report.total_nodes;
    ases.insert(observation.asn);
    countries.insert(observation.country);
    auto& as_entry = as_replaced[observation.asn];
    ++as_entry.second;
    if (!observation.any_replaced()) continue;
    ++report.replaced_nodes;
    report.evidence["replaced"].push_back(observation.txn_id);
    ++as_entry.first;

    bool any_untouched = false;
    std::set<std::string> node_issuers;
    std::set<tls::KeyId> replaced_keys;
    std::size_t replaced_count = 0;
    // Issuer of forgeries on originally-valid sites, for the mask check.
    std::set<std::string> valid_site_issuers;
    for (const auto& site : observation.sites) {
      if (!site.replaced) {
        any_untouched = true;
        continue;
      }
      ++replaced_count;
      node_issuers.insert(site.issuer_cn);
      replaced_keys.insert(site.public_key);
      if (!site.originally_invalid) valid_site_issuers.insert(site.issuer_cn);
    }
    if (any_untouched) ++report.selective_nodes;

    bool masks_invalid = false;
    for (const auto& site : observation.sites) {
      if (site.replaced && site.originally_invalid &&
          valid_site_issuers.contains(site.issuer_cn)) {
        masks_invalid = true;
      }
    }

    for (const auto& issuer : node_issuers) {
      auto& accumulator = by_issuer[issuer];
      ++accumulator.nodes;
      if (replaced_count >= 2 && replaced_keys.size() == 1) ++accumulator.key_reuse;
      if (masks_invalid) ++accumulator.masks_invalid;
    }
  }
  report.unique_ases = ases.size();
  report.unique_countries = countries.size();
  report.unique_issuers = by_issuer.size();

  for (const auto& [issuer, accumulator] : by_issuer) {
    if (accumulator.nodes < config.min_nodes_per_issuer) continue;
    IssuerRow row;
    row.issuer_cn = issuer.empty() ? "(empty)" : issuer;
    row.nodes = accumulator.nodes;
    row.type = classify_issuer(issuer);
    row.key_reuse_nodes = accumulator.key_reuse;
    row.masks_invalid_nodes = accumulator.masks_invalid;
    report.issuers.push_back(std::move(row));
  }
  std::sort(report.issuers.begin(), report.issuers.end(),
            [](const IssuerRow& a, const IssuerRow& b) { return a.nodes > b.nodes; });

  std::size_t concentrated = 0, measured_ases = 0;
  for (const auto& [asn, counts] : as_replaced) {
    if (counts.second < 10) continue;
    ++measured_ases;
    if (static_cast<double>(counts.first) / counts.second >
        config.as_concentration_threshold) {
      ++concentrated;
    }
  }
  report.concentrated_as_fraction =
      measured_ases == 0 ? 0 : static_cast<double>(concentrated) / measured_ases;

  return report;
}

}  // namespace tft::core
