// Fault-injection behaviors for the load harness: the misbehaving-client
// repertoire Mani et al.-style open-proxy measurement has to survive. Each
// behavior is a deterministic, seeded strategy the LoadGenerator drives on
// a dedicated connection slot; the malformed-byte generators share the fuzz
// mutator stack (tft::testing) so chaos traffic and the `proxy_framing`
// fuzz target explore the same protocol-shaped corner cases.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "tft/util/rng.hpp"

namespace tft::net::client {

enum class ChaosBehavior {
  kSlowDrip,          // drip request-head bytes, then stall (slowloris)
  kMalformedFrame,    // CONNECT, then garbage instead of a hello frame
  kHalfCloseTunnel,   // CONNECT, shutdown(SHUT_WR) mid-frame
  kResetMidPipeline,  // pipelined burst, then SO_LINGER-0 reset
  kIdleHold,          // connect and never send a byte
};

constexpr std::size_t kChaosBehaviorCount = 5;

std::string_view to_string(ChaosBehavior behavior) noexcept;

/// A valid framed tunnel hello truncated at every interesting stream
/// offset: each u32 length-prefix boundary (1..4 bytes) plus partial-payload
/// cuts. These are exactly the shapes a half-closed or resetting peer leaves
/// in the server's FrameReader, and they seed the `proxy_framing` corpus.
std::vector<std::string> truncated_hello_corpus(
    std::string_view sni = "chaos.tft-study.net");

/// Bytes to send where the server expects a tunnel hello frame: a truncated
/// hello, a mutated-but-framed hello (shared mutation dictionary), a frame
/// with a smashed length prefix, or plain garbage. Deterministic in `rng`.
std::string malformed_tunnel_frame(util::Rng& rng);

/// Bytes to send where the server expects an HTTP request head: a valid
/// absolute-form GET put through 1..3 rounds of the shared mutators.
std::string malformed_http_request(util::Rng& rng);

}  // namespace tft::net::client
