// The transport seam between the probes and the super proxy. Probes issue
// their proxy transactions through a ProxyChannel; the default
// InProcessChannel forwards straight to the SuperProxy engine (the
// library-call path the reproduction started with), while the socket
// front-end (src/net/server) provides a channel that carries the same
// transactions over a real localhost TCP connection. The results are
// field-identical either way — that equivalence is enforced by the
// socket determinism ctest.
#pragma once

#include <string_view>

#include "tft/proxy/luminati.hpp"

namespace tft::proxy {

class ProxyChannel {
 public:
  virtual ~ProxyChannel() = default;

  /// Proxy an HTTP GET for `url` (absolute form), as SuperProxy::fetch.
  virtual ProxyFetchResult fetch(const http::Url& url,
                                 const RequestOptions& options) = 0;

  /// CONNECT destination:port and run a TLS handshake with `sni`, as
  /// SuperProxy::connect_and_handshake.
  virtual ConnectResult connect_and_handshake(net::Ipv4Address destination,
                                              std::uint16_t port,
                                              std::string_view sni,
                                              const RequestOptions& options) = 0;

  /// "in-process" or "socket" — for diagnostics only; never in reports.
  virtual std::string_view transport() const noexcept = 0;
};

/// The direct library-call path: every method forwards to the engine.
class InProcessChannel final : public ProxyChannel {
 public:
  explicit InProcessChannel(SuperProxy& engine) : engine_(engine) {}

  ProxyFetchResult fetch(const http::Url& url,
                         const RequestOptions& options) override {
    return engine_.fetch(url, options);
  }

  ConnectResult connect_and_handshake(net::Ipv4Address destination,
                                      std::uint16_t port, std::string_view sni,
                                      const RequestOptions& options) override {
    return engine_.connect_and_handshake(destination, port, sni, options);
  }

  std::string_view transport() const noexcept override { return "in-process"; }

 private:
  SuperProxy& engine_;
};

}  // namespace tft::proxy
