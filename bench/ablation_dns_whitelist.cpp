// Ablation (footnote 8): the d2 trick must let the super proxy's pre-check
// succeed. The paper whitelisted Google's whole 74.125.0.0/16 egress block,
// which makes EVERY Google-DNS exit node unmeasurable (their resolvers
// answer from the same block). Whitelisting only the specific anycast
// instance the super proxy reaches recovers most Google-DNS nodes — and
// with them Table 5's path/host-software hijacking evidence.
#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.05);
  const auto config = tft::bench::study_config(options);

  struct Run {
    const char* label;
    tft::core::DnsProbeConfig::GoogleWhitelist whitelist;
  };
  const Run runs[] = {
      {"instance-specific (ours)",
       tft::core::DnsProbeConfig::GoogleWhitelist::kSuperProxyInstance},
      {"whole /16 (paper)",
       tft::core::DnsProbeConfig::GoogleWhitelist::kWholeNetblock},
  };

  std::cout << tft::stats::banner("Ablation: d2 Google-DNS whitelist policy");
  tft::stats::Table table({"Policy", "Measured", "Filtered (unmeasurable)",
                           "Hijacked Google-DNS nodes", "Table 5 rows"});
  for (const auto& run : runs) {
    // Fresh world per run: the probe mutates server logs and caches.
    auto world = tft::world::build_world(tft::world::paper_spec(), options.scale,
                                         options.seed);
    auto probe_config = config.dns;
    probe_config.google_whitelist = run.whitelist;
    tft::core::DnsHijackProbe probe(*world, probe_config);
    probe.run();
    const auto report =
        tft::core::analyze_dns(*world, probe.observations(), config.dns_analysis);
    table.add_row({run.label, tft::util::format_count(report.total_nodes),
                   tft::util::format_count(report.filtered_nodes),
                   tft::util::format_count(report.google_hijacked_nodes),
                   std::to_string(report.google_urls.size())});
  }
  std::cout << table.render() << "\n";
  std::cout << "Reading: Google anycast sites answer from several egress\n"
               "netblocks. The paper's /16 whitelist makes every Google-DNS\n"
               "node whose anycast site shares the super proxy's netblock\n"
               "unmeasurable (footnote 8) — and with them part of Table 5's\n"
               "path/host-software evidence. Whitelisting only the super\n"
               "proxy's specific instance egress shrinks the blind spot to\n"
               "nodes that share that exact instance.\n";
  return 0;
}
