// Longest-prefix-match table mapping IPv4 prefixes to values. This is the
// RouteViews stand-in (§3.1 of the paper): the measurement pipeline uses it
// to map observed IP addresses to origin ASes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "tft/net/ipv4.hpp"

namespace tft::net {

/// Binary trie keyed by prefix bits. Insertions overwrite on exact prefix
/// duplicates; lookups return the most specific covering prefix's value.
template <typename Value>
class PrefixTable {
 public:
  PrefixTable() : root_(std::make_unique<Node>()) {}

  void insert(Ipv4Prefix prefix, Value value) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Most specific match, or nullopt when no inserted prefix covers `address`.
  std::optional<Value> lookup(Ipv4Address address) const {
    const Node* node = root_.get();
    std::optional<Value> best = node->value;
    const std::uint32_t bits = address.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value) best = node->value;
    }
    return best;
  }

  /// The matched prefix itself along with its value (for diagnostics).
  std::optional<std::pair<Ipv4Prefix, Value>> lookup_entry(Ipv4Address address) const {
    const Node* node = root_.get();
    std::optional<std::pair<Ipv4Prefix, Value>> best;
    if (node->value) {
      best = {*Ipv4Prefix::make(address, 0), *node->value};
    }
    const std::uint32_t bits = address.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value) {
        best = {*Ipv4Prefix::make(address, depth + 1), *node->value};
      }
    }
    return best;
  }

  std::size_t size() const noexcept { return size_; }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];
  };

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace tft::net
