// RFC 1035 wire-format codec, including message (name) compression on
// encode and pointer-chasing with loop protection on decode.
#pragma once

#include <string>
#include <string_view>

#include "tft/dns/message.hpp"
#include "tft/util/result.hpp"

namespace tft::dns {

/// Serialize a message to wire format. Names in all sections participate in
/// compression (RFC 1035 §4.1.4).
std::string encode(const Message& message);

/// Parse a wire-format message. Rejects truncated buffers, bad pointers,
/// pointer loops, and trailing garbage.
util::Result<Message> decode(std::string_view wire);

/// Encode a name without compression (used for RDATA name fields).
std::string encode_name_uncompressed(const DnsName& name);

/// Decode an uncompressed name occupying the whole of `wire`.
util::Result<DnsName> decode_name_uncompressed(std::string_view wire);

}  // namespace tft::dns
