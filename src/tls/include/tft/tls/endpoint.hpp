// TLS server endpoints: what a client receives when it opens a TCP
// connection to <ip>:443 and sends a ClientHello with an SNI value. The
// paper's §6 methodology only completes the handshake far enough to collect
// the presented certificate chain, so that is what we model.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "tft/net/ipv4.hpp"
#include "tft/tls/certificate.hpp"

namespace tft::tls {

class TlsServer {
 public:
  explicit TlsServer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Present `chain` for ClientHellos carrying SNI `host` (case-insensitive).
  void add_site(std::string_view host, CertificateChain chain);

  /// Chain for unknown/absent SNI.
  void set_default_chain(CertificateChain chain) { default_chain_ = std::move(chain); }

  /// The chain presented for `sni`; nullptr if the server has nothing to
  /// present (connection refused).
  const CertificateChain* chain_for(std::string_view sni) const;

 private:
  std::string name_;
  std::unordered_map<std::string, CertificateChain> sites_;  // lowercased host
  CertificateChain default_chain_;
};

/// Routes TLS connections by destination address.
class TlsEndpointRegistry {
 public:
  void add(net::Ipv4Address address, std::shared_ptr<TlsServer> server);
  TlsServer* find(net::Ipv4Address address) const;

  /// Handshake result: the chain presented by the server at `destination`
  /// for `sni`, or nullptr when the endpoint is unreachable.
  const CertificateChain* handshake(net::Ipv4Address destination,
                                    std::string_view sni) const;

 private:
  std::unordered_map<std::uint32_t, std::shared_ptr<TlsServer>> servers_;
};

}  // namespace tft::tls
