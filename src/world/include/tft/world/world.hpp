// The assembled simulated Internet: topology, DNS, web, TLS, the Luminati
// overlay, the measurement infrastructure the researcher controls, and the
// ground truth of every configured violation.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tft/dns/authoritative.hpp"
#include "tft/dns/resolver.hpp"
#include "tft/http/server.hpp"
#include "tft/net/topology.hpp"
#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/proxy/channel.hpp"
#include "tft/proxy/luminati.hpp"
#include "tft/sim/event_queue.hpp"
#include "tft/smtp/server.hpp"
#include "tft/tls/endpoint.hpp"
#include "tft/tls/verify.hpp"
#include "tft/world/ground_truth.hpp"
#include "tft/world/spec.hpp"

namespace tft::world {

/// An HTTPS measurement target (§6.1's three site classes).
struct HttpsSite {
  enum class Class { kPopular, kUniversity, kInvalid };
  enum class InvalidKind { kNone, kSelfSigned, kExpired, kWrongCommonName };

  std::string host;
  net::Ipv4Address address;
  Class site_class = Class::kPopular;
  InvalidKind invalid_kind = InvalidKind::kNone;
  net::CountryCode country;            // for per-country Alexa lists
  tls::CertificateChain genuine_chain; // what the origin actually serves
};

class World {
 public:
  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- Simulated Internet --------------------------------------------------
  sim::EventQueue clock;
  net::AsOrgDb topology;
  dns::AuthorityRegistry authorities;
  dns::ResolverDirectory resolvers;
  http::WebServerRegistry web;
  tls::TlsEndpointRegistry tls_endpoints;
  tls::RootStore public_roots;  // the "OS X root store" the client verifies with
  std::shared_ptr<dns::AnycastResolverGroup> google_dns;

  // --- The researcher's measurement infrastructure -------------------------
  dns::DnsName measurement_zone_origin;                       // tft-study.net
  std::shared_ptr<dns::AuthoritativeServer> measurement_zone; // we run it
  std::shared_ptr<http::OriginServer> measurement_web;        // and its web server
  net::Ipv4Address measurement_web_address;
  smtp::SmtpServerRegistry smtp;                              // SMTP extension
  std::shared_ptr<smtp::SmtpServer> measurement_mail;
  net::Ipv4Address measurement_mail_address;
  /// Size of the HTML object at /page.html (probes must diff against the
  /// same bytes; see WorldSpec::probe_html_bytes).
  std::size_t probe_html_bytes = 9 * 1024;

  // --- The proxy service ----------------------------------------------------
  std::unique_ptr<proxy::SuperProxy> luminati;

  /// Transport the probes reach the proxy through. Defaults to the direct
  /// library-call path (InProcessChannel); the socket front-end installs a
  /// SocketProxyChannel here, and the probes never know the difference.
  /// The SMTP methodology is exempt: Luminati's HTTP wire has no SMTP
  /// verb, so the SMTP probe always calls the engine directly.
  std::unique_ptr<proxy::ProxyChannel> proxy_channel;

  /// The active channel, creating the in-process default on first use.
  proxy::ProxyChannel& proxy() {
    if (!proxy_channel) {
      proxy_channel = std::make_unique<proxy::InProcessChannel>(*luminati);
    }
    return *proxy_channel;
  }

  // --- HTTPS targets ---------------------------------------------------------
  std::vector<HttpsSite> https_sites;

  // --- Ground truth -----------------------------------------------------------
  GroundTruth truth;

  /// True when the exit-node population is lazy (build_world_lazy): agents
  /// are materialized on demand behind the super proxy's shard cache, the
  /// node table is empty, and `truth` holds no per-node prefill (consumers
  /// that walk every node — validate, describe — need a materialized build).
  bool lazy_population = false;

  // --- Observability -----------------------------------------------------------
  /// The world's metrics/span registry. Every instrumented component
  /// (resolvers, middleboxes, the super proxy, probes) reports here; the
  /// world is driven serially, so no locking is needed (see obs/metrics.hpp
  /// for the determinism contract).
  obs::Registry metrics;

  /// The world's flight recorder: per-transaction evidence chains behind
  /// every attributed violation (obs/recorder.hpp). Probes open and close
  /// transactions; the overlay, resolvers, and interceptors append hop
  /// events to whichever transaction is open. Like `metrics`, never shared
  /// across threads — recording happens only on the serial crawl path.
  obs::Recorder recorder;

  /// Resolver service addresses per ISP name ("Verizon" -> its DNS servers).
  /// Lets longitudinal scenarios flip hijacking behaviour on or off over
  /// simulated time (the continuous-measurement use case of §9).
  std::map<std::string, std::vector<net::Ipv4Address>> isp_resolvers;

  /// Enable/disable NXDOMAIN hijacking on every resolver of `isp` at the
  /// current simulated time. Returns the number of resolvers changed.
  /// NOTE: node ground truth is not rewritten; longitudinal scenarios
  /// compare *measured* rates across rounds.
  std::size_t set_isp_hijack(const std::string& isp,
                             std::optional<dns::NxdomainHijackPolicy> policy);

  /// Google's published egress netblocks (footnote 14: the analysis
  /// classifies a resolver as Google when its egress falls in any of them).
  std::vector<net::Ipv4Prefix> google_netblocks;
  /// The netblock the super proxy's own anycast instance answers from —
  /// what the paper "empirically determined" to be 74.125.0.0/16.
  net::Ipv4Prefix google_egress_block;

  bool is_google_egress(net::Ipv4Address address) const {
    for (const auto& block : google_netblocks) {
      if (block.contains(address)) return true;
    }
    return false;
  }
};

/// Build a world from a spec. `scale` multiplies all node populations
/// (1.0 = paper scale, ~753K nodes; 0.1 is the benchmark default).
/// Structural counts (ASes, resolvers) scale with sqrt-like floors so the
/// analysis thresholds remain meaningful.
std::unique_ptr<World> build_world(const WorldSpec& spec, double scale,
                                   std::uint64_t seed);

/// Build a world whose exit-node population stays lazy: nodes are described
/// by a compact NodePlan and materialized on demand behind the super proxy's
/// LRU shard cache (at most ceil(nodes/shards) resident). Peak memory is
/// O(shard), not O(world); every request sees byte-identical nodes to the
/// materialized build. Sets World::lazy_population.
std::unique_ptr<World> build_world_lazy(const WorldSpec& spec, double scale,
                                        std::uint64_t seed,
                                        std::size_t shards = 16);

}  // namespace tft::world
