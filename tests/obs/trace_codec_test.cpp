#include "tft/obs/trace_codec.hpp"

#include <gtest/gtest.h>

namespace tft::obs {
namespace {

TxnRecord sample_record() {
  TxnRecord record;
  record.txn_id = 0x2f91b776b258a49bULL;
  record.kind = "dns";
  record.zid = "d0310b127a151d91";
  record.asn = 60015;
  record.country = "US";
  record.target = "s12-d2.probe.tft-study.net";
  record.verdict = "hijacked";
  record.culprit = "11.15.0.53";
  record.events.push_back(TraceEvent{Hop::kResolver, "11.15.0.53",
                                     "rewrite-nxdomain",
                                     "s12-d2 -> 11.15.0.80", 1234567});
  return record;
}

TEST(TraceCodecTest, RoundTripsAndIsCanonical) {
  const TxnRecord original = sample_record();
  const std::string line = encode_txn(original);
  // One line, no embedded newlines: the NDJSON invariant.
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const auto decoded = decode_txn(line);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(*decoded, original);
  // Canonical: re-encoding produces the identical bytes.
  EXPECT_EQ(encode_txn(*decoded), line);
}

TEST(TraceCodecTest, HexFieldsCarryFullWidthU64) {
  TxnRecord record = sample_record();
  record.txn_id = 0xffffffffffffffffULL;
  record.events.front().sim_us = 0x8000000000000001ULL;
  const auto decoded = decode_txn(encode_txn(record));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->txn_id, 0xffffffffffffffffULL);
  EXPECT_EQ(decoded->events.front().sim_us, 0x8000000000000001ULL);
}

TEST(TraceCodecTest, EscapedStringsSurvive) {
  TxnRecord record = sample_record();
  record.target = "a \"quoted\"\\path\nwith\tcontrol\x01 bytes";
  record.events.front().detail = "rewrote to <html>\"</html>";
  const std::string line = encode_txn(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto decoded = decode_txn(line);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
}

TEST(TraceCodecTest, RejectsForeignFormatAndVersion) {
  std::string line = encode_txn(sample_record());
  std::string wrong_tag = line;
  wrong_tag.replace(wrong_tag.find("tft-txn"), 7, "not-txn");
  EXPECT_FALSE(decode_txn(wrong_tag).ok());

  std::string wrong_version = line;
  wrong_version.replace(wrong_version.find("\"version\":1"), 11,
                        "\"version\":9");
  EXPECT_FALSE(decode_txn(wrong_version).ok());
}

TEST(TraceCodecTest, RejectsMalformedHexAndBadAsn) {
  const std::string base = encode_txn(sample_record());
  for (const char* bad :
       {R"("txn":"0xG")", R"("txn":"abc")", R"("txn":3)",
        R"("txn":"0x10000000000000000")", R"("txn":"0xAB")"}) {
    std::string line = base;
    const std::size_t at = line.find(R"("txn":"0x2f91b776b258a49b")");
    ASSERT_NE(at, std::string::npos);
    line.replace(at, 26, bad);
    EXPECT_FALSE(decode_txn(line).ok()) << bad;
  }
  for (const char* bad : {R"("asn":-1)", R"("asn":4294967296)",
                          R"("asn":"60015")", R"("asn":1.5)"}) {
    std::string line = base;
    const std::size_t at = line.find(R"("asn":60015)");
    ASSERT_NE(at, std::string::npos);
    line.replace(at, 11, bad);
    EXPECT_FALSE(decode_txn(line).ok()) << bad;
  }
}

TEST(TraceCodecTest, RejectsUnknownHop) {
  std::string line = encode_txn(sample_record());
  const std::size_t at = line.find(R"("hop":"resolver")");
  ASSERT_NE(at, std::string::npos);
  line.replace(at, 16, R"("hop":"balloon!")");
  EXPECT_FALSE(decode_txn(line).ok());
}

TEST(TraceCodecTest, TraceDocumentRoundTripsWithBlankLines) {
  std::vector<TxnRecord> records{sample_record(), sample_record()};
  records[1].txn_id = 99;
  records[1].verdict = "clean";
  records[1].events.clear();

  const std::string document = encode_trace(records);
  const auto decoded = decode_trace(document + "\n\n");
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(*decoded, records);
  // Empty document decodes to an empty trace.
  const auto empty = decode_trace("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(TraceCodecTest, TraceErrorsNameTheLine) {
  const std::string document =
      encode_txn(sample_record()) + "\n" + "{\"format\":\"tft-txn\"";
  const auto decoded = decode_trace(document);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("line 2"), std::string::npos)
      << decoded.error().message;
}

TEST(TraceCodecTest, HopNamesRoundTrip) {
  for (const Hop hop : {Hop::kClient, Hop::kSuperProxy, Hop::kExitNode,
                        Hop::kResolver, Hop::kMiddlebox, Hop::kOrigin}) {
    Hop parsed = Hop::kClient;
    ASSERT_TRUE(hop_from_string(to_string(hop), parsed));
    EXPECT_EQ(parsed, hop);
  }
  Hop unused = Hop::kClient;
  EXPECT_FALSE(hop_from_string("gateway", unused));
}

}  // namespace
}  // namespace tft::obs
