#include "tft/testing/fuzz.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "tft/dns/codec.hpp"
#include "tft/http/message.hpp"
#include "tft/net/server/framing.hpp"
#include "tft/obs/trace_codec.hpp"
#include "tft/smtp/protocol.hpp"
#include "tft/testing/generators.hpp"
#include "tft/testing/mutate.hpp"
#include "tft/tls/codec.hpp"
#include "tft/util/json.hpp"
#include "tft/util/json_parse.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"

namespace tft::testing {

using util::Rng;

namespace {

// --- per-target hooks --------------------------------------------------------
//
// classify: decode arbitrary bytes, report 0 (accepted) or 1 (clean error).
// generate: produce a valid wire image for mutation.
// roundtrip: build a value, encode, decode, compare — the differential
// oracle. Returns false on any disagreement.

std::string view_of(const std::uint8_t* data, std::size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

// --- DNS ---------------------------------------------------------------------

int dns_classify(const std::string& wire) {
  return dns::decode(wire).ok() ? 0 : 1;
}

std::string dns_generate(Rng& rng) {
  return dns::encode(random_dns_message(rng));
}

bool records_equal(const std::vector<dns::ResourceRecord>& a,
                   const std::vector<dns::ResourceRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].name.equals(b[i].name) || a[i].type != b[i].type ||
        a[i].klass != b[i].klass || a[i].ttl != b[i].ttl ||
        a[i].rdata != b[i].rdata) {
      return false;
    }
  }
  return true;
}

bool dns_roundtrip(Rng& rng) {
  const dns::Message original = random_dns_message(rng);
  const auto decoded = dns::decode(dns::encode(original));
  if (!decoded.ok()) return false;
  const auto& flags = decoded->flags;
  const auto& expected = original.flags;
  if (decoded->id != original.id || flags.response != expected.response ||
      flags.opcode != expected.opcode ||
      flags.authoritative != expected.authoritative ||
      flags.truncated != expected.truncated ||
      flags.recursion_desired != expected.recursion_desired ||
      flags.recursion_available != expected.recursion_available ||
      flags.rcode != expected.rcode) {
    return false;
  }
  if (decoded->questions.size() != original.questions.size()) return false;
  for (std::size_t i = 0; i < original.questions.size(); ++i) {
    if (!decoded->questions[i].name.equals(original.questions[i].name) ||
        decoded->questions[i].type != original.questions[i].type) {
      return false;
    }
  }
  return records_equal(decoded->answers, original.answers) &&
         records_equal(decoded->authorities, original.authorities) &&
         records_equal(decoded->additionals, original.additionals);
}

// --- HTTP request ------------------------------------------------------------

int http_request_classify(const std::string& wire) {
  return http::Request::parse(wire).ok() ? 0 : 1;
}

std::string http_request_generate(Rng& rng) {
  return random_http_request(rng).serialize();
}

bool http_request_roundtrip(Rng& rng) {
  const http::Request original = random_http_request(rng);
  const auto decoded = http::Request::parse(original.serialize());
  if (!decoded.ok()) return false;
  if (decoded->method != original.method || decoded->target != original.target ||
      decoded->version != original.version || decoded->body != original.body) {
    return false;
  }
  // Names may repeat (random tokens can collide), so compare the ordered
  // value list per name, not just the first value.
  for (const auto& entry : original.headers.entries()) {
    if (decoded->headers.get_all(entry.name) !=
        original.headers.get_all(entry.name)) {
      return false;
    }
  }
  return true;
}

// --- HTTP response (identity and chunked framing) ----------------------------

int http_response_classify(const std::string& wire) {
  return http::Response::parse(wire).ok() ? 0 : 1;
}

std::string http_response_generate(Rng& rng) {
  const http::Response response = random_http_response(rng);
  return rng.chance(0.5) ? response.serialize_chunked(1 + rng.index(300))
                         : response.serialize();
}

bool http_response_roundtrip(Rng& rng) {
  const http::Response original = random_http_response(rng);
  const bool chunked = rng.chance(0.5);
  const std::string wire = chunked
                               ? original.serialize_chunked(1 + rng.index(300))
                               : original.serialize();
  const auto decoded = http::Response::parse(wire);
  if (!decoded.ok()) return false;
  if (decoded->status != original.status || decoded->reason != original.reason ||
      decoded->body != original.body) {
    return false;
  }
  // The parser re-joins chunked bodies into identity framing.
  if (chunked && decoded->headers.get("Transfer-Encoding")) return false;
  // Names may repeat (random tokens can collide), so compare the ordered
  // value list per name, not just the first value.
  for (const auto& entry : original.headers.entries()) {
    if (decoded->headers.get_all(entry.name) !=
        original.headers.get_all(entry.name)) {
      return false;
    }
  }
  return true;
}

// --- TLS certificate chains --------------------------------------------------

int tls_chain_classify(const std::string& wire) {
  return tls::decode_chain(wire).ok() ? 0 : 1;
}

std::string tls_chain_generate(Rng& rng) {
  return tls::encode_chain(random_tls_chain(rng));
}

bool tls_chain_roundtrip(Rng& rng) {
  const tls::CertificateChain original = random_tls_chain(rng);
  const auto decoded = tls::decode_chain(tls::encode_chain(original));
  if (!decoded.ok() || decoded->size() != original.size()) return false;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (!((*decoded)[i] == original[i])) return false;
  }
  return true;
}

// --- SMTP replies and commands -----------------------------------------------

int smtp_reply_classify(const std::string& wire) {
  const bool reply_ok = smtp::Reply::parse(wire).ok();
  const bool command_ok = smtp::Command::parse(wire).ok();
  return (reply_ok || command_ok) ? 0 : 1;
}

std::string smtp_reply_generate(Rng& rng) {
  return rng.chance(0.3) ? random_smtp_dialogue(rng).serialize()
                         : random_smtp_reply(rng).serialize();
}

bool smtp_reply_roundtrip(Rng& rng) {
  const smtp::Reply reply = random_smtp_reply(rng);
  const auto decoded = smtp::Reply::parse(reply.serialize());
  if (!decoded.ok() || decoded->code != reply.code ||
      decoded->lines != reply.lines) {
    return false;
  }
  // A full dialogue's command lines must each survive parsing too.
  const SmtpDialogue dialogue = random_smtp_dialogue(rng);
  for (const auto& command : dialogue.commands) {
    std::string line = command.serialize();
    if (line.size() >= 2) line.resize(line.size() - 2);  // strip CRLF
    const auto parsed = smtp::Command::parse(line);
    if (!parsed.ok() || parsed->verb != command.verb ||
        parsed->argument != command.argument) {
      return false;
    }
  }
  for (const auto& round : dialogue.replies) {
    const auto parsed = smtp::Reply::parse(round.serialize());
    if (!parsed.ok() || parsed->code != round.code) return false;
  }
  return true;
}

// --- JSON --------------------------------------------------------------------

int json_classify(const std::string& text) {
  return util::parse_json(text).ok() ? 0 : 1;
}

std::string json_generate(Rng& rng) {
  return random_json_document(rng);
}

bool json_roundtrip(Rng& rng) {
  // Generated documents are valid by construction; parsing must agree.
  return util::parse_json(random_json_document(rng)).ok();
}

// --- stream checkpoints (study resume tokens) --------------------------------

int stream_checkpoint_classify(const std::string& text) {
  return util::parse_stream_checkpoint(text).ok() ? 0 : 1;
}

std::string stream_checkpoint_generate(Rng& rng) {
  return util::stream_checkpoint_json(random_stream_checkpoint(rng));
}

bool stream_checkpoint_roundtrip(Rng& rng) {
  const util::StreamCheckpoint original = random_stream_checkpoint(rng);
  const auto decoded =
      util::parse_stream_checkpoint(util::stream_checkpoint_json(original));
  return decoded.ok() && *decoded == original;
}

// --- flight-recorder trace codec ---------------------------------------------

int trace_codec_classify(const std::string& text) {
  return obs::decode_trace(text).ok() ? 0 : 1;
}

std::string trace_codec_generate(Rng& rng) {
  if (rng.chance(0.7)) return obs::encode_txn(random_txn_record(rng));
  // The NDJSON document form: several transactions, one per line.
  std::vector<obs::TxnRecord> records;
  const std::size_t count = rng.index(4);
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(random_txn_record(rng));
  }
  return obs::encode_trace(records);
}

bool trace_codec_roundtrip(Rng& rng) {
  // Line level: decode(encode(x)) == x, and re-encoding is canonical
  // (byte-identical), so traces survive split/sample/concatenate cycles.
  const obs::TxnRecord original = random_txn_record(rng);
  const std::string line = obs::encode_txn(original);
  const auto decoded = obs::decode_txn(line);
  if (!decoded.ok() || !(*decoded == original)) return false;
  if (obs::encode_txn(*decoded) != line) return false;

  // Document level through the NDJSON framing.
  std::vector<obs::TxnRecord> records;
  const std::size_t count = rng.index(4);
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(random_txn_record(rng));
  }
  const auto trace = obs::decode_trace(obs::encode_trace(records));
  return trace.ok() && *trace == records;
}

// --- socket front-end framing ------------------------------------------------
//
// The proxy_framing target covers every parser that sees raw client bytes
// on the socket front-end: request heads (absolute GET / CONNECT),
// Luminati-style credential strings, the attempts codec, and both tunnel
// frame payloads. One target, because the wire interleaves them.

namespace proxy_framing {

int classify(const std::string& wire) {
  // Frame layer first: arbitrary bytes through the u32 length-prefix reader.
  // Truncation must park as a clean partial, empty/oversize lengths must
  // error — never crash, never loop. The verdict below stays payload-level.
  net::server::FrameReader frames;
  if (frames.feed(wire).ok()) {
    while (frames.next_frame().has_value()) {
    }
  }
  if (net::server::parse_proxy_request(wire).ok()) return 0;
  if (net::server::decode_tunnel_hello(wire).ok()) return 0;
  if (net::server::decode_tunnel_reply(wire).ok()) return 0;
  if (net::server::parse_credentials(wire).ok()) return 0;
  if (net::server::decode_attempts(wire).ok()) return 0;
  return 1;
}

proxy::RequestOptions random_options(Rng& rng) {
  proxy::RequestOptions options;
  if (rng.chance(0.5)) {
    std::string country;
    country += static_cast<char>('a' + rng.index(26));
    country += static_cast<char>('a' + rng.index(26));
    options.country = country;
  }
  if (rng.chance(0.5)) {
    // Session ids contain dashes ("dns-42"); the codec must keep them whole.
    options.session = random_label(rng) + "-" + std::to_string(rng.index(100));
  }
  options.dns_remote = rng.chance(0.5);
  return options;
}

http::Url random_url(Rng& rng) {
  std::string text = rng.chance(0.2) ? "https://" : "http://";
  text += random_label(rng) + ".probe.tft-study.net";
  if (rng.chance(0.2)) text += ":" + std::to_string(1 + rng.index(65535));
  text += "/" + random_label(rng);
  if (rng.chance(0.3)) text += "?q=" + random_label(rng);
  auto url = http::Url::parse(text);
  return url.ok() ? *url : *http::Url::parse("http://fallback.example/");
}

net::Ipv4Address random_address(Rng& rng) {
  return net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
}

proxy::ProxyStatus random_status(Rng& rng) {
  constexpr proxy::ProxyStatus kStatuses[] = {
      proxy::ProxyStatus::kOk,
      proxy::ProxyStatus::kSuperProxyDnsFailure,
      proxy::ProxyStatus::kExitNodeDnsNxdomain,
      proxy::ProxyStatus::kExitNodeDnsFailure,
      proxy::ProxyStatus::kNoExitNodeAvailable,
      proxy::ProxyStatus::kAllAttemptsFailed,
      proxy::ProxyStatus::kTunnelFailed,
      proxy::ProxyStatus::kPortNotAllowed,
  };
  return kStatuses[rng.index(std::size(kStatuses))];
}

std::vector<proxy::AttemptInfo> random_attempts(Rng& rng) {
  std::vector<proxy::AttemptInfo> attempts;
  const std::size_t count = rng.index(5);
  attempts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    proxy::AttemptInfo info;
    info.zid = random_label(rng);
    if (rng.chance(0.5)) info.error = random_label(rng);
    attempts.push_back(std::move(info));
  }
  return attempts;
}

net::server::TunnelReply random_reply(Rng& rng) {
  net::server::TunnelReply reply;
  reply.status = random_status(rng);
  reply.zid = random_label(rng);
  reply.exit_address = random_address(rng);
  reply.exit_country = {static_cast<char>('a' + rng.index(26)),
                        static_cast<char>('a' + rng.index(26))};
  if (reply.status == proxy::ProxyStatus::kOk) {
    reply.chain = random_tls_chain(rng);
  }
  return reply;
}

std::string generate(Rng& rng) {
  switch (rng.index(6)) {
    case 0:
      return net::server::build_proxy_get(random_url(rng), random_options(rng));
    case 1:
      return net::server::build_connect(
          random_address(rng), static_cast<std::uint16_t>(1 + rng.index(65535)),
          random_options(rng));
    case 2:
      return net::server::encode_tunnel_hello(
          {random_label(rng) + ".probe.tft-study.net"});
    case 3:
      return net::server::encode_tunnel_reply(random_reply(rng));
    case 4:
      return net::server::format_credentials(random_options(rng));
    default:
      return net::server::encode_attempts(random_attempts(rng));
  }
}

bool options_equal(const proxy::RequestOptions& a,
                   const proxy::RequestOptions& b) {
  return a.country == b.country && a.session == b.session &&
         a.dns_remote == b.dns_remote;
}

bool roundtrip(Rng& rng) {
  // Credentials carry RequestOptions through the Proxy-Authorization header.
  const proxy::RequestOptions options = random_options(rng);
  const auto parsed_options =
      net::server::parse_credentials(net::server::format_credentials(options));
  if (!parsed_options.ok() || !options_equal(*parsed_options, options)) {
    return false;
  }

  // Absolute-form GET head.
  const http::Url url = random_url(rng);
  const auto get_head = net::server::parse_proxy_request(
      net::server::build_proxy_get(url, options));
  if (!get_head.ok() ||
      get_head->kind != net::server::ProxyRequestHead::Kind::kGet ||
      get_head->url.to_string() != url.to_string() ||
      !options_equal(get_head->options, options)) {
    return false;
  }

  // CONNECT head.
  const net::Ipv4Address destination = random_address(rng);
  const auto port = static_cast<std::uint16_t>(1 + rng.index(65535));
  const auto connect_head = net::server::parse_proxy_request(
      net::server::build_connect(destination, port, options));
  if (!connect_head.ok() ||
      connect_head->kind != net::server::ProxyRequestHead::Kind::kConnect ||
      connect_head->connect_address.value() != destination.value() ||
      connect_head->connect_port != port) {
    return false;
  }

  // Tunnel hello and reply payloads.
  const net::server::TunnelHello hello{random_label(rng) + ".example"};
  const auto decoded_hello =
      net::server::decode_tunnel_hello(net::server::encode_tunnel_hello(hello));
  if (!decoded_hello.ok() || decoded_hello->sni != hello.sni) return false;

  const net::server::TunnelReply reply = random_reply(rng);
  const auto decoded_reply =
      net::server::decode_tunnel_reply(net::server::encode_tunnel_reply(reply));
  if (!decoded_reply.ok() || decoded_reply->status != reply.status ||
      decoded_reply->zid != reply.zid ||
      decoded_reply->exit_address.value() != reply.exit_address.value() ||
      decoded_reply->exit_country != reply.exit_country ||
      decoded_reply->chain.size() != reply.chain.size()) {
    return false;
  }
  for (std::size_t i = 0; i < reply.chain.size(); ++i) {
    if (!(decoded_reply->chain[i] == reply.chain[i])) return false;
  }

  // Attempts trail codec (the X-TFT-Timeline header value).
  const std::vector<proxy::AttemptInfo> attempts = random_attempts(rng);
  const auto decoded_attempts =
      net::server::decode_attempts(net::server::encode_attempts(attempts));
  if (!decoded_attempts.ok() || decoded_attempts->size() != attempts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if ((*decoded_attempts)[i].zid != attempts[i].zid ||
        (*decoded_attempts)[i].error != attempts[i].error) {
      return false;
    }
  }
  return true;
}

}  // namespace proxy_framing

// --- streaming JSON writer (buffered vs sink differential) -------------------
//
// The input is a byte program driving JsonWriter through an arbitrary mix of
// containers and scalars: byte 0 picks the sink flush threshold, byte 1 the
// root container, and each following byte pair is (op, argument). The same
// program runs on a buffered writer and on a sink-equipped one; the two
// documents must agree byte-for-byte. Divergence aborts — that is a real
// streaming bug, never a property of the input.

namespace json_stream {

constexpr std::string_view kKeys[] = {
    "k",          "experiment", "nested",  "with\"quote",
    "tab\tkey",   "",           "newline\nkey", "ctrl\x01\x02",
};
constexpr std::string_view kStrings[] = {
    "",
    "value",
    "line\nbreak\r\ttab",
    "back\\slash \"quoted\"",
    "\x01\x02\x1f",
    "0123456789abcdef0123456789abcdef0123456789abcdef",
};

constexpr std::size_t kMaxDepth = 8;

/// How the op stream ended. A *canonical* program closes every container
/// explicitly and has no bytes left over — classify accepts only those;
/// anything else still executes (auto-closed) so the differential oracle
/// covers it, but counts as a clean reject.
struct ProgramOutcome {
  bool explicit_close = false;  // the ops closed the root themselves
  std::size_t leftover = 0;     // op bytes remaining after the root closed

  bool canonical() const { return explicit_close && leftover == 0; }
};

ProgramOutcome run_program(const std::string& program, util::JsonWriter& json) {
  std::size_t pos = 2;  // bytes 0/1 belong to the harness, not the op stream
  const auto next = [&]() -> unsigned {
    if (pos >= program.size()) return 0;
    return static_cast<unsigned char>(program[pos++]);
  };

  std::vector<bool> stack;  // true = object, false = array
  const bool root_object =
      program.size() < 2 || (static_cast<unsigned char>(program[1]) & 1) != 0;
  if (root_object) {
    json.begin_object();
  } else {
    json.begin_array();
  }
  stack.push_back(root_object);

  while (!stack.empty() && pos < program.size()) {
    unsigned op = next() % 8;
    const unsigned arg = next();
    if (stack.size() >= kMaxDepth && (op == 5 || op == 6)) op = 0;
    const std::string_view key = kKeys[arg % std::size(kKeys)];
    const std::string_view text = kStrings[arg % std::size(kStrings)];
    if (stack.back()) {
      switch (op) {
        case 0: json.field(key, text); break;
        case 1: json.field(key, static_cast<std::int64_t>(arg) - 128); break;
        case 2: json.field(key, static_cast<std::uint64_t>(arg) * 77); break;
        case 3: json.field(key, arg == 0 ? 0.0 : 1.0 / arg); break;
        case 4: json.field(key, (arg & 1) != 0); break;
        case 5: json.begin_object(key); stack.push_back(true); break;
        case 6: json.begin_array(key); stack.push_back(false); break;
        case 7: json.end_object(); stack.pop_back(); break;
      }
    } else {
      switch (op) {
        case 0: json.value(text); break;
        case 1: json.value(static_cast<std::int64_t>(arg) - 128); break;
        case 2: json.value(arg == 0 ? 0.0 : -1.0 / arg); break;
        case 3: json.value((arg & 1) == 0); break;
        case 4: json.null(); break;
        case 5: json.begin_object(); stack.push_back(true); break;
        case 6: json.begin_array(); stack.push_back(false); break;
        case 7: json.end_array(); stack.pop_back(); break;
      }
    }
  }
  ProgramOutcome outcome;
  outcome.explicit_close = stack.empty();
  outcome.leftover = program.size() - std::min(pos, program.size());
  while (!stack.empty()) {
    if (stack.back()) {
      json.end_object();
    } else {
      json.end_array();
    }
    stack.pop_back();
  }
  json.flush();
  return outcome;
}

/// Runs the program through a buffered writer and through one streaming to a
/// sink at the program-chosen threshold. True when the sink chunks reassemble
/// to the buffered document exactly and the writer's accounting agrees; fills
/// `doc` with the shared result and `outcome` with how the op stream ended.
bool agree(const std::string& program, std::string& doc,
           ProgramOutcome& outcome) {
  util::JsonWriter buffered;
  outcome = run_program(program, buffered);
  if (!buffered.complete()) return false;
  doc = std::move(buffered).take();

  const std::size_t threshold =
      program.empty() ? 0 : static_cast<unsigned char>(program[0]) % 97;
  std::string streamed;
  util::JsonWriter writer;
  writer.set_sink([&streamed](std::string_view chunk) { streamed += chunk; },
                  threshold);
  run_program(program, writer);
  return streamed == doc && writer.str().empty() &&
         writer.bytes_emitted() == doc.size() && writer.complete();
}

int classify(const std::string& program) {
  std::string doc;
  ProgramOutcome outcome;
  if (!agree(program, doc, outcome)) std::abort();
  // Every program yields a well-formed document by construction (the
  // harness auto-closes), so feed it back through the repo's parser to
  // close the writer/parser loop — but only canonical programs count as
  // accepted; mutation usually unbalances the op stream.
  if (!util::parse_json(doc).ok()) std::abort();
  return outcome.canonical() ? 0 : 1;
}

std::string generate(Rng& rng) {
  // A canonical program: random ops while budget lasts, then explicit
  // closes all the way down — mirrored by the corpus generator.
  std::string program;
  program.push_back(static_cast<char>(rng.uniform(256)));  // flush threshold
  const bool root_object = rng.chance(0.5);
  program.push_back(static_cast<char>(root_object ? 1 : 0));
  std::vector<bool> stack{root_object};
  const std::size_t budget = rng.uniform(48);
  std::size_t emitted = 0;
  while (!stack.empty()) {
    unsigned op;
    if (emitted < budget) {
      op = static_cast<unsigned>(rng.uniform(8));
      if (stack.size() >= kMaxDepth && (op == 5 || op == 6)) op = 0;
    } else {
      op = 7;  // drain: close every container explicitly
    }
    program.push_back(static_cast<char>(op));
    program.push_back(static_cast<char>(rng.uniform(256)));  // arg
    if (op == 5 || op == 6) {
      stack.push_back(op == 5);
    } else if (op == 7) {
      stack.pop_back();
    }
    ++emitted;
  }
  return program;
}

bool roundtrip(Rng& rng) {
  std::string doc;
  ProgramOutcome outcome;
  return agree(generate(rng), doc, outcome) && outcome.canonical() &&
         util::parse_json(doc).ok();
}

}  // namespace json_stream

// --- registry ----------------------------------------------------------------

struct TargetHooks {
  FuzzTarget target;
  std::string (*generate)(Rng&);
  int (*classify)(const std::string&);
  bool (*roundtrip)(Rng&);
};

template <int (*Classify)(const std::string&)>
int entry_adapter(const std::uint8_t* data, std::size_t size) {
  (void)Classify(view_of(data, size));
  return 0;
}

const std::vector<TargetHooks>& target_hooks() {
  static const std::vector<TargetHooks> kHooks = {
      {{"dns_decode", "RFC 1035 message decoder (compression pointers, RDATA)",
        &entry_adapter<dns_classify>},
       &dns_generate, &dns_classify, &dns_roundtrip},
      {{"http_request", "HTTP/1.1 request parser (request line, headers, body)",
        &entry_adapter<http_request_classify>},
       &http_request_generate, &http_request_classify, &http_request_roundtrip},
      {{"http_response",
        "HTTP/1.1 response parser incl. chunked transfer decoding",
        &entry_adapter<http_response_classify>},
       &http_response_generate, &http_response_classify,
       &http_response_roundtrip},
      {{"tls_chain", "TFTC certificate chain decoder (length-prefixed bodies)",
        &entry_adapter<tls_chain_classify>},
       &tls_chain_generate, &tls_chain_classify, &tls_chain_roundtrip},
      {{"smtp_reply", "SMTP reply/command parsers over dialogue-shaped input",
        &entry_adapter<smtp_reply_classify>},
       &smtp_reply_generate, &smtp_reply_classify, &smtp_reply_roundtrip},
      {{"json_parse", "RFC 8259 subset JSON parser (scenario/report loader)",
        &entry_adapter<json_classify>},
       &json_generate, &json_classify, &json_roundtrip},
      {{"stream_checkpoint",
        "study resume-token (de)serializer (hex-encoded stream states)",
        &entry_adapter<stream_checkpoint_classify>},
       &stream_checkpoint_generate, &stream_checkpoint_classify,
       &stream_checkpoint_roundtrip},
      {{"trace_codec",
        "flight-recorder NDJSON trace codec (tft-txn lines, hex u64s)",
        &entry_adapter<trace_codec_classify>},
       &trace_codec_generate, &trace_codec_classify, &trace_codec_roundtrip},
      {{"proxy_framing",
        "socket front-end wire formats (request heads, credentials, tunnel "
        "frames)",
        &entry_adapter<proxy_framing::classify>},
       &proxy_framing::generate, &proxy_framing::classify,
       &proxy_framing::roundtrip},
      {{"json_stream",
        "streaming JsonWriter sink (buffered vs chunked byte equality)",
        &entry_adapter<json_stream::classify>},
       &json_stream::generate, &json_stream::classify,
       &json_stream::roundtrip},
  };
  return kHooks;
}

const TargetHooks* find_hooks(std::string_view name) {
  for (const auto& hooks : target_hooks()) {
    if (hooks.target.name == name) return &hooks;
  }
  return nullptr;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_fold(std::uint64_t& digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (i * 8)) & 0xFF;
    digest *= kFnvPrime;
  }
}

}  // namespace

const std::vector<FuzzTarget>& fuzz_targets() {
  static const std::vector<FuzzTarget> kTargets = [] {
    std::vector<FuzzTarget> out;
    for (const auto& hooks : target_hooks()) out.push_back(hooks.target);
    return out;
  }();
  return kTargets;
}

const FuzzTarget* find_fuzz_target(std::string_view name) {
  for (const auto& target : fuzz_targets()) {
    if (target.name == name) return &target;
  }
  return nullptr;
}

int fuzz_one(std::string_view name, const std::uint8_t* data, std::size_t size) {
  const FuzzTarget* target = find_fuzz_target(name);
  if (target == nullptr) return -1;
  return target->one_input(data, size);
}

std::string FuzzShardReport::to_line() const {
  std::string out = "target=" + target;
  out += " seed=" + std::to_string(seed);
  out += " iterations=" + std::to_string(iterations);
  out += " roundtrip_failures=" + std::to_string(roundtrip_failures);
  out += " mutants_accepted=" + std::to_string(mutants_accepted);
  out += " mutants_rejected=" + std::to_string(mutants_rejected);
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(digest));
  out += " digest=";
  out += hex;
  return out;
}

util::Result<FuzzShardReport> run_fuzz_shard(std::string_view target,
                                             const FuzzShardOptions& options) {
  const TargetHooks* hooks = find_hooks(target);
  if (hooks == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound,
                            "unknown fuzz target: " + std::string(target));
  }

  FuzzShardReport report;
  report.target = std::string(target);
  report.seed = options.seed;
  report.iterations = options.iterations;
  report.digest = kFnvOffset;

  Rng rng(options.seed);
  for (std::size_t i = 0; i < options.iterations; ++i) {
    // Prong 1: differential oracle on a fresh valid value.
    const bool roundtrip_ok = hooks->roundtrip(rng);
    if (!roundtrip_ok) ++report.roundtrip_failures;

    // Prong 2: mutate a valid wire image; the decoder must return cleanly.
    const std::string wire = hooks->generate(rng);
    const std::string mutant = mutate_many(wire, rng, options.mutation_rounds);
    const int verdict = hooks->classify(mutant);
    if (verdict == 0) {
      ++report.mutants_accepted;
    } else {
      ++report.mutants_rejected;
    }

    fnv_fold(report.digest, (roundtrip_ok ? 0u : 1u) |
                                (static_cast<std::uint64_t>(verdict) << 1) |
                                (static_cast<std::uint64_t>(mutant.size()) << 8));
  }
  return report;
}

}  // namespace tft::testing
