#include "tft/http/message.hpp"

#include <gtest/gtest.h>

namespace tft::http {
namespace {

TEST(HttpRequestTest, ProxyGetForm) {
  const auto url = *Url::parse("http://example.com/a?b=c");
  const Request request = Request::proxy_get(url);
  EXPECT_EQ(request.method, Method::kGet);
  EXPECT_EQ(request.target, "http://example.com/a?b=c");
  EXPECT_EQ(request.headers.get("Host"), "example.com");
  const auto parsed = request.target_url();
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->host, "example.com");
}

TEST(HttpRequestTest, OriginGetForm) {
  const auto url = *Url::parse("http://example.com/a?b=c");
  const Request request = Request::origin_get(url);
  EXPECT_EQ(request.target, "/a?b=c");
}

TEST(HttpRequestTest, ConnectForm) {
  const Request request = Request::connect("example.com", 443);
  EXPECT_EQ(request.method, Method::kConnect);
  EXPECT_EQ(request.target, "example.com:443");
}

TEST(HttpRequestTest, SerializeParseRoundTrip) {
  Request request = Request::proxy_get(*Url::parse("http://example.com/x"));
  request.headers.add("User-Agent", "tft-probe/1.0");
  request.body = "payload";
  const auto parsed = Request::parse(request.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, Method::kGet);
  EXPECT_EQ(parsed->target, request.target);
  EXPECT_EQ(parsed->headers.get("User-Agent"), "tft-probe/1.0");
  EXPECT_EQ(parsed->body, "payload");
  EXPECT_EQ(parsed->headers.get("Content-Length"), "7");
}

TEST(HttpRequestTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Request::parse("").ok());
  EXPECT_FALSE(Request::parse("GET /\r\n\r\n").ok());                 // missing version
  EXPECT_FALSE(Request::parse("FETCH / HTTP/1.1\r\n\r\n").ok());      // bad method
  EXPECT_FALSE(Request::parse("GET / HTTP/1.1\r\nNoColon\r\n\r\n").ok());
  EXPECT_FALSE(Request::parse("GET / HTTP/1.1\r\n: empty\r\n\r\n").ok());
  EXPECT_FALSE(Request::parse("GET / HTTP/1.1").ok());                // no terminator
  EXPECT_FALSE(Request::parse("GET / BAD/1.1\r\n\r\n").ok());
}

TEST(HttpRequestTest, ParseRejectsWhitespaceBeforeColon) {
  EXPECT_FALSE(Request::parse("GET / HTTP/1.1\r\nHost : x\r\n\r\n").ok());
}

TEST(HttpRequestTest, ContentLengthMismatchRejected) {
  EXPECT_FALSE(
      Request::parse("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nabc").ok());
  EXPECT_FALSE(Request::parse("GET / HTTP/1.1\r\n\r\nabc").ok());  // body w/o length
  EXPECT_TRUE(
      Request::parse("GET / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc").ok());
}

TEST(HttpResponseTest, MakeSetsHeaders) {
  const Response response = Response::make(200, "OK", "<html></html>");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers.get("Content-Length"), "13");
  EXPECT_EQ(response.headers.get("Content-Type"), "text/html");
}

TEST(HttpResponseTest, SerializeParseRoundTrip) {
  Response response = Response::make(404, "Not Found", "gone", "text/plain");
  response.headers.add("X-Hola-Timeline-Debug", "zid=abc123");
  const auto parsed = Response::parse(response.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(parsed->body, "gone");
  EXPECT_EQ(parsed->headers.get("X-Hola-Timeline-Debug"), "zid=abc123");
}

TEST(HttpResponseTest, ReasonWithSpacesSurvives) {
  const auto parsed = Response::parse("HTTP/1.1 502 Bad Gateway\r\n\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->reason, "Bad Gateway");
}

TEST(HttpResponseTest, SerializeRecomputesStaleContentLength) {
  Response response = Response::make(200, "OK", "four");
  response.headers.set("Content-Length", "999");  // stale
  const auto parsed = Response::parse(response.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->headers.get("Content-Length"), "4");
}

struct BadStatusCase {
  const char* wire;
};

class ResponseRejectTest : public ::testing::TestWithParam<BadStatusCase> {};

TEST_P(ResponseRejectTest, Rejects) {
  EXPECT_FALSE(Response::parse(GetParam().wire).ok()) << GetParam().wire;
}

INSTANTIATE_TEST_SUITE_P(
    BadStatusLines, ResponseRejectTest,
    ::testing::Values(BadStatusCase{"HTTP/1.1 99 Low\r\n\r\n"},
                      BadStatusCase{"HTTP/1.1 6000 High\r\n\r\n"},
                      BadStatusCase{"HTTP/1.1 abc X\r\n\r\n"},
                      BadStatusCase{"NOTHTTP 200 OK\r\n\r\n"},
                      BadStatusCase{"HTTP/1.1\r\n\r\n"},
                      BadStatusCase{""}));

TEST(HttpMessageTest, MethodNames) {
  EXPECT_EQ(to_string(Method::kConnect), "CONNECT");
  EXPECT_TRUE(parse_method("POST").ok());
  EXPECT_EQ(*parse_method("HEAD"), Method::kHead);
  EXPECT_FALSE(parse_method("get").ok());  // methods are case-sensitive
}

TEST(HttpMessageTest, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(504), "Gateway Timeout");
  EXPECT_EQ(reason_phrase(999), "Unknown");
}

}  // namespace
}  // namespace tft::http
