#include "tft/http/server.hpp"

#include "tft/util/strings.hpp"

namespace tft::http {

namespace {
std::string resource_key(std::string_view host, std::string_view path) {
  return util::to_lower(host) + '|' + std::string(path);
}
}  // namespace

std::string request_host(const Request& request) {
  if (const auto host = request.headers.get("Host")) {
    const auto colon = host->rfind(':');
    // Careful: only strip a trailing :port, not part of an IPv6 literal
    // (not modeled) — digits-only suffix check keeps this safe.
    if (colon != std::string_view::npos) {
      const auto suffix = host->substr(colon + 1);
      bool digits = !suffix.empty();
      for (char c : suffix) digits = digits && c >= '0' && c <= '9';
      if (digits) return util::to_lower(host->substr(0, colon));
    }
    return util::to_lower(*host);
  }
  if (auto url = request.target_url()) return url->host;
  return {};
}

std::string request_path(const Request& request) {
  if (request.target.starts_with('/')) {
    const auto question = request.target.find('?');
    return request.target.substr(0, question);
  }
  if (auto url = request.target_url()) return url->path;
  return request.target;
}

void OriginServer::add_resource(std::string_view host, std::string_view path,
                                Response response) {
  resources_[resource_key(host, path)] = std::move(response);
}

void OriginServer::add_path_for_any_host(std::string_view path, Response response) {
  any_host_paths_[std::string(path)] = std::move(response);
}

Response OriginServer::handle(const Request& request, net::Ipv4Address source,
                              sim::Instant now) {
  const std::string host = request_host(request);
  const std::string path = request_path(request);

  RequestLogEntry entry;
  entry.time = now;
  entry.source = source;
  entry.host = host;
  entry.path = path;
  if (const auto agent = request.headers.get("User-Agent")) {
    entry.user_agent = std::string(*agent);
  }
  request_log_.push_back(std::move(entry));

  if (request.method != Method::kGet && request.method != Method::kHead) {
    return Response::make(400, "Bad Request", "<html><body>unsupported method</body></html>");
  }

  if (const auto it = resources_.find(resource_key(host, path)); it != resources_.end()) {
    return it->second;
  }
  if (const auto it = any_host_paths_.find(path); it != any_host_paths_.end()) {
    return it->second;
  }
  if (default_handler_) return default_handler_(request);
  return Response::not_found();
}

void WebServerRegistry::add(net::Ipv4Address address, std::shared_ptr<OriginServer> server) {
  servers_[address.value()] = std::move(server);
}

OriginServer* WebServerRegistry::find(net::Ipv4Address address) const {
  const auto it = servers_.find(address.value());
  return it == servers_.end() ? nullptr : it->second.get();
}

Response WebServerRegistry::fetch(net::Ipv4Address destination, const Request& request,
                                  net::Ipv4Address source, sim::Instant now) const {
  OriginServer* server = find(destination);
  if (server == nullptr) {
    return Response::make(504, "Gateway Timeout",
                          "<html><body>no route to host</body></html>");
  }
  return server->handle(request, source, now);
}

}  // namespace tft::http
