#include "tft/middlebox/tls_interceptor.hpp"

#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/util/strings.hpp"

namespace tft::middlebox {

std::optional<tls::CertificateChain> CertReplacer::intercept(
    std::string_view host, const tls::CertificateChain& upstream,
    FetchContext& context) {
  if (upstream.empty()) return std::nullopt;

  if (!config_.only_hosts.empty() &&
      !config_.only_hosts.contains(util::to_lower(host))) {
    return std::nullopt;
  }

  bool upstream_valid = true;
  if (config_.public_roots != nullptr) {
    const tls::CertificateVerifier verifier(config_.public_roots);
    upstream_valid =
        verifier.verify(upstream, host, context.clock->now()).ok();
  }
  if (config_.only_if_upstream_valid && !upstream_valid) {
    return std::nullopt;
  }
  if (context.rng != nullptr && !context.rng->chance(config_.probability)) {
    return std::nullopt;
  }

  const tls::Certificate forged =
      tls::forge_leaf(upstream.front(), config_.forge, host_seed_, upstream_valid,
                      context.clock->now());
  if (context.metrics != nullptr) context.metrics->add("middlebox.cert_swaps");
  if (context.recorder != nullptr) {
    context.recorder->violation(
        obs::Hop::kMiddlebox, config_.name, "swap-certificate",
        std::string(host) + " issuer " + config_.forge.issuer.common_name,
        static_cast<std::uint64_t>(context.clock->now().micros));
  }
  // Interceptors present only the forged leaf; the product's root lives in
  // the host's local trust store, not on the wire.
  return tls::CertificateChain{forged};
}

tls::CertificateChain intercepted_chain(const TlsInterceptorList& chain,
                                        std::string_view host,
                                        tls::CertificateChain upstream,
                                        FetchContext& context) {
  for (const auto& interceptor : chain) {
    if (auto replaced = interceptor->intercept(host, upstream, context)) {
      return *std::move(replaced);
    }
  }
  return upstream;
}

}  // namespace tft::middlebox
