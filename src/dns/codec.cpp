#include "tft/dns/codec.hpp"

#include <unordered_map>

#include "tft/util/bytes.hpp"
#include "tft/util/strings.hpp"

namespace tft::dns {

using util::ByteReader;
using util::ByteWriter;
using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

constexpr std::uint16_t kPointerMask = 0xC000;
constexpr std::size_t kMaxPointerHops = 64;

/// Compression state: maps a canonical name suffix to the wire offset where
/// it was first written. Offsets must fit in 14 bits to be pointer targets.
using CompressionMap = std::unordered_map<std::string, std::size_t>;

void encode_name(ByteWriter& writer, const DnsName& name, CompressionMap& seen) {
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Canonical key of the suffix starting at label i.
    std::string suffix;
    for (std::size_t j = i; j < labels.size(); ++j) {
      suffix += util::to_lower(labels[j]);
      suffix += '.';
    }
    if (const auto it = seen.find(suffix); it != seen.end()) {
      writer.u16(static_cast<std::uint16_t>(kPointerMask | it->second));
      return;
    }
    if (writer.size() <= 0x3FFF) {
      seen.emplace(std::move(suffix), writer.size());
    }
    writer.u8(static_cast<std::uint8_t>(labels[i].size()));
    writer.bytes(labels[i]);
  }
  writer.u8(0);  // root label
}

void encode_record(ByteWriter& writer, const ResourceRecord& record,
                   CompressionMap& seen) {
  encode_name(writer, record.name, seen);
  writer.u16(static_cast<std::uint16_t>(record.type));
  writer.u16(static_cast<std::uint16_t>(record.klass));
  writer.u32(record.ttl);
  writer.u16(static_cast<std::uint16_t>(record.rdata.size()));
  writer.bytes(record.rdata);
}

Result<DnsName> decode_name(ByteReader& reader, std::string_view wire) {
  std::vector<std::string> labels;
  std::size_t hops = 0;
  bool jumped = false;
  std::size_t resume_offset = 0;

  for (;;) {
    auto length = reader.u8();
    if (!length) return length.error();
    if (*length == 0) break;
    if ((*length & 0xC0) == 0xC0) {
      // Compression pointer: low 6 bits + next byte form the target offset.
      auto low = reader.u8();
      if (!low) return low.error();
      const std::size_t target =
          (static_cast<std::size_t>(*length & 0x3F) << 8) | *low;
      if (++hops > kMaxPointerHops) {
        return make_error(ErrorCode::kParseError, "DNS compression pointer loop");
      }
      if (target >= wire.size()) {
        return make_error(ErrorCode::kParseError, "DNS pointer past end of message");
      }
      if (!jumped) {
        resume_offset = reader.offset();
        jumped = true;
      }
      if (auto seek = reader.seek(target); !seek) return seek.error();
      continue;
    }
    if ((*length & 0xC0) != 0) {
      return make_error(ErrorCode::kParseError, "reserved DNS label type");
    }
    auto label = reader.bytes(*length);
    if (!label) return label.error();
    labels.emplace_back(*label);
  }
  if (jumped) {
    if (auto seek = reader.seek(resume_offset); !seek) return seek.error();
  }
  return DnsName::from_labels(std::move(labels));
}

Result<ResourceRecord> decode_record(ByteReader& reader, std::string_view wire) {
  auto name = decode_name(reader, wire);
  if (!name) return name.error();
  auto type = reader.u16();
  if (!type) return type.error();
  auto klass = reader.u16();
  if (!klass) return klass.error();
  auto ttl = reader.u32();
  if (!ttl) return ttl.error();
  auto rdlength = reader.u16();
  if (!rdlength) return rdlength.error();
  auto rdata = reader.bytes(*rdlength);
  if (!rdata) return rdata.error();

  ResourceRecord record;
  record.name = std::move(*name);
  record.type = static_cast<RecordType>(*type);
  record.klass = static_cast<RecordClass>(*klass);
  record.ttl = *ttl;
  record.rdata = std::string(*rdata);
  return record;
}

std::uint16_t pack_flags(const HeaderFlags& flags) {
  std::uint16_t out = 0;
  if (flags.response) out |= 0x8000;
  out |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(flags.opcode) & 0xF) << 11;
  if (flags.authoritative) out |= 0x0400;
  if (flags.truncated) out |= 0x0200;
  if (flags.recursion_desired) out |= 0x0100;
  if (flags.recursion_available) out |= 0x0080;
  out |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(flags.rcode) & 0xF);
  return out;
}

HeaderFlags unpack_flags(std::uint16_t raw) {
  HeaderFlags flags;
  flags.response = (raw & 0x8000) != 0;
  flags.opcode = static_cast<Opcode>((raw >> 11) & 0xF);
  flags.authoritative = (raw & 0x0400) != 0;
  flags.truncated = (raw & 0x0200) != 0;
  flags.recursion_desired = (raw & 0x0100) != 0;
  flags.recursion_available = (raw & 0x0080) != 0;
  flags.rcode = static_cast<Rcode>(raw & 0xF);
  return flags;
}

}  // namespace

std::string encode(const Message& message) {
  ByteWriter writer;
  CompressionMap seen;

  writer.u16(message.id);
  writer.u16(pack_flags(message.flags));
  writer.u16(static_cast<std::uint16_t>(message.questions.size()));
  writer.u16(static_cast<std::uint16_t>(message.answers.size()));
  writer.u16(static_cast<std::uint16_t>(message.authorities.size()));
  writer.u16(static_cast<std::uint16_t>(message.additionals.size()));

  for (const auto& question : message.questions) {
    encode_name(writer, question.name, seen);
    writer.u16(static_cast<std::uint16_t>(question.type));
    writer.u16(static_cast<std::uint16_t>(question.klass));
  }
  for (const auto& record : message.answers) encode_record(writer, record, seen);
  for (const auto& record : message.authorities) encode_record(writer, record, seen);
  for (const auto& record : message.additionals) encode_record(writer, record, seen);

  return std::move(writer).take();
}

Result<Message> decode(std::string_view wire) {
  ByteReader reader(wire);
  Message message;

  auto id = reader.u16();
  if (!id) return id.error();
  message.id = *id;
  auto flags = reader.u16();
  if (!flags) return flags.error();
  message.flags = unpack_flags(*flags);

  auto qdcount = reader.u16();
  if (!qdcount) return qdcount.error();
  auto ancount = reader.u16();
  if (!ancount) return ancount.error();
  auto nscount = reader.u16();
  if (!nscount) return nscount.error();
  auto arcount = reader.u16();
  if (!arcount) return arcount.error();

  for (std::uint16_t i = 0; i < *qdcount; ++i) {
    auto name = decode_name(reader, wire);
    if (!name) return name.error();
    auto type = reader.u16();
    if (!type) return type.error();
    auto klass = reader.u16();
    if (!klass) return klass.error();
    message.questions.push_back(Question{std::move(*name),
                                         static_cast<RecordType>(*type),
                                         static_cast<RecordClass>(*klass)});
  }

  const auto decode_section = [&](std::uint16_t count,
                                  std::vector<ResourceRecord>& section) -> Result<void> {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto record = decode_record(reader, wire);
      if (!record) return record.error();
      section.push_back(std::move(*record));
    }
    return {};
  };

  if (auto ok = decode_section(*ancount, message.answers); !ok) return ok.error();
  if (auto ok = decode_section(*nscount, message.authorities); !ok) return ok.error();
  if (auto ok = decode_section(*arcount, message.additionals); !ok) return ok.error();

  if (!reader.at_end()) {
    return make_error(ErrorCode::kParseError, "trailing bytes after DNS message");
  }
  return message;
}

std::string encode_name_uncompressed(const DnsName& name) {
  ByteWriter writer;
  for (const auto& label : name.labels()) {
    writer.u8(static_cast<std::uint8_t>(label.size()));
    writer.bytes(label);
  }
  writer.u8(0);
  return std::move(writer).take();
}

Result<DnsName> decode_name_uncompressed(std::string_view wire) {
  ByteReader reader(wire);
  auto name = decode_name(reader, wire);
  if (!name) return name.error();
  if (!reader.at_end()) {
    return make_error(ErrorCode::kParseError, "trailing bytes after DNS name");
  }
  return name;
}

}  // namespace tft::dns
