#include "tft/dns/codec.hpp"

#include <gtest/gtest.h>

namespace tft::dns {
namespace {

Message sample_response() {
  auto query = Message::query(0xBEEF, *DnsName::parse("www.example.com"));
  auto response = Message::response_to(query, Rcode::kNoError);
  response.flags.recursion_available = true;
  response.answers.push_back(ResourceRecord::a(*DnsName::parse("www.example.com"),
                                               net::Ipv4Address(93, 184, 216, 34), 3600));
  response.answers.push_back(ResourceRecord::txt(*DnsName::parse("www.example.com"),
                                                 "probe-token"));
  response.authorities.push_back(ResourceRecord::cname(
      *DnsName::parse("alias.example.com"), *DnsName::parse("www.example.com")));
  return response;
}

TEST(DnsCodecTest, RoundTripQuery) {
  const auto query = Message::query(0x0102, *DnsName::parse("d1.probe.tft-study.net"));
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 0x0102);
  EXPECT_FALSE(decoded->flags.response);
  EXPECT_TRUE(decoded->flags.recursion_desired);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name.to_string(), "d1.probe.tft-study.net");
}

TEST(DnsCodecTest, RoundTripFullResponse) {
  const auto original = sample_response();
  const auto decoded = decode(encode(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, original.id);
  EXPECT_TRUE(decoded->flags.response);
  EXPECT_TRUE(decoded->flags.recursion_available);
  EXPECT_EQ(decoded->flags.rcode, Rcode::kNoError);
  ASSERT_EQ(decoded->answers.size(), 2u);
  EXPECT_EQ(decoded->answers[0].a_address()->to_string(), "93.184.216.34");
  EXPECT_EQ(decoded->answers[0].ttl, 3600u);
  EXPECT_EQ(*decoded->answers[1].txt_text(), "probe-token");
  ASSERT_EQ(decoded->authorities.size(), 1u);
  EXPECT_EQ(decoded->authorities[0].name_target()->to_string(), "www.example.com");
}

TEST(DnsCodecTest, CompressionShrinksRepeatedNames) {
  // The same name appears in question + two answers; compression must make
  // the encoding smaller than the naive sum.
  Message message = sample_response();
  const std::string wire = encode(message);
  // Rough bound: the uncompressed name is 17 bytes; three full copies would
  // add >= 34 extra bytes versus pointers (2 bytes each).
  std::size_t naive = 0;
  naive += 12;  // header
  naive += 17 + 4;
  for (const auto& rr : message.answers) naive += 17 + 10 + rr.rdata.size();
  naive += 19 + 10 + message.authorities[0].rdata.size();
  EXPECT_LT(wire.size(), naive);
}

TEST(DnsCodecTest, CompressionIsCaseInsensitive) {
  auto query = Message::query(1, *DnsName::parse("WWW.Example.COM"));
  auto response = Message::response_to(query, Rcode::kNoError);
  response.answers.push_back(ResourceRecord::a(*DnsName::parse("www.example.com"),
                                               net::Ipv4Address(1, 1, 1, 1)));
  const auto decoded = decode(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->answers[0].name.equals(decoded->questions[0].name));
}

TEST(DnsCodecTest, NxdomainRoundTrip) {
  const auto query = Message::query(9, *DnsName::parse("missing.example.com"));
  const auto response = Message::response_to(query, Rcode::kNxDomain);
  const auto decoded = decode(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->is_nxdomain());
}

TEST(DnsCodecTest, RejectsTruncatedHeader) {
  EXPECT_FALSE(decode("\x01\x02\x03").ok());
  EXPECT_FALSE(decode("").ok());
}

TEST(DnsCodecTest, RejectsTruncatedQuestion) {
  const auto query = Message::query(1, *DnsName::parse("example.com"));
  std::string wire = encode(query);
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(DnsCodecTest, RejectsTrailingGarbage) {
  const auto query = Message::query(1, *DnsName::parse("example.com"));
  std::string wire = encode(query);
  wire += "XX";
  EXPECT_FALSE(decode(wire).ok());
}

TEST(DnsCodecTest, RejectsPointerLoop) {
  // Hand-craft a message whose question name is a self-pointing pointer.
  std::string wire;
  const char header[] = {0x00, 0x01, 0x00, 0x00, 0x00, 0x01,
                         0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  wire.assign(header, header + 12);
  wire += '\xC0';
  wire += '\x0C';  // pointer to itself (offset 12)
  wire += std::string("\x00\x01\x00\x01", 4);
  const auto decoded = decode(wire);
  ASSERT_FALSE(decoded.ok());
}

TEST(DnsCodecTest, RejectsPointerPastEnd) {
  std::string wire;
  const char header[] = {0x00, 0x01, 0x00, 0x00, 0x00, 0x01,
                         0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  wire.assign(header, header + 12);
  wire += '\xC3';
  wire += '\xFF';  // pointer to offset 0x3FF, past end
  wire += std::string("\x00\x01\x00\x01", 4);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(DnsCodecTest, RejectsReservedLabelType) {
  std::string wire;
  const char header[] = {0x00, 0x01, 0x00, 0x00, 0x00, 0x01,
                         0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  wire.assign(header, header + 12);
  wire += '\x80';  // 10xxxxxx: reserved
  wire += std::string("\x00\x01\x00\x01", 4);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(DnsCodecTest, UncompressedNameHelpers) {
  const auto name = *DnsName::parse("ns1.example.org");
  const std::string wire = encode_name_uncompressed(name);
  EXPECT_EQ(wire.size(), 1 + 3 + 1 + 7 + 1 + 3 + 1);
  const auto decoded = decode_name_uncompressed(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->equals(name));
  EXPECT_FALSE(decode_name_uncompressed(wire + "Z").ok());
  EXPECT_FALSE(decode_name_uncompressed(wire.substr(0, 3)).ok());
}

TEST(DnsCodecTest, RootNameEncodesToSingleZero) {
  EXPECT_EQ(encode_name_uncompressed(DnsName{}), std::string("\0", 1));
}

class CodecFuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzzSweep, TruncationAtEveryPointFailsCleanly) {
  // Property: decode never crashes and fails cleanly on any truncation.
  const auto original = sample_response();
  const std::string wire = encode(original);
  const auto cut = static_cast<std::size_t>(GetParam());
  if (cut >= wire.size()) GTEST_SKIP();
  const auto decoded = decode(wire.substr(0, cut));
  EXPECT_FALSE(decoded.ok());
}

INSTANTIATE_TEST_SUITE_P(Cuts, CodecFuzzSweep, ::testing::Range(0, 90, 7));

}  // namespace
}  // namespace tft::dns
