#include "tft/tls/codec.hpp"

#include <gtest/gtest.h>

#include "tft/tls/authority.hpp"

namespace tft::tls {
namespace {

Certificate sample_certificate() {
  Certificate certificate;
  certificate.subject = {"www.example.com", "Example Inc", "US"};
  certificate.issuer = {"TFT TLS Issuing CA", "TFT Trust Services", "US"};
  certificate.serial = 0xDEADBEEFCAFEULL;
  certificate.not_before = sim::Instant::epoch() - sim::Duration::hours(24);
  certificate.not_after = sim::Instant::epoch() + sim::Duration::hours(24 * 365);
  certificate.subject_alt_names = {"www.example.com", "*.cdn.example.com"};
  certificate.public_key = 111222333;
  certificate.signed_by = 444555666;
  certificate.is_ca = false;
  return certificate;
}

TEST(TlsCodecTest, CertificateRoundTrip) {
  const Certificate original = sample_certificate();
  const auto decoded = decode_certificate(encode_certificate(original));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(*decoded, original);
  EXPECT_EQ(decoded->fingerprint(), original.fingerprint());
}

TEST(TlsCodecTest, NegativeValidityInstantsSurvive) {
  // Expired certificates sit before the sim epoch (negative micros).
  Certificate certificate = sample_certificate();
  certificate.not_before = sim::Instant::epoch() - sim::Duration::hours(24 * 730);
  certificate.not_after = sim::Instant::epoch() - sim::Duration::hours(24);
  const auto decoded = decode_certificate(encode_certificate(certificate));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->not_before, certificate.not_before);
  EXPECT_EQ(decoded->not_after, certificate.not_after);
}

TEST(TlsCodecTest, EmptyFieldsSurvive) {
  Certificate certificate = sample_certificate();
  certificate.subject = {"", "", ""};
  certificate.subject_alt_names.clear();
  certificate.is_ca = true;
  const auto decoded = decode_certificate(encode_certificate(certificate));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, certificate);
}

TEST(TlsCodecTest, ChainRoundTrip) {
  auto root = CertificateAuthority::make_root(
      {"Root", "Trust", "US"}, 1, sim::Instant::epoch(),
      sim::Instant::epoch() + sim::Duration::hours(24 * 3650));
  auto intermediate =
      CertificateAuthority::make_intermediate(root, {"Mid", "Trust", "US"}, 2);
  CertificateAuthority::LeafOptions options;
  options.hosts = {"www.example.com"};
  const CertificateChain original = intermediate.chain_for(intermediate.issue(options));

  const auto decoded = decode_chain(encode_chain(original));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*decoded)[i], original[i]) << "certificate " << i;
  }
}

TEST(TlsCodecTest, EmptyChainRoundTrip) {
  const auto decoded = decode_chain(encode_chain({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(TlsCodecTest, RejectsBadMagicAndVersion) {
  std::string wire = encode_chain({sample_certificate()});
  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode_chain(bad_magic).ok());
  std::string bad_version = wire;
  bad_version[5] = 9;
  EXPECT_FALSE(decode_chain(bad_version).ok());
}

TEST(TlsCodecTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(decode_chain(encode_chain({sample_certificate()}) + "x").ok());
  EXPECT_FALSE(
      decode_certificate(encode_certificate(sample_certificate()) + "x").ok());
}

class TlsCodecTruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TlsCodecTruncationSweep, TruncationFailsCleanly) {
  const std::string wire = encode_chain({sample_certificate(), sample_certificate()});
  const auto cut = static_cast<std::size_t>(GetParam());
  if (cut >= wire.size()) GTEST_SKIP();
  EXPECT_FALSE(decode_chain(wire.substr(0, cut)).ok());
}

INSTANTIATE_TEST_SUITE_P(Cuts, TlsCodecTruncationSweep,
                         ::testing::Range(0, 180, 11));

TEST(TlsCodecTest, RejectsCorruptIsCaFlag) {
  const std::string wire = encode_certificate(sample_certificate());
  std::string corrupt = wire;
  corrupt[corrupt.size() - 1] = 7;  // is_ca must be 0 or 1
  EXPECT_FALSE(decode_certificate(corrupt).ok());
}

}  // namespace
}  // namespace tft::tls
