#include "tft/proxy/luminati.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace tft::proxy {
namespace {

class LuminatiTest : public ::testing::Test {
 protected:
  LuminatiTest() {
    auto zone = std::make_shared<dns::AuthoritativeServer>(
        *dns::DnsName::parse("tft-study.net"));
    zone->add_wildcard_a(*dns::DnsName::parse("probe.tft-study.net"), web_address_);
    zone_ = zone.get();
    authorities_.register_zone(std::move(zone));

    // Google-like anycast used by the super proxy; also reachable by nodes.
    auto google = std::make_shared<dns::AnycastResolverGroup>(
        net::Ipv4Address(8, 8, 8, 8), "google");
    for (int i = 0; i < 3; ++i) {
      google->add_instance(std::make_shared<dns::RecursiveResolver>(
          net::Ipv4Address(8, 8, 8, 8),
          net::Ipv4Address(74, 125, static_cast<std::uint8_t>(i + 1), 1),
          &authorities_, &clock_));
    }
    resolvers_.add_anycast(std::move(google));

    auto server = std::make_shared<http::OriginServer>("web");
    server->set_default_handler(
        [](const http::Request&) { return http::Response::make(200, "OK", "content"); });
    web_server_ = server.get();
    web_.add(web_address_, std::move(server));

    environment_ = Environment{&resolvers_, &web_, &tls_, &smtp_, &clock_, &topology_};
    proxy_ = std::make_unique<SuperProxy>(SuperProxy::Config{}, environment_);
  }

  void add_node(const std::string& zid, const net::CountryCode& country,
                double failure_probability = 0.0,
                net::Ipv4Address resolver = net::Ipv4Address(8, 8, 8, 8)) {
    ExitNodeAgent::Config config;
    config.zid = zid;
    config.address = net::Ipv4Address(203, 0, 113, next_host_++);
    config.country = country;
    config.dns_resolver = resolver;
    config.failure_probability = failure_probability;
    proxy_->add_exit_node(std::make_shared<ExitNodeAgent>(std::move(config),
                                                          environment_));
  }

  http::Url probe_url(const std::string& label) {
    return *http::Url::parse("http://" + label + ".probe.tft-study.net/");
  }

  std::uint8_t next_host_ = 1;
  net::Ipv4Address web_address_{198, 51, 100, 10};
  sim::EventQueue clock_;
  net::AsOrgDb topology_;
  dns::AuthorityRegistry authorities_;
  dns::AuthoritativeServer* zone_ = nullptr;
  dns::ResolverDirectory resolvers_;
  http::WebServerRegistry web_;
  http::OriginServer* web_server_ = nullptr;
  tls::TlsEndpointRegistry tls_;
  smtp::SmtpServerRegistry smtp_;
  Environment environment_;
  std::unique_ptr<SuperProxy> proxy_;
};

TEST_F(LuminatiTest, FetchThroughAnExitNode) {
  add_node("node-a", "US");
  const auto result = proxy_->fetch(probe_url("x1"), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response.body, "content");
  EXPECT_EQ(result.zid, "node-a");
  EXPECT_EQ(result.exit_country, "US");
  // Debug headers are attached, as the real service does.
  EXPECT_TRUE(result.response.headers.has("X-Hola-Timeline-Debug"));
  EXPECT_TRUE(result.response.headers.has("X-Hola-Unblocker-Debug"));
}

TEST_F(LuminatiTest, NoNodesMeansNoService) {
  const auto result = proxy_->fetch(probe_url("x1"), {});
  EXPECT_EQ(result.status, ProxyStatus::kNoExitNodeAvailable);
}

TEST_F(LuminatiTest, SuperProxyPrecheckFailsForUnknownDomain) {
  add_node("node-a", "US");
  const auto result = proxy_->fetch(*http::Url::parse("http://no-such-zone.org/"), {});
  EXPECT_EQ(result.status, ProxyStatus::kSuperProxyDnsFailure);
}

TEST_F(LuminatiTest, CountryTargeting) {
  add_node("node-us", "US");
  add_node("node-de", "DE");
  add_node("node-my", "MY");
  RequestOptions options;
  options.country = "DE";
  for (int i = 0; i < 10; ++i) {
    const auto result = proxy_->fetch(probe_url("c" + std::to_string(i)), options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.zid, "node-de");
  }
  options.country = "FR";  // no nodes there
  EXPECT_EQ(proxy_->fetch(probe_url("cx"), options).status,
            ProxyStatus::kNoExitNodeAvailable);
}

TEST_F(LuminatiTest, SessionPinningReusesNode) {
  for (int i = 0; i < 20; ++i) add_node("node-" + std::to_string(i), "US");
  RequestOptions options;
  options.session = "429";
  const auto first = proxy_->fetch(probe_url("s1"), options);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 10; ++i) {
    const auto next = proxy_->fetch(probe_url("s" + std::to_string(i + 2)), options);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next.zid, first.zid);
  }
}

TEST_F(LuminatiTest, SessionExpiresAfterTtl) {
  for (int i = 0; i < 30; ++i) add_node("node-" + std::to_string(i), "US");
  RequestOptions options;
  options.session = "429";
  const auto first = proxy_->fetch(probe_url("s1"), options);
  clock_.advance(sim::Duration::seconds(61));
  // After expiry the session may pick any node; with 30 nodes the chance of
  // re-picking the same one 5 times in a row is negligible.
  std::set<std::string> seen;
  for (int i = 0; i < 5; ++i) {
    RequestOptions fresh;
    fresh.session = "429";
    seen.insert(proxy_->fetch(probe_url("e" + std::to_string(i)), fresh).zid);
    clock_.advance(sim::Duration::seconds(61));
  }
  EXPECT_GT(seen.size(), 1u);
  (void)first;
}

TEST_F(LuminatiTest, DifferentSessionsSpreadOverNodes) {
  for (int i = 0; i < 30; ++i) add_node("node-" + std::to_string(i), "US");
  std::set<std::string> seen;
  for (int i = 0; i < 60; ++i) {
    RequestOptions options;
    options.session = "sess-" + std::to_string(i);
    const auto result = proxy_->fetch(probe_url("d" + std::to_string(i)), options);
    ASSERT_TRUE(result.ok());
    seen.insert(result.zid);
  }
  EXPECT_GT(seen.size(), 10u);
}

TEST_F(LuminatiTest, RetriesFailedNodesAndRecordsTimeline) {
  add_node("flaky-1", "US", 1.0);
  add_node("flaky-2", "US", 1.0);
  add_node("solid", "US", 0.0);
  // With two always-failing nodes, retries must eventually land on "solid".
  int solid_hits = 0;
  for (int i = 0; i < 10; ++i) {
    const auto result = proxy_->fetch(probe_url("r" + std::to_string(i)), {});
    if (result.ok()) {
      EXPECT_EQ(result.zid, "solid");
      ++solid_hits;
      if (result.timeline.size() > 1) {
        EXPECT_EQ(result.timeline.back().error, "");
        EXPECT_EQ(result.timeline.front().error, "connect_timeout");
      }
    } else {
      EXPECT_EQ(result.status, ProxyStatus::kAllAttemptsFailed);
    }
  }
  EXPECT_GT(solid_hits, 0);
}

TEST_F(LuminatiTest, OfflineNodesAreSkipped) {
  add_node("offline", "US");
  proxy_->nodes()[0]->set_online(false);
  EXPECT_EQ(proxy_->fetch(probe_url("o1"), {}).status,
            ProxyStatus::kNoExitNodeAvailable);
}

TEST_F(LuminatiTest, NxdomainAtExitNodeIsReported) {
  // The d2 trick from §4.1: the zone answers only queries arriving from
  // Google egress addresses (the super proxy's pre-check); the node's own
  // unicast resolver receives NXDOMAIN.
  auto node_resolver = std::make_shared<dns::RecursiveResolver>(
      net::Ipv4Address(10, 0, 0, 53), net::Ipv4Address(10, 0, 0, 53), &authorities_,
      &clock_);
  resolvers_.add_resolver(std::move(node_resolver));
  add_node("node-a", "US", 0.0, net::Ipv4Address(10, 0, 0, 53));

  zone_->add_a(*dns::DnsName::parse("d2.tft-study.net"), web_address_);
  const auto google_block = *net::Ipv4Prefix::parse("74.125.0.0/16");
  zone_->set_policy([google_block](const dns::Question& question,
                                   net::Ipv4Address source, const dns::Message& query)
                        -> std::optional<dns::Message> {
    if (question.name.to_string() != "d2.tft-study.net") return std::nullopt;
    if (google_block.contains(source)) return std::nullopt;
    return dns::Message::response_to(query, dns::Rcode::kNxDomain);
  });

  RequestOptions options;
  options.dns_remote = true;
  const auto result = proxy_->fetch(*http::Url::parse("http://d2.tft-study.net/"),
                                    options);
  EXPECT_EQ(result.status, ProxyStatus::kExitNodeDnsNxdomain);
  EXPECT_EQ(result.zid, "node-a");
}

TEST_F(LuminatiTest, ConnectRejectsNon443) {
  add_node("node-a", "US");
  const auto result =
      proxy_->connect_and_handshake(net::Ipv4Address(1, 2, 3, 4), 80, "x", {});
  EXPECT_EQ(result.status, ProxyStatus::kPortNotAllowed);
}

TEST_F(LuminatiTest, ConnectTunnelFailsWhenNoEndpoint) {
  add_node("node-a", "US");
  const auto result =
      proxy_->connect_and_handshake(net::Ipv4Address(1, 2, 3, 4), 443, "x", {});
  EXPECT_EQ(result.status, ProxyStatus::kAllAttemptsFailed);
}

TEST_F(LuminatiTest, CountryCountsAreSorted) {
  add_node("a", "US");
  add_node("b", "DE");
  add_node("c", "US");
  const auto counts = proxy_->country_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "DE");
  EXPECT_EQ(counts[0].second, 1u);
  EXPECT_EQ(counts[1].first, "US");
  EXPECT_EQ(counts[1].second, 2u);
  EXPECT_EQ(proxy_->node_count(), 3u);
  EXPECT_EQ(proxy_->node_count("US"), 2u);
  EXPECT_EQ(proxy_->node_count("FR"), 0u);
}

TEST_F(LuminatiTest, StatusNames) {
  EXPECT_EQ(to_string(ProxyStatus::kOk), "ok");
  EXPECT_EQ(to_string(ProxyStatus::kExitNodeDnsNxdomain), "exit_node_dns_nxdomain");
  EXPECT_EQ(to_string(ProxyStatus::kPortNotAllowed), "port_not_allowed");
}

}  // namespace
}  // namespace tft::proxy
