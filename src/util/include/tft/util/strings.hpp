// String helpers shared by the protocol parsers and report formatters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tft::util {

/// Split on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view input, char sep);

/// Split on a character, dropping empty fields.
std::vector<std::string_view> split_nonempty(std::string_view input, char sep);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view input);

/// ASCII lowercase copy.
std::string to_lower(std::string_view input);

/// Case-insensitive ASCII equality (used for HTTP header names, DNS names).
bool iequals(std::string_view a, std::string_view b);

/// True when `haystack` contains `needle` (case-sensitive).
bool contains(std::string_view haystack, std::string_view needle);

/// True when `haystack` contains `needle`, ignoring ASCII case.
bool icontains(std::string_view haystack, std::string_view needle);

/// Hex-encode bytes (lowercase).
std::string hex_encode(std::string_view bytes);

/// Format a double with fixed precision, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double value, int precision);

/// Format with thousands separators: 1234567 -> "1,234,567".
std::string format_count(std::uint64_t value);

/// Format a ratio as a percentage string, e.g. "4.8%".
std::string format_percent(double ratio, int precision = 1);

}  // namespace tft::util
