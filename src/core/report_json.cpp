#include "tft/core/report_json.hpp"

#include <cstdio>
#include <map>
#include <vector>

#include "tft/obs/build_info.hpp"
#include "tft/util/json.hpp"

namespace tft::core {

using util::JsonWriter;

namespace {

/// Evidence chains: each violation category maps to the flight-recorder
/// transaction ids backing it, rendered in the trace codec's hex convention
/// so report entries can be joined against `--trace-out` NDJSON directly.
void write_evidence(
    JsonWriter& json,
    const std::map<std::string, std::vector<std::uint64_t>>& evidence) {
  json.begin_object("evidence");
  for (const auto& [category, txns] : evidence) {
    json.begin_array(category);
    for (const std::uint64_t txn : txns) {
      char hex[20];
      std::snprintf(hex, sizeof(hex), "0x%016llx",
                    static_cast<unsigned long long>(txn));
      json.value(hex);
    }
    json.end_array();
  }
  json.end_object();
}

void write_dns(JsonWriter& json, const DnsReport& report) {
  json.field("total_nodes", report.total_nodes)
      .field("filtered_nodes", report.filtered_nodes)
      .field("hijacked_nodes", report.hijacked_nodes)
      .field("hijack_ratio", report.hijack_ratio())
      .field("unique_dns_servers", report.unique_dns_servers)
      .field("unique_ases", report.unique_ases)
      .field("unique_countries", report.unique_countries)
      .field("attributed_isp", report.attributed_isp)
      .field("attributed_public", report.attributed_public)
      .field("attributed_other", report.attributed_other);

  json.begin_array("top_countries");
  for (const auto& row : report.top_countries) {
    json.begin_object()
        .field("country", row.country)
        .field("hijacked", row.hijacked)
        .field("total", row.total)
        .field("ratio", row.ratio())
        .end_object();
  }
  json.end_array();

  json.begin_array("isp_hijackers");
  for (const auto& row : report.isp_hijackers) {
    json.begin_object()
        .field("isp", row.isp)
        .field("country", row.country)
        .field("dns_servers", row.dns_servers)
        .field("nodes", row.nodes)
        .end_object();
  }
  json.end_array();

  json.begin_array("public_hijackers");
  for (const auto& row : report.public_hijackers) {
    json.begin_object()
        .field("operator", row.operator_name)
        .field("servers", row.servers)
        .field("nodes", row.nodes)
        .end_object();
  }
  json.end_array();

  json.begin_array("google_urls");
  for (const auto& row : report.google_urls) {
    json.begin_object()
        .field("host", row.host)
        .field("nodes", row.nodes)
        .field("ases", row.ases)
        .field("countries", row.countries)
        .field("likely_host_software", row.likely_host_software)
        .end_object();
  }
  json.end_array();

  write_evidence(json, report.evidence);
}

void write_http(JsonWriter& json, const HttpReport& report) {
  json.field("total_nodes", report.total_nodes)
      .field("unique_ases", report.unique_ases)
      .field("unique_countries", report.unique_countries)
      .field("html_modified", report.html_modified)
      .field("html_blockpages", report.html_blockpages)
      .field("image_modified", report.image_modified)
      .field("js_modified", report.js_modified)
      .field("css_modified", report.css_modified);

  json.begin_array("injections");
  for (const auto& row : report.injections) {
    json.begin_object()
        .field("signature", row.signature)
        .field("nodes", row.nodes)
        .field("countries", row.countries)
        .field("ases", row.ases)
        .end_object();
  }
  json.end_array();

  json.begin_array("transcoders");
  for (const auto& row : report.transcoders) {
    json.begin_object()
        .field("asn", static_cast<std::uint64_t>(row.asn))
        .field("isp", row.isp)
        .field("country", row.country)
        .field("modified", row.modified)
        .field("total", row.total)
        .field("ratio", row.ratio())
        .field("mobile", row.mobile_isp);
    json.begin_array("compression_ratios");
    for (const double ratio : row.ratios) json.value(ratio);
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.begin_array("fully_modified_ases");
  for (const auto& [asn, isp] : report.fully_modified_ases) {
    json.begin_object()
        .field("asn", static_cast<std::uint64_t>(asn))
        .field("isp", isp)
        .end_object();
  }
  json.end_array();

  write_evidence(json, report.evidence);
}

void write_https(JsonWriter& json, const HttpsReport& report) {
  json.field("total_nodes", report.total_nodes)
      .field("unique_ases", report.unique_ases)
      .field("unique_countries", report.unique_countries)
      .field("replaced_nodes", report.replaced_nodes)
      .field("replaced_ratio", report.replaced_ratio())
      .field("selective_nodes", report.selective_nodes)
      .field("unique_issuers", report.unique_issuers)
      .field("concentrated_as_fraction", report.concentrated_as_fraction);

  json.begin_array("issuers");
  for (const auto& row : report.issuers) {
    json.begin_object()
        .field("issuer_cn", row.issuer_cn)
        .field("nodes", row.nodes)
        .field("type", row.type)
        .field("key_reuse_nodes", row.key_reuse_nodes)
        .field("masks_invalid_nodes", row.masks_invalid_nodes)
        .end_object();
  }
  json.end_array();

  write_evidence(json, report.evidence);
}

void write_monitor(JsonWriter& json, const MonitorReport& report) {
  json.field("total_nodes", report.total_nodes)
      .field("monitored_nodes", report.monitored_nodes)
      .field("monitored_ratio", report.monitored_ratio())
      .field("unique_ases", report.unique_ases)
      .field("unique_countries", report.unique_countries)
      .field("unique_requester_ips", report.unique_requester_ips)
      .field("requester_groups", report.requester_groups)
      .field("top_share", report.top_share);

  json.begin_array("entities");
  for (const auto& row : report.top_entities) {
    json.begin_object()
        .field("entity", row.entity)
        .field("source_ips", row.source_ips)
        .field("nodes", row.nodes)
        .field("ases", row.ases)
        .field("countries", row.countries);
    if (!row.delay_cdf.empty()) {
      json.field("delay_p50_s", row.delay_cdf.median())
          .field("delay_p90_s", row.delay_cdf.percentile(90))
          .field("delay_min_s", row.delay_cdf.min())
          .field("delay_max_s", row.delay_cdf.max());
      json.begin_array("delay_cdf");  // Figure 5 series
      for (const auto& [x, y] : row.delay_cdf.log_spaced_curve(0.1, 12500, 40)) {
        json.begin_object().field("delay_s", x).field("fraction", y).end_object();
      }
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();

  write_evidence(json, report.evidence);
}

void write_smtp(JsonWriter& json, const SmtpReport& report) {
  json.field("total_nodes", report.total_nodes)
      .field("unique_ases", report.unique_ases)
      .field("unique_countries", report.unique_countries)
      .field("blocked", report.blocked)
      .field("starttls_stripped", report.stripped)
      .field("starttls_downgraded", report.downgraded)
      .field("banner_rewritten", report.banner_rewritten)
      .field("body_tampered", report.body_tampered)
      .field("message_lost", report.message_lost);
  json.begin_array("top_ases");
  for (const auto& row : report.top_ases) {
    json.begin_object()
        .field("asn", static_cast<std::uint64_t>(row.asn))
        .field("isp", row.isp)
        .field("country", row.country)
        .field("affected", row.affected)
        .field("total", row.total)
        .field("violation", row.violation)
        .end_object();
  }
  json.end_array();

  write_evidence(json, report.evidence);
}

template <typename WriteBody, typename Report>
std::string wrap(std::string_view experiment, const Report& report,
                 WriteBody write_body) {
  JsonWriter json;
  json.begin_object();
  obs::write_build_info(json);
  json.field("experiment", experiment);
  write_body(json, report);
  json.end_object();
  return std::move(json).take();
}

}  // namespace

std::string dns_report_json(const DnsReport& report) {
  return wrap("dns_nxdomain_hijacking", report,
              [](JsonWriter& json, const DnsReport& r) { write_dns(json, r); });
}

std::string http_report_json(const HttpReport& report) {
  return wrap("http_content_modification", report,
              [](JsonWriter& json, const HttpReport& r) { write_http(json, r); });
}

std::string https_report_json(const HttpsReport& report) {
  return wrap("tls_certificate_replacement", report,
              [](JsonWriter& json, const HttpsReport& r) { write_https(json, r); });
}

std::string monitor_report_json(const MonitorReport& report) {
  return wrap("content_monitoring", report,
              [](JsonWriter& json, const MonitorReport& r) { write_monitor(json, r); });
}

std::string smtp_report_json(const SmtpReport& report) {
  return wrap("smtp_violations", report,
              [](JsonWriter& json, const SmtpReport& r) { write_smtp(json, r); });
}

std::string study_result_json(const StudyResult& result) {
  JsonWriter json;
  write_study_result(json, result);
  return std::move(json).take();
}

void write_study_result(JsonWriter& json, const StudyResult& result) {
  json.begin_object();
  obs::write_build_info(json);
  json.begin_array("coverage");
  for (const auto& row : result.coverage) {
    json.begin_object()
        .field("experiment", row.name)
        .field("exit_nodes", row.exit_nodes)
        .field("ases", row.ases)
        .field("countries", row.countries)
        .field("sessions", row.sessions)
        .end_object();
  }
  json.end_array();
  json.begin_object("dns");
  write_dns(json, result.dns);
  json.end_object();
  json.begin_object("http");
  write_http(json, result.http);
  json.end_object();
  json.begin_object("https");
  write_https(json, result.https);
  json.end_object();
  json.begin_object("monitoring");
  write_monitor(json, result.monitoring);
  json.end_object();
  json.end_object();
  json.flush();
}

}  // namespace tft::core
