#include "tft/smtp/session.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace tft::smtp {
namespace {

const net::Ipv4Address kClient(203, 0, 113, 9);

class SmtpSessionTest : public ::testing::Test {
 protected:
  SmtpSessionTest()
      : server_(SmtpServer::Config{"mail.tft-study.net", "TFT-SMTPD 1.0", true, true}) {}

  Transcript run(const SmtpInterceptorList& interceptors, ClientScript script = {}) {
    return run_session(server_, interceptors, script, kClient, sim::Instant::epoch());
  }

  SmtpServer server_;
};

TEST_F(SmtpSessionTest, CleanSessionDeliversWithTls) {
  const Transcript transcript = run({});
  EXPECT_TRUE(transcript.connected);
  EXPECT_EQ(transcript.banner, "mail.tft-study.net ESMTP TFT-SMTPD 1.0");
  EXPECT_TRUE(transcript.starttls_offered);
  EXPECT_TRUE(transcript.starttls_accepted);
  EXPECT_TRUE(transcript.message_accepted);
  EXPECT_TRUE(transcript.errors.empty());
  ASSERT_EQ(server_.received().size(), 1u);
  EXPECT_TRUE(server_.received().front().over_tls);
  EXPECT_EQ(server_.received().front().body,
            "Subject: tft-probe\n\nreference body\n");
}

TEST_F(SmtpSessionTest, ClientMayDeclineStarttls) {
  ClientScript script;
  script.attempt_starttls = false;
  const Transcript transcript = run({}, script);
  EXPECT_TRUE(transcript.starttls_offered);
  EXPECT_FALSE(transcript.starttls_accepted);
  ASSERT_EQ(server_.received().size(), 1u);
  EXPECT_FALSE(server_.received().front().over_tls);
}

TEST_F(SmtpSessionTest, PortBlockerStopsEverything) {
  const Transcript transcript =
      run({std::make_shared<PortBlocker>("residential-block")});
  EXPECT_FALSE(transcript.connected);
  EXPECT_FALSE(transcript.message_accepted);
  EXPECT_TRUE(server_.received().empty());
}

TEST_F(SmtpSessionTest, StarttlsStripperDowngradesToCleartext) {
  const Transcript transcript =
      run({std::make_shared<StarttlsStripper>("fixup-box")});
  EXPECT_TRUE(transcript.connected);
  // The capability was blanked to XXXXXXXX, so the client never saw it...
  EXPECT_FALSE(transcript.starttls_offered);
  EXPECT_FALSE(transcript.starttls_accepted);
  // ...and the message still went through — in cleartext.
  EXPECT_TRUE(transcript.message_accepted);
  ASSERT_EQ(server_.received().size(), 1u);
  EXPECT_FALSE(server_.received().front().over_tls);
  // The blanked token is present in the EHLO reply the client saw.
  bool blanked = false;
  for (const auto& line : transcript.ehlo_reply.lines) {
    blanked = blanked || line == "XXXXXXXX";
  }
  EXPECT_TRUE(blanked);
}

TEST_F(SmtpSessionTest, BannerRewriterHidesSoftware) {
  const Transcript transcript = run(
      {std::make_shared<BannerRewriter>("gateway", "mail-gateway ESMTP ready")});
  EXPECT_EQ(transcript.banner, "mail-gateway ESMTP ready");
  EXPECT_TRUE(transcript.message_accepted);  // otherwise transparent
}

TEST_F(SmtpSessionTest, BodyTaggerAppendsFooter) {
  const Transcript transcript =
      run({std::make_shared<BodyTagger>("av-scan", "-- scanned by av-scan")});
  EXPECT_TRUE(transcript.message_accepted);
  ASSERT_EQ(server_.received().size(), 1u);
  EXPECT_EQ(server_.received().front().body,
            "Subject: tft-probe\n\nreference body\n-- scanned by av-scan\n");
}

TEST_F(SmtpSessionTest, StackedInterceptorsCompose) {
  const Transcript transcript =
      run({std::make_shared<StarttlsStripper>("fixup-box"),
           std::make_shared<BodyTagger>("av-scan", "-- scanned")});
  EXPECT_FALSE(transcript.starttls_offered);
  ASSERT_EQ(server_.received().size(), 1u);
  EXPECT_FALSE(server_.received().front().over_tls);
  EXPECT_NE(server_.received().front().body.find("-- scanned"), std::string::npos);
}

}  // namespace
}  // namespace tft::smtp
