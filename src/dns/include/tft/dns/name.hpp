// DNS domain names: validated label sequences with case-insensitive
// comparison semantics (RFC 1035 §2.3.3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"

namespace tft::dns {

/// A fully-qualified DNS name (the trailing root label is implicit).
/// Invariants: each label is 1..63 bytes, total presentation length <= 253.
class DnsName {
 public:
  DnsName() = default;  // the root name (zero labels)

  /// Parse presentation format ("www.example.com", trailing dot optional).
  static util::Result<DnsName> parse(std::string_view text);

  /// Construct from raw labels (validated).
  static util::Result<DnsName> from_labels(std::vector<std::string> labels);

  const std::vector<std::string>& labels() const noexcept { return labels_; }
  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }

  /// Presentation format without trailing dot ("" for the root).
  std::string to_string() const;

  /// Case-insensitive equality per DNS semantics.
  bool equals(const DnsName& other) const;

  /// True when this name is `ancestor` or inside its subtree.
  /// e.g. "a.b.example.com" is within "example.com".
  bool is_within(const DnsName& ancestor) const;

  /// New name with `label` prepended ("www" + "example.com").
  util::Result<DnsName> prepend(std::string_view label) const;

  /// Parent name (drops the leftmost label); root's parent is root.
  DnsName parent() const;

  bool operator==(const DnsName& other) const { return equals(other); }

  /// Canonical (lowercased) key for use in hash maps.
  std::string canonical() const;

 private:
  std::vector<std::string> labels_;
};

}  // namespace tft::dns
