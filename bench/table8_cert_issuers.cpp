// Regenerates Table 8: issuers of replaced TLS certificates, plus the §6.2
// headline numbers (replacement rate, key reuse, invalid-masking).
#include <map>

#include "common.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);

  tft::core::CertReplacementProbe probe(*world, config.https);
  probe.run();
  const auto report =
      tft::core::analyze_https(*world, probe.observations(), config.https_analysis);

  std::cout << tft::core::render_https_report(report) << "\n";
  std::cout << "Paper Table 8 reference (nodes):\n"
               "  Avast 3,283   AVG 247   BitDefender 241   Eset 217   Kaspersky 68\n"
               "  OpenDNS 64    Cyberoam 35   Sample CA 2 29   Fortigate 17\n"
               "  Empty 14      Cloudguard.me 14   Dr. Web 13   McAfee 6\n";
  return 0;
}
