#include "tft/http/headers.hpp"

#include <algorithm>

#include "tft/util/strings.hpp"

namespace tft::http {

void HeaderMap::add(std::string_view name, std::string_view value) {
  entries_.push_back(Entry{std::string(name), std::string(value)});
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

std::size_t HeaderMap::remove(std::string_view name) {
  const auto before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& entry) {
                                  return util::iequals(entry.name, name);
                                }),
                 entries_.end());
  return before - entries_.size();
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (util::iequals(entry.name, name)) return std::string_view(entry.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& entry : entries_) {
    if (util::iequals(entry.name, name)) out.emplace_back(entry.value);
  }
  return out;
}

}  // namespace tft::http
