// A move-only std::function replacement. std::function requires its target
// to be copy-constructible and may copy it when the wrapper is copied or
// (depending on container churn) relocated; UniqueFunction owns its target
// uniquely, so wrapped callables — including ones capturing move-only state
// such as std::unique_ptr — are moved, never copied.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace tft::util {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& fn)  // NOLINT(google-explicit-constructor)
      : target_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const noexcept { return target_ != nullptr; }

  R operator()(Args... args) const {
    return target_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args... args) = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F fn) : fn(std::move(fn)) {}
    R invoke(Args... args) override { return fn(std::forward<Args>(args)...); }
    F fn;
  };

  std::unique_ptr<Concept> target_;
};

}  // namespace tft::util
