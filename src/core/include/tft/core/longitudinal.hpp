// Continuous measurement (§9): "this opens the door to continuous
// measurements worldwide, with the ability to see how various types of
// violations evolve over time." A LongitudinalDnsStudy re-runs the §4
// methodology at fixed simulated intervals and tracks how the hijacking
// rate and the per-ISP attribution evolve — e.g. an ISP rolling out or
// retiring a "search assist" box between rounds.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tft/core/dns_probe.hpp"

namespace tft::core {

struct LongitudinalConfig {
  int rounds = 6;
  sim::Duration interval = sim::Duration::hours(24 * 30);  // ~monthly
  DnsProbeConfig probe;       // per-round crawl settings (seed is advanced)
  DnsAnalysisConfig analysis;
};

struct LongitudinalRound {
  int round = 0;
  sim::Instant time;
  std::size_t measured = 0;
  std::size_t hijacked = 0;
  double ratio = 0;
  /// Table 4 snapshot for this round (per-ISP hijacking).
  std::vector<DnsIspRow> isp_hijackers;

  bool isp_listed(std::string_view isp) const {
    for (const auto& row : isp_hijackers) {
      if (row.isp == isp) return true;
    }
    return false;
  }
};

class LongitudinalDnsStudy {
 public:
  LongitudinalDnsStudy(world::World& world, LongitudinalConfig config)
      : world_(world), config_(std::move(config)) {}

  /// Hook invoked between rounds (after advancing the clock, before the
  /// next crawl) — the place to mutate the world (deploy/retire hijacking).
  using BetweenRounds = std::function<void(int next_round, world::World& world)>;
  void set_between_rounds(BetweenRounds hook) { between_rounds_ = std::move(hook); }

  std::vector<LongitudinalRound> run();

 private:
  world::World& world_;
  LongitudinalConfig config_;
  BetweenRounds between_rounds_;
};

/// Render the time series: per-round rates and an ISP presence matrix.
std::string render_longitudinal(const std::vector<LongitudinalRound>& rounds);

}  // namespace tft::core
