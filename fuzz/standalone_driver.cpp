// Standalone replacement for libFuzzer's driver, used when the compiler
// does not provide -fsanitize=fuzzer (e.g. GCC). Replays every corpus file
// or directory named on the command line through LLVMFuzzerTestOneInput,
// mirroring `./fuzz_target corpus_dir` libFuzzer usage, so the same binary
// name and invocation work in CI regardless of toolchain. Flags
// (arguments starting with '-') are accepted and ignored for libFuzzer
// command-line compatibility.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "fuzz driver: cannot read " << path << "\n";
    return -1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string contents = buffer.str();
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(contents.data()), contents.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string argument = argv[i];
    if (!argument.empty() && argument[0] == '-') continue;  // libFuzzer flags
    std::error_code ec;
    if (std::filesystem::is_directory(argument, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(argument)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(argument);
    }
  }
  if (inputs.empty()) {
    std::cerr << "fuzz driver: no corpus files given; usage: " << argv[0]
              << " <corpus-dir-or-files...>\n";
    return 0;
  }
  std::sort(inputs.begin(), inputs.end());
  std::size_t processed = 0;
  for (const auto& path : inputs) {
    if (run_file(path) == 0) ++processed;
  }
  std::cout << "fuzz driver: " << processed << "/" << inputs.size()
            << " corpus inputs processed cleanly\n";
  return processed == inputs.size() ? 0 : 1;
}
