#include "tft/net/server/framing.hpp"

#include <gtest/gtest.h>

#include "tft/proxy/luminati.hpp"
#include "tft/testing/generators.hpp"
#include "tft/util/rng.hpp"

namespace tft::net::server {
namespace {

TEST(CredentialsTest, DefaultOptionsRoundtrip) {
  const proxy::RequestOptions options;
  const auto text = format_credentials(options);
  EXPECT_EQ(text, "customer-tft-zone-static");
  const auto parsed = parse_credentials(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->country.has_value());
  EXPECT_FALSE(parsed->session.has_value());
  EXPECT_FALSE(parsed->dns_remote);
}

TEST(CredentialsTest, FullOptionsRoundtrip) {
  proxy::RequestOptions options;
  options.country = "DE";
  options.dns_remote = true;
  options.session = "probe-7";
  const auto parsed = parse_credentials(format_credentials(options));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->country, "DE");
  EXPECT_TRUE(parsed->dns_remote);
  EXPECT_EQ(parsed->session, "probe-7");
}

// Session ids contain dashes ("dns-42"); the session field is last on the
// wire precisely so those dashes survive.
TEST(CredentialsTest, SessionWithDashesSurvives) {
  proxy::RequestOptions options;
  options.session = "dns-42-country-XX";
  const auto parsed = parse_credentials(format_credentials(options));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->session, "dns-42-country-XX");
  EXPECT_FALSE(parsed->country.has_value());
}

TEST(CredentialsTest, RejectsGarbage) {
  EXPECT_FALSE(parse_credentials("lum-customer-other").ok());
  EXPECT_FALSE(parse_credentials("customer-tft-zone-static-country-").ok());
  EXPECT_FALSE(parse_credentials("customer-tft-zone-static-bogus").ok());
}

TEST(ProxyRequestTest, BuildAndParseGet) {
  const auto url = *http::Url::parse("http://d1.probe.tft-study.net/page");
  proxy::RequestOptions options;
  options.session = "dns-3";
  const auto wire = build_proxy_get(url, options);
  const auto head = parse_proxy_request(wire);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->kind, ProxyRequestHead::Kind::kGet);
  EXPECT_EQ(head->url.to_string(), "http://d1.probe.tft-study.net/page");
  EXPECT_EQ(head->options.session, "dns-3");
  EXPECT_FALSE(head->close);
}

TEST(ProxyRequestTest, BuildAndParseConnect) {
  const auto destination = *Ipv4Address::parse("203.0.113.9");
  const auto wire = build_connect(destination, 443, {});
  const auto head = parse_proxy_request(wire);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->kind, ProxyRequestHead::Kind::kConnect);
  EXPECT_EQ(head->connect_address.to_string(), "203.0.113.9");
  EXPECT_EQ(head->connect_port, 443);
}

TEST(ProxyRequestTest, ConnectionCloseIsHonored) {
  const auto head = parse_proxy_request(
      "GET http://example.com/ HTTP/1.1\r\nHost: example.com\r\n"
      "Connection: close\r\n\r\n");
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(head->close);
}

TEST(ProxyRequestTest, RejectsOriginFormGet) {
  EXPECT_FALSE(
      parse_proxy_request("GET /page HTTP/1.1\r\nHost: h\r\n\r\n").ok());
}

TEST(ProxyRequestTest, RejectsHostnameConnect) {
  EXPECT_FALSE(
      parse_proxy_request("CONNECT example.com:443 HTTP/1.1\r\n\r\n").ok());
}

TEST(ProxyRequestTest, RejectsBadConnectPort) {
  EXPECT_FALSE(
      parse_proxy_request("CONNECT 203.0.113.9:0 HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(
      parse_proxy_request("CONNECT 203.0.113.9:99999 HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(
      parse_proxy_request("CONNECT 203.0.113.9 HTTP/1.1\r\n\r\n").ok());
}

TEST(ProxyRequestTest, RejectsOtherMethods) {
  EXPECT_FALSE(
      parse_proxy_request("POST http://example.com/ HTTP/1.1\r\n\r\n").ok());
}

TEST(ProxyRequestTest, RejectsBadAuthScheme) {
  EXPECT_FALSE(parse_proxy_request(
                   "GET http://example.com/ HTTP/1.1\r\nHost: example.com\r\n"
                   "Proxy-Authorization: Basic dXNlcg==\r\n\r\n")
                   .ok());
}

TEST(AttemptsCodecTest, Roundtrip) {
  std::vector<proxy::AttemptInfo> attempts;
  attempts.push_back({"zid-a", "connect_timeout"});
  attempts.push_back({"zid-b", ""});
  const auto text = encode_attempts(attempts);
  EXPECT_EQ(text, "zid-a:connect_timeout,zid-b:ok");
  const auto decoded = decode_attempts(text);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].zid, "zid-a");
  EXPECT_EQ((*decoded)[0].error, "connect_timeout");
  EXPECT_EQ((*decoded)[1].zid, "zid-b");
  EXPECT_TRUE((*decoded)[1].error.empty());
}

TEST(AttemptsCodecTest, EmptyRoundtrip) {
  const auto decoded = decode_attempts("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(AttemptsCodecTest, RejectsMalformedEntries) {
  EXPECT_FALSE(decode_attempts("no-colon-here").ok());
  EXPECT_FALSE(decode_attempts(":ok").ok());
  EXPECT_FALSE(decode_attempts("zid:").ok());
}

TEST(TunnelFrameTest, HelloRoundtrip) {
  const TunnelHello hello{"site.example.com"};
  const auto decoded = decode_tunnel_hello(encode_tunnel_hello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sni, "site.example.com");
}

TEST(TunnelFrameTest, HelloRejectsBadMagicAndTrailingBytes) {
  EXPECT_FALSE(decode_tunnel_hello("XXXX\x00\x03sni").ok());
  auto wire = encode_tunnel_hello(TunnelHello{"sni"});
  wire += "extra";
  EXPECT_FALSE(decode_tunnel_hello(wire).ok());
}

TEST(TunnelFrameTest, ReplyRoundtripWithChain) {
  util::Rng rng(7);
  TunnelReply reply;
  reply.status = proxy::ProxyStatus::kOk;
  reply.zid = "zid-tunnel";
  reply.exit_address = *Ipv4Address::parse("198.51.100.7");
  reply.exit_country = "SE";
  reply.chain = tft::testing::random_tls_chain(rng);
  const auto decoded = decode_tunnel_reply(encode_tunnel_reply(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status, reply.status);
  EXPECT_EQ(decoded->zid, reply.zid);
  EXPECT_EQ(decoded->exit_address.value(), reply.exit_address.value());
  EXPECT_EQ(decoded->exit_country, reply.exit_country);
  EXPECT_EQ(decoded->chain, reply.chain);
}

TEST(TunnelFrameTest, ReplyRoundtripsEveryStatus) {
  for (const auto status :
       {proxy::ProxyStatus::kOk, proxy::ProxyStatus::kSuperProxyDnsFailure,
        proxy::ProxyStatus::kExitNodeDnsNxdomain,
        proxy::ProxyStatus::kExitNodeDnsFailure,
        proxy::ProxyStatus::kNoExitNodeAvailable,
        proxy::ProxyStatus::kAllAttemptsFailed,
        proxy::ProxyStatus::kTunnelFailed, proxy::ProxyStatus::kPortNotAllowed}) {
    TunnelReply reply;
    reply.status = status;
    const auto decoded = decode_tunnel_reply(encode_tunnel_reply(reply));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status, status);
  }
}

TEST(ProxyStatusTest, ParseInvertsToString) {
  EXPECT_EQ(*proxy::parse_proxy_status("ok"), proxy::ProxyStatus::kOk);
  EXPECT_EQ(*proxy::parse_proxy_status(
                proxy::to_string(proxy::ProxyStatus::kPortNotAllowed)),
            proxy::ProxyStatus::kPortNotAllowed);
  EXPECT_FALSE(proxy::parse_proxy_status("nonsense").ok());
}

TEST(FrameReaderTest, SplitFeedsReassemble) {
  const auto wire = frame("payload-a") + frame("payload-b");
  FrameReader reader;
  for (const char byte : wire) {
    ASSERT_TRUE(reader.feed(std::string_view(&byte, 1)).ok());
  }
  EXPECT_EQ(*reader.next_frame(), "payload-a");
  EXPECT_EQ(*reader.next_frame(), "payload-b");
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_EQ(reader.partial_bytes(), 0u);
}

TEST(FrameReaderTest, RejectsEmptyFrame) {
  FrameReader reader;
  EXPECT_FALSE(reader.feed(std::string("\x00\x00\x00\x00", 4)).ok());
}

TEST(FrameReaderTest, RejectsOversizeFrame) {
  FrameReader reader(16);
  EXPECT_FALSE(reader.feed(frame(std::string(64, 'x'))).ok());
}

}  // namespace
}  // namespace tft::net::server
