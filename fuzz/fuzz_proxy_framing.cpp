// libFuzzer entry point for the proxy_framing target (see src/testing/fuzz.cpp
// for the parsers this exercises). Build with -DTFT_FUZZ=ON.
#include <cstddef>
#include <cstdint>

#include "tft/testing/fuzz.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return tft::testing::fuzz_one("proxy_framing", data, size);
}
