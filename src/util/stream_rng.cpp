#include "tft/util/stream_rng.hpp"

#include <cstdio>

#include "tft/util/hash.hpp"
#include "tft/util/json.hpp"
#include "tft/util/json_parse.hpp"

namespace tft::util {

std::uint64_t purpose_tag(std::string_view purpose) noexcept {
  return fnv1a64(purpose);
}

std::uint64_t StreamKey::mixed() const noexcept {
  std::uint64_t state = study_seed;
  std::uint64_t folded = splitmix64(state);
  state = folded ^ entity;
  folded = splitmix64(state);
  state = folded ^ purpose;
  return splitmix64(state);
}

std::uint64_t stream_seed(std::uint64_t study_seed, std::uint64_t entity,
                          std::string_view purpose) noexcept {
  return StreamKey{study_seed, entity, purpose_tag(purpose)}.mixed();
}

namespace {

constexpr std::string_view kFormatTag = "tft-stream-checkpoint";
constexpr std::int64_t kVersion = 1;

std::string hex_u64(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

Result<std::uint64_t> parse_hex_u64(const JsonValue& value,
                                    std::string_view field) {
  const auto fail = [&](const std::string& what) {
    return make_error(ErrorCode::kParseError,
                      "checkpoint field '" + std::string(field) + "': " + what);
  };
  if (!value.is_string()) return fail("expected a \"0x…\" hex string");
  const std::string& text = value.as_string();
  if (text.size() < 3 || text.size() > 18 || text[0] != '0' || text[1] != 'x') {
    return fail("malformed hex literal '" + text + "'");
  }
  std::uint64_t out = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return fail("malformed hex literal '" + text + "'");
    }
    out = (out << 4) | digit;
  }
  return out;
}

}  // namespace

std::string stream_checkpoint_json(const StreamCheckpoint& checkpoint) {
  JsonWriter writer;
  writer.begin_object();
  writer.field("format", kFormatTag);
  writer.field("version", kVersion);
  writer.field("next_round", hex_u64(checkpoint.next_round));
  writer.begin_array("streams");
  for (const auto& stream : checkpoint.streams) {
    writer.begin_object();
    writer.field("label", stream.label);
    writer.field("study_seed", hex_u64(stream.key.study_seed));
    writer.field("entity", hex_u64(stream.key.entity));
    writer.field("purpose", hex_u64(stream.key.purpose));
    writer.field("counter", hex_u64(stream.counter));
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return std::move(writer).take();
}

Result<StreamCheckpoint> parse_stream_checkpoint(std::string_view text) {
  auto parsed = parse_json(text);
  if (!parsed.ok()) return parsed.error();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return make_error(ErrorCode::kParseError,
                      "checkpoint: top-level value must be an object");
  }
  if (root["format"].as_string() != kFormatTag) {
    return make_error(ErrorCode::kParseError,
                      "checkpoint: missing or foreign format tag (want '" +
                          std::string(kFormatTag) + "')");
  }
  if (root["version"].as_int(-1) != kVersion) {
    return make_error(ErrorCode::kParseError,
                      "checkpoint: unsupported version " +
                          std::to_string(root["version"].as_int(-1)));
  }

  StreamCheckpoint checkpoint;
  auto next_round = parse_hex_u64(root["next_round"], "next_round");
  if (!next_round.ok()) return next_round.error();
  checkpoint.next_round = *next_round;

  if (!root["streams"].is_array()) {
    return make_error(ErrorCode::kParseError,
                      "checkpoint: 'streams' must be an array");
  }
  for (const JsonValue& entry : root["streams"].as_array()) {
    if (!entry.is_object()) {
      return make_error(ErrorCode::kParseError,
                        "checkpoint: stream entries must be objects");
    }
    if (!entry["label"].is_string()) {
      return make_error(ErrorCode::kParseError,
                        "checkpoint: stream entry missing string 'label'");
    }
    StreamState state;
    state.label = entry["label"].as_string();
    auto study_seed = parse_hex_u64(entry["study_seed"], "study_seed");
    if (!study_seed.ok()) return study_seed.error();
    auto entity = parse_hex_u64(entry["entity"], "entity");
    if (!entity.ok()) return entity.error();
    auto purpose = parse_hex_u64(entry["purpose"], "purpose");
    if (!purpose.ok()) return purpose.error();
    auto counter = parse_hex_u64(entry["counter"], "counter");
    if (!counter.ok()) return counter.error();
    state.key = StreamKey{*study_seed, *entity, *purpose};
    state.counter = *counter;
    checkpoint.streams.push_back(std::move(state));
  }
  return checkpoint;
}

}  // namespace tft::util
