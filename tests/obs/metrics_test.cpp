#include "tft/obs/metrics.hpp"

#include <gtest/gtest.h>

#include "tft/obs/build_info.hpp"
#include "tft/util/json.hpp"
#include "tft/util/json_parse.hpp"
#include "tft/util/strings.hpp"

namespace tft::obs {
namespace {

TEST(HistogramTest, BucketEdgesAreInclusive) {
  Histogram histogram;
  histogram.upper_bounds = {1, 2, 3, 5};
  // "value <= bound" lands in that bucket: an exact boundary value goes to
  // the bucket it bounds, not the next one.
  EXPECT_EQ(histogram.bucket_index(0), 0u);
  EXPECT_EQ(histogram.bucket_index(1), 0u);
  EXPECT_EQ(histogram.bucket_index(2), 1u);
  EXPECT_EQ(histogram.bucket_index(3), 2u);
  EXPECT_EQ(histogram.bucket_index(4), 3u);
  EXPECT_EQ(histogram.bucket_index(5), 3u);
  // Above the last bound: the overflow bucket.
  EXPECT_EQ(histogram.bucket_index(6), 4u);
  EXPECT_EQ(histogram.bucket_index(1'000'000), 4u);
}

TEST(HistogramTest, ObserveFillsBucketsCountAndSum) {
  Registry registry;
  const std::vector<std::int64_t> bounds = {1, 2, 3, 5};
  for (const std::int64_t value : {1, 1, 2, 5, 9}) {
    registry.observe("attempts", bounds, value);
  }
  const Histogram* histogram = registry.histogram("attempts");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 5u);
  EXPECT_EQ(histogram->sum, 18);
  ASSERT_EQ(histogram->buckets.size(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(histogram->buckets[0], 2u);      // <= 1
  EXPECT_EQ(histogram->buckets[1], 1u);      // <= 2
  EXPECT_EQ(histogram->buckets[2], 0u);      // <= 3
  EXPECT_EQ(histogram->buckets[3], 1u);      // <= 5
  EXPECT_EQ(histogram->buckets[4], 1u);      // overflow
}

// quantile() is nearest-rank over the fixed buckets, reporting the bucket's
// upper bound — the resolution the load harness needs for p50/p95/p99.
TEST(HistogramTest, QuantileIsNearestRankBucketBound) {
  Registry registry;
  const std::vector<std::int64_t> bounds = {10, 100, 1000};
  // 90 observations <= 10, 9 in (10, 100], 1 in (100, 1000].
  for (int i = 0; i < 90; ++i) registry.observe("lat", bounds, 5);
  for (int i = 0; i < 9; ++i) registry.observe("lat", bounds, 50);
  registry.observe("lat", bounds, 500);
  const Histogram* histogram = registry.histogram("lat");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->quantile(0.50), 10);
  EXPECT_EQ(histogram->quantile(0.90), 10);   // rank 90 is the last <=10
  EXPECT_EQ(histogram->quantile(0.95), 100);
  EXPECT_EQ(histogram->quantile(0.99), 100);
  EXPECT_EQ(histogram->quantile(1.0), 1000);
  // Out-of-range q clamps instead of reading past the buckets.
  EXPECT_EQ(histogram->quantile(-1.0), 10);
  EXPECT_EQ(histogram->quantile(7.0), 1000);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.quantile(0.5), 0);
  histogram.upper_bounds = {1, 2};
  histogram.buckets = {0, 0, 0};
  EXPECT_EQ(histogram.quantile(0.5), 0);
}

TEST(HistogramTest, QuantileInOverflowReportsLastFiniteBound) {
  Registry registry;
  const std::vector<std::int64_t> bounds = {10, 100};
  registry.observe("lat", bounds, 5);
  registry.observe("lat", bounds, 1'000'000);  // overflow bucket
  const Histogram* histogram = registry.histogram("lat");
  ASSERT_NE(histogram, nullptr);
  // The overflow bucket has no upper bound; the best honest answer is the
  // last finite bound (the report can't invent a number above it).
  EXPECT_EQ(histogram->quantile(0.99), 100);
}

TEST(RegistryTest, CounterMergeIsOrderIndependent) {
  Registry a;
  a.add("proxy.fetches", 3);
  a.add("dns.observations", 10);
  Registry b;
  b.add("proxy.fetches", 4);
  b.add("http.observations", 7);

  Registry ab;
  ab.merge_from(a);
  ab.merge_from(b);
  Registry ba;
  ba.merge_from(b);
  ba.merge_from(a);

  EXPECT_EQ(ab.counter("proxy.fetches"), 7u);
  EXPECT_EQ(ab.counters(), ba.counters());  // std::map: sorted either way
}

TEST(RegistryTest, HistogramMergeSumsBuckets) {
  const std::vector<std::int64_t> bounds = {1, 2};
  Registry a;
  a.observe("attempts", bounds, 1);
  Registry b;
  b.observe("attempts", bounds, 2);
  b.observe("attempts", bounds, 99);

  Registry merged;
  merged.merge_from(a);
  merged.merge_from(b);
  const Histogram* histogram = merged.histogram("attempts");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 3u);
  EXPECT_EQ(histogram->sum, 102);
  ASSERT_EQ(histogram->buckets.size(), 3u);
  EXPECT_EQ(histogram->buckets[0], 1u);
  EXPECT_EQ(histogram->buckets[1], 1u);
  EXPECT_EQ(histogram->buckets[2], 1u);
}

TEST(RegistryTest, SpanNestingRecordsParents) {
  Registry registry;
  registry.begin_span("study", sim::Instant{0});
  registry.begin_span("dns", sim::Instant{10});
  registry.end_span(sim::Instant{50});
  registry.begin_span("http", sim::Instant{60});
  registry.end_span(sim::Instant{90});
  registry.end_span(sim::Instant{100});

  const auto& spans = registry.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "study");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].sim_begin_us, 0);
  EXPECT_EQ(spans[0].sim_end_us, 100);
  EXPECT_EQ(spans[1].name, "dns");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].sim_end_us, 50);
  EXPECT_EQ(spans[2].name, "http");
  EXPECT_EQ(spans[2].parent, 0);
}

TEST(RegistryTest, MergeRebasesSpanParentsUnderOpenSpan) {
  Registry experiment;
  experiment.begin_span("dns", sim::Instant{0});
  experiment.begin_span("dns.crawl", sim::Instant{1});
  experiment.end_span(sim::Instant{2});
  experiment.end_span(sim::Instant{3});

  Registry merged;
  merged.begin_span("study", sim::Instant{0});
  merged.merge_from(experiment);
  merged.end_span(sim::Instant{3});

  const auto& spans = merged.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "study");
  // The experiment's root is adopted by the open "study" span; its child's
  // parent index is re-based past the existing spans.
  EXPECT_EQ(spans[1].name, "dns");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "dns.crawl");
  EXPECT_EQ(spans[2].parent, 1);
}

TEST(RegistryTest, TimingStaysOutOfDeterministicJson) {
  Registry registry;
  registry.add("proxy.fetches", 2);
  registry.set_timing("pool.busy_micros", 1234);
  registry.begin_span("study", sim::Instant{0});
  registry.end_span(sim::Instant{10});

  util::JsonWriter deterministic;
  deterministic.begin_object();
  registry.write_json(deterministic, /*include_timing=*/false);
  deterministic.end_object();
  const std::string without = std::move(deterministic).take();
  EXPECT_FALSE(util::contains(without, "timing"));
  EXPECT_FALSE(util::contains(without, "wall"));
  EXPECT_TRUE(util::contains(without, "\"proxy.fetches\":2"));

  util::JsonWriter full;
  full.begin_object();
  registry.write_json(full, /*include_timing=*/true);
  full.end_object();
  const std::string with = std::move(full).take();
  EXPECT_TRUE(util::contains(with, "\"timing\":{"));
  EXPECT_TRUE(util::contains(with, "\"pool.busy_micros\":1234"));
  EXPECT_TRUE(util::contains(with, "\"span_wall\":["));
}

TEST(RegistryTest, WrittenJsonParsesBack) {
  Registry registry;
  registry.add("proxy.fetches", 2);
  registry.set_gauge("nodes", 42);
  registry.observe("attempts", {1, 2}, 2);
  registry.begin_span("study", sim::Instant{0});
  registry.end_span(sim::Instant{10});

  util::JsonWriter writer;
  writer.begin_object();
  write_build_info(writer);
  registry.write_json(writer, /*include_timing=*/true);
  writer.end_object();
  const std::string text = std::move(writer).take();

  const auto parsed = util::parse_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto& root = *parsed;
  EXPECT_TRUE(root["build"].is_object());
  EXPECT_FALSE(root["build"]["git_describe"].as_string().empty());
  EXPECT_EQ(root["counters"]["proxy.fetches"].as_int(), 2);
  EXPECT_EQ(root["gauges"]["nodes"].as_int(), 42);
  EXPECT_EQ(root["histograms"]["attempts"]["count"].as_int(), 1);
  ASSERT_EQ(root["spans"].as_array().size(), 1u);
  EXPECT_EQ(root["spans"].as_array()[0]["name"].as_string(), "study");
  EXPECT_EQ(root["spans"].as_array()[0]["sim_end_us"].as_int(), 10);
  EXPECT_TRUE(root["timing"].is_object());
}

TEST(BuildInfoTest, LineMentionsDescribeAndBuildType) {
  const BuildInfo& info = build_info();
  EXPECT_FALSE(info.git_describe.empty());
  const std::string line = build_info_line();
  EXPECT_TRUE(util::contains(line, info.git_describe));
}

}  // namespace
}  // namespace tft::obs
