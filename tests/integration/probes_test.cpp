// Integration tests: run the paper's four measurement methodologies against
// a mini world and check that each detector recovers the configured ground
// truth — a validation the real study could never perform.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tft/core/smtp_probe.hpp"
#include "tft/core/study.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

class ProbesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = world::build_world(world::mini_spec(), 1.0, 555).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static world::World* world_;
};

world::World* ProbesTest::world_ = nullptr;

TEST_F(ProbesTest, A_DnsProbeRecoversGroundTruth) {
  DnsProbeConfig config;
  config.target_nodes = 0;  // crawl to exhaustion
  config.stall_limit = 4000;
  DnsHijackProbe probe(*world_, config);
  const std::size_t measured = probe.run();
  EXPECT_GT(measured, world_->luminati->node_count() * 9 / 10);

  std::size_t false_positives = 0, false_negatives = 0, hijacked = 0;
  for (const auto& observation : probe.observations()) {
    const auto* truth = world_->truth.find(observation.zid);
    ASSERT_NE(truth, nullptr);
    if (observation.filtered_google_overlap) continue;
    const bool expected = truth->dns_hijack != world::DnsHijackSource::kNone;
    if (observation.hijacked) ++hijacked;
    if (observation.hijacked && !expected) ++false_positives;
    if (!observation.hijacked && expected) ++false_negatives;
  }
  EXPECT_EQ(false_positives, 0u);
  // Nodes whose hijack sits at a Google-overlap boundary may be missed, but
  // the overwhelming majority must be recovered.
  EXPECT_LT(false_negatives, hijacked / 10 + 3);
  EXPECT_GT(hijacked, 50u);

  const DnsAnalysisConfig analysis_config = [] {
    DnsAnalysisConfig c;
    c.min_nodes_per_country = 30;
    c.min_nodes_per_server = 5;
    c.min_nodes_per_url = 2;
    c.host_software_as_threshold = 3;
    return c;
  }();
  const DnsReport report = analyze_dns(*world_, probe.observations(), analysis_config);

  // Verizon's resolvers hijack ~all of their 60 users (Table 4 logic).
  bool verizon_found = false;
  for (const auto& row : report.isp_hijackers) {
    if (row.isp == "Verizon") {
      verizon_found = true;
      EXPECT_EQ(row.country, "US");
      EXPECT_GT(row.nodes, 40u);
    }
  }
  EXPECT_TRUE(verizon_found);

  // Comodo's public resolver is classified as public, not ISP.
  bool comodo_found = false;
  for (const auto& row : report.public_hijackers) {
    comodo_found = comodo_found || row.operator_name == "Comodo DNS";
  }
  EXPECT_TRUE(comodo_found);
  for (const auto& row : report.isp_hijackers) {
    EXPECT_NE(row.isp, "Comodo DNS");
  }

  // The GB country row ranks near the top (20 extra + Tiscali etc. of 200).
  ASSERT_FALSE(report.top_countries.empty());
  bool gb_listed = false;
  for (const auto& row : report.top_countries) {
    if (row.country == "GB") {
      gb_listed = true;
      EXPECT_GT(row.ratio(), 0.05);
    }
  }
  EXPECT_TRUE(gb_listed);

  // Table 5: the DT path middlebox and Norton host software both surface
  // for Google-DNS users.
  std::set<std::string> url_hosts;
  for (const auto& row : report.google_urls) url_hosts.insert(row.host);
  EXPECT_TRUE(url_hosts.contains("navigationshilfe.t-online.de"));
  EXPECT_TRUE(url_hosts.contains("nortonsafe.search.ask.com"));
  for (const auto& row : report.google_urls) {
    if (row.host == "nortonsafe.search.ask.com") {
      EXPECT_TRUE(row.likely_host_software);
    }
    if (row.host == "navigationshilfe.t-online.de") {
      EXPECT_FALSE(row.likely_host_software);
    }
  }

  // Attribution is dominated by ISP resolvers, as in §4.4.
  EXPECT_GT(report.attributed_isp, 0.5);
  EXPECT_GT(report.attributed_public, 0.0);
  EXPECT_GT(report.attributed_other, 0.0);
}

TEST_F(ProbesTest, B_HttpProbeRecoversModifications) {
  HttpProbeConfig config;
  // 5 initial samples per AS (paper §5.1 used 3): the small adware
  // populations in the mini world (AdTaily: 24 nodes over 4 ASes) need a
  // slightly denser first pass to trigger the expansion reliably.
  config.nodes_per_as = 5;
  config.expanded_nodes_per_as = 60;
  config.max_nodes = 2000;
  config.stall_limit = 3000;
  HttpModificationProbe probe(*world_, config);
  probe.run();

  std::size_t html_false_positives = 0;
  for (const auto& observation : probe.observations()) {
    const auto* truth = world_->truth.find(observation.zid);
    ASSERT_NE(truth, nullptr);
    if (observation.html_modified && truth->html_injector.empty()) {
      ++html_false_positives;
    }
    if (observation.image_modified) {
      EXPECT_FALSE(truth->image_transcoder.empty()) << observation.zid;
    }
  }
  EXPECT_EQ(html_false_positives, 0u);

  HttpAnalysisConfig analysis_config;
  analysis_config.min_nodes_per_as = 3;
  const HttpReport report = analyze_http(*world_, probe.observations(), analysis_config);

  // The AdTaily signature is recovered verbatim (Table 6).
  bool adtaily = false;
  for (const auto& row : report.injections) {
    adtaily = adtaily || row.signature == "AdTaily_Widget_Container";
  }
  EXPECT_TRUE(adtaily);

  // Rimon's AS shows up as fully modified (ISP-level filter).
  bool rimon = false;
  for (const auto& [asn, isp] : report.fully_modified_ases) {
    rimon = rimon || asn == 42925;
  }
  EXPECT_TRUE(rimon);

  // Both transcoding carriers are found, marked mobile, with sane ratios.
  std::map<net::Asn, const TranscodeRow*> transcoders;
  for (const auto& row : report.transcoders) transcoders[row.asn] = &row;
  ASSERT_TRUE(transcoders.contains(15617));
  EXPECT_TRUE(transcoders[15617]->mobile_isp);
  ASSERT_EQ(transcoders[15617]->ratios.size(), 1u);
  EXPECT_NEAR(transcoders[15617]->ratios[0], 0.53, 0.02);
  ASSERT_TRUE(transcoders.contains(29975));
  EXPECT_EQ(transcoders[29975]->ratios.size(), 2u);  // the "M" case
}

TEST_F(ProbesTest, C_HttpsProbeRecoversCertReplacement) {
  HttpsProbeConfig config;
  config.target_nodes = 2000;
  config.stall_limit = 4000;
  CertReplacementProbe probe(*world_, config);
  probe.run();
  ASSERT_GT(probe.observations().size(), 300u);

  std::size_t false_positives = 0, replaced = 0;
  for (const auto& observation : probe.observations()) {
    const auto* truth = world_->truth.find(observation.zid);
    ASSERT_NE(truth, nullptr);
    if (observation.any_replaced()) {
      ++replaced;
      if (truth->cert_replacer.empty()) ++false_positives;
    }
  }
  EXPECT_EQ(false_positives, 0u);
  EXPECT_GT(replaced, 10u);

  HttpsAnalysisConfig analysis_config;
  analysis_config.min_nodes_per_issuer = 2;
  const HttpsReport report =
      analyze_https(*world_, probe.observations(), analysis_config);

  std::map<std::string, const IssuerRow*> issuers;
  for (const auto& row : report.issuers) issuers[row.issuer_cn] = &row;

  // Avast: fresh key per certificate -> never counted as key reuse.
  ASSERT_TRUE(issuers.contains("Avast! Web/Mail Shield Root"));
  EXPECT_EQ(issuers["Avast! Web/Mail Shield Root"]->key_reuse_nodes, 0u);
  EXPECT_EQ(issuers["Avast! Web/Mail Shield Root"]->type, "Anti-Virus/Security");
  // Kaspersky: shared key and invalid sites masked as valid (§6.2's
  // dangerous behaviour).
  ASSERT_TRUE(issuers.contains("Kaspersky Anti-Virus Personal Root"));
  const auto* kaspersky = issuers["Kaspersky Anti-Virus Personal Root"];
  EXPECT_EQ(kaspersky->key_reuse_nodes, kaspersky->nodes);
  EXPECT_GT(kaspersky->masks_invalid_nodes, 0u);
}

TEST_F(ProbesTest, D_MonitorProbeRecoversMonitoring) {
  MonitorProbeConfig config;
  config.target_nodes = 0;
  config.stall_limit = 4000;
  ContentMonitorProbe probe(*world_, config);
  const std::size_t measured = probe.run();
  EXPECT_GT(measured, world_->luminati->node_count() * 8 / 10);

  std::size_t false_negatives = 0, monitored = 0;
  for (const auto& observation : probe.observations()) {
    const auto* truth = world_->truth.find(observation.zid);
    ASSERT_NE(truth, nullptr);
    if (observation.monitored()) {
      ++monitored;
      EXPECT_FALSE(truth->monitor.empty()) << observation.zid;
    } else if (!truth->monitor.empty()) {
      ++false_negatives;
    }
    if (truth->uses_vpn && observation.monitored()) {
      EXPECT_TRUE(observation.own_request_address_mismatch);
    }
  }
  EXPECT_EQ(false_negatives, 0u);
  EXPECT_GT(monitored, 30u);

  const MonitorReport report =
      analyze_monitoring(*world_, probe.observations(), MonitorAnalysisConfig{});
  std::map<std::string, const MonitorEntityRow*> entities;
  for (const auto& row : report.top_entities) entities[row.entity] = &row;

  ASSERT_TRUE(entities.contains("Trend Micro"));
  const auto* trend = entities["Trend Micro"];
  // TrendMicro makes two re-fetches per node with the two-band delay model.
  EXPECT_NEAR(trend->delay_cdf.at(150.0), 0.5, 0.12);
  EXPECT_GE(trend->delay_cdf.min(), 11.0);
  EXPECT_LE(trend->delay_cdf.max(), 12600.0);

  ASSERT_TRUE(entities.contains("Tiscali U.K."));
  // Tiscali's single re-fetch arrives at exactly 30s.
  EXPECT_DOUBLE_EQ(entities["Tiscali U.K."]->delay_cdf.min(), 30.0);
  EXPECT_DOUBLE_EQ(entities["Tiscali U.K."]->delay_cdf.max(), 30.0);

  ASSERT_TRUE(entities.contains("Bluecoat"));
  // Bluecoat prefetches 83% of the time: negative observed delays.
  EXPECT_GT(entities["Bluecoat"]->delay_cdf.at(0.0), 0.5);
}

TEST_F(ProbesTest, E_SmtpProbeRecoversInterception) {
  // The §3.4 extension runs on the mini world's VPN-style overlay.
  SmtpProbeConfig config;
  config.target_nodes = 0;
  config.stall_limit = 4000;
  SmtpProbe probe(*world_, config);
  const std::size_t measured = probe.run();
  EXPECT_FALSE(probe.overlay_rejected());
  EXPECT_GT(measured, world_->luminati->node_count() * 8 / 10);

  std::size_t blocked_fp = 0, stripped_fp = 0, tampered_fp = 0;
  std::size_t blocked = 0, stripped = 0, tampered = 0, rewritten = 0;
  for (const auto& observation : probe.observations()) {
    const auto* truth = world_->truth.find(observation.zid);
    ASSERT_NE(truth, nullptr);
    if (observation.connection_blocked) {
      ++blocked;
      if (truth->smtp_interceptor_kind != "block_port") ++blocked_fp;
    }
    if (observation.starttls_stripped) {
      ++stripped;
      if (truth->smtp_interceptor_kind != "strip_starttls") ++stripped_fp;
    }
    if (observation.body_tampered) {
      ++tampered;
      if (truth->smtp_interceptor_kind != "tag_body") ++tampered_fp;
    }
    if (observation.banner_rewritten) ++rewritten;
  }
  EXPECT_EQ(blocked_fp, 0u);
  EXPECT_EQ(stripped_fp, 0u);
  EXPECT_EQ(tampered_fp, 0u);
  EXPECT_GT(blocked, 30u);
  EXPECT_GT(stripped, 10u);
  EXPECT_GT(tampered, 2u);
  EXPECT_GT(rewritten, 3u);

  SmtpAnalysisConfig analysis;
  analysis.min_nodes_per_as = 3;
  const SmtpReport report = analyze_smtp(*world_, probe.observations(), analysis);
  EXPECT_EQ(report.blocked, blocked);
  EXPECT_EQ(report.stripped, stripped);
  EXPECT_FALSE(render_smtp_report(report).empty());
}

TEST_F(ProbesTest, F_SmtpProbeRejectedOnLuminatiLikeOverlay) {
  // A world without the arbitrary-port overlay (the real Luminati): the
  // methodology must refuse to run rather than silently measure nothing.
  auto spec = world::mini_spec();
  spec.arbitrary_port_overlay = false;
  auto restricted = world::build_world(spec, 0.5, 77);
  SmtpProbe probe(*restricted, SmtpProbeConfig{});
  EXPECT_EQ(probe.run(), 0u);
  EXPECT_TRUE(probe.overlay_rejected());
}

}  // namespace
}  // namespace tft::core
