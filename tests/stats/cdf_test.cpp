#include "tft/stats/cdf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "tft/util/rng.hpp"

namespace tft::stats {
namespace {

TEST(EmpiricalCdfTest, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 0.0);
}

TEST(EmpiricalCdfTest, EmptyStatisticsAreNaN) {
  // No samples means no defined percentile/min/max/mean — NaN, not UB (the
  // old implementation indexed into an empty vector outside of asserts).
  const EmpiricalCdf cdf;
  EXPECT_TRUE(std::isnan(cdf.percentile(50)));
  EXPECT_TRUE(std::isnan(cdf.median()));
  EXPECT_TRUE(std::isnan(cdf.min()));
  EXPECT_TRUE(std::isnan(cdf.max()));
  EXPECT_TRUE(std::isnan(cdf.mean()));
}

TEST(EmpiricalCdfTest, ConstAccessorsAreThreadSafe) {
  // Regression: the old lazy sort mutated `mutable` members inside const
  // accessors, so two threads sharing a const CDF raced (visible under
  // TSan, occasionally as wrong percentiles). Const reads must now be pure.
  util::Rng rng(11);
  EmpiricalCdf mutable_cdf;
  for (int i = 0; i < 4000; ++i) mutable_cdf.add(rng.log_uniform(1, 10000));
  const EmpiricalCdf& cdf = mutable_cdf;

  const double expected_median = cdf.median();
  const double expected_p90 = cdf.percentile(90);
  const double expected_at = cdf.at(100.0);

  std::vector<std::thread> readers;
  std::vector<int> mismatches(8, 0);
  for (std::size_t t = 0; t < mismatches.size(); ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        if (cdf.median() != expected_median || cdf.percentile(90) != expected_p90 ||
            cdf.at(100.0) != expected_at) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& reader : readers) reader.join();
  for (const int count : mismatches) EXPECT_EQ(count, 0);
}

TEST(EmpiricalCdfTest, AddMaintainsSortedInvariant) {
  util::Rng rng(13);
  EmpiricalCdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(rng.log_uniform(1, 1000));
  const auto& sorted = cdf.sorted_samples();
  ASSERT_EQ(sorted.size(), 500u);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1], sorted[i]);
  }
}

TEST(EmpiricalCdfTest, AtComputesFraction) {
  EmpiricalCdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdfTest, AddKeepsOrderIrrelevant) {
  EmpiricalCdf cdf;
  cdf.add(3);
  cdf.add(1);
  cdf.add(2);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(EmpiricalCdfTest, PercentileInterpolates) {
  EmpiricalCdf cdf({0, 10});
  EXPECT_DOUBLE_EQ(cdf.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(25), 2.5);
}

TEST(EmpiricalCdfTest, SingleSample) {
  EmpiricalCdf cdf({7});
  EXPECT_DOUBLE_EQ(cdf.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(99), 7.0);
}

TEST(EmpiricalCdfTest, LogSpacedCurveMonotone) {
  util::Rng rng(5);
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.log_uniform(12, 12500));
  const auto curve = cdf.log_spaced_curve(1, 20000, 50);
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_NEAR(curve.back().first, 20000.0, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);  // CDF is monotone
    EXPECT_GT(curve[i].first, curve[i - 1].first);    // log-spaced x grows
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, AsciiCurveShape) {
  EmpiricalCdf cdf({100, 100, 100, 100});
  const std::string curve = cdf.ascii_curve(1, 10000, 20);
  EXPECT_EQ(curve.size(), 20u);
  EXPECT_EQ(curve.front(), ' ');   // nothing below 1s
  EXPECT_EQ(curve.back(), '@');    // everything by 10000s
}

TEST(EmpiricalCdfTest, SortedSamplesAccessor) {
  EmpiricalCdf cdf({3, 1, 2});
  const auto& sorted = cdf.sorted_samples();
  EXPECT_EQ(sorted, (std::vector<double>{1, 2, 3}));
}

TEST(EmpiricalCdfTest, TrendMicroStepShape) {
  // Two log-uniform components — the CDF must show the y=0.5 plateau
  // between 120s and 200s that Figure 5 shows for TrendMicro.
  util::Rng rng(9);
  EmpiricalCdf cdf;
  for (int i = 0; i < 2000; ++i) {
    cdf.add(rng.log_uniform(12, 120));
    cdf.add(rng.log_uniform(200, 12500));
  }
  EXPECT_NEAR(cdf.at(120.0), 0.5, 0.02);
  EXPECT_NEAR(cdf.at(199.0), 0.5, 0.02);
  EXPECT_LT(cdf.at(60.0), 0.45);
  EXPECT_GT(cdf.at(1000.0), 0.6);
}

}  // namespace
}  // namespace tft::stats
