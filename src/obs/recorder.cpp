#include "tft/obs/recorder.hpp"

namespace tft::obs {

std::string_view to_string(Hop hop) {
  switch (hop) {
    case Hop::kClient: return "client";
    case Hop::kSuperProxy: return "super-proxy";
    case Hop::kExitNode: return "exit-node";
    case Hop::kResolver: return "resolver";
    case Hop::kMiddlebox: return "middlebox";
    case Hop::kOrigin: return "origin";
  }
  return "client";
}

bool hop_from_string(std::string_view name, Hop& out) {
  for (const Hop hop : {Hop::kClient, Hop::kSuperProxy, Hop::kExitNode,
                        Hop::kResolver, Hop::kMiddlebox, Hop::kOrigin}) {
    if (name == to_string(hop)) {
      out = hop;
      return true;
    }
  }
  return false;
}

void Recorder::set_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  evict_to_capacity();
}

void Recorder::begin(std::uint64_t txn_id, std::string_view kind,
                     std::string_view target) {
  if (open_) end("");
  TxnRecord record;
  record.txn_id = txn_id;
  record.kind = std::string(kind);
  record.target = std::string(target);
  records_.push_back(std::move(record));
  index_[txn_id] = records_.size() - 1;
  open_ = true;
  evict_to_capacity();
}

void Recorder::annotate_node(std::string_view zid) {
  if (!open_ || records_.empty()) return;
  records_.back().zid = std::string(zid);
}

void Recorder::event(Hop hop, std::string_view actor, std::string_view action,
                     std::string_view detail, std::uint64_t sim_us) {
  if (!open_ || records_.empty()) return;
  records_.back().events.push_back(TraceEvent{hop, std::string(actor),
                                              std::string(action),
                                              std::string(detail), sim_us});
}

void Recorder::violation(Hop hop, std::string_view actor, std::string_view action,
                         std::string_view detail, std::uint64_t sim_us) {
  event(hop, actor, action, detail, sim_us);
  if (!open_ || records_.empty()) return;
  TxnRecord& record = records_.back();
  if (record.culprit.empty()) record.culprit = std::string(actor);
}

void Recorder::end(std::string_view verdict) {
  if (!open_ || records_.empty()) {
    open_ = false;
    return;
  }
  TxnRecord& record = records_.back();
  if (record.verdict.empty()) record.verdict = std::string(verdict);
  open_ = false;
}

bool Recorder::amend_verdict(std::uint64_t txn_id, std::string_view verdict,
                             std::string_view culprit) {
  const auto it = index_.find(txn_id);
  if (it == index_.end()) return false;
  TxnRecord& record = records_[it->second];
  record.verdict = std::string(verdict);
  if (!culprit.empty()) record.culprit = std::string(culprit);
  return true;
}

bool Recorder::amend_node(std::uint64_t txn_id, std::string_view zid,
                          std::uint32_t asn, std::string_view country) {
  const auto it = index_.find(txn_id);
  if (it == index_.end()) return false;
  TxnRecord& record = records_[it->second];
  if (!zid.empty()) record.zid = std::string(zid);
  record.asn = asn;
  record.country = std::string(country);
  return true;
}

bool Recorder::amend_event(std::uint64_t txn_id, const TraceEvent& event) {
  const auto it = index_.find(txn_id);
  if (it == index_.end()) return false;
  records_[it->second].events.push_back(event);
  return true;
}

const TxnRecord* Recorder::find(std::uint64_t txn_id) const {
  const auto it = index_.find(txn_id);
  return it == index_.end() ? nullptr : &records_[it->second];
}

void Recorder::merge_from(const Recorder& other) {
  for (const TxnRecord& record : other.records_) {
    records_.push_back(record);
    index_[record.txn_id] = records_.size() - 1;
  }
  dropped_ += other.dropped_;
  evict_to_capacity();
}

void Recorder::clear() {
  records_.clear();
  index_.clear();
  open_ = false;
  dropped_ = 0;
}

void Recorder::evict_to_capacity() {
  if (records_.size() <= capacity_) return;
  const std::size_t evict = records_.size() - capacity_;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(evict));
  dropped_ += evict;
  index_.clear();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_[records_[i].txn_id] = i;
  }
}

}  // namespace tft::obs
