#include "tft/core/smtp_probe.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tft/obs/recorder.hpp"
#include "tft/stats/table.hpp"
#include "tft/util/hash.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"
#include "tft/util/strings.hpp"

namespace tft::core {

SmtpProbe::SmtpProbe(world::World& world, SmtpProbeConfig config)
    : world_(world), config_(config) {}

std::size_t SmtpProbe::run() {
  // One keyed counter step per session (see DnsHijackProbe for rationale).
  util::StreamRng rng(config_.seed, 0, "country");

  std::vector<net::CountryCode> countries;
  std::vector<double> weights;
  for (const auto& [country, count] : world_.luminati->country_counts()) {
    countries.push_back(country);
    weights.push_back(static_cast<double>(count));
  }

  const std::string expected_banner =
      world_.measurement_mail->config().hostname + " ESMTP " +
      world_.measurement_mail->config().software;

  std::unordered_set<std::string> seen_zids;
  // Body token -> observation index, for the server-side comparison.
  std::unordered_map<std::string, std::size_t> by_token;
  std::unordered_map<std::string, std::string> sent_body;

  std::size_t stall = 0;
  std::size_t session_id = 0;

  world_.metrics.begin_span("smtp.crawl", world_.clock.now());
  while ((config_.target_nodes == 0 || observations_.size() < config_.target_nodes) &&
         stall < config_.stall_limit) {
    const std::string token = "m" + std::to_string(session_id);
    proxy::RequestOptions options;
    options.country = countries[rng.weighted_index(weights)];
    // Evidence chain: the id mixes the probe's country stream key (which
    // embeds its seed) with the session counter — stable across --jobs and
    // under probe composition.
    const std::uint64_t txn_id = util::hash_combine(
        util::StreamKey{config_.seed, 0, util::purpose_tag("country")}.mixed(),
        session_id);
    options.session = "smtp-" + std::to_string(session_id++);
    ++sessions_issued_;
    world_.metrics.add("smtp.sessions");
    world_.recorder.begin(txn_id, "smtp", "mail.tft-study.net:25");
    world_.recorder.event(obs::Hop::kClient, "smtp-probe", "send", token,
                          static_cast<std::uint64_t>(world_.clock.now().micros));

    smtp::ClientScript script;
    script.mail_from = "<probe+" + token + "@tft-study.net>";
    script.rcpt_to = "<inbox@mail.tft-study.net>";
    script.body = "Subject: tft-probe " + token + "\n\nreference body " + token + "\n";

    const auto result = world_.luminati->smtp_transaction(
        world_.measurement_mail_address, script, options);
    if (result.status == proxy::ProxyStatus::kPortNotAllowed) {
      // The overlay is Luminati-like: the methodology cannot run at all.
      overlay_rejected_ = true;
      world_.metrics.add("smtp.overlay_rejected");
      world_.recorder.end("discarded");
      world_.metrics.end_span(world_.clock.now());
      return 0;
    }
    if (!result.ok()) {
      world_.metrics.add("smtp.failed_sessions");
      world_.recorder.end("discarded");
      ++stall;
      continue;
    }
    if (!seen_zids.insert(result.zid).second) {
      world_.metrics.add("smtp.duplicate_nodes");
      world_.recorder.end("discarded");
      ++stall;
      continue;
    }
    stall = 0;

    SmtpObservation observation;
    observation.txn_id = txn_id;
    observation.zid = result.zid;
    observation.exit_address = result.exit_address;
    observation.asn = result.exit_asn;
    observation.country = result.exit_country;

    const smtp::Transcript& transcript = result.transcript;
    if (!transcript.connected) {
      observation.connection_blocked = true;
    } else {
      observation.banner_rewritten = transcript.banner != expected_banner;
      // Our server always offers STARTTLS; a client that never saw the
      // capability was downgraded by a middlebox.
      observation.starttls_stripped = !transcript.starttls_offered;
      observation.starttls_downgraded =
          transcript.starttls_offered && !transcript.starttls_accepted;
      if (transcript.message_accepted) {
        by_token.emplace(token, observations_.size());
        sent_body.emplace(token, script.body);
      } else {
        observation.message_lost = true;
      }
    }
    world_.metrics.add("smtp.observations");
    world_.recorder.end(observation.connection_blocked ? "blocked"
                        : observation.starttls_stripped ? "stripped"
                        : observation.starttls_downgraded ? "downgraded"
                        : observation.banner_rewritten ? "banner_rewritten"
                                                        : "clean");
    world_.recorder.amend_node(txn_id, observation.zid, observation.asn,
                               observation.country);
    observations_.push_back(std::move(observation));
  }
  world_.metrics.end_span(world_.clock.now());

  // Server-side comparison: recover each message's token from its subject
  // line ("Subject: tft-probe <token>") and diff the body.
  std::unordered_map<std::string, const smtp::ReceivedMessage*> received;
  for (const auto& message : world_.measurement_mail->received()) {
    constexpr std::string_view kMarker = "tft-probe ";
    const auto marker_at = message.body.find(kMarker);
    if (marker_at == std::string::npos) continue;
    const auto token_start = marker_at + kMarker.size();
    const auto token_end = message.body.find('\n', token_start);
    if (token_end == std::string::npos) continue;
    received[message.body.substr(token_start, token_end - token_start)] = &message;
  }
  for (const auto& [token, index] : by_token) {
    const auto it = received.find(token);
    if (it == received.end()) {
      observations_[index].message_lost = true;
      continue;
    }
    if (it->second->body != sent_body[token]) {
      observations_[index].body_tampered = true;
    }
  }

  // Violation tallies are counted once per node, after the server-side
  // comparison has filled in body_tampered/message_lost. The crawl-time
  // verdict could not see those two outcomes; re-judge each transaction
  // serially here (observation order keeps the trace deterministic).
  for (const auto& observation : observations_) {
    const char* verdict = observation.connection_blocked ? "blocked"
                          : observation.starttls_stripped ? "stripped"
                          : observation.starttls_downgraded ? "downgraded"
                          : observation.body_tampered ? "tampered"
                          : observation.message_lost ? "lost"
                          : observation.banner_rewritten ? "banner_rewritten"
                                                          : nullptr;
    if (verdict != nullptr) {
      world_.recorder.amend_verdict(observation.txn_id, verdict, "");
    }
    if (observation.connection_blocked) {
      world_.metrics.add("smtp.violations.port_blocked");
    }
    if (observation.banner_rewritten) {
      world_.metrics.add("smtp.violations.banner_rewritten");
    }
    if (observation.starttls_stripped) {
      world_.metrics.add("smtp.violations.starttls_stripped");
    }
    if (observation.starttls_downgraded) {
      world_.metrics.add("smtp.violations.starttls_downgraded");
    }
    if (observation.body_tampered) {
      world_.metrics.add("smtp.violations.body_tampered");
    }
    if (observation.message_lost) {
      world_.metrics.add("smtp.violations.message_lost");
    }
  }
  return observations_.size();
}

SmtpReport analyze_smtp(const world::World& world,
                        const std::vector<SmtpObservation>& observations,
                        const SmtpAnalysisConfig& config) {
  SmtpReport report;
  std::set<net::Asn> ases;
  std::set<net::CountryCode> countries;

  struct AsAccumulator {
    std::size_t total = 0;
    std::map<std::string, std::size_t> violations;
  };
  std::map<net::Asn, AsAccumulator> by_as;

  for (const auto& observation : observations) {
    ++report.total_nodes;
    ases.insert(observation.asn);
    countries.insert(observation.country);
    auto& as_row = by_as[observation.asn];
    ++as_row.total;
    if (observation.connection_blocked) {
      ++report.blocked;
      report.evidence["blocked"].push_back(observation.txn_id);
      ++as_row.violations["port blocked"];
    }
    if (observation.starttls_stripped) {
      ++report.stripped;
      report.evidence["stripped"].push_back(observation.txn_id);
      ++as_row.violations["STARTTLS stripped"];
    }
    if (observation.starttls_downgraded) {
      ++report.downgraded;
      report.evidence["downgraded"].push_back(observation.txn_id);
    }
    if (observation.banner_rewritten) {
      ++report.banner_rewritten;
      report.evidence["banner_rewritten"].push_back(observation.txn_id);
      ++as_row.violations["banner rewritten"];
    }
    if (observation.body_tampered) {
      ++report.body_tampered;
      report.evidence["body_tampered"].push_back(observation.txn_id);
      ++as_row.violations["body tampered"];
    }
    if (observation.message_lost) {
      ++report.message_lost;
      report.evidence["message_lost"].push_back(observation.txn_id);
    }
  }
  report.unique_ases = ases.size();
  report.unique_countries = countries.size();

  for (const auto& [asn, accumulator] : by_as) {
    if (accumulator.total < config.min_nodes_per_as || accumulator.violations.empty()) {
      continue;
    }
    std::size_t affected = 0;
    std::string dominant;
    std::size_t dominant_count = 0;
    for (const auto& [violation, count] : accumulator.violations) {
      affected = std::max(affected, count);
      if (count > dominant_count) {
        dominant_count = count;
        dominant = violation;
      }
    }
    if (affected * 4 < accumulator.total) continue;  // require >=25% of the AS
    SmtpAsRow row;
    row.asn = asn;
    row.affected = affected;
    row.total = accumulator.total;
    row.violation = dominant;
    if (const auto org = world.topology.org_of(asn)) {
      if (const auto* info = world.topology.organization(*org)) {
        row.isp = info->name;
        row.country = info->country;
      }
    }
    report.top_ases.push_back(std::move(row));
  }
  std::sort(report.top_ases.begin(), report.top_ases.end(),
            [](const SmtpAsRow& a, const SmtpAsRow& b) {
              return a.affected > b.affected;
            });
  if (report.top_ases.size() > 15) report.top_ases.resize(15);
  return report;
}

std::string render_smtp_report(const SmtpReport& report) {
  using util::format_count;
  using util::format_percent;
  std::string out = stats::banner("SMTP end-to-end violations (extension, S3.4)");
  out += "nodes measured:    " + format_count(report.total_nodes) + " across " +
         format_count(report.unique_ases) + " ASes, " +
         format_count(report.unique_countries) + " countries\n";
  out += "port 25 blocked:   " + format_count(report.blocked) + " (" +
         format_percent(report.ratio(report.blocked)) + ")\n";
  out += "STARTTLS stripped: " + format_count(report.stripped) + " (" +
         format_percent(report.ratio(report.stripped)) + ")";
  out += "  downgrade-after-offer: " + format_count(report.downgraded) + "\n";
  out += "banner rewritten:  " + format_count(report.banner_rewritten) + " (" +
         format_percent(report.ratio(report.banner_rewritten)) + ")\n";
  out += "body tampered:     " + format_count(report.body_tampered) + " (" +
         format_percent(report.ratio(report.body_tampered), 2) + ")\n";
  out += "messages lost:     " + format_count(report.message_lost) + "\n\n";

  stats::Table table({"AS", "ISP (Country)", "Affected", "Total", "Violation"});
  for (const auto& row : report.top_ases) {
    table.add_row({"AS" + std::to_string(row.asn), row.isp + " (" + row.country + ")",
                   format_count(row.affected), format_count(row.total), row.violation});
  }
  out += "ASes with concentrated SMTP interception (>=25% of nodes)\n" +
         table.render();
  return out;
}

}  // namespace tft::core
