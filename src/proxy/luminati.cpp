#include "tft/proxy/luminati.hpp"

#include <algorithm>

#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/util/hash.hpp"

#include "tft/util/strings.hpp"

namespace tft::proxy {

std::string_view to_string(ProxyStatus status) noexcept {
  switch (status) {
    case ProxyStatus::kOk:
      return "ok";
    case ProxyStatus::kSuperProxyDnsFailure:
      return "super_proxy_dns_failure";
    case ProxyStatus::kExitNodeDnsNxdomain:
      return "exit_node_dns_nxdomain";
    case ProxyStatus::kExitNodeDnsFailure:
      return "exit_node_dns_failure";
    case ProxyStatus::kNoExitNodeAvailable:
      return "no_exit_node_available";
    case ProxyStatus::kAllAttemptsFailed:
      return "all_attempts_failed";
    case ProxyStatus::kTunnelFailed:
      return "tunnel_failed";
    case ProxyStatus::kPortNotAllowed:
      return "port_not_allowed";
  }
  return "unknown";
}

util::Result<ProxyStatus> parse_proxy_status(std::string_view text) {
  for (const auto status :
       {ProxyStatus::kOk, ProxyStatus::kSuperProxyDnsFailure,
        ProxyStatus::kExitNodeDnsNxdomain, ProxyStatus::kExitNodeDnsFailure,
        ProxyStatus::kNoExitNodeAvailable, ProxyStatus::kAllAttemptsFailed,
        ProxyStatus::kTunnelFailed, ProxyStatus::kPortNotAllowed}) {
    if (text == to_string(status)) return status;
  }
  return util::make_error(util::ErrorCode::kParseError,
                          "unknown proxy status: " + std::string(text));
}

util::Result<TimelineDebug> parse_timeline_debug(std::string_view header) {
  using util::ErrorCode;
  using util::make_error;

  TimelineDebug out;
  header = util::trim(header);
  if (!header.starts_with("zid=")) {
    return make_error(ErrorCode::kParseError, "timeline header missing zid=");
  }
  header.remove_prefix(4);
  const auto space = header.find(' ');
  out.zid = std::string(header.substr(0, space));
  if (out.zid.empty()) {
    return make_error(ErrorCode::kParseError, "empty zid in timeline header");
  }
  if (space == std::string_view::npos) return out;

  std::string_view rest = util::trim(header.substr(space + 1));
  if (rest.empty()) return out;
  if (!rest.starts_with("tried=")) {
    return make_error(ErrorCode::kParseError, "unexpected token in timeline header");
  }
  rest.remove_prefix(6);
  for (const auto piece : util::split(rest, ',')) {
    const auto colon = piece.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return make_error(ErrorCode::kParseError,
                        "malformed attempt entry: " + std::string(piece));
    }
    AttemptInfo attempt;
    attempt.zid = std::string(piece.substr(0, colon));
    const std::string_view status = piece.substr(colon + 1);
    if (status.empty()) {
      // "zid:" with nothing after the colon is a truncated entry, not a
      // success — the serializer always writes an explicit "ok".
      return make_error(ErrorCode::kParseError,
                        "empty status in attempt entry: " + std::string(piece));
    }
    attempt.error = status == "ok" ? std::string{} : std::string(status);
    out.attempts.push_back(std::move(attempt));
  }
  return out;
}

SuperProxy::SuperProxy(Config config, Environment environment)
    : config_(config),
      environment_(environment),
      seed_(config.stream_seed != 0
                ? config.stream_seed
                : util::fnv1a64("super-proxy") ^ config.address.value()) {}

void SuperProxy::count(std::string_view name, std::uint64_t delta) {
  if (environment_.metrics != nullptr) environment_.metrics->add(name, delta);
}

void SuperProxy::record(obs::Hop hop, std::string_view actor,
                        std::string_view action, std::string_view detail) {
  if (environment_.recorder == nullptr) return;
  environment_.recorder->event(
      hop, actor, action, detail,
      static_cast<std::uint64_t>(environment_.clock->now().micros));
}

void SuperProxy::observe_attempts(std::size_t attempts) {
  if (environment_.metrics == nullptr) return;
  // Upper bounds sized to max_attempts = 5: singles, one retry, then tails.
  environment_.metrics->observe("proxy.attempts_per_request", {1, 2, 3, 5},
                                static_cast<std::int64_t>(attempts));
}

void SuperProxy::add_exit_node(std::shared_ptr<ExitNodeAgent> node) {
  by_country_[node->country()].push_back(nodes_.size());
  nodes_.push_back(std::move(node));
}

void SuperProxy::set_node_source(std::shared_ptr<NodeSource> source,
                                 std::size_t shard_count) {
  source_ = std::move(source);
  const std::size_t shards = std::max<std::size_t>(1, shard_count);
  const std::size_t total = source_->node_count();
  resident_capacity_ = std::max<std::size_t>(1, (total + shards - 1) / shards);
  resident_peak_ = 0;
  lru_.clear();
  resident_.clear();
  if (environment_.metrics != nullptr) {
    environment_.metrics->set_gauge("world.shard.count",
                                    static_cast<std::int64_t>(shards));
    environment_.metrics->set_gauge(
        "world.shard.capacity", static_cast<std::int64_t>(resident_capacity_));
  }
}

std::shared_ptr<ExitNodeAgent> SuperProxy::node_at(std::size_t index) {
  if (source_ == nullptr) return nodes_[index];
  const auto hit = resident_.find(index);
  if (hit != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, hit->second.second);
    return hit->second.first;
  }
  std::shared_ptr<ExitNodeAgent> node = source_->materialize(index);
  lru_.push_front(index);
  resident_.emplace(index, std::make_pair(node, lru_.begin()));
  if (resident_.size() > resident_capacity_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
  }
  if (resident_.size() > resident_peak_) {
    resident_peak_ = resident_.size();
    if (environment_.metrics != nullptr) {
      environment_.metrics->max_gauge(
          "world.shard.resident_peak",
          static_cast<std::int64_t>(resident_peak_));
      // Same per-node cost model record_world_gauges applies to the full
      // table (world.bytes.nodes) — the two gauges are directly comparable.
      environment_.metrics->max_gauge(
          "world.bytes.peak_shard",
          static_cast<std::int64_t>(resident_peak_ * 512));
    }
  }
  return node;
}

std::size_t SuperProxy::node_count(const net::CountryCode& country) const {
  if (source_ != nullptr) return source_->country_count(country);
  const auto it = by_country_.find(country);
  return it == by_country_.end() ? 0 : it->second.size();
}

std::vector<std::pair<net::CountryCode, std::size_t>> SuperProxy::country_counts()
    const {
  std::vector<std::pair<net::CountryCode, std::size_t>> out;
  if (source_ != nullptr) {
    out = source_->country_counts();
  } else {
    out.reserve(by_country_.size());
    for (const auto& [country, indices] : by_country_) {
      out.emplace_back(country, indices.size());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

SuperProxy::ActiveNode SuperProxy::session_node(const RequestOptions& options) {
  if (!options.session) return {};
  const auto it = sessions_.find(*options.session);
  if (it == sessions_.end()) return {};
  if (it->second.expires < environment_.clock->now()) {
    count("proxy.session_expired");
    sessions_.erase(it);
    return {};
  }
  const std::size_t index = it->second.node_index;
  std::shared_ptr<ExitNodeAgent> node = node_at(index);
  if (!node->online()) return {};
  if (over_budget(*node)) return {};  // §3.4: stop using the node
  return ActiveNode{index, std::move(node)};
}

bool SuperProxy::over_budget(const ExitNodeAgent& node) const {
  if (config_.per_node_byte_budget == 0) return false;
  const auto it = bytes_by_zid_.find(node.zid());
  return it != bytes_by_zid_.end() && it->second >= config_.per_node_byte_budget;
}

void SuperProxy::account_bytes(const std::string& zid, std::size_t bytes) {
  bytes_by_zid_[zid] += bytes;
}

std::size_t SuperProxy::bytes_served(const std::string& zid) const {
  const auto it = bytes_by_zid_.find(zid);
  return it == bytes_by_zid_.end() ? 0 : it->second;
}

std::size_t SuperProxy::max_bytes_served() const {
  std::size_t max_bytes = 0;
  for (const auto& [zid, bytes] : bytes_by_zid_) {
    max_bytes = std::max(max_bytes, bytes);
  }
  return max_bytes;
}

std::size_t SuperProxy::budget_exhausted_nodes() const {
  if (config_.per_node_byte_budget == 0) return 0;
  std::size_t count = 0;
  for (const auto& [zid, bytes] : bytes_by_zid_) {
    if (bytes >= config_.per_node_byte_budget) ++count;
  }
  return count;
}

SuperProxy::ActiveNode SuperProxy::pick_node(
    util::StreamRng& stream, const RequestOptions& options,
    const std::vector<std::size_t>& exclude) {
  const std::vector<std::size_t>* candidates = nullptr;
  std::size_t population = 0;
  if (options.country) {
    if (source_ != nullptr) {
      population = source_->country_count(*options.country);
    } else {
      const auto it = by_country_.find(*options.country);
      if (it == by_country_.end() || it->second.empty()) return {};
      candidates = &it->second;
      population = candidates->size();
    }
  } else {
    population = node_count();
  }
  if (population == 0) return {};

  // Random selection with bounded rejection of offline/excluded nodes. The
  // stream belongs to this request alone, so the rejection draws cannot
  // shift any other request's picks.
  for (int tries = 0; tries < 64; ++tries) {
    const std::size_t slot = stream.index(population);
    const std::size_t index =
        candidates != nullptr ? (*candidates)[slot]
        : options.country     ? source_->country_slot(*options.country, slot)
                              : slot;
    std::shared_ptr<ExitNodeAgent> node = node_at(index);
    if (!node->online()) continue;
    if (over_budget(*node)) continue;  // §3.4: spare heavily-used nodes
    if (std::find(exclude.begin(), exclude.end(), index) != exclude.end()) {
      continue;
    }
    return ActiveNode{index, std::move(node)};
  }
  return {};
}

std::uint64_t SuperProxy::begin_request_scope(const RequestOptions& options,
                                              std::string_view fallback) {
  if (!options.session) return util::fnv1a64(fallback);
  const auto it = sessions_.find(*options.session);
  if (it != sessions_.end() && it->second.expires >= environment_.clock->now()) {
    const std::shared_ptr<ExitNodeAgent> pinned = node_at(it->second.node_index);
    if (pinned->online() && !over_budget(*pinned)) {
      return it->second.scope;  // still inside the pinned epoch
    }
  }
  return util::hash_combine(util::fnv1a64(*options.session),
                            ++session_generation_[*options.session]);
}

void SuperProxy::pin_session(const RequestOptions& options,
                             std::size_t node_index, std::uint64_t scope) {
  if (!options.session) return;
  sessions_[*options.session] =
      SessionEntry{node_index, environment_.clock->now() + config_.session_ttl,
                   scope};
}

void SuperProxy::annotate(http::Response& response, const ProxyFetchResult& result) const {
  std::string timeline = "zid=" + result.zid;
  if (!result.timeline.empty()) {
    timeline += " tried=";
    for (std::size_t i = 0; i < result.timeline.size(); ++i) {
      if (i > 0) timeline += ',';
      timeline += result.timeline[i].zid;
      timeline += ':';
      timeline += result.timeline[i].error.empty() ? "ok" : result.timeline[i].error;
    }
  }
  response.headers.set("X-Hola-Timeline-Debug", timeline);
  response.headers.set("X-Hola-Unblocker-Debug",
                       "ip=" + result.exit_address.to_string() +
                           " country=" + result.exit_country);
}

ProxyFetchResult SuperProxy::fetch(const http::Url& url, const RequestOptions& options) {
  ProxyFetchResult result;
  count("proxy.fetches");
  const std::uint64_t scope = begin_request_scope(options, url.host);
  util::StreamRng pick_stream(seed_, scope, "pick");
  util::StreamRng port_stream(seed_, scope, "port");

  // 1. Super proxy pre-check: resolve the host via its own (Google) DNS.
  const auto name = dns::DnsName::parse(url.host);
  if (!name) {
    count("proxy.super_dns_failures");
    record(obs::Hop::kSuperProxy, "super-proxy", "pre-check",
           url.host + ": unparseable host");
    result.status = ProxyStatus::kSuperProxyDnsFailure;
    return result;
  }
  const auto query =
      dns::Message::query(ephemeral_client_port(port_stream), *name);
  const dns::Message answer = environment_.resolvers->resolve_via(
      config_.dns_resolver, config_.address, query);
  const auto resolved = answer.first_a();
  if (answer.is_nxdomain() || !resolved) {
    count("proxy.super_dns_failures");
    record(obs::Hop::kSuperProxy, "super-proxy", "pre-check",
           url.host + ": dns failure");
    result.status = ProxyStatus::kSuperProxyDnsFailure;
    return result;
  }
  count("proxy.super_dns_ok");
  record(obs::Hop::kSuperProxy, "super-proxy", "pre-check",
         url.host + " -> " + resolved->to_string());

  // 2. Attempt via exit nodes, retrying on connection failures. Retry
  // exclusion tracks global node indices, not pointers — in lazy mode an
  // agent may be evicted and re-materialized between attempts.
  std::vector<std::size_t> tried;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    ActiveNode active;
    if (attempt == 0) {
      active = session_node(options);
      if (active) count("proxy.session_reuses");
    }
    if (!active) active = pick_node(pick_stream, options, tried);
    if (!active) {
      result.status = tried.empty() ? ProxyStatus::kNoExitNodeAvailable
                                    : ProxyStatus::kAllAttemptsFailed;
      count(tried.empty() ? "proxy.no_exit_node" : "proxy.all_attempts_failed");
      observe_attempts(tried.size());
      return result;
    }
    tried.push_back(active.index);
    ExitNodeAgent* node = active.agent.get();

    result.zid = node->zid();
    result.exit_address = node->address();
    result.exit_asn = node->asn();
    result.exit_country = node->country();

    if (node->attempt_fails(scope)) {
      // Exit-node churn: the node dropped off mid-request; retry elsewhere.
      count("proxy.connect_timeouts");
      record(obs::Hop::kSuperProxy, "super-proxy", "attempt",
             node->zid() + ": connect_timeout");
      result.timeline.push_back(AttemptInfo{node->zid(), "connect_timeout"});
      continue;
    }
    record(obs::Hop::kSuperProxy, "super-proxy", "route", "via " + node->zid());

    ExitNodeAgent::FetchOutcome outcome =
        options.dns_remote ? node->fetch_http(url, std::nullopt, scope)
                           : node->fetch_http(url, *resolved, scope);

    if (outcome.dns_nxdomain) {
      // Reported in the Luminati log; not retried (the name "doesn't exist").
      count("proxy.exit_dns_nxdomain");
      observe_attempts(tried.size());
      result.timeline.push_back(AttemptInfo{node->zid(), "dns_nxdomain"});
      result.status = ProxyStatus::kExitNodeDnsNxdomain;
      pin_session(options, active.index, scope);
      return result;
    }
    if (outcome.dns_failed) {
      count("proxy.exit_dns_failures");
      result.timeline.push_back(AttemptInfo{node->zid(), "dns_failure"});
      result.status = ProxyStatus::kExitNodeDnsFailure;
      continue;  // retried with a fresh node
    }

    count("proxy.fetch_ok");
    observe_attempts(tried.size());
    if (environment_.recorder != nullptr) {
      environment_.recorder->annotate_node(node->zid());
    }
    record(obs::Hop::kOrigin, url.host, "respond",
           "status " + std::to_string(outcome.response.status) + ", " +
               std::to_string(outcome.response.body.size()) + "B");
    result.timeline.push_back(AttemptInfo{node->zid(), ""});
    result.status = ProxyStatus::kOk;
    result.response = std::move(outcome.response);
    account_bytes(node->zid(), result.response.body.size());
    annotate(result.response, result);
    pin_session(options, active.index, scope);
    return result;
  }

  if (result.status == ProxyStatus::kOk) {
    result.status = ProxyStatus::kAllAttemptsFailed;
  }
  count("proxy.all_attempts_failed");
  observe_attempts(tried.size());
  return result;
}

SmtpResult SuperProxy::smtp_transaction(net::Ipv4Address destination,
                                        const smtp::ClientScript& script,
                                        const RequestOptions& options) {
  SmtpResult result;
  if (!config_.allow_arbitrary_ports) {
    result.status = ProxyStatus::kPortNotAllowed;
    return result;
  }

  count("proxy.smtp_transactions");
  const std::uint64_t scope =
      begin_request_scope(options, "smtp|" + destination.to_string());
  util::StreamRng pick_stream(seed_, scope, "pick");
  std::vector<std::size_t> tried;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    ActiveNode active;
    if (attempt == 0) {
      active = session_node(options);
      if (active) count("proxy.session_reuses");
    }
    if (!active) active = pick_node(pick_stream, options, tried);
    if (!active) {
      result.status = tried.empty() ? ProxyStatus::kNoExitNodeAvailable
                                    : ProxyStatus::kAllAttemptsFailed;
      count(tried.empty() ? "proxy.no_exit_node" : "proxy.all_attempts_failed");
      observe_attempts(tried.size());
      return result;
    }
    tried.push_back(active.index);
    ExitNodeAgent* node = active.agent.get();

    result.zid = node->zid();
    result.exit_address = node->address();
    result.exit_asn = node->asn();
    result.exit_country = node->country();

    if (node->attempt_fails(scope)) {
      count("proxy.connect_timeouts");
      record(obs::Hop::kSuperProxy, "super-proxy", "attempt",
             node->zid() + ": connect_timeout");
      continue;
    }
    record(obs::Hop::kSuperProxy, "super-proxy", "tunnel",
           "port 25 via " + node->zid());

    auto transcript = node->run_smtp(destination, script);
    if (!transcript) {
      count("proxy.tunnel_failures");
      result.status = ProxyStatus::kTunnelFailed;
      continue;
    }
    count("proxy.smtp_ok");
    observe_attempts(tried.size());
    if (environment_.recorder != nullptr) {
      environment_.recorder->annotate_node(node->zid());
    }
    result.status = ProxyStatus::kOk;
    result.transcript = *std::move(transcript);
    pin_session(options, active.index, scope);
    return result;
  }
  if (result.status == ProxyStatus::kOk) {
    result.status = ProxyStatus::kAllAttemptsFailed;
  }
  return result;
}

ConnectResult SuperProxy::connect_and_handshake(net::Ipv4Address destination,
                                                std::uint16_t port,
                                                std::string_view sni,
                                                const RequestOptions& options) {
  ConnectResult result;
  if (port != 443) {
    result.status = ProxyStatus::kPortNotAllowed;
    return result;
  }

  count("proxy.connects");
  const std::uint64_t scope = begin_request_scope(
      options, "connect|" + destination.to_string() + "|" + std::string(sni));
  util::StreamRng pick_stream(seed_, scope, "pick");
  std::vector<std::size_t> tried;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    ActiveNode active;
    if (attempt == 0) {
      active = session_node(options);
      if (active) count("proxy.session_reuses");
    }
    if (!active) active = pick_node(pick_stream, options, tried);
    if (!active) {
      result.status = tried.empty() ? ProxyStatus::kNoExitNodeAvailable
                                    : ProxyStatus::kAllAttemptsFailed;
      count(tried.empty() ? "proxy.no_exit_node" : "proxy.all_attempts_failed");
      observe_attempts(tried.size());
      return result;
    }
    tried.push_back(active.index);
    ExitNodeAgent* node = active.agent.get();

    result.zid = node->zid();
    result.exit_address = node->address();
    result.exit_country = node->country();

    if (node->attempt_fails(scope)) {
      count("proxy.connect_timeouts");
      record(obs::Hop::kSuperProxy, "super-proxy", "attempt",
             node->zid() + ": connect_timeout");
      continue;
    }
    record(obs::Hop::kSuperProxy, "super-proxy", "tunnel",
           "CONNECT " + std::string(sni) + ":443 via " + node->zid());

    auto chain = node->fetch_certificate_chain(destination, sni, scope);
    if (!chain) {
      count("proxy.tunnel_failures");
      result.status = ProxyStatus::kTunnelFailed;
      continue;
    }
    count("proxy.connect_ok");
    observe_attempts(tried.size());
    if (environment_.recorder != nullptr) {
      environment_.recorder->annotate_node(node->zid());
    }
    result.status = ProxyStatus::kOk;
    result.chain = *std::move(chain);
    pin_session(options, active.index, scope);
    return result;
  }
  if (result.status == ProxyStatus::kOk) {
    result.status = ProxyStatus::kAllAttemptsFailed;
  }
  return result;
}

}  // namespace tft::proxy
