// A thin epoll wrapper: fd -> callback registration, one-shot dispatch
// rounds, and a thread-safe eventfd wakeup so a run loop blocked in
// epoll_wait can be told to stop. Callbacks may add or remove fds during a
// dispatch round; removal is honored within the same round (a removed fd's
// queued events are dropped, never dispatched to a stale handler).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "tft/util/result.hpp"

namespace tft::net::server {

class EventLoop {
 public:
  using Handler = std::function<void(std::uint32_t events)>;

  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Create the epoll instance and the wakeup eventfd.
  util::Result<void> init();

  /// Register `fd` for `events` (EPOLLIN / EPOLLOUT / ...).
  util::Result<void> add(int fd, std::uint32_t events, Handler handler);

  /// Change the interest set of a registered fd.
  void modify(int fd, std::uint32_t events);

  /// Deregister; pending events for the fd in the current dispatch round
  /// are dropped. The caller still owns (and closes) the fd.
  void remove(int fd);

  /// Wait up to `timeout_ms` (-1 = forever) and dispatch ready handlers.
  /// Returns the number of handlers dispatched (0 on timeout or wakeup).
  int poll(int timeout_ms);

  /// Interrupt a blocked poll() from any thread.
  void wake();

  bool initialized() const noexcept { return epoll_fd_ >= 0; }
  std::size_t watched() const noexcept { return handlers_.size(); }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  /// Registration generation per fd: dispatch skips events whose fd was
  /// removed (or removed-and-readded) after the epoll_wait snapshot.
  struct Registration {
    Handler handler;
    std::uint64_t generation = 0;
  };
  std::unordered_map<int, Registration> handlers_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace tft::net::server
