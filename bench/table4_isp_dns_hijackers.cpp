// Regenerates Table 4: ISP DNS servers hijacking NXDOMAIN responses for
// >= 90% of their exit nodes, aggregated per ISP.
#include <map>

#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);

  tft::core::DnsHijackProbe probe(*world, config.dns);
  probe.run();
  const auto report =
      tft::core::analyze_dns(*world, probe.observations(), config.dns_analysis);

  std::cout << tft::stats::banner("Table 4: hijacking ISP DNS servers");
  tft::stats::Table table({"Country", "ISP", "DNS Servers", "Exit Nodes",
                           "Paper (servers/nodes)"});
  // Paper reference column, keyed by ISP name.
  const std::map<std::string, std::string> paper = {
      {"Telefonica de Argentina", "14 / 276"}, {"Dodo Australia", "21 / 1,404"},
      {"Oi Fixo", "21 / 2,558"},               {"CTBC", "4 / 290"},
      {"Deutsche Telekom AG", "8 / 1,385"},    {"Airtel Broadband", "9 / 735"},
      {"BSNL", "2 / 71"},                      {"Ntl. Int. Backbone", "8 / 245"},
      {"TMnet", "8 / 1,676"},                  {"ONO", "2 / 71"},
      {"BT Internet", "6 / 479"},              {"Talk Talk", "46 / 3,738"},
      {"AT&T", "37 / 561"},                    {"Cable One", "4 / 108"},
      {"Cox Communications", "63 / 1,789"},    {"Mediacom Cable", "6 / 219"},
      {"Suddenlink", "9 / 98"},                {"Verizon", "98 / 2,102"},
      {"WideOpenWest", "1 / 39"},
  };
  for (const auto& row : report.isp_hijackers) {
    const auto it = paper.find(row.isp);
    table.add_row({row.country, row.isp, std::to_string(row.dns_servers),
                   tft::util::format_count(row.nodes),
                   it == paper.end() ? "-" : it->second});
  }
  std::cout << table.render() << "\n";
  std::cout << "ISPs detected: " << report.isp_hijackers.size()
            << "   [paper: 19 ISPs from 9 countries, 366 DNS servers]\n";
  return 0;
}
