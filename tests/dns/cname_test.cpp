#include <gtest/gtest.h>

#include <memory>

#include "tft/dns/resolver.hpp"

namespace tft::dns {
namespace {

class CnameChaseTest : public ::testing::Test {
 protected:
  CnameChaseTest() {
    auto zone_a = std::make_shared<AuthoritativeServer>(*DnsName::parse("a.net"));
    zone_a->add_record(ResourceRecord::cname(*DnsName::parse("www.a.net"),
                                             *DnsName::parse("real.a.net")));
    zone_a->add_a(*DnsName::parse("real.a.net"), net::Ipv4Address(1, 1, 1, 1));
    zone_a->add_record(ResourceRecord::cname(*DnsName::parse("cross.a.net"),
                                             *DnsName::parse("target.b.net")));
    zone_a->add_record(ResourceRecord::cname(*DnsName::parse("loop1.a.net"),
                                             *DnsName::parse("loop2.a.net")));
    zone_a->add_record(ResourceRecord::cname(*DnsName::parse("loop2.a.net"),
                                             *DnsName::parse("loop1.a.net")));
    zone_a->add_record(ResourceRecord::cname(*DnsName::parse("dangling.a.net"),
                                             *DnsName::parse("nowhere.c.net")));
    registry_.register_zone(std::move(zone_a));

    auto zone_b = std::make_shared<AuthoritativeServer>(*DnsName::parse("b.net"));
    zone_b->add_a(*DnsName::parse("target.b.net"), net::Ipv4Address(2, 2, 2, 2));
    registry_.register_zone(std::move(zone_b));

    resolver_ = std::make_unique<RecursiveResolver>(
        net::Ipv4Address(10, 0, 0, 53), net::Ipv4Address(10, 0, 0, 53), &registry_,
        &clock_);
  }

  Message ask(const char* name) {
    return resolver_->resolve(Message::query(1, *DnsName::parse(name)));
  }

  sim::EventQueue clock_;
  AuthorityRegistry registry_;
  std::unique_ptr<RecursiveResolver> resolver_;
};

TEST_F(CnameChaseTest, SameZoneAliasResolvesDirectly) {
  // The authoritative answer already contains CNAME + A (same zone).
  const auto response = ask("www.a.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  EXPECT_EQ(response.first_a()->to_string(), "1.1.1.1");
}

TEST_F(CnameChaseTest, CrossZoneAliasIsChased) {
  const auto response = ask("cross.a.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  ASSERT_TRUE(response.first_a().has_value());
  EXPECT_EQ(response.first_a()->to_string(), "2.2.2.2");
  // Both the alias record and the chased A are in the answer.
  EXPECT_GE(response.answers.size(), 2u);
  EXPECT_EQ(response.answers.front().type, RecordType::kCname);
}

TEST_F(CnameChaseTest, AliasLoopTerminates) {
  const auto response = ask("loop1.a.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  EXPECT_FALSE(response.first_a().has_value());  // no address, but no hang
}

TEST_F(CnameChaseTest, DanglingAliasReturnsWhatExists) {
  const auto response = ask("dangling.a.net");
  EXPECT_EQ(response.flags.rcode, Rcode::kNoError);
  EXPECT_FALSE(response.first_a().has_value());
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers.front().type, RecordType::kCname);
}

TEST_F(CnameChaseTest, ChasedAnswersAreCached) {
  ask("cross.a.net");
  const auto again = ask("cross.a.net");
  EXPECT_EQ(again.first_a()->to_string(), "2.2.2.2");
  EXPECT_EQ(resolver_->cache_size(), 1u);
}

}  // namespace
}  // namespace tft::dns
