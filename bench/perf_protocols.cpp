// google-benchmark microbenchmarks for the protocol substrates: DNS wire
// codec, HTTP parser, longest-prefix-match table, certificate verification,
// image transcoding and URL extraction. These are the hot paths of the
// measurement pipeline.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "tft/dns/codec.hpp"
#include "tft/http/content.hpp"
#include "tft/http/message.hpp"
#include "tft/net/prefix_table.hpp"
#include "tft/smtp/session.hpp"
#include "tft/tls/authority.hpp"
#include "tft/tls/verify.hpp"
#include "tft/util/json_parse.hpp"
#include "tft/util/rng.hpp"
#include "tft/world/spec_io.hpp"

namespace {

using namespace tft;  // NOLINT

dns::Message sample_dns_response() {
  auto query = dns::Message::query(0xBEEF, *dns::DnsName::parse("www.example.com"));
  auto response = dns::Message::response_to(query, dns::Rcode::kNoError);
  response.answers.push_back(dns::ResourceRecord::a(
      *dns::DnsName::parse("www.example.com"), net::Ipv4Address(93, 184, 216, 34)));
  response.answers.push_back(dns::ResourceRecord::cname(
      *dns::DnsName::parse("alias.example.com"), *dns::DnsName::parse("www.example.com")));
  response.authorities.push_back(dns::ResourceRecord::txt(
      *dns::DnsName::parse("example.com"), "v=spf1 -all"));
  return response;
}

void BM_DnsEncode(benchmark::State& state) {
  const auto message = sample_dns_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(message));
  }
}
BENCHMARK(BM_DnsEncode);

void BM_DnsDecode(benchmark::State& state) {
  const std::string wire = dns::encode(sample_dns_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_DnsDecode);

void BM_HttpRequestParse(benchmark::State& state) {
  auto request = http::Request::proxy_get(
      *http::Url::parse("http://s123-d2.probe.tft-study.net/page.html"));
  request.headers.add("User-Agent", "tft-probe/1.0");
  request.headers.add("Accept", "*/*");
  const std::string wire = request.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::Request::parse(wire));
  }
}
BENCHMARK(BM_HttpRequestParse);

void BM_HttpResponseSerialize(benchmark::State& state) {
  const auto response =
      http::Response::make(200, "OK", http::reference_html(), "text/html");
  for (auto _ : state) {
    benchmark::DoNotOptimize(response.serialize());
  }
}
BENCHMARK(BM_HttpResponseSerialize);

void BM_PrefixTableLookup(benchmark::State& state) {
  util::Rng rng(1);
  net::PrefixTable<std::uint32_t> table;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    const auto address = net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    table.insert(*net::Ipv4Prefix::make(address, 8 + static_cast<int>(rng.uniform(17))),
                 i);
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    probe += 2654435761u;
    benchmark::DoNotOptimize(table.lookup(net::Ipv4Address(probe)));
  }
}
BENCHMARK(BM_PrefixTableLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CertificateVerify(benchmark::State& state) {
  auto root = tls::CertificateAuthority::make_root(
      {"Root", "Trust", "US"}, 1, sim::Instant::epoch(),
      sim::Instant::epoch() + sim::Duration::hours(24 * 3650));
  auto intermediate =
      tls::CertificateAuthority::make_intermediate(root, {"Mid", "Trust", "US"}, 2);
  tls::CertificateAuthority::LeafOptions options;
  options.hosts = {"www.example.com"};
  const auto chain = intermediate.chain_for(intermediate.issue(options));
  tls::RootStore roots;
  roots.add(root.certificate());
  const tls::CertificateVerifier verifier(&roots);
  const auto now = sim::Instant::epoch() + sim::Duration::hours(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(chain, "www.example.com", now));
  }
}
BENCHMARK(BM_CertificateVerify);

void BM_SimgTranscode(benchmark::State& state) {
  const std::string image = http::reference_image();
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::transcode_simg(image, 53));
  }
}
BENCHMARK(BM_SimgTranscode);

void BM_SmtpSession(benchmark::State& state) {
  smtp::SmtpServer server(smtp::SmtpServer::Config{});
  const smtp::ClientScript script;
  const net::Ipv4Address client(203, 0, 113, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smtp::run_session(server, {}, script, client, sim::Instant::epoch()));
  }
}
BENCHMARK(BM_SmtpSession);

void BM_ChunkedDecode(benchmark::State& state) {
  const std::string wire = http::encode_chunked_body(http::reference_html(), 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::decode_chunked_body(wire));
  }
}
BENCHMARK(BM_ChunkedDecode);

void BM_JsonParseScenario(benchmark::State& state) {
  const std::string document = world::spec_to_json(world::mini_spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::parse_json(document));
  }
}
BENCHMARK(BM_JsonParseScenario);

void BM_SpecRoundTrip(benchmark::State& state) {
  const std::string document = world::spec_to_json(world::paper_spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(world::spec_from_json(document));
  }
}
BENCHMARK(BM_SpecRoundTrip);

void BM_ExtractUrls(benchmark::State& state) {
  std::string html = http::reference_html();
  html += "<script src=\"http://d36mw5gp02ykm5.cloudfront.net/loader.js\"></script>";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::extract_urls(html));
  }
}
BENCHMARK(BM_ExtractUrls);

}  // namespace

#ifndef TFT_REPO_ROOT
#define TFT_REPO_ROOT "."
#endif

// Like BENCHMARK_MAIN(), but also mirrors the results as machine-readable
// JSON to BENCH_protocols.json at the repo root (for trend tracking across
// commits) while keeping the console table on stdout. An explicit
// --benchmark_out on the command line wins over the default path.
int main(int argc, char** argv) {
  const std::string path = std::string(TFT_REPO_ROOT) + "/BENCH_protocols.json";
  const std::string out_flag = "--benchmark_out=" + path;
  const std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      user_out = true;
    }
  }
  if (!user_out) {
    args.push_back(const_cast<char*>(out_flag.c_str()));
    args.push_back(const_cast<char*>(format_flag.c_str()));
  }
  int args_count = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!user_out) std::cerr << "[bench] results written to " << path << "\n";
  benchmark::Shutdown();
  return 0;
}
