// Wire formats of the socket front-end: the Luminati-style credential
// string that carries RequestOptions, the proxy-form request head (absolute
// GET / CONNECT), the metadata headers that let the socket client rebuild a
// ProxyFetchResult, and the length-prefixed tunnel frames that carry the
// TLS handshake exchange through an established CONNECT tunnel.
//
// Everything here is parsing of attacker-controllable bytes, so the whole
// module is a fuzz target (`proxy_framing` in src/testing/fuzz.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tft/http/message.hpp"
#include "tft/net/ipv4.hpp"
#include "tft/proxy/luminati.hpp"
#include "tft/tls/certificate.hpp"
#include "tft/util/result.hpp"

namespace tft::net::server {

// --- credentials -------------------------------------------------------------
//
// RequestOptions travel in the Proxy-Authorization header as a Luminati
// username: "customer-tft-zone-static[-country-<cc>][-dns-remote]
// [-session-<id>]". The session field is always last because session ids
// contain dashes ("dns-42"); everything after "-session-" is the value.

std::string format_credentials(const proxy::RequestOptions& options);
util::Result<proxy::RequestOptions> parse_credentials(std::string_view text);

// --- proxy request heads -----------------------------------------------------

struct ProxyRequestHead {
  enum class Kind { kGet, kConnect };

  Kind kind = Kind::kGet;
  http::Url url;                      // kGet: the absolute-form target
  net::Ipv4Address connect_address;   // kConnect: literal destination
  std::uint16_t connect_port = 0;
  proxy::RequestOptions options;      // from Proxy-Authorization (if sent)
  bool close = false;                 // client sent "Connection: close"
};

/// Parse one complete request image (as yielded by http::MessageReader)
/// into the head the dispatcher acts on. Rejects non-GET/CONNECT methods,
/// origin-form GET targets, hostname CONNECT targets (the engine tunnels to
/// literal IPv4 destinations), and malformed credentials.
util::Result<ProxyRequestHead> parse_proxy_request(std::string_view wire);

/// Client-side builders: the exact requests SocketProxyChannel sends.
std::string build_proxy_get(const http::Url& url,
                            const proxy::RequestOptions& options);
std::string build_connect(net::Ipv4Address destination, std::uint16_t port,
                          const proxy::RequestOptions& options);

// --- result metadata ---------------------------------------------------------
//
// The retry trail crosses the wire in an X-TFT-Timeline header as
// "zid:ok,zid:connect_timeout,...". (X-Hola-Timeline-Debug carries the
// engine's own rendering inside the proxied response; this one exists so
// the client can rebuild ProxyFetchResult::timeline even on failures,
// which have no proxied response to annotate.)

std::string encode_attempts(const std::vector<proxy::AttemptInfo>& attempts);
util::Result<std::vector<proxy::AttemptInfo>> decode_attempts(
    std::string_view text);

// --- tunnel frames -----------------------------------------------------------
//
// After "200 Connection Established" the tunnel speaks length-prefixed
// frames (big-endian u32 length + payload, never empty). The client sends
// one hello frame naming the SNI; the server answers with one reply frame
// carrying the handshake outcome and the observed certificate chain.

struct TunnelHello {
  std::string sni;
};

struct TunnelReply {
  proxy::ProxyStatus status = proxy::ProxyStatus::kOk;
  std::string zid;
  net::Ipv4Address exit_address;
  net::CountryCode exit_country;
  tls::CertificateChain chain;
};

std::string encode_tunnel_hello(const TunnelHello& hello);
util::Result<TunnelHello> decode_tunnel_hello(std::string_view payload);
std::string encode_tunnel_reply(const TunnelReply& reply);
util::Result<TunnelReply> decode_tunnel_reply(std::string_view payload);

/// Wrap a payload in the u32 length prefix.
std::string frame(std::string_view payload);

/// Incremental frame accumulator (the tunnel-side peer of MessageReader).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = 1 << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Append stream bytes. Errors on empty or oversize declared frames.
  util::Result<void> feed(std::string_view bytes);

  /// Pop the next complete frame payload, if any.
  std::optional<std::string> next_frame();

  std::size_t partial_bytes() const noexcept { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::vector<std::string> ready_;
};

}  // namespace tft::net::server
