#include "tft/net/prefix_table.hpp"

#include <gtest/gtest.h>

#include "tft/util/rng.hpp"

namespace tft::net {
namespace {

TEST(PrefixTableTest, EmptyTableReturnsNothing) {
  PrefixTable<int> table;
  EXPECT_FALSE(table.lookup(Ipv4Address(1, 2, 3, 4)).has_value());
  EXPECT_EQ(table.size(), 0u);
}

TEST(PrefixTableTest, ExactAndCoveringLookup) {
  PrefixTable<int> table;
  table.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 200, 3, 4)), 1);
  EXPECT_FALSE(table.lookup(Ipv4Address(11, 0, 0, 0)).has_value());
}

TEST(PrefixTableTest, LongestPrefixWins) {
  PrefixTable<int> table;
  table.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  table.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  table.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 9, 9, 9)), 1);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 1, 9, 9)), 2);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 1, 2, 9)), 3);
}

TEST(PrefixTableTest, DefaultRouteMatchesAll) {
  PrefixTable<int> table;
  table.insert(*Ipv4Prefix::parse("0.0.0.0/0"), 42);
  EXPECT_EQ(table.lookup(Ipv4Address(255, 1, 2, 3)), 42);
}

TEST(PrefixTableTest, InsertOverwritesExactDuplicate) {
  PrefixTable<int> table;
  table.insert(*Ipv4Prefix::parse("192.168.0.0/16"), 1);
  table.insert(*Ipv4Prefix::parse("192.168.0.0/16"), 2);
  EXPECT_EQ(table.lookup(Ipv4Address(192, 168, 1, 1)), 2);
  EXPECT_EQ(table.size(), 1u);
}

TEST(PrefixTableTest, Slash32Entries) {
  PrefixTable<int> table;
  table.insert(*Ipv4Prefix::parse("1.1.1.1/32"), 7);
  EXPECT_EQ(table.lookup(Ipv4Address(1, 1, 1, 1)), 7);
  EXPECT_FALSE(table.lookup(Ipv4Address(1, 1, 1, 2)).has_value());
}

TEST(PrefixTableTest, LookupEntryReportsMatchedPrefix) {
  PrefixTable<int> table;
  table.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  table.insert(*Ipv4Prefix::parse("10.64.0.0/10"), 2);
  const auto entry = table.lookup_entry(Ipv4Address(10, 65, 0, 1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first.to_string(), "10.64.0.0/10");
  EXPECT_EQ(entry->second, 2);
}

TEST(PrefixTableTest, RandomizedAgainstLinearScan) {
  util::Rng rng(1234);
  PrefixTable<int> table;
  std::vector<std::pair<Ipv4Prefix, int>> entries;
  for (int i = 0; i < 300; ++i) {
    const auto address = Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    const int length = static_cast<int>(rng.uniform(33));
    const auto prefix = *Ipv4Prefix::make(address, length);
    // Skip exact duplicates to keep the reference model simple.
    bool duplicate = false;
    for (auto& [p, v] : entries) {
      if (p == prefix) {
        v = i;
        duplicate = true;
        break;
      }
    }
    if (!duplicate) entries.emplace_back(prefix, i);
    table.insert(prefix, i);
  }
  for (int i = 0; i < 2000; ++i) {
    const auto probe = Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    std::optional<int> expected;
    int best_length = -1;
    for (const auto& [prefix, value] : entries) {
      if (prefix.contains(probe) && prefix.length() > best_length) {
        best_length = prefix.length();
        expected = value;
      }
    }
    EXPECT_EQ(table.lookup(probe), expected) << probe.to_string();
  }
}

}  // namespace
}  // namespace tft::net
