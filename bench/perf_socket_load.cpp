// Socket front-end load sweep: drive a threaded mini-world proxy server
// with the tft-loadgen client swarm at 1 -> 256 concurrent connections
// (closed loop, default GET / pipelined / CONNECT mix), validating every
// response, then run one chaos leg (misbehaving clients alongside a
// well-behaved swarm) to confirm fault isolation under load.
//
// Usage: perf_socket_load [duration_ms] [seed] [scale]
//
// Drops BENCH_socket_load.json at the repo root: per-connection-count rows
// with achieved rps, per-class p50/p95/p99 latency, and the error taxonomy,
// plus the chaos leg's behavior counters. Exits nonzero if any well-behaved
// request fails validation — the sweep doubles as an acceptance gate.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tft/net/client/load_client.hpp"
#include "tft/obs/build_info.hpp"
#include "tft/testing/test_proxy_server.hpp"
#include "tft/util/json.hpp"

#ifndef TFT_REPO_ROOT
#define TFT_REPO_ROOT "."
#endif

namespace {

using tft::net::client::LoadGenConfig;
using tft::net::client::LoadGenerator;
using tft::net::client::LoadReport;

struct SweepRow {
  std::size_t connections = 0;
  bool chaos = false;
  bool ok = false;
  LoadReport report;
};

void write_row(tft::util::JsonWriter& json, const SweepRow& row) {
  json.begin_object()
      .field("connections", static_cast<std::uint64_t>(row.connections))
      .field("chaos", row.chaos)
      .field("ok", row.ok);
  row.report.write_json(json);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 1500;
  std::uint64_t seed = 2016;
  double scale = 1.0;
  if (argc > 1) duration_ms = std::atoi(argv[1]);
  if (argc > 2) seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  if (argc > 3) scale = std::atof(argv[3]);
  if (duration_ms <= 0) duration_ms = 1500;

  std::cerr << "[bench] serving mini world: scale=" << scale
            << " seed=" << seed << "\n";
  tft::testing::TestProxyServer::Options options;
  options.scale = scale;
  options.seed = seed;
  options.threaded = true;
  tft::testing::TestProxyServer server(options);

  std::vector<tft::net::client::ConnectTarget> connect_targets;
  for (const auto& site : server.world().https_sites) {
    connect_targets.push_back({site.address, 443, site.host});
    if (connect_targets.size() >= 8) break;
  }

  const std::size_t kConnectionSweep[] = {1, 4, 16, 64, 128, 256};
  std::vector<SweepRow> rows;
  bool all_ok = true;

  for (const std::size_t connections : kConnectionSweep) {
    LoadGenConfig config;
    config.port = server.port();
    config.connections = connections;
    config.duration_ms = duration_ms;
    config.seed = seed;
    config.connect_targets = connect_targets;
    SweepRow row;
    row.connections = connections;
    LoadGenerator generator(config);
    auto result = generator.run();
    if (!result.ok()) {
      std::cerr << "[bench] connections=" << connections
                << " FAILED: " << result.error().to_string() << "\n";
      all_ok = false;
      rows.push_back(row);
      continue;
    }
    row.report = *std::move(result);
    row.ok = row.report.validation_failures == 0;
    all_ok = all_ok && row.ok;
    std::cout << "perf_socket_load: connections=" << connections
              << " rps=" << static_cast<long long>(row.report.achieved_rps)
              << " ok=" << row.report.responses_ok
              << " failures=" << row.report.validation_failures;
    const auto get = row.report.classes.find("get");
    if (get != row.report.classes.end()) {
      std::cout << " get_p50=" << get->second.p50_us
                << "us get_p99=" << get->second.p99_us << "us";
    }
    std::cout << "\n";
    rows.push_back(std::move(row));
  }

  // Chaos leg: a well-behaved 64-connection swarm sharing the server with
  // misbehaving clients. The well-behaved side must still validate clean.
  {
    LoadGenConfig config;
    config.port = server.port();
    config.connections = 64;
    config.chaos_clients = 10;
    config.duration_ms = duration_ms;
    config.seed = seed;
    config.connect_targets = connect_targets;
    SweepRow row;
    row.connections = 64;
    row.chaos = true;
    LoadGenerator generator(config);
    auto result = generator.run();
    if (result.ok()) {
      row.report = *std::move(result);
      row.ok = row.report.validation_failures == 0;
      std::cout << "perf_socket_load: chaos leg rps="
                << static_cast<long long>(row.report.achieved_rps)
                << " failures=" << row.report.validation_failures << "\n";
    } else {
      std::cerr << "[bench] chaos leg FAILED: " << result.error().to_string()
                << "\n";
      all_ok = false;
    }
    all_ok = all_ok && row.ok;
    rows.push_back(std::move(row));
  }

  tft::util::JsonWriter json;
  json.begin_object();
  tft::obs::write_build_info(json);
  json.field("bench", "socket_load")
      .field("duration_ms", static_cast<std::uint64_t>(duration_ms))
      .field("seed", seed)
      .field("scale", scale)
      .field("all_ok", all_ok);
  json.begin_array("sweep");
  for (const auto& row : rows) write_row(json, row);
  json.end_array();
  json.end_object();

  const std::string path = std::string(TFT_REPO_ROOT) + "/BENCH_socket_load.json";
  std::ofstream file(path);
  if (file) {
    file << std::move(json).take() << "\n";
    std::cerr << "[bench] results written to " << path << "\n";
  } else {
    std::cerr << "[bench] warning: cannot write " << path << "\n";
  }

  if (!all_ok) {
    std::cerr << "perf_socket_load: validation failures in sweep\n";
    return 1;
  }
  return 0;
}
