// Machine-readable report export: the same data the render_* functions
// print, as JSON documents (the paper published its analysis data; this is
// the equivalent facility for downstream tooling).
#pragma once

#include <string>

#include "tft/core/smtp_probe.hpp"
#include "tft/core/study.hpp"

namespace tft::core {

std::string dns_report_json(const DnsReport& report);
std::string http_report_json(const HttpReport& report);
std::string https_report_json(const HttpsReport& report);
std::string monitor_report_json(const MonitorReport& report);
std::string smtp_report_json(const SmtpReport& report);

/// The full study: coverage + all four reports in one document.
std::string study_result_json(const StudyResult& result);

}  // namespace tft::core
