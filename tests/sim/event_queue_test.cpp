#include "tft/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace tft::sim {
namespace {

TEST(TimeTest, DurationFactories) {
  EXPECT_EQ(Duration::seconds(1.5).micros, 1'500'000);
  EXPECT_EQ(Duration::milliseconds(3).micros, 3'000);
  EXPECT_EQ(Duration::minutes(2).micros, 120'000'000);
  EXPECT_EQ(Duration::hours(1).micros, 3'600'000'000LL);
  EXPECT_DOUBLE_EQ(Duration::seconds(2.5).to_seconds(), 2.5);
}

TEST(TimeTest, InstantArithmetic) {
  const Instant t = Instant::epoch() + Duration::seconds(10);
  EXPECT_EQ((t - Instant::epoch()).to_seconds(), 10.0);
  EXPECT_LT(Instant::epoch(), t);
  EXPECT_EQ((t - Duration::seconds(10)), Instant::epoch());
}

TEST(TimeTest, ToString) {
  EXPECT_EQ(to_string(Duration::seconds(1.5)), "1.500s");
  EXPECT_EQ(to_string(Instant::epoch() + Duration::seconds(2)), "t=2.000s");
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(Instant::epoch() + Duration::seconds(3), [&] { order.push_back(3); });
  queue.schedule_at(Instant::epoch() + Duration::seconds(1), [&] { order.push_back(1); });
  queue.schedule_at(Instant::epoch() + Duration::seconds(2), [&] { order.push_back(2); });
  EXPECT_EQ(queue.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesRunInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  const Instant when = Instant::epoch() + Duration::seconds(1);
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(when, [&order, i] { order.push_back(i); });
  }
  queue.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  EventQueue queue;
  Instant seen;
  queue.schedule_after(Duration::seconds(5), [&] { seen = queue.now(); });
  queue.run_all();
  EXPECT_EQ(seen, Instant::epoch() + Duration::seconds(5));
  EXPECT_EQ(queue.now(), seen);
}

TEST(EventQueueTest, RunUntilLeavesLaterEventsPending) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_after(Duration::seconds(1), [&] { ++fired; });
  queue.schedule_after(Duration::seconds(10), [&] { ++fired; });
  EXPECT_EQ(queue.run_until(Instant::epoch() + Duration::seconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.now(), Instant::epoch() + Duration::seconds(5));
}

TEST(EventQueueTest, HandlersCanScheduleMoreEvents) {
  EventQueue queue;
  int count = 0;
  std::function<void()> reschedule = [&] {
    if (++count < 5) queue.schedule_after(Duration::seconds(1), reschedule);
  };
  queue.schedule_after(Duration::seconds(1), reschedule);
  queue.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(queue.now(), Instant::epoch() + Duration::seconds(5));
}

TEST(EventQueueTest, MoveOnlyCapturesWork) {
  // Handlers are move-only-friendly: std::function would reject this
  // lambda (unique_ptr capture is not copyable).
  EventQueue queue;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  queue.schedule_after(Duration::seconds(1),
                       [&seen, payload = std::move(payload)] { seen = *payload; });
  queue.run_all();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, HandlersAreMovedNotCopied) {
  // Regression: the old std::priority_queue-based heap could only read
  // entries through a const top(), so every dispatched handler — and all
  // of its captured state — was copied on the way out.
  struct CopyCounter {
    int* copies;
    explicit CopyCounter(int* c) : copies(c) {}
    CopyCounter(const CopyCounter& other) : copies(other.copies) { ++*copies; }
    CopyCounter(CopyCounter&& other) noexcept : copies(other.copies) {}
    CopyCounter& operator=(const CopyCounter&) = delete;
    CopyCounter& operator=(CopyCounter&&) = delete;
  };

  EventQueue queue;
  int copies = 0;
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    queue.schedule_after(Duration::seconds(i + 1),
                         [&fired, counter = CopyCounter(&copies)] { ++fired; });
  }
  const int copies_after_scheduling = copies;
  EXPECT_EQ(queue.run_all(), 8u);
  EXPECT_EQ(fired, 8);
  EXPECT_EQ(copies, copies_after_scheduling)
      << "dispatch must move handlers off the heap, not copy them";
}

TEST(EventQueueTest, SchedulingInPastClampsToNow) {
  EventQueue queue;
  queue.advance(Duration::seconds(10));
  Instant seen;
  queue.schedule_at(Instant::epoch() + Duration::seconds(1), [&] { seen = queue.now(); });
  queue.run_all();
  EXPECT_EQ(seen, Instant::epoch() + Duration::seconds(10));
}

}  // namespace
}  // namespace tft::sim
