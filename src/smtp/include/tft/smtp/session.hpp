// Client-side SMTP session runner: performs the probe transaction against a
// server through an interceptor chain and records everything the client
// observed — the transcript the measurement compares against ground truth.
#pragma once

#include "tft/smtp/interceptor.hpp"
#include "tft/smtp/server.hpp"

namespace tft::obs {
class Recorder;
}

namespace tft::smtp {

/// What the probing client wants to send.
struct ClientScript {
  std::string ehlo_identity = "probe.tft-study.net";
  std::string mail_from = "<probe@tft-study.net>";
  std::string rcpt_to = "<inbox@mail.tft-study.net>";
  std::string body = "Subject: tft-probe\n\nreference body\n";
  bool attempt_starttls = true;
};

/// Everything the client observed during the session.
struct Transcript {
  bool connected = false;          // false = connection blocked/refused
  std::string banner;              // the 220 text as received
  Reply ehlo_reply;                // capabilities as received
  bool starttls_offered = false;   // STARTTLS present in EHLO reply
  bool starttls_accepted = false;  // server accepted the upgrade
  bool message_accepted = false;   // 250 after DATA terminator
  std::vector<std::string> errors;
};

/// Run the scripted transaction from `client` against the server at the
/// other end of the (intercepted) connection. When a flight recorder is
/// supplied, every interceptor that blocks or rewrites part of the
/// dialogue appends a hop event naming itself to the open transaction.
Transcript run_session(SmtpServer& server, const SmtpInterceptorList& interceptors,
                       const ClientScript& script, net::Ipv4Address client,
                       sim::Instant now, obs::Recorder* recorder = nullptr);

}  // namespace tft::smtp
