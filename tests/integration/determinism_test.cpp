// The determinism contract end-to-end: a mini study produces byte-identical
// rendered reports and JSON for every --jobs value, and repeated parallel
// runs agree with each other.
#include <gtest/gtest.h>

#include <string>

#include "tft/core/report_json.hpp"
#include "tft/core/study.hpp"
#include "tft/world/spec.hpp"

namespace tft::core {
namespace {

struct RenderedStudy {
  std::string report;
  std::string json;
};

RenderedStudy run_mini_study(std::size_t jobs) {
  StudyConfig config = StudyConfig::for_scale(0.6, 200);
  config.jobs = jobs;
  const StudyResult result = run_study(world::mini_spec(), 0.6, 2016, config);

  RenderedStudy rendered;
  rendered.report = render_coverage(result.coverage);
  rendered.report += "\n" + render_dns_report(result.dns);
  rendered.report += "\n" + render_http_report(result.http);
  rendered.report += "\n" + render_https_report(result.https);
  rendered.report += "\n" + render_monitor_report(result.monitoring);
  rendered.json = study_result_json(result);
  return rendered;
}

TEST(DeterminismTest, JobsCountNeverChangesResults) {
  const RenderedStudy sequential = run_mini_study(1);
  ASSERT_FALSE(sequential.report.empty());
  ASSERT_FALSE(sequential.json.empty());

  const RenderedStudy two_jobs = run_mini_study(2);
  EXPECT_EQ(two_jobs.report, sequential.report);
  EXPECT_EQ(two_jobs.json, sequential.json);

  const RenderedStudy eight_jobs = run_mini_study(8);
  EXPECT_EQ(eight_jobs.report, sequential.report);
  EXPECT_EQ(eight_jobs.json, sequential.json);
}

TEST(DeterminismTest, RepeatedParallelRunsAgree) {
  const RenderedStudy first = run_mini_study(8);
  const RenderedStudy second = run_mini_study(8);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.json, second.json);
}

}  // namespace
}  // namespace tft::core
