// Regenerates Table 3 (top countries by NXDOMAIN hijack ratio) and the §4.4
// summary split. Paper reference values are printed alongside.
#include "common.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);

  tft::core::DnsHijackProbe probe(*world, config.dns);
  probe.run();
  const auto report =
      tft::core::analyze_dns(*world, probe.observations(), config.dns_analysis);

  std::cout << tft::core::render_dns_report(report) << "\n";
  std::cout << "Paper Table 3 reference (ratio):\n"
               "  MY 52.3%  ID 37.1%  CN 35.3%  GB 25.7%  DE 24.7%\n"
               "  US 18.3%  IN 16.4%  BR 16.4%  BJ 12.6%  JO 7.7%\n";
  return 0;
}
