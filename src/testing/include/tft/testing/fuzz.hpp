// Deterministic fuzzing harness over every wire codec in the library.
//
// Two prongs, one target registry:
//
//  * `run_fuzz_shard` is the structure-aware differential mode: generate a
//    valid value (generators.hpp), assert `decode(encode(x)) == x`, then
//    mutate the wire bytes (mutate.hpp) and assert the decoder returns a
//    clean `Result` — never crashes, hangs, or accepts garbage silently.
//    Everything is driven by one seed; the shard's outcome digest is
//    byte-stable, so `ctest -L fuzz` verdicts are reproducible.
//
//  * `fuzz_one` is the libFuzzer-compatible mode: feed arbitrary bytes to
//    one decoder. The `fuzz/` tree wraps each target in an
//    `LLVMFuzzerTestOneInput` entry point behind -DTFT_FUZZ=ON.
//
// Both modes share per-target corpus seeds (corpus.hpp), so an input that
// once crashed a decoder is replayed by every future `ctest -L fuzz` run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"

namespace tft::testing {

/// libFuzzer-compatible entry point: decode arbitrary bytes. Must return 0
/// and must never crash, hang, or throw.
using FuzzEntry = int (*)(const std::uint8_t* data, std::size_t size);

struct FuzzTarget {
  std::string_view name;         // e.g. "dns_decode"
  std::string_view description;  // one line for --list
  FuzzEntry one_input;
};

/// All registered targets, in a fixed order.
const std::vector<FuzzTarget>& fuzz_targets();

/// Lookup by name; nullptr when unknown.
const FuzzTarget* find_fuzz_target(std::string_view name);

/// Run one input through the named target (0 = processed; -1 = unknown
/// target). Exceptions escaping the decoder propagate — that is the signal
/// a fuzzer run reports as a crash.
int fuzz_one(std::string_view name, const std::uint8_t* data, std::size_t size);

struct FuzzShardOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 1000;
  /// Max mutation rounds applied to each valid wire image.
  std::size_t mutation_rounds = 4;
};

struct FuzzShardReport {
  std::string target;
  std::uint64_t seed = 0;
  std::size_t iterations = 0;
  /// Differential-oracle violations: decode(encode(x)) failed or disagreed
  /// with x. Any nonzero count is a harness failure.
  std::size_t roundtrip_failures = 0;
  /// Mutants the decoder still accepted (fine — mutation can be benign).
  std::size_t mutants_accepted = 0;
  /// Mutants cleanly rejected with an error Result (the expected path).
  std::size_t mutants_rejected = 0;
  /// FNV-1a fold of every iteration's outcome: equal seeds => equal digest.
  std::uint64_t digest = 0;

  bool ok() const noexcept { return roundtrip_failures == 0; }

  /// Stable single-line rendering (what tft-fuzz prints and digests ship as).
  std::string to_line() const;
};

/// Run a seeded differential shard against one target. Returns an error for
/// an unknown target name.
util::Result<FuzzShardReport> run_fuzz_shard(std::string_view target,
                                             const FuzzShardOptions& options);

}  // namespace tft::testing
