#include "tft/obs/metrics.hpp"

#include <algorithm>
#include <chrono>

#include "tft/util/json.hpp"

namespace tft::obs {

std::int64_t wall_now_micros() {
  static const auto process_epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - process_epoch)
      .count();
}

std::size_t Histogram::bucket_index(std::int64_t value) const {
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), value);
  return static_cast<std::size_t>(it - upper_bounds.begin());
}

void Histogram::observe(std::int64_t value) {
  if (buckets.size() != upper_bounds.size() + 1) {
    buckets.assign(upper_bounds.size() + 1, 0);
  }
  ++buckets[bucket_index(value)];
  ++count;
  sum += value;
}

std::int64_t Histogram::quantile(double q) const {
  if (count == 0 || upper_bounds.empty()) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-quantile observation, 1-based, nearest-rank definition.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return i < upper_bounds.size() ? upper_bounds[i] : upper_bounds.back();
    }
  }
  return upper_bounds.back();
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)] += delta;
}

std::uint64_t Registry::counter(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

void Registry::set_gauge(std::string_view name, std::int64_t value) {
  gauges_[std::string(name)] = value;
}

void Registry::max_gauge(std::string_view name, std::int64_t value) {
  auto& slot = gauges_[std::string(name)];
  slot = std::max(slot, value);
}

std::int64_t Registry::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0 : it->second;
}

void Registry::observe(std::string_view name,
                       const std::vector<std::int64_t>& upper_bounds,
                       std::int64_t value) {
  auto& histogram = histograms_[std::string(name)];
  if (histogram.upper_bounds.empty() && histogram.count == 0) {
    histogram.upper_bounds = upper_bounds;
  }
  histogram.observe(value);
}

const Histogram* Registry::histogram(std::string_view name) const {
  const auto it = histograms_.find(std::string(name));
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::set_timing(std::string_view name, std::int64_t value) {
  timing_[std::string(name)] = value;
}

void Registry::add_timing(std::string_view name, std::int64_t value) {
  timing_[std::string(name)] += value;
}

void Registry::max_timing(std::string_view name, std::int64_t value) {
  auto& slot = timing_[std::string(name)];
  slot = std::max(slot, value);
}

std::size_t Registry::begin_span(std::string_view name, sim::Instant sim_now) {
  Span span;
  span.name = std::string(name);
  span.parent = open_.empty() ? -1 : static_cast<std::int64_t>(open_.back());
  span.sim_begin_us = sim_now.micros;
  span.sim_end_us = sim_now.micros;
  span.wall_begin_us = wall_now_micros();
  span.wall_end_us = span.wall_begin_us;
  spans_.push_back(std::move(span));
  open_.push_back(spans_.size() - 1);
  return spans_.size() - 1;
}

void Registry::end_span(sim::Instant sim_now) {
  if (open_.empty()) return;
  Span& span = spans_[open_.back()];
  span.sim_end_us = sim_now.micros;
  span.wall_end_us = wall_now_micros();
  open_.pop_back();
}

std::size_t Registry::append_span(std::string_view name, std::int64_t sim_begin_us,
                                  std::int64_t sim_end_us,
                                  std::int64_t wall_begin_us,
                                  std::int64_t wall_end_us) {
  Span span;
  span.name = std::string(name);
  span.parent = open_.empty() ? -1 : static_cast<std::int64_t>(open_.back());
  span.sim_begin_us = sim_begin_us;
  span.sim_end_us = sim_end_us;
  span.wall_begin_us = wall_begin_us;
  span.wall_end_us = wall_end_us;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) {
    auto& slot = gauges_[name];
    slot = std::max(slot, value);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    auto& mine = histograms_[name];
    if (mine.upper_bounds.empty() && mine.count == 0) {
      mine.upper_bounds = histogram.upper_bounds;
      mine.buckets = histogram.buckets;
      mine.count = histogram.count;
      mine.sum = histogram.sum;
      continue;
    }
    if (mine.buckets.size() != histogram.buckets.size()) continue;  // bound mismatch
    for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
      mine.buckets[i] += histogram.buckets[i];
    }
    mine.count += histogram.count;
    mine.sum += histogram.sum;
  }
  for (const auto& [name, value] : other.timing_) timing_[name] += value;

  const std::int64_t offset = static_cast<std::int64_t>(spans_.size());
  const std::int64_t adopt = open_.empty() ? -1 : static_cast<std::int64_t>(open_.back());
  for (const Span& span : other.spans_) {
    Span copy = span;
    copy.parent = span.parent >= 0 ? span.parent + offset : adopt;
    spans_.push_back(std::move(copy));
  }
}

std::size_t Registry::erase_prefixed(std::string_view prefix) {
  std::size_t erased = 0;
  const auto erase_from = [&](auto& table) {
    for (auto it = table.begin(); it != table.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        it = table.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  };
  erase_from(counters_);
  erase_from(gauges_);
  erase_from(histograms_);
  erase_from(timing_);
  return erased;
}

void Registry::write_json(util::JsonWriter& json, bool include_timing) const {
  json.begin_object("counters");
  for (const auto& [name, value] : counters_) json.field(name, value);
  json.end_object();

  json.begin_object("gauges");
  for (const auto& [name, value] : gauges_) json.field(name, value);
  json.end_object();

  json.begin_object("histograms");
  for (const auto& [name, histogram] : histograms_) {
    json.begin_object(name);
    json.begin_array("upper_bounds");
    for (const auto bound : histogram.upper_bounds) json.value(bound);
    json.end_array();
    json.begin_array("buckets");
    for (const auto bucket : histogram.buckets) json.value(bucket);
    json.end_array();
    json.field("count", histogram.count);
    json.field("sum", histogram.sum);
    json.end_object();
  }
  json.end_object();

  json.begin_array("spans");
  for (const Span& span : spans_) {
    json.begin_object();
    json.field("name", span.name);
    json.field("parent", span.parent);
    json.field("sim_begin_us", span.sim_begin_us);
    json.field("sim_end_us", span.sim_end_us);
    json.end_object();
  }
  json.end_array();

  if (!include_timing) return;
  json.begin_object("timing");
  for (const auto& [name, value] : timing_) json.field(name, value);
  json.begin_array("span_wall");
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    json.begin_object();
    json.field("span", static_cast<std::int64_t>(i));
    json.field("wall_begin_us", spans_[i].wall_begin_us);
    json.field("wall_end_us", spans_[i].wall_end_us);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string Registry::render_stats() const {
  std::string out;
  const auto line = [&out](const std::string& text) {
    out += text;
    out += '\n';
  };

  line("counters:");
  for (const auto& [name, value] : counters_) {
    line("  " + name + " = " + std::to_string(value));
  }
  if (!gauges_.empty()) {
    line("gauges:");
    for (const auto& [name, value] : gauges_) {
      line("  " + name + " = " + std::to_string(value));
    }
  }
  if (!histograms_.empty()) {
    line("histograms:");
    for (const auto& [name, histogram] : histograms_) {
      std::string row = "  " + name + ": count=" + std::to_string(histogram.count) +
                        " sum=" + std::to_string(histogram.sum);
      for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
        row += ' ';
        row += i < histogram.upper_bounds.size()
                   ? "le" + std::to_string(histogram.upper_bounds[i])
                   : std::string("inf");
        row += '=';
        row += std::to_string(histogram.buckets[i]);
      }
      line(row);
    }
  }
  if (!spans_.empty()) {
    line("spans (sim time / wall ms):");
    std::vector<int> depth(spans_.size(), 0);
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      if (spans_[i].parent >= 0) {
        depth[i] = depth[static_cast<std::size_t>(spans_[i].parent)] + 1;
      }
      std::string row(2 + 2 * static_cast<std::size_t>(depth[i]), ' ');
      row += spans_[i].name;
      row += "  sim ";
      row += sim::to_string(sim::Instant{spans_[i].sim_begin_us});
      row += " .. ";
      row += sim::to_string(sim::Instant{spans_[i].sim_end_us});
      row += "  wall ";
      row += std::to_string((spans_[i].wall_end_us - spans_[i].wall_begin_us) / 1000);
      row += "ms";
      line(row);
    }
  }
  if (!timing_.empty()) {
    line("timing (wall clock; varies run to run):");
    for (const auto& [name, value] : timing_) {
      line("  " + name + " = " + std::to_string(value));
    }
  }
  return out;
}

}  // namespace tft::obs
