#include "tft/obs/trace_codec.hpp"

#include <cstdio>

#include "tft/util/json.hpp"
#include "tft/util/json_parse.hpp"

namespace tft::obs {

using util::ErrorCode;
using util::JsonValue;
using util::make_error;
using util::Result;

namespace {

std::string hex_u64(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

Result<std::uint64_t> parse_hex_u64(const JsonValue& value, std::string_view field) {
  const auto fail = [&](const std::string& what) {
    return make_error(ErrorCode::kParseError,
                      "trace field '" + std::string(field) + "': " + what);
  };
  if (!value.is_string()) return fail("expected a \"0x…\" hex string");
  const std::string& text = value.as_string();
  if (text.size() < 3 || text.size() > 18 || text[0] != '0' || text[1] != 'x') {
    return fail("malformed hex literal '" + text + "'");
  }
  std::uint64_t out = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return fail("malformed hex literal '" + text + "'");
    }
    out = (out << 4) | digit;
  }
  return out;
}

Result<std::string> parse_string(const JsonValue& value, std::string_view field) {
  if (!value.is_string()) {
    return make_error(ErrorCode::kParseError, "trace field '" + std::string(field) +
                                                  "': expected a string");
  }
  return value.as_string();
}

}  // namespace

std::string encode_txn(const TxnRecord& record) {
  util::JsonWriter writer;
  writer.begin_object();
  writer.field("format", kTraceFormatTag);
  writer.field("version", kTraceFormatVersion);
  writer.field("txn", hex_u64(record.txn_id));
  writer.field("kind", record.kind);
  writer.field("zid", record.zid);
  writer.field("asn", static_cast<std::int64_t>(record.asn));
  writer.field("country", record.country);
  writer.field("target", record.target);
  writer.field("verdict", record.verdict);
  writer.field("culprit", record.culprit);
  writer.begin_array("events");
  for (const TraceEvent& event : record.events) {
    writer.begin_object();
    writer.field("hop", to_string(event.hop));
    writer.field("actor", event.actor);
    writer.field("action", event.action);
    writer.field("detail", event.detail);
    writer.field("t_us", hex_u64(event.sim_us));
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return std::move(writer).take();
}

Result<TxnRecord> decode_txn(std::string_view line) {
  auto parsed = util::parse_json(line);
  if (!parsed.ok()) return parsed.error();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return make_error(ErrorCode::kParseError, "trace line is not a JSON object");
  }
  if (root["format"].as_string() != kTraceFormatTag) {
    return make_error(ErrorCode::kParseError,
                      "not a tft-txn record (format tag mismatch)");
  }
  if (!root["version"].is_number() ||
      root["version"].as_int() != kTraceFormatVersion) {
    return make_error(ErrorCode::kParseError,
                      "unsupported tft-txn version " +
                          std::to_string(root["version"].as_int(-1)));
  }

  TxnRecord record;
  auto txn = parse_hex_u64(root["txn"], "txn");
  if (!txn.ok()) return txn.error();
  record.txn_id = *txn;

  for (const auto& [field, out] :
       std::initializer_list<std::pair<std::string_view, std::string*>>{
           {"kind", &record.kind},
           {"zid", &record.zid},
           {"country", &record.country},
           {"target", &record.target},
           {"verdict", &record.verdict},
           {"culprit", &record.culprit}}) {
    auto text = parse_string(root[field], field);
    if (!text.ok()) return text.error();
    *out = *std::move(text);
  }

  const JsonValue& asn = root["asn"];
  if (!asn.is_number() || asn.as_number() < 0 ||
      asn.as_number() > 4294967295.0 ||
      asn.as_number() != static_cast<double>(asn.as_int())) {
    return make_error(ErrorCode::kParseError,
                      "trace field 'asn': expected a uint32 number");
  }
  record.asn = static_cast<std::uint32_t>(asn.as_int());

  const JsonValue& events = root["events"];
  if (!events.is_array()) {
    return make_error(ErrorCode::kParseError,
                      "trace field 'events': expected an array");
  }
  record.events.reserve(events.as_array().size());
  for (const JsonValue& entry : events.as_array()) {
    if (!entry.is_object()) {
      return make_error(ErrorCode::kParseError, "trace event is not an object");
    }
    TraceEvent event;
    auto hop_name = parse_string(entry["hop"], "hop");
    if (!hop_name.ok()) return hop_name.error();
    if (!hop_from_string(*hop_name, event.hop)) {
      return make_error(ErrorCode::kParseError,
                        "unknown trace hop '" + *hop_name + "'");
    }
    auto actor = parse_string(entry["actor"], "actor");
    if (!actor.ok()) return actor.error();
    event.actor = *std::move(actor);
    auto action = parse_string(entry["action"], "action");
    if (!action.ok()) return action.error();
    event.action = *std::move(action);
    auto detail = parse_string(entry["detail"], "detail");
    if (!detail.ok()) return detail.error();
    event.detail = *std::move(detail);
    auto t_us = parse_hex_u64(entry["t_us"], "t_us");
    if (!t_us.ok()) return t_us.error();
    event.sim_us = *t_us;
    record.events.push_back(std::move(event));
  }
  return record;
}

std::string encode_trace(const std::vector<TxnRecord>& records) {
  std::string out;
  for (const TxnRecord& record : records) {
    out += encode_txn(record);
    out += '\n';
  }
  return out;
}

Result<std::vector<TxnRecord>> decode_trace(std::string_view text) {
  std::vector<TxnRecord> out;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    ++line_number;
    if (!line.empty()) {
      auto record = decode_txn(line);
      if (!record.ok()) {
        return make_error(record.error().code,
                          "trace line " + std::to_string(line_number) + ": " +
                              record.error().message);
      }
      out.push_back(*std::move(record));
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

}  // namespace tft::obs
