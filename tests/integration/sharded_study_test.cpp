// The sharded-world contract end-to-end: a study over a lazily sharded
// population produces byte-identical rendered reports, JSON, and traces to
// the materialized run, for every shard count and jobs value. Metrics agree
// too once the shard-geometry gauges (world.shard.*, world.bytes.peak_shard)
// are stripped — those legitimately describe the residency cache.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "tft/core/report_json.hpp"
#include "tft/core/study.hpp"
#include "tft/obs/trace_codec.hpp"
#include "tft/util/json.hpp"
#include "tft/world/spec.hpp"

namespace tft::core {
namespace {

struct Rendered {
  std::string report;
  std::string json;
  std::string trace;
  std::string metrics;  // timings omitted, shard-geometry gauges stripped
};

Rendered run_mini(bool shard_mem, std::size_t shards, std::size_t jobs) {
  StudyConfig config = StudyConfig::for_scale(0.6, 200);
  config.jobs = jobs;
  config.shard_mem = shard_mem;
  config.shards = shards;
  StudyResult result = run_study(world::mini_spec(), 0.6, 2016, config);

  Rendered rendered;
  rendered.report = render_coverage(result.coverage);
  rendered.report += "\n" + render_dns_report(result.dns);
  rendered.report += "\n" + render_http_report(result.http);
  rendered.report += "\n" + render_https_report(result.https);
  rendered.report += "\n" + render_monitor_report(result.monitoring);
  rendered.json = study_result_json(result);
  rendered.trace = obs::encode_trace(result.trace.records());
  result.metrics.erase_prefixed("world.shard.");
  result.metrics.erase_prefixed("world.bytes.peak_shard");
  util::JsonWriter writer;
  result.metrics.write_json(writer, /*include_timing=*/false);
  rendered.metrics = std::move(writer).take();
  return rendered;
}

void expect_equal(const Rendered& actual, const Rendered& baseline) {
  EXPECT_EQ(actual.report, baseline.report);
  EXPECT_EQ(actual.json, baseline.json);
  EXPECT_EQ(actual.trace, baseline.trace);
  EXPECT_EQ(actual.metrics, baseline.metrics);
}

TEST(ShardedStudyTest, ShardedMatchesMaterializedAcrossGeometries) {
  const Rendered materialized = run_mini(false, 0, 1);
  ASSERT_FALSE(materialized.report.empty());
  ASSERT_FALSE(materialized.json.empty());
  ASSERT_FALSE(materialized.trace.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " jobs=" + std::to_string(jobs));
      expect_equal(run_mini(true, shards, jobs), materialized);
    }
  }
}

TEST(ShardedStudyTest, MaterializedJobsBaselineAgrees) {
  // The jobs axis on the materialized side, so the cross-product above
  // anchors to a single representative.
  expect_equal(run_mini(false, 0, 4), run_mini(false, 0, 1));
}

TEST(ShardedStudyTest, StreamedStudyJsonMatchesBuffered) {
  StudyConfig config = StudyConfig::for_scale(0.6, 200);
  config.shard_mem = true;
  const StudyResult result = run_study(world::mini_spec(), 0.6, 2016, config);

  const std::string buffered = study_result_json(result);

  // Tiny threshold: many sink chunks, every token boundary exercised.
  std::string streamed;
  std::size_t chunks = 0;
  util::JsonWriter writer;
  writer.set_sink(
      [&](std::string_view chunk) {
        streamed += chunk;
        ++chunks;
      },
      64);
  write_study_result(writer, result);
  EXPECT_TRUE(writer.complete());
  EXPECT_TRUE(writer.str().empty());  // flush() pushed the tail
  EXPECT_EQ(writer.bytes_emitted(), buffered.size());
  EXPECT_EQ(streamed, buffered);
  EXPECT_GT(chunks, 1u);
}

}  // namespace
}  // namespace tft::core
