#include "tft/util/hash.hpp"

#include <cstdio>

namespace tft::util {

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4);
  return a;
}

std::string stable_id(std::string_view input) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(input)));
  return buf;
}

}  // namespace tft::util
