#include "tft/util/result.hpp"

#include <gtest/gtest.h>

namespace tft::util {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(make_error(ErrorCode::kParseError, "bad input"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kParseError);
  EXPECT_EQ(r.error().message, "bad input");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ThrowsOnBadAccess) {
  Result<int> r(make_error(ErrorCode::kNotFound, "missing"));
  EXPECT_THROW(r.value(), BadResultAccess);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, VoidSuccessAndError) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> bad(make_error(ErrorCode::kTimeout, "slow"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kTimeout);
}

TEST(ResultTest, ErrorToString) {
  const Error e = make_error(ErrorCode::kProtocolViolation, "oops");
  EXPECT_EQ(e.to_string(), "protocol_violation: oops");
  EXPECT_EQ(to_string(ErrorCode::kParseError), "parse_error");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace tft::util
