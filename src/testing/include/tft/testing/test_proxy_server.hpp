// RAII socket-test harness: a mini world, its SuperProxy engine, and a
// ProxyServer listening on an ephemeral 127.0.0.1 port — everything a
// connection-level scenario test needs, torn down (auto-join, every fd
// closed) when the fixture leaves scope.
//
// Two driving modes:
//   - threaded (default): run() on a dedicated thread, like a real server.
//     The world's metrics registry is written by that thread, so tests
//     must call stop() (which joins) before asserting counters — the join
//     is the happens-before edge.
//   - pumped (Options::threaded = false): no thread; the test drives the
//     event loop explicitly with pump(). Everything stays on one thread,
//     so counters can be asserted between steps and scenarios replay
//     deterministically.
//
// TestSocket is the matching raw client: a non-blocking loopback socket
// with poll-based waits (or cooperative pumping of the server under test),
// plus helpers to read complete HTTP responses off the stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "tft/http/reader.hpp"
#include "tft/net/server/proxy_server.hpp"
#include "tft/util/result.hpp"
#include "tft/world/world.hpp"

namespace tft::testing {

class TestProxyServer {
 public:
  struct Options {
    double scale = 1.0;
    std::uint64_t seed = 2016;
    bool threaded = true;
    /// Tweak the server config (timeouts, limits) before it starts.
    std::function<void(net::server::ProxyServerConfig&)> configure;
  };

  TestProxyServer();
  explicit TestProxyServer(Options options);
  ~TestProxyServer();
  TestProxyServer(const TestProxyServer&) = delete;
  TestProxyServer& operator=(const TestProxyServer&) = delete;

  std::uint16_t port() const noexcept { return server_->port(); }
  world::World& world() noexcept { return *world_; }
  net::server::ProxyServer& server() noexcept { return *server_; }

  /// Pumped mode: dispatch until the loop is momentarily idle.
  void pump();

  /// Counter value from the world registry. Threaded fixtures must stop()
  /// first; pumped fixtures may read at any time.
  std::uint64_t counter(std::string_view name) const {
    return world_->metrics.counter(name);
  }

  /// Stop serving (request + join in threaded mode) and close every fd.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  Options options_;
  std::unique_ptr<world::World> world_;
  std::unique_ptr<net::server::ProxyServer> server_;
  std::thread thread_;
  bool stopped_ = false;
};

/// Raw loopback client for connection-level scenarios. All operations are
/// bounded: they either pump the server under test (pumped fixtures) or
/// poll(2) with a timeout (threaded fixtures), and fail loudly on stall.
class TestSocket {
 public:
  /// `pump`: the server to drive cooperatively while waiting, or nullptr
  /// to wait in poll(2) against a threaded server.
  explicit TestSocket(std::uint16_t port,
                      net::server::ProxyServer* pump = nullptr);
  ~TestSocket();
  TestSocket(const TestSocket&) = delete;
  TestSocket& operator=(const TestSocket&) = delete;

  bool connected() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  util::Result<void> send_all(std::string_view bytes);
  /// Read until one complete HTTP message is framed.
  util::Result<std::string> recv_message();
  /// Read until the peer closes. Returns the bytes received before EOF.
  util::Result<std::string> recv_until_eof();
  /// Half-close the write side (client finished sending).
  void shutdown_write();
  void close();

 private:
  util::Result<void> wait_for(short events);

  int fd_ = -1;
  net::server::ProxyServer* pump_;
  http::MessageReader reader_;
};

}  // namespace tft::testing
