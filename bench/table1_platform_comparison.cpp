// Regenerates Table 1: comparison of measurement platforms. The other
// platforms' rows are the paper's reported values (they are external
// systems); "Our approach" is measured by running the full study.
#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.05);
  auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);
  const auto result = tft::core::run_study(*world, config);

  // Union coverage over the four experiments.
  std::size_t nodes = 0, ases = 0, countries = 0;
  for (const auto& row : result.coverage) {
    nodes = std::max(nodes, row.exit_nodes);
    ases = std::max(ases, row.ases);
    countries = std::max(countries, row.countries);
  }

  std::cout << tft::stats::banner("Table 1: platform comparison");
  tft::stats::Table table({"Project", "Nodes", "ASes", "Countries", "Period",
                           "ICMP", "DNS", "HTTP", "HTTPS"});
  table.add_row({"Our approach (measured)", tft::util::format_count(nodes),
                 tft::util::format_count(ases), tft::util::format_count(countries),
                 "5 days (sim)", "", "y", "y", "y"});
  table.add_row({"Our approach (paper)", "1,276,873", "14,772", "172", "5 days",
                 "", "y", "y", "y"});
  table.add_row({"Netalyzr", "1,217,181", "14,375", "196", "6 years", "y", "y",
                 "y", "y"});
  table.add_row({"BISmark", "406", "118", "34", "2 years", "y", "y", "y", "y"});
  table.add_row({"Dasu", "100,104", "1,802", "147", "6 years", "y", "y", "y", "y"});
  table.add_row({"RIPE Atlas", "9,300", "3,333", "181", "6 years", "y", "y", "y",
                 "y"});
  std::cout << table.render();
  std::cout << "\nNote: our measured coverage scales with the --scale argument ("
            << options.scale << " here); ratios, not absolute counts, are the\n"
               "comparison target. The proxy-based approach cannot send ICMP.\n";
  return 0;
}
