// Stable hashing used for persistent identifiers (zIDs, certificate key
// fingerprints). Not cryptographic; stability across runs and platforms is
// the requirement.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tft::util {

/// 64-bit FNV-1a.
std::uint64_t fnv1a64(std::string_view data) noexcept;

/// Combine two 64-bit hashes (boost-style mix).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// Short stable identifier string ("a1b2c3d4e5f60708") from arbitrary input.
std::string stable_id(std::string_view input);

}  // namespace tft::util
