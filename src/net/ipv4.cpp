#include "tft/net/ipv4.hpp"

#include <charconv>

#include "tft/util/strings.hpp"

namespace tft::net {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {
Result<std::uint32_t> parse_decimal(std::string_view text, std::uint32_t max) {
  if (text.empty() || text.size() > 10) {
    return make_error(ErrorCode::kParseError, "empty or oversized number");
  }
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(ErrorCode::kParseError, "invalid number: " + std::string(text));
  }
  if (value > max) {
    return make_error(ErrorCode::kParseError, "number out of range: " + std::string(text));
  }
  return value;
}
}  // namespace

Result<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    return make_error(ErrorCode::kParseError,
                      "expected 4 octets in '" + std::string(text) + "'");
  }
  std::uint32_t value = 0;
  for (const auto part : parts) {
    auto octet = parse_decimal(part, 255);
    if (!octet) return octet.error();
    value = (value << 8) | *octet;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  return std::to_string((value_ >> 24) & 0xFF) + '.' +
         std::to_string((value_ >> 16) & 0xFF) + '.' +
         std::to_string((value_ >> 8) & 0xFF) + '.' +
         std::to_string(value_ & 0xFF);
}

Result<Ipv4Prefix> Ipv4Prefix::make(Ipv4Address address, int length) {
  if (length < 0 || length > 32) {
    return make_error(ErrorCode::kInvalidArgument,
                      "prefix length must be in [0,32], got " + std::to_string(length));
  }
  const std::uint32_t mask = length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
  return Ipv4Prefix(Ipv4Address(address.value() & mask), length);
}

Result<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    return make_error(ErrorCode::kParseError, "missing '/' in prefix");
  }
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return address.error();
  auto length = parse_decimal(text.substr(slash + 1), 32);
  if (!length) return length.error();
  return make(*address, static_cast<int>(*length));
}

Result<Ipv4Address> Ipv4Prefix::host(std::uint64_t n) const {
  if (n >= size()) {
    return make_error(ErrorCode::kOutOfRange,
                      "host index " + std::to_string(n) + " outside " + to_string());
  }
  return Ipv4Address(network_.value() + static_cast<std::uint32_t>(n));
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + '/' + std::to_string(length_);
}

}  // namespace tft::net
