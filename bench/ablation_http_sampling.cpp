// Ablation (§5.1): the paper samples 3 nodes per AS and "returns to the AS"
// when a modification is found. This bench compares that adaptive strategy
// against uniform random sampling with a comparable measurement budget:
// adaptive sampling finds far more affected nodes per modified AS, which is
// what makes Table 6/7's per-AS attribution possible.
#include "common.hpp"

#include "tft/util/strings.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.05);
  const auto base = tft::bench::study_config(options);

  struct Run {
    const char* label;
    int per_as;
    int expanded;
  };
  // "Uniform" = no expansion, generous per-AS cap (approximates random
  // sampling with the same session budget).
  const Run runs[] = {
      {"adaptive 3/AS + expand (paper)", 3, 60},
      {"uniform, no expansion", 3, 3},
  };

  std::cout << tft::stats::banner("Ablation: HTTP sampling strategy");
  tft::stats::Table table({"Strategy", "Measured", "HTML modified", "Image modified",
                           "Transcoder ASes found", "Injection signatures"});
  for (const auto& run : runs) {
    auto world = tft::world::build_world(tft::world::paper_spec(), options.scale,
                                         options.seed);
    auto probe_config = base.http;
    probe_config.nodes_per_as = run.per_as;
    probe_config.expanded_nodes_per_as = run.expanded;
    tft::core::HttpModificationProbe probe(*world, probe_config);
    probe.run();
    const auto report =
        tft::core::analyze_http(*world, probe.observations(), base.http_analysis);
    table.add_row({run.label, tft::util::format_count(report.total_nodes),
                   tft::util::format_count(report.html_modified),
                   tft::util::format_count(report.image_modified),
                   std::to_string(report.transcoders.size()),
                   std::to_string(report.injections.size())});
  }
  std::cout << table.render() << "\n";
  std::cout << "Reading: without expansion, per-AS evidence stays at <=3 nodes\n"
               "and most Table 7 carriers never clear the >=10-node reporting\n"
               "threshold.\n";
  return 0;
}
