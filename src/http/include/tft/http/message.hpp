// HTTP/1.1 request/response model with wire-format serialization and a
// strict parser (request-line / status-line, CRLF header block,
// Content-Length-framed bodies).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "tft/http/headers.hpp"
#include "tft/http/url.hpp"
#include "tft/util/result.hpp"

namespace tft::http {

enum class Method {
  kGet,
  kHead,
  kPost,
  kConnect,
};

std::string_view to_string(Method method) noexcept;
util::Result<Method> parse_method(std::string_view text);

struct Request {
  Method method = Method::kGet;
  /// Request target exactly as it appears on the request line. For proxy
  /// requests this is the absolute URL; for origin requests, the path.
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// Build a GET for an absolute URL in proxy form (absolute target +
  /// Host header), as Luminati clients issue them.
  static Request proxy_get(const Url& url);

  /// Build a GET in origin form ("GET /path").
  static Request origin_get(const Url& url);

  /// Build a CONNECT request ("CONNECT host:443").
  static Request connect(std::string_view host, std::uint16_t port);

  /// Parse the target as an absolute URL (proxy form).
  util::Result<Url> target_url() const;

  std::string serialize() const;
  static util::Result<Request> parse(std::string_view wire);
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  static Response make(int status, std::string_view reason, std::string body = {},
                       std::string_view content_type = "text/html");

  static Response not_found();
  static Response bad_gateway(std::string_view detail);

  std::string serialize() const;

  /// Serialize with "Transfer-Encoding: chunked" framing, splitting the
  /// body into chunks of at most `chunk_size` bytes.
  std::string serialize_chunked(std::size_t chunk_size = 4096) const;

  /// Parses both Content-Length and chunked framing (the parser re-joins
  /// chunked bodies and strips the Transfer-Encoding header).
  static util::Result<Response> parse(std::string_view wire);
};

/// Decode a chunked-encoded body (everything after the header block).
/// Returns the joined payload; rejects malformed chunk sizes, missing CRLFs
/// and missing terminators. Trailers are not supported (rejected).
util::Result<std::string> decode_chunked_body(std::string_view wire);

/// Encode a payload with chunked framing.
std::string encode_chunked_body(std::string_view payload, std::size_t chunk_size);

/// Standard reason phrase for common status codes ("OK", "Not Found", ...).
std::string_view reason_phrase(int status) noexcept;

}  // namespace tft::http
