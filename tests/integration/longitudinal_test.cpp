// Longitudinal measurement: deploy and retire a hijacking box between
// rounds and check the time series picks the change up — the §9
// continuous-measurement use case.
#include <gtest/gtest.h>

#include "tft/core/longitudinal.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

TEST(LongitudinalTest, DetectsDeploymentAndRetirement) {
  auto world = world::build_world(world::mini_spec(), 1.0, 808);
  ASSERT_TRUE(world->isp_resolvers.contains("US ISP 1"));

  LongitudinalConfig config;
  config.rounds = 5;
  config.interval = sim::Duration::hours(24 * 7);
  config.probe.target_nodes = 0;
  config.probe.stall_limit = 1500;
  config.analysis.min_nodes_per_server = 5;
  config.analysis.min_nodes_per_country = 30;

  LongitudinalDnsStudy study(*world, config);
  // Rounds 0-1: baseline. Before round 2: "US ISP 1" deploys a search-assist
  // box. Before round 4: it retires it.
  study.set_between_rounds([](int next_round, world::World& w) {
    if (next_round == 2) {
      const std::size_t changed = w.set_isp_hijack(
          "US ISP 1",
          dns::NxdomainHijackPolicy{net::Ipv4Address(203, 0, 113, 199), 60, 1.0});
      ASSERT_GT(changed, 0u);
    }
    if (next_round == 4) {
      ASSERT_GT(w.set_isp_hijack("US ISP 1", std::nullopt), 0u);
    }
  });

  const auto rounds = study.run();
  ASSERT_EQ(rounds.size(), 5u);

  // Baseline rounds agree with each other and don't list US ISP 1.
  EXPECT_FALSE(rounds[0].isp_listed("US ISP 1"));
  EXPECT_FALSE(rounds[1].isp_listed("US ISP 1"));
  // Deployment visible in rounds 2-3.
  EXPECT_TRUE(rounds[2].isp_listed("US ISP 1"));
  EXPECT_TRUE(rounds[3].isp_listed("US ISP 1"));
  EXPECT_GT(rounds[2].ratio, rounds[0].ratio + 0.02);
  // Retirement visible in round 4.
  EXPECT_FALSE(rounds[4].isp_listed("US ISP 1"));
  EXPECT_LT(rounds[4].ratio, rounds[2].ratio);

  // The original hijackers (Verizon) are present throughout.
  for (const auto& round : rounds) {
    EXPECT_TRUE(round.isp_listed("Verizon")) << "round " << round.round;
  }

  const std::string rendered = render_longitudinal(rounds);
  EXPECT_NE(rendered.find("US ISP 1"), std::string::npos);
  EXPECT_NE(rendered.find("R4"), std::string::npos);
}

TEST(LongitudinalTest, StableWorldGivesStableSeries) {
  auto world = world::build_world(world::mini_spec(), 1.0, 809);
  LongitudinalConfig config;
  config.rounds = 3;
  config.probe.target_nodes = 0;
  config.probe.stall_limit = 1500;
  LongitudinalDnsStudy study(*world, config);
  const auto rounds = study.run();
  ASSERT_EQ(rounds.size(), 3u);
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    // Same world, fresh crawls: rates agree within a small band.
    EXPECT_NEAR(rounds[i].ratio, rounds[0].ratio, 0.02) << i;
    EXPECT_GT(rounds[i].time, rounds[i - 1].time);
  }
}

}  // namespace
}  // namespace tft::core
