// Canonical wire format for flight-recorder transactions.
//
// One transaction encodes to exactly one line of JSON (no embedded
// newlines); a trace file is NDJSON — one line per transaction, in
// recorder order. Encoding is canonical: the same TxnRecord always
// produces the same bytes (fixed field order, "0x…" lower-case hex for
// all 64-bit values — JSON doubles cannot round-trip uint64, same
// convention as util::StreamCheckpoint). Decoding is strict: unknown
// format tags, versions, hop names, or malformed hex fail with a clean
// Result. decode(encode(x)) == x for every value — the trace_codec fuzz
// target enforces this differentially.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tft/obs/recorder.hpp"
#include "tft/util/result.hpp"

namespace tft::obs {

/// Format tag + version carried on every line, so a trace file survives
/// being split, sampled, or concatenated.
inline constexpr std::string_view kTraceFormatTag = "tft-txn";
inline constexpr std::int64_t kTraceFormatVersion = 1;

/// One transaction -> one canonical JSON line (no trailing newline).
std::string encode_txn(const TxnRecord& record);

/// Strict inverse of encode_txn.
util::Result<TxnRecord> decode_txn(std::string_view line);

/// Serialize records to NDJSON (one encode_txn line each, '\n'-terminated).
std::string encode_trace(const std::vector<TxnRecord>& records);

/// Parse an NDJSON trace document. Blank lines are ignored; any malformed
/// line fails the whole parse (with its 1-based line number in the error).
util::Result<std::vector<TxnRecord>> decode_trace(std::string_view text);

}  // namespace tft::obs
