#include "tft/util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace tft::util {

std::vector<std::string_view> split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      return out;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_nonempty(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  for (auto piece : split(input, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view input) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!input.empty() && is_space(static_cast<unsigned char>(input.front()))) {
    input.remove_prefix(1);
  }
  while (!input.empty() && is_space(static_cast<unsigned char>(input.back()))) {
    input.remove_suffix(1);
  }
  return input;
}

std::string to_lower(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](unsigned char x, unsigned char y) {
           return std::tolower(x) == std::tolower(y);
         });
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = to_lower(haystack);
  const std::string n = to_lower(needle);
  return h.find(n) != std::string::npos;
}

std::string hex_encode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

}  // namespace tft::util
