#include "tft/middlebox/http_modifiers.hpp"

#include "tft/http/content.hpp"
#include "tft/obs/metrics.hpp"
#include "tft/obs/recorder.hpp"
#include "tft/util/strings.hpp"

namespace tft::middlebox {

namespace {

bool is_html(const http::Response& response) {
  const auto type = response.headers.get("Content-Type");
  return type && util::icontains(*type, "text/html");
}

bool is_simg(const http::Response& response) {
  const auto type = response.headers.get("Content-Type");
  return type && util::icontains(*type, "image/simg");
}

/// Flight-recorder hook: name the box that fired on the open transaction.
void record_violation(FetchContext& context, std::string_view actor,
                      std::string_view action, std::string_view detail) {
  if (context.recorder == nullptr) return;
  const std::uint64_t now =
      context.clock == nullptr
          ? 0
          : static_cast<std::uint64_t>(context.clock->now().micros);
  context.recorder->violation(obs::Hop::kMiddlebox, actor, action, detail, now);
}

}  // namespace

std::string inject_before_body_end(std::string html, std::string_view snippet) {
  const auto pos = html.rfind("</body>");
  if (pos == std::string::npos) {
    html.append(snippet);
    return html;
  }
  html.insert(pos, snippet);
  return html;
}

http::Response HtmlInjector::after_response(const http::Request& request,
                                            http::Response response,
                                            FetchContext& context) {
  (void)request;
  if (response.status != 200 || !is_html(response)) return response;
  if (response.body.size() < config_.min_body_bytes) return response;
  if (context.rng != nullptr && !context.rng->chance(config_.probability)) {
    return response;
  }
  response.body = inject_before_body_end(std::move(response.body), config_.snippet);
  response.headers.set("Content-Length", std::to_string(response.body.size()));
  if (context.metrics != nullptr) context.metrics->add("middlebox.html_injections");
  record_violation(context, name(), "inject-html",
                   "snippet " + std::to_string(config_.snippet.size()) + "B");
  return response;
}

http::Response ImageTranscoder::after_response(const http::Request& request,
                                               http::Response response,
                                               FetchContext& context) {
  (void)request;
  if (response.status != 200 || !is_simg(response)) return response;
  if (context.rng != nullptr && !context.rng->chance(config_.probability)) {
    return response;
  }
  auto transcoded = http::transcode_simg(response.body, config_.quality);
  if (!transcoded) return response;  // not a valid image; leave untouched
  response.body = std::move(*transcoded);
  response.headers.set("Content-Length", std::to_string(response.body.size()));
  if (context.metrics != nullptr) context.metrics->add("middlebox.image_transcodes");
  record_violation(context, name(), "transcode-image",
                   "quality " + std::to_string(static_cast<int>(config_.quality)));
  return response;
}

http::Response ObjectReplacer::after_response(const http::Request& request,
                                              http::Response response,
                                              FetchContext& context) {
  (void)request;
  const auto type = response.headers.get("Content-Type");
  if (!type || !util::icontains(*type, config_.match_content_type)) {
    return response;
  }
  http::Response replaced = http::Response::make(
      config_.status, http::reason_phrase(config_.status), config_.replacement_body);
  if (context.metrics != nullptr) context.metrics->add("middlebox.object_replacements");
  record_violation(context, name(), "replace-object", config_.match_content_type);
  return replaced;
}

std::optional<http::Response> ContentBlocker::before_request(
    const http::Request& request, FetchContext& context) {
  (void)request;
  if (context.metrics != nullptr) context.metrics->add("middlebox.block_pages");
  record_violation(context, name(), "block-request",
                   "status " + std::to_string(config_.status));
  return http::Response::make(config_.status, http::reason_phrase(config_.status),
                              config_.block_page_html);
}

http::Response intercepted_fetch(const HttpInterceptorList& chain,
                                 const http::Request& request, FetchContext& context) {
  for (const auto& interceptor : chain) {
    if (auto short_circuit = interceptor->before_request(request, context)) {
      return *std::move(short_circuit);
    }
  }

  // The request reaches the origin after any accumulated hold; the log
  // timestamp at the server reflects that arrival time.
  const sim::Instant arrival = context.clock->now() + context.request_hold;
  http::Response response = context.web->fetch(context.destination, request,
                                               context.client_address, arrival);

  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    response = (*it)->after_response(request, std::move(response), context);
  }
  return response;
}

}  // namespace tft::middlebox
