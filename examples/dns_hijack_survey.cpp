// Example: a focused DNS NXDOMAIN-hijacking survey against a *custom*
// scenario built with the public WorldSpec API — the workflow a researcher
// would use to model a regional ISP under study and validate the detector
// against it.
#include <iostream>

#include "tft/core/study.hpp"
#include "tft/stats/table.hpp"
#include "tft/util/strings.hpp"
#include "tft/world/world.hpp"

using namespace tft;  // NOLINT — example brevity

int main() {
  // 1. Describe the scenario: one honest ISP, one ISP whose resolvers
  //    rewrite NXDOMAIN into an ad page, and one transparent path box that
  //    hijacks even users who configured Google DNS.
  world::WorldSpec spec;
  spec.countries = {
      {"NL", 1200, 0, 3, 2, /*google=*/0.15, /*public=*/0.05},
      {"BE", 800, 0, 2, 2, 0.15, 0.05},
  };
  spec.isp_resolver_hijackers = {
      {"Lowland Telecom", "NL", /*dns_servers=*/4, /*nodes=*/400,
       "zoekhulp.lowland-telecom.nl", /*shared_vendor_js=*/false},
  };
  spec.path_hijackers = {
      {"Lowland Telecom", "NL", /*google_dns_nodes=*/30,
       "zoekhulp.lowland-telecom.nl", /*as_spread=*/1},
  };
  spec.host_dns_hijackers = {
      {"SafeSearch Toolbar", "results.safesearch-toolbar.example", 12, 6, 2},
  };
  spec.public_resolver_hijackers = {
      {"AdDNS", 2, 40, "search.addns.example", true},
  };
  spec.scattered_google_hijack_nodes = 0;
  spec.clean_public_resolvers = 8;
  spec.adware_install_boost = 1.0;
  spec.adware.clear();
  spec.transcoders.clear();
  spec.cert_replacers.clear();
  spec.monitors.clear();
  spec.tail_monitor_groups = 0;
  spec.blockpage_nodes = 0;
  spec.js_error_nodes = 0;
  spec.css_error_nodes = 0;
  spec.https.popular_sites_per_country = 3;
  spec.https.countries_with_rankings = 2;
  spec.https.universities = {"example.edu"};

  auto world = world::build_world(spec, /*scale=*/1.0, /*seed=*/7);
  std::cout << "Scenario: " << world->luminati->node_count() << " exit nodes in "
            << world->topology.as_count() << " ASes\n\n";

  // 2. Run the §4 methodology: the d1/d2 probe through every exit node.
  core::DnsProbeConfig probe_config;
  probe_config.target_nodes = 0;  // exhaustive
  core::DnsHijackProbe probe(*world, probe_config);
  const std::size_t measured = probe.run();

  // 3. Analyze with thresholds suited to the scenario size.
  core::DnsAnalysisConfig analysis;
  analysis.min_nodes_per_country = 50;
  analysis.min_nodes_per_server = 5;
  analysis.min_nodes_per_url = 2;
  analysis.host_software_as_threshold = 3;
  const auto report = core::analyze_dns(*world, probe.observations(), analysis);

  std::cout << "measured " << measured << " nodes via "
            << probe.sessions_issued() << " proxy sessions\n";
  std::cout << core::render_dns_report(report) << "\n";

  // 4. Validate against ground truth — the advantage of a simulated world.
  std::size_t truth_hijacked = world->truth.count([](const world::NodeTruth& t) {
    return t.dns_hijack != world::DnsHijackSource::kNone;
  });
  std::cout << "ground truth: " << truth_hijacked << " nodes were configured to "
            << "be hijacked; the probe flagged " << report.hijacked_nodes
            << " (plus " << report.filtered_nodes
            << " unmeasurable Google-overlap nodes).\n";
  return 0;
}
