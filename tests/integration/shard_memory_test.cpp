// The memory-ceiling contract: a sharded study's peak RSS is O(shard), not
// O(world). Each leg runs in a forked child — fork resets the child's VmHWM
// high-water mark to the fork-point RSS (dup_mm), so a child's VmHWM growth
// measures exactly its own study and the two legs cannot contaminate each
// other. The materialized leg must provably exceed the sharded leg's
// ceiling; the residency gauges must stay within the advertised budget.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "tft/core/study.hpp"
#include "tft/world/spec.hpp"

namespace tft::core {
namespace {

long vm_hwm_kb() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) break;
  }
  std::fclose(file);
  return kb;
}

/// Bounded crawl over the paper population: the probe bookkeeping stays
/// fixed while the world scales, so node-table memory dominates the
/// materialized leg.
constexpr double kScale = 0.2;
constexpr std::size_t kTargetNodes = 1000;

/// Runs one study leg in a forked child and returns the child's VmHWM
/// growth in KB (-1 on any failure).
long study_hwm_delta_kb(bool shard_mem) {
  int fds[2];
  if (pipe(fds) != 0) return -1;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    close(fds[0]);
    const long before = vm_hwm_kb();
    StudyConfig config = StudyConfig::for_scale(kScale, kTargetNodes);
    config.jobs = 1;
    config.shard_mem = shard_mem;
    const StudyResult result =
        run_study(world::paper_spec(), kScale, 2016, config);
    // Touch the result so the build cannot elide the study.
    long delta = vm_hwm_kb() - before;
    if (before < 0 || result.coverage.empty()) delta = -1;
    const ssize_t written = write(fds[1], &delta, sizeof(delta));
    close(fds[1]);
    _exit(written == sizeof(delta) ? 0 : 1);
  }
  close(fds[1]);
  long delta = -1;
  const ssize_t got = read(fds[0], &delta, sizeof(delta));
  close(fds[0]);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return -1;
  return got == sizeof(delta) ? delta : -1;
}

TEST(ShardMemoryTest, ShardedPeakRssStaysWellBelowMaterialized) {
  const long materialized_kb = study_hwm_delta_kb(false);
  const long sharded_kb = study_hwm_delta_kb(true);
  ASSERT_GT(materialized_kb, 0);
  ASSERT_GT(sharded_kb, 0);
  // Measured headroom is ~4.5x at this scale; 2x keeps the regression gate
  // tight without flaking on allocator noise.
  EXPECT_GT(materialized_kb, 2 * sharded_kb)
      << "materialized=" << materialized_kb << "KB sharded=" << sharded_kb
      << "KB";
}

TEST(ShardMemoryTest, ResidencyGaugesStayWithinTheAdvertisedBudget) {
  StudyConfig config = StudyConfig::for_scale(0.6, 200);
  config.shard_mem = true;
  config.shards = 16;
  const StudyResult result = run_study(world::mini_spec(), 0.6, 2016, config);

  const std::int64_t nodes = result.metrics.gauge("world.nodes");
  const std::int64_t capacity = result.metrics.gauge("world.shard.capacity");
  const std::int64_t peak = result.metrics.gauge("world.shard.resident_peak");
  const std::int64_t peak_bytes =
      result.metrics.gauge("world.bytes.peak_shard");
  const std::int64_t node_bytes = result.metrics.gauge("world.bytes.nodes");

  ASSERT_GT(nodes, 0);
  EXPECT_EQ(result.metrics.gauge("world.shard.count"), 16);
  EXPECT_EQ(capacity, (nodes + 15) / 16);
  EXPECT_GT(peak, 0);
  EXPECT_LE(peak, capacity);
  EXPECT_EQ(peak_bytes, peak * 512);
  // The cache ceiling is one shard of the full table (the same 512-byte
  // per-node accounting on both sides), so the gauges are comparable.
  EXPECT_LE(peak_bytes * 8, node_bytes);
}

}  // namespace
}  // namespace tft::core
