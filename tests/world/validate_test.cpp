#include "tft/world/validate.hpp"

#include <gtest/gtest.h>

namespace tft::world {
namespace {

TEST(ValidateTest, EmptyWorldReportsMissingPieces) {
  World world;
  const auto problems = validate(world);
  ASSERT_FALSE(problems.empty());
  // The first problems name the missing infrastructure.
  bool mentions_proxy = false;
  for (const auto& problem : problems) {
    mentions_proxy = mentions_proxy || problem.find("proxy") != std::string::npos;
  }
  EXPECT_TRUE(mentions_proxy);
}

TEST(ValidateTest, BuiltWorldIsClean) {
  const auto world = build_world(mini_spec(), 0.5, 321);
  const auto problems = validate(*world);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(ValidateTest, CorruptedNetblocksDetected) {
  auto world = build_world(mini_spec(), 0.5, 321);
  world->google_netblocks.clear();
  const auto problems = validate(*world);
  ASSERT_FALSE(problems.empty());
  bool mentions_netblocks = false;
  for (const auto& problem : problems) {
    mentions_netblocks =
        mentions_netblocks || problem.find("netblock") != std::string::npos;
  }
  EXPECT_TRUE(mentions_netblocks);
}

TEST(ValidateTest, ForeignSiteChainDetected) {
  auto world = build_world(mini_spec(), 0.5, 321);
  // Swap one popular site's recorded genuine chain for another's: the
  // endpoint now presents a chain that doesn't match the record.
  ASSERT_GE(world->https_sites.size(), 2u);
  std::swap(world->https_sites[0].genuine_chain, world->https_sites[1].genuine_chain);
  // The invariant "endpoint presents the genuine chain" is only checked via
  // verification outcomes, so swap across site classes to break validity.
  const auto problems = validate(*world);
  // Swapping two same-class valid chains keeps verification passing for
  // the wrong hostname only if SANs match — they don't, so this reports.
  EXPECT_FALSE(problems.empty());
}

}  // namespace
}  // namespace tft::world
