// Composition invariance: because every sampler draws from a keyed
// counter-based stream (util::StreamRng) instead of a shared sequential
// RNG, a probe's results are a pure function of (world, probe config) —
// running other probes before it on the same world must not shift a
// single draw. These tests byte-compare canonical rendered reports across
// run orders on identically-built worlds.
//
// The clock-advancing monitor probe always runs last: starting a crawl at
// a different simulated time is a semantically different experiment
// (session expiry, monitor windows), not draw-order contamination.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "tft/core/http_probe.hpp"
#include "tft/core/https_probe.hpp"
#include "tft/core/monitor_probe.hpp"
#include "tft/core/smtp_probe.hpp"
#include "tft/core/study.hpp"
#include "tft/obs/trace_codec.hpp"
#include "tft/world/world.hpp"

namespace tft::core {
namespace {

std::unique_ptr<world::World> make_world() {
  return world::build_world(world::mini_spec(), 1.0, 555);
}

std::string run_dns(world::World& world) {
  DnsProbeConfig config;
  config.target_nodes = 400;
  config.stall_limit = 2000;
  DnsHijackProbe probe(world, config);
  probe.run();
  return render_dns_report(analyze_dns(world, probe.observations(), {}));
}

std::string run_http(world::World& world) {
  HttpProbeConfig config;
  config.max_nodes = 400;
  config.stall_limit = 2000;
  HttpModificationProbe probe(world, config);
  probe.run();
  return render_http_report(analyze_http(world, probe.observations(), {}));
}

std::string run_https(world::World& world) {
  HttpsProbeConfig config;
  config.target_nodes = 300;
  config.stall_limit = 2000;
  CertReplacementProbe probe(world, config);
  probe.run();
  return render_https_report(analyze_https(world, probe.observations(), {}));
}

std::string run_smtp(world::World& world) {
  SmtpProbeConfig config;
  config.target_nodes = 300;
  config.stall_limit = 2000;
  SmtpProbe probe(world, config);
  probe.run();
  return render_smtp_report(analyze_smtp(world, probe.observations(), {}));
}

std::string run_monitor(world::World& world) {
  MonitorProbeConfig config;
  config.target_nodes = 200;
  config.stall_limit = 1500;
  ContentMonitorProbe probe(world, config);
  probe.run();
  return render_monitor_report(
      analyze_monitoring(world, probe.observations(), {}));
}

TEST(CompositionInvarianceTest, DnsReportIdenticalAloneAndAfterOtherProbes) {
  auto alone = make_world();
  const std::string baseline = run_dns(*alone);
  ASSERT_FALSE(baseline.empty());

  auto after_http = make_world();
  run_http(*after_http);
  EXPECT_EQ(run_dns(*after_http), baseline);

  auto after_many = make_world();
  run_smtp(*after_many);
  run_https(*after_many);
  run_http(*after_many);
  EXPECT_EQ(run_dns(*after_many), baseline);
}

TEST(CompositionInvarianceTest, EveryProbeInvariantUnderReordering) {
  auto forward = make_world();
  const std::string dns_forward = run_dns(*forward);
  const std::string http_forward = run_http(*forward);
  const std::string https_forward = run_https(*forward);
  const std::string smtp_forward = run_smtp(*forward);
  const std::string monitor_forward = run_monitor(*forward);

  auto reversed = make_world();
  const std::string smtp_reversed = run_smtp(*reversed);
  const std::string https_reversed = run_https(*reversed);
  const std::string http_reversed = run_http(*reversed);
  const std::string dns_reversed = run_dns(*reversed);
  const std::string monitor_reversed = run_monitor(*reversed);

  EXPECT_EQ(dns_reversed, dns_forward);
  EXPECT_EQ(http_reversed, http_forward);
  EXPECT_EQ(https_reversed, https_forward);
  EXPECT_EQ(smtp_reversed, smtp_forward);
  EXPECT_EQ(monitor_reversed, monitor_forward);
}

// The flight-recorder side of the same contract: a probe's transaction
// chains — ids, events, verdicts, blamed culprits — are a pure function of
// (world, probe config). Encoded as canonical NDJSON so a single shifted
// draw or timestamp shows up as a byte diff.
std::string trace_of_kind(const world::World& world, std::string_view kind) {
  std::vector<obs::TxnRecord> records;
  for (const auto& record : world.recorder.records()) {
    if (record.kind == kind) records.push_back(record);
  }
  return obs::encode_trace(records);
}

TEST(CompositionInvarianceTest, DnsTraceChainsIdenticalAloneAndAfterOtherProbes) {
  auto alone = make_world();
  run_dns(*alone);
  const std::string baseline = trace_of_kind(*alone, "dns");
  ASSERT_FALSE(baseline.empty());

  auto after_many = make_world();
  run_smtp(*after_many);
  run_https(*after_many);
  run_http(*after_many);
  run_dns(*after_many);
  EXPECT_EQ(trace_of_kind(*after_many, "dns"), baseline);
}

TEST(CompositionInvarianceTest, HttpsTraceChainsIdenticalUnderReordering) {
  auto forward = make_world();
  run_http(*forward);
  run_https(*forward);
  const std::string baseline = trace_of_kind(*forward, "https");
  ASSERT_FALSE(baseline.empty());

  auto reversed = make_world();
  run_https(*reversed);
  run_http(*reversed);
  EXPECT_EQ(trace_of_kind(*reversed, "https"), baseline);
}

TEST(CompositionInvarianceTest, TxnIdsUniqueAcrossTheWholeStudy) {
  // txn_ids derive from per-probe stream keys with distinct probe seeds, so
  // no two transactions — within or across experiments — may collide.
  auto world = make_world();
  run_dns(*world);
  run_http(*world);
  run_https(*world);
  run_smtp(*world);
  run_monitor(*world);

  std::set<std::uint64_t> seen;
  for (const auto& record : world->recorder.records()) {
    EXPECT_TRUE(seen.insert(record.txn_id).second)
        << "duplicate txn_id " << record.txn_id << " (" << record.kind << ")";
  }
  EXPECT_GT(seen.size(), 100u);
}

TEST(CompositionInvarianceTest, EveryCountedDnsViolationCarriesEvidence) {
  auto world = make_world();
  DnsProbeConfig config;
  config.target_nodes = 400;
  config.stall_limit = 2000;
  DnsHijackProbe probe(*world, config);
  probe.run();
  const DnsReport report = analyze_dns(*world, probe.observations(), {});
  ASSERT_GT(report.hijacked_nodes, 0u);

  // One evidence ref per counted violation, and each ref must resolve to a
  // recorded chain with the matching verdict and a blamed culprit.
  const auto hijacked = report.evidence.find("hijacked");
  ASSERT_NE(hijacked, report.evidence.end());
  EXPECT_EQ(hijacked->second.size(), report.hijacked_nodes);
  for (const std::uint64_t txn_id : hijacked->second) {
    const obs::TxnRecord* record = world->recorder.find(txn_id);
    ASSERT_NE(record, nullptr) << "evidence txn not in recorder";
    EXPECT_EQ(record->verdict, "hijacked");
    EXPECT_FALSE(record->culprit.empty())
        << "hijacked chain must name the resolver that rewrote NXDOMAIN";
    EXPECT_FALSE(record->events.empty());
  }
}

}  // namespace
}  // namespace tft::core
