#include "tft/net/client/chaos.hpp"

#include "tft/http/url.hpp"
#include "tft/net/server/framing.hpp"
#include "tft/testing/mutate.hpp"

namespace tft::net::client {

std::string_view to_string(ChaosBehavior behavior) noexcept {
  switch (behavior) {
    case ChaosBehavior::kSlowDrip: return "slow_drip";
    case ChaosBehavior::kMalformedFrame: return "malformed_frame";
    case ChaosBehavior::kHalfCloseTunnel: return "half_close";
    case ChaosBehavior::kResetMidPipeline: return "reset";
    case ChaosBehavior::kIdleHold: return "idle_hold";
  }
  return "unknown";
}

std::vector<std::string> truncated_hello_corpus(std::string_view sni) {
  const std::string wire =
      server::frame(server::encode_tunnel_hello({std::string(sni)}));
  std::vector<std::string> corpus;
  // Every u32 length-prefix boundary: 1, 2, 3, then the full prefix with
  // no payload at all — the exact leftovers a peer that dies mid-write
  // strands in the server's FrameReader.
  for (std::size_t cut = 1; cut <= 4 && cut < wire.size(); ++cut) {
    corpus.push_back(wire.substr(0, cut));
  }
  // Partial-payload cuts: one byte into the payload, halfway, one short.
  const std::size_t payload = wire.size() - 4;
  for (const std::size_t cut : {std::size_t{5}, 4 + payload / 2, wire.size() - 1}) {
    if (cut > 4 && cut < wire.size()) corpus.push_back(wire.substr(0, cut));
  }
  return corpus;
}

std::string malformed_tunnel_frame(util::Rng& rng) {
  const std::string base =
      server::frame(server::encode_tunnel_hello({"chaos.tft-study.net"}));
  switch (rng.uniform(4)) {
    case 0: {
      const auto corpus = truncated_hello_corpus();
      return corpus[rng.index(corpus.size())];
    }
    case 1:
      return testing::mutate_many(base, rng, 1 + rng.uniform(3));
    case 2: {
      // Keep the payload, smash the declared length: zero (empty frames are
      // a protocol error) or absurdly large (oversize guard).
      std::string smashed = base;
      const bool huge = rng.chance(0.5);
      for (std::size_t i = 0; i < 4; ++i) {
        smashed[i] = huge ? static_cast<char>(0xff) : '\0';
      }
      return smashed;
    }
    default: {
      std::string garbage(1 + rng.uniform(32), '\0');
      for (auto& byte : garbage) {
        byte = static_cast<char>(rng.uniform(256));
      }
      return garbage;
    }
  }
}

std::string malformed_http_request(util::Rng& rng) {
  const auto url = http::Url::parse("http://m1.probe.tft-study.net/page.html");
  const std::string base = server::build_proxy_get(*url, {});
  return testing::mutate_many(base, rng, 1 + rng.uniform(3));
}

}  // namespace tft::net::client
