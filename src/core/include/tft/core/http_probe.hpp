// §5: HTTP content modification. Fetch the four reference objects (9 KB
// HTML, 39 KB image, 258 KB JS, 3 KB CSS) through exit nodes and diff
// against ground truth. AS-adaptive sampling per §5.1: three nodes per AS,
// expanded when a modification is found.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tft/world/world.hpp"

namespace tft::core {

struct HttpProbeConfig {
  int nodes_per_as = 3;
  int expanded_nodes_per_as = 40;  // after a hit in the AS
  std::size_t max_nodes = 20000;
  std::size_t stall_limit = 4000;
  std::uint64_t seed = 0x177;
  /// Worker threads for the post-crawl classification pass (signature
  /// extraction, image transcode analysis, error-page detection). Results
  /// are byte-identical for every value.
  std::size_t jobs = 1;
};

struct HttpNodeObservation {
  /// Flight-recorder transaction behind this observation (0 when the world
  /// has no recorder); stable across --jobs and probe composition.
  std::uint64_t txn_id = 0;
  std::string zid;
  net::Ipv4Address exit_address;
  net::Asn asn = 0;
  net::CountryCode country;

  bool html_modified = false;
  bool html_blockpage = false;   // "bandwidth exceeded" / filter pages (§5.2)
  std::string html_signature;    // injected URL host or keyword
  std::size_t html_delta_bytes = 0;

  bool image_modified = false;           // a valid image came back, re-encoded
  bool image_replaced = false;           // not an image at all (block/error page)
  double image_compression_ratio = 1.0;  // modified size / original size
  int image_quality = 0;                 // quality of the received image

  bool js_modified = false;
  bool js_error_page = false;
  bool css_modified = false;
  bool css_error_page = false;

  bool any_modified() const {
    return html_modified || image_modified || js_modified || css_modified;
  }
};

class HttpModificationProbe {
 public:
  HttpModificationProbe(world::World& world, HttpProbeConfig config);

  std::size_t run();

  const std::vector<HttpNodeObservation>& observations() const noexcept {
    return observations_;
  }
  /// Proxy sessions spent, including quota-skipped identification contacts
  /// (the crawl's cost metric).
  std::size_t sessions_issued() const noexcept { return sessions_issued_; }

 private:
  world::World& world_;
  HttpProbeConfig config_;
  std::vector<HttpNodeObservation> observations_;
  std::size_t sessions_issued_ = 0;
};

/// Identify the injected chunk (common-prefix/suffix diff) and derive the
/// signature the paper reports in Table 6: the first embedded URL host, or
/// a distinctive identifier ("var oiasudoj", "AdTaily_Widget_Container").
std::string extract_injection_signature(std::string_view original,
                                        std::string_view modified);

// --- Analysis (§5.2) ---------------------------------------------------------

struct HttpAnalysisConfig {
  std::size_t min_nodes_per_as = 10;
  /// Ratio rounding for "consistent compression ratio" detection (Table 7).
  double ratio_bucket = 0.02;
};

struct InjectionRow {  // Table 6
  std::string signature;
  std::size_t nodes = 0;
  std::size_t countries = 0;
  std::size_t ases = 0;
};

struct TranscodeRow {  // Table 7
  net::Asn asn = 0;
  std::string isp;
  net::CountryCode country;
  std::size_t modified = 0;
  std::size_t total = 0;
  bool mobile_isp = false;
  std::vector<double> ratios;  // distinct observed compression ratios
  double ratio() const {
    return total == 0 ? 0 : static_cast<double>(modified) / total;
  }
};

struct HttpReport {
  std::size_t total_nodes = 0;
  std::size_t unique_ases = 0;
  std::size_t unique_countries = 0;

  std::size_t html_modified = 0;
  std::size_t html_blockpages = 0;
  std::size_t image_modified = 0;
  std::size_t js_modified = 0;
  std::size_t css_modified = 0;
  std::size_t js_error_pages = 0;
  std::size_t css_error_pages = 0;

  std::vector<InjectionRow> injections;   // Table 6
  std::vector<TranscodeRow> transcoders;  // Table 7
  /// Evidence chains: violation category -> flight-recorder txn ids of
  /// every observation counted under it ("0x…" refs in report_json).
  std::map<std::string, std::vector<std::uint64_t>> evidence;
  /// ASes where every measured node received modified HTML (Rimon-style
  /// ISP filtering).
  std::vector<std::pair<net::Asn, std::string>> fully_modified_ases;
};

HttpReport analyze_http(const world::World& world,
                        const std::vector<HttpNodeObservation>& observations,
                        const HttpAnalysisConfig& config);

}  // namespace tft::core
