#include "tft/middlebox/monitor.hpp"

namespace tft::middlebox {

std::optional<http::Response> ContentMonitor::before_request(
    const http::Request& request, FetchContext& context) {
  if (context.rng == nullptr || context.clock == nullptr || context.web == nullptr) {
    return std::nullopt;
  }
  if (profile_.source_addresses.empty() || !context.rng->chance(profile_.probability)) {
    return std::nullopt;
  }

  // Build the re-fetch request once: same URL, the monitor's own identity.
  http::Request refetch = request;
  refetch.headers.set("User-Agent", profile_.user_agent.empty()
                                        ? std::string(profile_.name) + "/scanner"
                                        : profile_.user_agent);

  for (const auto& spec : profile_.refetches) {
    const std::size_t source_index =
        spec.source_index.value_or(context.rng->index(profile_.source_addresses.size()));
    const net::Ipv4Address source =
        profile_.source_addresses[source_index % profile_.source_addresses.size()];

    if (spec.prefetch_probability > 0.0 &&
        context.rng->chance(spec.prefetch_probability)) {
      // Fetch-before-forward: the monitor's request hits the origin now;
      // the user's request is held and arrives hold_s later.
      context.web->fetch(context.destination, refetch, source, context.clock->now());
      context.request_hold =
          context.request_hold + sim::Duration::seconds(spec.hold_s);
      continue;
    }

    const double delay_s =
        spec.min_delay_s >= spec.max_delay_s
            ? spec.min_delay_s
            : context.rng->log_uniform(std::max(spec.min_delay_s, 1e-3),
                                       spec.max_delay_s);
    const http::WebServerRegistry* web = context.web;
    const net::Ipv4Address destination = context.destination;
    sim::EventQueue* clock = context.clock;
    clock->schedule_after(sim::Duration::seconds(delay_s),
                          [web, destination, refetch, source, clock] {
                            web->fetch(destination, refetch, source, clock->now());
                          });
  }
  return std::nullopt;
}

std::optional<http::Response> VpnEgressRewriter::before_request(
    const http::Request& request, FetchContext& context) {
  (void)request;
  if (egress_addresses_.empty()) return std::nullopt;
  std::size_t index = 0;
  if (context.rng != nullptr && egress_addresses_.size() > 1) {
    index = context.rng->index(egress_addresses_.size());
  }
  context.client_address = egress_addresses_[index];
  return std::nullopt;
}

}  // namespace tft::middlebox
