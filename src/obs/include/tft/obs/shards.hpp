// Span-traced sharded parallelism: util::parallel_for_shards plus a
// deterministic trace of the pass in an obs::Registry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tft/obs/metrics.hpp"
#include "tft/util/thread_pool.hpp"

namespace tft::obs {

/// parallel_for_shards wrapped in spans: opens a `label` phase span, runs
/// the pass, then appends one child span per shard **in shard order**. Wall
/// times are recorded into per-shard slots (each shard writes only its
/// own), so the trace has identical shape for every worker count — shard
/// count derives from n alone — and only the wall values vary. Sharded
/// passes are pure compute (the sim clock does not advance), so shard
/// spans carry sim_begin == sim_end == `sim_now`.
template <typename Fn>
void traced_for_shards(Registry& registry, std::string_view label,
                       sim::Instant sim_now, std::size_t n, std::size_t shards,
                       std::size_t jobs, Fn&& fn) {
  if (shards > n) shards = n;
  if (n == 0 || shards == 0) return;  // mirror parallel_for_shards: no-op

  registry.begin_span(label, sim_now);
  struct ShardWall {
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };
  std::vector<ShardWall> walls(shards);
  util::parallel_for_shards(
      n, shards, jobs, [&](std::size_t shard, std::size_t begin, std::size_t end) {
        walls[shard].begin = wall_now_micros();
        fn(shard, begin, end);
        walls[shard].end = wall_now_micros();
      });
  for (std::size_t shard = 0; shard < shards; ++shard) {
    registry.append_span("shard" + std::to_string(shard), sim_now.micros,
                         sim_now.micros, walls[shard].begin, walls[shard].end);
    // Flat per-shard wall timings alongside the spans, so benches can fold
    // a load-balance profile out of the registry without walking the span
    // tree. Wall-clock values: `timing` section only.
    registry.set_timing(
        "shard_ms." + std::string(label) + "." + std::to_string(shard),
        (walls[shard].end - walls[shard].begin) / 1000);
  }
  registry.end_span(sim_now);
}

}  // namespace tft::obs
