#include <gtest/gtest.h>

#include "tft/core/study.hpp"

namespace tft::core {
namespace {

TEST(StudyConfigTest, FullScaleUsesPaperThresholds) {
  const StudyConfig config = StudyConfig::for_scale(1.0, 800000);
  EXPECT_EQ(config.dns_analysis.min_nodes_per_country, 100u);
  EXPECT_EQ(config.dns_analysis.min_nodes_per_server, 10u);
  EXPECT_EQ(config.dns_analysis.min_nodes_per_url, 5u);
  EXPECT_EQ(config.dns_analysis.host_software_as_threshold,
            DnsAnalysisConfig{}.host_software_as_threshold);
  EXPECT_EQ(config.http_analysis.min_nodes_per_as, 10u);
  EXPECT_EQ(config.https_analysis.min_nodes_per_issuer, 5u);
  EXPECT_EQ(config.dns.target_nodes, 800000u);
  EXPECT_EQ(config.http.max_nodes, 800000u);
}

TEST(StudyConfigTest, SmallScalesKeepFloors) {
  const StudyConfig config = StudyConfig::for_scale(0.01, 1000);
  // Thresholds never collapse below usable minimums.
  EXPECT_GE(config.dns_analysis.min_nodes_per_country, 3u);
  EXPECT_GE(config.dns_analysis.min_nodes_per_server, 4u);
  EXPECT_GE(config.dns_analysis.min_nodes_per_url, 2u);
  EXPECT_GE(config.http_analysis.min_nodes_per_as, 3u);
  EXPECT_GE(config.https_analysis.min_nodes_per_issuer, 2u);
  // The host-software AS-spread heuristic relaxes at small scales.
  EXPECT_EQ(config.dns_analysis.host_software_as_threshold, 3u);
}

TEST(StudyConfigTest, ThresholdsScaleMonotonically) {
  const auto small = StudyConfig::for_scale(0.05, 1000);
  const auto large = StudyConfig::for_scale(0.5, 1000);
  EXPECT_LE(small.dns_analysis.min_nodes_per_country,
            large.dns_analysis.min_nodes_per_country);
  EXPECT_LE(small.dns_analysis.min_nodes_per_server,
            large.dns_analysis.min_nodes_per_server);
  EXPECT_LE(small.http_analysis.min_nodes_per_as,
            large.http_analysis.min_nodes_per_as);
}

}  // namespace
}  // namespace tft::core
