// Quickstart: build a small simulated Internet, run all four end-to-end
// violation experiments through the Luminati-style overlay, and print the
// paper-style reports.
//
//   ./quickstart [scale] [target_nodes] [seed]
//
// scale multiplies the paper's node populations (default 0.02 for a fast
// demo); target_nodes caps the crawl per experiment.
#include <cstdlib>
#include <iostream>

#include "tft/core/study.hpp"
#include "tft/world/describe.hpp"
#include "tft/world/world.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  const std::size_t target = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2]))
                                      : 20000;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3]))
                                      : 42;

  std::cout << "Building world (scale=" << scale << ", seed=" << seed << ")...\n";
  const auto world = tft::world::build_world(tft::world::paper_spec(), scale, seed);
  std::cout << tft::world::describe(*world) << "\n";

  const auto config = tft::core::StudyConfig::for_scale(scale, target);
  const auto result = tft::core::run_study(*world, config);

  std::cout << tft::core::render_coverage(result.coverage) << "\n";
  std::cout << tft::core::render_dns_report(result.dns) << "\n";
  std::cout << tft::core::render_http_report(result.http) << "\n";
  std::cout << tft::core::render_https_report(result.https) << "\n";
  std::cout << tft::core::render_monitor_report(result.monitoring) << "\n";
  return 0;
}
