// Certificate authorities: issue leaf and intermediate certificates, build
// chains. Also the forging primitives that interception software uses to
// spoof leaf certificates on the fly (§6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tft/tls/certificate.hpp"

namespace tft::tls {

class CertificateAuthority {
 public:
  /// Create a self-signed root CA.
  static CertificateAuthority make_root(DistinguishedName name, KeyId key,
                                        sim::Instant not_before, sim::Instant not_after);

  /// Create an intermediate CA signed by `parent`.
  static CertificateAuthority make_intermediate(const CertificateAuthority& parent,
                                                DistinguishedName name, KeyId key);

  const Certificate& certificate() const noexcept { return certificate_; }
  KeyId key() const noexcept { return certificate_.public_key; }
  const DistinguishedName& name() const noexcept { return certificate_.subject; }

  struct LeafOptions {
    std::vector<std::string> hosts;        // SANs; first also becomes the CN
    std::optional<sim::Instant> not_before;  // default: CA validity start
    std::optional<sim::Instant> not_after;   // default: CA validity end
    KeyId public_key = 0;                  // 0 = derive from serial
    std::optional<DistinguishedName> subject_override;
  };

  /// Issue a leaf certificate. Serials increase monotonically per CA.
  Certificate issue(const LeafOptions& options);

  /// Chain from a leaf up through this CA (and its parents) to the root,
  /// leaf first.
  CertificateChain chain_for(const Certificate& leaf) const;

 private:
  Certificate certificate_;
  std::vector<Certificate> parents_;  // issuer-first path to (and incl.) root
  std::uint64_t next_serial_ = 1;
};

/// How a TLS interceptor forges replacement leaf certificates. The knobs
/// correspond to behaviours §6.2 observed in real products.
struct ForgeProfile {
  /// Issuer CN etc. placed on forged certs (what Table 8 clusters on).
  DistinguishedName issuer;
  /// The CA key used to sign forged certs (installed in the host's root
  /// store by the product's installer, or not — in which case browsers warn).
  KeyId signing_key = 0;
  /// All forged certs on one host reuse this single public key (every
  /// product but Avast did this).
  bool reuse_public_key = true;
  /// Replace certificates that were originally *invalid* with seemingly
  /// valid ones (Cyberoam/ESET/Kaspersky/McAfee/Fortigate behaviour).
  bool validate_upstream = false;
  /// When validate_upstream is true and the upstream cert was invalid,
  /// forge with this distinct issuer instead (Avast/BitDefender/Dr.Web
  /// use e.g. "... untrusted root"); nullopt = pass invalid through as
  /// a seemingly-valid forgery (the dangerous behaviour).
  std::optional<DistinguishedName> untrusted_issuer;
  /// Copy subject fields from the original leaf (Cloudguard.me malware).
  bool copy_subject_fields = true;
};

/// Forge a replacement leaf for `original` per `profile`. `host_key_seed`
/// identifies the host so that per-host key reuse is stable; `upstream_valid`
/// tells the forger whether verification of the original chain succeeded.
Certificate forge_leaf(const Certificate& original, const ForgeProfile& profile,
                       std::uint64_t host_key_seed, bool upstream_valid,
                       sim::Instant now);

}  // namespace tft::tls
