#include "tft/net/server/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace tft::net::server {

using util::ErrorCode;
using util::make_error;
using util::Result;

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Result<void> EventLoop::init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("eventfd: ") + std::strerror(errno));
  }
  // The wakeup fd drains itself; a poll() interrupted by wake() dispatches
  // nothing and returns to its caller.
  return add(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drained = 0;
    while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
    }
  });
}

Result<void> EventLoop::add(int fd, std::uint32_t events, Handler handler) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  handlers_[fd] = Registration{std::move(handler), next_generation_++};
  return {};
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

int EventLoop::poll(int timeout_ms) {
  epoll_event events[64];
  const int ready = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (ready <= 0) return 0;

  // Snapshot generations first: a handler that closes one connection and
  // accepts another may reuse the same fd number within this round; the
  // stale queued event must not reach the new registration.
  std::vector<std::pair<int, std::uint64_t>> snapshot;
  snapshot.reserve(static_cast<std::size_t>(ready));
  for (int i = 0; i < ready; ++i) {
    const int fd = events[i].data.fd;
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    snapshot.emplace_back(fd, it->second.generation);
  }

  int dispatched = 0;
  for (int i = 0; i < ready; ++i) {
    const int fd = events[i].data.fd;
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    bool fresh = false;
    for (const auto& [snap_fd, snap_gen] : snapshot) {
      if (snap_fd == fd && snap_gen == it->second.generation) {
        fresh = true;
        break;
      }
    }
    if (!fresh) continue;
    if (fd != wake_fd_) ++dispatched;
    // Copy: the handler may remove (and so destroy) its own registration.
    const Handler handler = it->second.handler;
    handler(events[i].events);
  }
  return dispatched;
}

void EventLoop::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto written = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace tft::net::server
