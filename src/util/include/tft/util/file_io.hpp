// Atomic file creation for CLI outputs (--metrics-out, --trace-out,
// golden snapshots): write the full contents to a sibling temp file, then
// rename over the destination. A crashed or killed run can never leave a
// truncated document that poisons downstream diffing — the destination
// either keeps its old bytes or gets the complete new ones.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

#include "tft/util/result.hpp"

namespace tft::util {

/// Write `content` to `path` atomically (temp file + rename). Returns the
/// byte count written, or an error when the temp file cannot be created,
/// written, or renamed into place.
inline Result<std::size_t> write_file_atomic(const std::string& path,
                                             std::string_view content) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return make_error(ErrorCode::kInvalidArgument, "cannot create " + temp);
    }
    file.write(content.data(), static_cast<std::streamsize>(content.size()));
    file.flush();
    if (!file) {
      std::remove(temp.c_str());
      return make_error(ErrorCode::kInternal, "short write to " + temp);
    }
  }
  std::error_code rename_error;
  std::filesystem::rename(temp, path, rename_error);
  if (rename_error) {
    std::remove(temp.c_str());
    return make_error(ErrorCode::kInternal, "cannot rename " + temp + " to " +
                                                path + ": " +
                                                rename_error.message());
  }
  return content.size();
}

}  // namespace tft::util
