// Keyed counter-based random streams (splitmix64 in counter mode).
//
// A StreamRng draw depends only on its key `(study_seed, entity, purpose)`
// and its counter — there is no hidden sequential state shared between
// call sites. That is the property the study pipeline needs for
// composability: the draws one probe or node makes can never shift the
// draws of another, so probe reports are byte-identical whether the probes
// run alone, reordered, or interleaved, and a study can checkpoint a
// stream as `(key, counter)` and resume it exactly.
//
// Key scheme (see DESIGN.md "Randomness discipline"):
//   study_seed — the world/study seed the run was launched with
//   entity     — which node/probe/session/target the stream belongs to
//                (an index, or fnv1a64 of a stable name like a zID)
//   purpose    — fnv1a64 of a short label naming the draw site
//                ("pick", "churn", "country", ...), so one entity can own
//                several independent streams.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tft/util/result.hpp"
#include "tft/util/rng.hpp"

namespace tft::util {

/// fnv1a64 of a draw-site label; exposed so call sites can pre-hash hot
/// purposes once.
std::uint64_t purpose_tag(std::string_view purpose) noexcept;

/// Identity of one stream. Equal keys produce identical streams.
struct StreamKey {
  std::uint64_t study_seed = 0;
  std::uint64_t entity = 0;
  std::uint64_t purpose = 0;

  /// Fold the three components into the 64-bit stream base via chained
  /// splitmix64 finalizations (each component passes through the full
  /// avalanche before the next is mixed in).
  std::uint64_t mixed() const noexcept;

  friend bool operator==(const StreamKey&, const StreamKey&) = default;
};

/// splitmix64 in counter mode: draw i of a stream is
/// `finalize(key.mixed() + (i+1) * golden_gamma)` — O(1) seek, O(1) state,
/// and every draw independent of every other stream's history.
class StreamRng : public RngDistributions<StreamRng> {
 public:
  StreamRng() : StreamRng(StreamKey{}) {}
  StreamRng(std::uint64_t study_seed, std::uint64_t entity,
            std::string_view purpose)
      : StreamRng(StreamKey{study_seed, entity, purpose_tag(purpose)}) {}
  explicit StreamRng(StreamKey key, std::uint64_t counter = 0)
      : key_(key), base_(key.mixed()), counter_(counter) {}

  std::uint64_t next_u64() {
    std::uint64_t state = base_ + counter_ * 0x9E3779B97F4A7C15ULL;
    ++counter_;
    return splitmix64(state);  // adds one more gamma, then finalizes
  }

  const StreamKey& key() const noexcept { return key_; }
  std::uint64_t counter() const noexcept { return counter_; }

  /// Jump to an absolute draw position (0 = stream start).
  void seek(std::uint64_t counter) noexcept { counter_ = counter; }

 private:
  StreamKey key_;
  std::uint64_t base_ = 0;
  std::uint64_t counter_ = 0;
};

/// Derive a plain seed for a legacy sequential `Rng` from stream-key
/// parts. Used where a call site hands randomness to code that expects an
/// `Rng*` (e.g. the middlebox FetchContext): the sequential stream itself
/// is then scoped to one request, so its statefulness cannot leak across
/// requests.
std::uint64_t stream_seed(std::uint64_t study_seed, std::uint64_t entity,
                          std::string_view purpose) noexcept;

// --- Checkpoint wire format --------------------------------------------------
//
// A checkpoint captures where a set of streams (and the loop that drives
// them) stopped, so a study can resume mid-run with byte-identical output.
// 64-bit values are serialized as "0x…" hex strings: JSON numbers are
// doubles and cannot round-trip the full uint64 range.

/// One stream's resumable position, plus a human-readable label naming the
/// sampler it drives (e.g. "round3/country").
struct StreamState {
  std::string label;
  StreamKey key;
  std::uint64_t counter = 0;

  friend bool operator==(const StreamState&, const StreamState&) = default;
};

/// A study checkpoint: the next unit of work (round) to run and the stream
/// positions recorded when the study stopped.
struct StreamCheckpoint {
  std::uint64_t next_round = 0;
  std::vector<StreamState> streams;

  friend bool operator==(const StreamCheckpoint&,
                         const StreamCheckpoint&) = default;
};

/// Serialize to the versioned JSON wire format.
std::string stream_checkpoint_json(const StreamCheckpoint& checkpoint);

/// Parse a checkpoint document. Strict: unknown format tag, unsupported
/// version, missing fields, or malformed hex all fail with a clean error.
Result<StreamCheckpoint> parse_stream_checkpoint(std::string_view text);

}  // namespace tft::util
