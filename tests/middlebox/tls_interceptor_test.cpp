#include "tft/middlebox/tls_interceptor.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace tft::middlebox {
namespace {

class TlsInterceptorTest : public ::testing::Test {
 protected:
  TlsInterceptorTest()
      : root_(tls::CertificateAuthority::make_root(
            {"Public Root", "Trust", "US"}, 100,
            sim::Instant::epoch() - sim::Duration::hours(24),
            sim::Instant::epoch() + sim::Duration::hours(24 * 3650))) {
    roots_.add(root_.certificate());
    context_.clock = &clock_;
    context_.rng = &rng_;
  }

  tls::CertificateChain valid_chain(const std::string& host) {
    tls::CertificateAuthority::LeafOptions options;
    options.hosts = {host};
    return root_.chain_for(root_.issue(options));
  }

  tls::CertificateChain expired_chain(const std::string& host) {
    tls::CertificateAuthority::LeafOptions options;
    options.hosts = {host};
    options.not_before = sim::Instant::epoch() - sim::Duration::hours(48);
    options.not_after = sim::Instant::epoch() - sim::Duration::hours(24);
    return root_.chain_for(root_.issue(options));
  }

  CertReplacer::Config av_config(const std::string& name = "Kaspersky") {
    CertReplacer::Config config;
    config.name = name;
    config.forge.issuer = {name + " Root", name, "US"};
    config.forge.signing_key = 4242;
    config.forge.reuse_public_key = true;
    return config;
  }

  tls::CertificateAuthority root_;
  tls::RootStore roots_;
  sim::EventQueue clock_;
  util::Rng rng_{3};
  FetchContext context_;
};

TEST_F(TlsInterceptorTest, ReplacesLeafWithForgedOne) {
  CertReplacer replacer(av_config(), 1);
  const auto upstream = valid_chain("bank.example.com");
  const auto replaced = replacer.intercept("bank.example.com", upstream, context_);
  ASSERT_TRUE(replaced.has_value());
  ASSERT_EQ(replaced->size(), 1u);
  EXPECT_EQ(replaced->front().issuer.common_name, "Kaspersky Root");
  EXPECT_NE(replaced->front().fingerprint(), upstream.front().fingerprint());
  EXPECT_TRUE(replaced->front().matches_host("bank.example.com"));
}

TEST_F(TlsInterceptorTest, EmptyUpstreamPassesThrough) {
  CertReplacer replacer(av_config(), 1);
  EXPECT_FALSE(replacer.intercept("x", {}, context_).has_value());
}

TEST_F(TlsInterceptorTest, BlockedHostListRestrictsScope) {
  auto config = av_config("OpenDNS");
  config.only_hosts = {"blocked.example.com"};
  CertReplacer replacer(config, 1);
  EXPECT_TRUE(replacer.intercept("Blocked.Example.COM",
                                 valid_chain("blocked.example.com"), context_)
                  .has_value());
  EXPECT_FALSE(replacer.intercept("free.example.com", valid_chain("free.example.com"),
                                  context_)
                   .has_value());
}

TEST_F(TlsInterceptorTest, OnlyIfUpstreamValidSkipsInvalid) {
  auto config = av_config("OpenDNS");
  config.only_if_upstream_valid = true;
  config.public_roots = &roots_;
  CertReplacer replacer(config, 1);
  EXPECT_TRUE(replacer.intercept("a.example.com", valid_chain("a.example.com"),
                                 context_)
                  .has_value());
  EXPECT_FALSE(replacer.intercept("a.example.com", expired_chain("a.example.com"),
                                  context_)
                   .has_value());
}

TEST_F(TlsInterceptorTest, UntrustedIssuerForInvalidUpstream) {
  auto config = av_config("Avast");
  config.forge.untrusted_issuer =
      tls::DistinguishedName{"Avast untrusted root", "Avast", "CZ"};
  config.public_roots = &roots_;
  CertReplacer replacer(config, 1);
  const auto valid = replacer.intercept("a.example.com", valid_chain("a.example.com"),
                                        context_);
  const auto invalid = replacer.intercept("a.example.com",
                                          expired_chain("a.example.com"), context_);
  ASSERT_TRUE(valid && invalid);
  EXPECT_EQ(valid->front().issuer.common_name, "Avast Root");
  EXPECT_EQ(invalid->front().issuer.common_name, "Avast untrusted root");
}

TEST_F(TlsInterceptorTest, SameHostSeedReusesKeyAcrossSites) {
  CertReplacer replacer(av_config(), /*host_seed=*/77);
  const auto a = replacer.intercept("a.example.com", valid_chain("a.example.com"),
                                    context_);
  const auto b = replacer.intercept("b.example.com", valid_chain("b.example.com"),
                                    context_);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->front().public_key, b->front().public_key);

  CertReplacer other_host(av_config(), /*host_seed=*/78);
  const auto c = other_host.intercept("a.example.com", valid_chain("a.example.com"),
                                      context_);
  EXPECT_NE(a->front().public_key, c->front().public_key);
}

TEST_F(TlsInterceptorTest, ProbabilityZeroNeverIntercepts) {
  auto config = av_config();
  config.probability = 0.0;
  CertReplacer replacer(config, 1);
  EXPECT_FALSE(replacer.intercept("a.example.com", valid_chain("a.example.com"),
                                  context_)
                   .has_value());
}

TEST_F(TlsInterceptorTest, InterceptedChainFirstReplacerWins) {
  TlsInterceptorList chain;
  chain.push_back(std::make_shared<CertReplacer>(av_config("First"), 1));
  chain.push_back(std::make_shared<CertReplacer>(av_config("Second"), 1));
  const auto result = intercepted_chain(chain, "a.example.com",
                                        valid_chain("a.example.com"), context_);
  EXPECT_EQ(result.front().issuer.common_name, "First Root");
}

TEST_F(TlsInterceptorTest, InterceptedChainPassThroughWhenEmpty) {
  const auto upstream = valid_chain("a.example.com");
  const auto result = intercepted_chain({}, "a.example.com", upstream, context_);
  EXPECT_EQ(result.front().fingerprint(), upstream.front().fingerprint());
}

}  // namespace
}  // namespace tft::middlebox
