// Regenerates Table 2: per-experiment dataset overview (exit nodes, ASes,
// countries) by running all four experiments on the same world.
#include "common.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.05);
  auto world = tft::bench::build_paper_world(options);
  const auto config = tft::bench::study_config(options);

  const auto result = tft::core::run_study(*world, config);
  std::cout << tft::core::render_coverage(result.coverage) << "\n";
  std::cout << "Paper Table 2 reference (nodes / ASes / countries):\n"
               "  DNS        753,111 / 10,197 / 167\n"
               "  HTTP        49,545 / 12,658 / 171\n"
               "  HTTPS      807,910 / 10,007 / 115\n"
               "  Monitoring 747,449 / 11,638 / 167\n";
  return 0;
}
