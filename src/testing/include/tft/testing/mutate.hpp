// Byte-level mutation strategies for fuzzing wire decoders. Deterministic:
// the same (input, Rng state) always yields the same mutant, so a fuzz
// shard's verdict is reproducible from its seed alone.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tft/util/rng.hpp"

namespace tft::testing {

enum class MutationKind {
  kBitFlip,        // flip one random bit
  kByteSet,        // overwrite one byte with a random value
  kByteSwap,       // exchange two random bytes
  kTruncate,       // drop a random-length tail
  kDeleteBlock,    // remove a random interior block
  kDuplicateBlock, // repeat a random interior block in place
  kInsertRandom,   // splice random bytes at a random offset
  kMagicToken,     // splice a protocol-shaped token from the dictionary
  kLengthSmash,    // overwrite 2 bytes with an extreme big-endian length
};

/// Number of distinct MutationKind values (for iteration in tests).
constexpr std::size_t kMutationKindCount = 9;

/// Tokens worth splicing into any wire input: chunked-size edge cases, DNS
/// compression pointers, framing terminators, length-field extremes. These
/// are what pushes a byte-flipping fuzzer into parser states random flips
/// rarely reach.
const std::vector<std::string>& mutation_dictionary();

/// Apply one random mutation strategy. Never returns the input unchanged
/// unless the input is empty and the chosen strategy needs bytes to act on.
std::string mutate(std::string_view input, util::Rng& rng);

/// Apply a specific strategy (exposed so tests can cover each arm).
std::string mutate_with(MutationKind kind, std::string_view input, util::Rng& rng);

/// Apply 1..rounds random mutations in sequence.
std::string mutate_many(std::string_view input, util::Rng& rng, std::size_t rounds);

}  // namespace tft::testing
