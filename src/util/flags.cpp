#include "tft/util/flags.hpp"

#include <algorithm>
#include <charconv>

namespace tft::util {

Result<Flags> Flags::parse(int argc, const char* const* argv,
                           const std::vector<std::string>& boolean_flags) {
  Flags flags;
  if (argc > 0) flags.program_ = argv[0];

  const auto is_boolean = [&](std::string_view name) {
    return std::find(boolean_flags.begin(), boolean_flags.end(), name) !=
           boolean_flags.end();
  };

  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    if (flags_done || !token.starts_with("--")) {
      flags.positional_.emplace_back(token);
      continue;
    }
    if (token == "--") {
      flags_done = true;
      continue;
    }
    const std::string_view body = token.substr(2);
    if (body.empty()) {
      return make_error(ErrorCode::kInvalidArgument, "empty flag name");
    }
    const auto equals = body.find('=');
    if (equals == 0) {
      return make_error(ErrorCode::kInvalidArgument, "empty flag name");
    }
    if (equals != std::string_view::npos) {
      flags.values_[std::string(body.substr(0, equals))] =
          std::string(body.substr(equals + 1));
      continue;
    }
    if (!is_boolean(body) && i + 1 < argc &&
        !std::string_view(argv[i + 1]).starts_with("--")) {
      flags.values_[std::string(body)] = argv[++i];
      continue;
    }
    flags.values_[std::string(body)] = "true";
  }
  return flags;
}

bool Flags::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::optional<std::string> Flags::get(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(std::string_view name, std::string_view fallback) const {
  const auto value = get(name);
  return value ? *value : std::string(fallback);
}

Result<double> Flags::get_double(std::string_view name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end != value->c_str() + value->size() || value->empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "--" + std::string(name) + " expects a number, got '" + *value +
                          "'");
  }
  return parsed;
}

Result<long long> Flags::get_int(std::string_view name, long long fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  long long parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "--" + std::string(name) + " expects an integer, got '" +
                          *value + "'");
  }
  return parsed;
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return *value != "false" && *value != "0" && *value != "no";
}

std::vector<std::string> Flags::unknown(const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace tft::util
