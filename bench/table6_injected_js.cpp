// Regenerates Table 6 (injected-JavaScript signatures) and the §5.2 HTML
// modification headline numbers.
#include <map>

#include "common.hpp"

int main(int argc, char** argv) {
  const auto options = tft::bench::parse_options(argc, argv, 0.08);
  const auto world = tft::bench::build_paper_world(options);
  auto config = tft::bench::study_config(options);
  config.http.expanded_nodes_per_as = 60;

  tft::core::HttpModificationProbe probe(*world, config.http);
  probe.run();
  const auto report =
      tft::core::analyze_http(*world, probe.observations(), config.http_analysis);

  std::cout << tft::core::render_http_report(report) << "\n";
  std::cout << "Paper Table 6 reference (nodes / countries(ASes)):\n"
               "  NetSparkQuiltingResult 21 / 1(1)   d36mw5gp02ykm5.cloudfront.net "
               "201 / 44(99)\n"
               "  msmdzbsyrw.org 97 / 4(76)          pgjs.me 16 / 1(12)\n"
               "  jswrite.com/script1.js 15 / 9(10)  var oiasudoj; 11 / 1(11)\n"
               "  AdTaily_Widget_Container 11 / 8(9)\n";
  return 0;
}
