#include "tft/util/rng.hpp"

#include <algorithm>

namespace tft::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::log_uniform(double lo, double hi) {
  assert(lo > 0 && hi >= lo);
  const double llo = std::log(lo), lhi = std::log(hi);
  return std::exp(uniform_double(llo, lhi));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += std::max(0.0, w);
  assert(total > 0);
  double target = uniform_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.state_) s = next_u64();
  return child;
}

}  // namespace tft::util
