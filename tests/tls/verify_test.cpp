#include "tft/tls/verify.hpp"

#include <gtest/gtest.h>

#include "tft/tls/authority.hpp"

namespace tft::tls {
namespace {

const sim::Instant kNow = sim::Instant::epoch() + sim::Duration::hours(24);

class VerifyTest : public ::testing::Test {
 protected:
  VerifyTest()
      : root_(CertificateAuthority::make_root(
            {"Test Root CA", "Trust Co", "US"}, 1001,
            sim::Instant::epoch() - sim::Duration::hours(24 * 365),
            sim::Instant::epoch() + sim::Duration::hours(24 * 3650))),
        intermediate_(CertificateAuthority::make_intermediate(
            root_, {"Test Issuing CA", "Trust Co", "US"}, 1002)),
        verifier_(&roots_) {
    roots_.add(root_.certificate());
  }

  Certificate issue(const std::string& host) {
    CertificateAuthority::LeafOptions options;
    options.hosts = {host};
    return intermediate_.issue(options);
  }

  CertificateAuthority root_;
  CertificateAuthority intermediate_;
  RootStore roots_;
  CertificateVerifier verifier_;
};

TEST_F(VerifyTest, FullChainVerifies) {
  const auto leaf = issue("www.example.com");
  const auto result =
      verifier_.verify(intermediate_.chain_for(leaf), "www.example.com", kNow);
  EXPECT_TRUE(result.ok()) << result.detail;
}

TEST_F(VerifyTest, ChainWithoutRootStillAnchorsByKey) {
  const auto leaf = issue("www.example.com");
  CertificateChain chain = {leaf, intermediate_.certificate()};
  EXPECT_TRUE(verifier_.verify(chain, "www.example.com", kNow).ok());
}

TEST_F(VerifyTest, EmptyChainRejected) {
  EXPECT_EQ(verifier_.verify({}, "x", kNow).status, VerifyStatus::kEmptyChain);
}

TEST_F(VerifyTest, HostnameMismatch) {
  const auto leaf = issue("www.example.com");
  const auto result =
      verifier_.verify(intermediate_.chain_for(leaf), "evil.example.net", kNow);
  EXPECT_EQ(result.status, VerifyStatus::kHostnameMismatch);
}

TEST_F(VerifyTest, EmptyHostSkipsNameCheck) {
  const auto leaf = issue("www.example.com");
  EXPECT_TRUE(verifier_.verify(intermediate_.chain_for(leaf), "", kNow).ok());
}

TEST_F(VerifyTest, ExpiredLeafRejected) {
  CertificateAuthority::LeafOptions options;
  options.hosts = {"www.example.com"};
  options.not_before = sim::Instant::epoch() - sim::Duration::hours(48);
  options.not_after = sim::Instant::epoch() - sim::Duration::hours(24);
  const auto leaf = intermediate_.issue(options);
  EXPECT_EQ(verifier_.verify(intermediate_.chain_for(leaf), "www.example.com", kNow)
                .status,
            VerifyStatus::kExpired);
}

TEST_F(VerifyTest, NotYetValidRejected) {
  CertificateAuthority::LeafOptions options;
  options.hosts = {"www.example.com"};
  options.not_before = kNow + sim::Duration::hours(24);
  const auto leaf = intermediate_.issue(options);
  EXPECT_EQ(verifier_.verify(intermediate_.chain_for(leaf), "www.example.com", kNow)
                .status,
            VerifyStatus::kNotYetValid);
}

TEST_F(VerifyTest, SelfSignedLeafRejected) {
  Certificate leaf;
  leaf.subject = {"www.example.com", "", ""};
  leaf.issuer = leaf.subject;
  leaf.subject_alt_names = {"www.example.com"};
  leaf.not_before = sim::Instant::epoch();
  leaf.not_after = kNow + sim::Duration::hours(24);
  leaf.public_key = 7;
  leaf.signed_by = 7;
  EXPECT_EQ(verifier_.verify({leaf}, "www.example.com", kNow).status,
            VerifyStatus::kSelfSigned);
}

TEST_F(VerifyTest, BrokenLinkageRejected) {
  auto leaf = issue("www.example.com");
  leaf.signed_by = 9999;  // signature no longer matches the intermediate
  EXPECT_EQ(verifier_.verify(intermediate_.chain_for(leaf), "www.example.com", kNow)
                .status,
            VerifyStatus::kBrokenChain);
}

TEST_F(VerifyTest, IssuerNameMismatchRejected) {
  auto leaf = issue("www.example.com");
  leaf.issuer.common_name = "Somebody Else";
  EXPECT_EQ(verifier_.verify(intermediate_.chain_for(leaf), "www.example.com", kNow)
                .status,
            VerifyStatus::kBrokenChain);
}

TEST_F(VerifyTest, UntrustedRootRejected) {
  // A parallel hierarchy that is internally consistent but not in the store
  // — exactly what an anti-virus MITM presents.
  auto av_root = CertificateAuthority::make_root(
      {"Avast! Web/Mail Shield Root", "Avast", "CZ"}, 5001,
      sim::Instant::epoch(), kNow + sim::Duration::hours(24 * 365));
  CertificateAuthority::LeafOptions options;
  options.hosts = {"www.example.com"};
  const auto forged = av_root.issue(options);
  const auto result =
      verifier_.verify(av_root.chain_for(forged), "www.example.com", kNow);
  EXPECT_EQ(result.status, VerifyStatus::kUntrustedRoot);
}

TEST_F(VerifyTest, IntermediateWithoutCaFlagRejected) {
  // A leaf masquerading as an issuer.
  const auto fake_issuer = issue("issuer.example.com");
  Certificate child;
  child.subject = {"victim.example.com", "", ""};
  child.issuer = fake_issuer.subject;
  child.subject_alt_names = {"victim.example.com"};
  child.not_before = sim::Instant::epoch();
  child.not_after = kNow + sim::Duration::hours(24);
  child.public_key = 31337;
  child.signed_by = fake_issuer.public_key;
  CertificateChain chain = {child, fake_issuer, intermediate_.certificate(),
                            root_.certificate()};
  EXPECT_EQ(verifier_.verify(chain, "victim.example.com", kNow).status,
            VerifyStatus::kNotACa);
}

TEST_F(VerifyTest, StatusNames) {
  EXPECT_EQ(to_string(VerifyStatus::kOk), "ok");
  EXPECT_EQ(to_string(VerifyStatus::kUntrustedRoot), "untrusted_root");
  EXPECT_EQ(to_string(VerifyStatus::kHostnameMismatch), "hostname_mismatch");
}

TEST(RootStoreTest, TrustAndKeys) {
  RootStore store;
  auto root = CertificateAuthority::make_root({"R", "", ""}, 77,
                                              sim::Instant::epoch(),
                                              kNow + sim::Duration::hours(1));
  EXPECT_FALSE(store.trusts(root.certificate()));
  store.add(root.certificate());
  EXPECT_TRUE(store.trusts(root.certificate()));
  EXPECT_TRUE(store.trusts_key(77));
  EXPECT_FALSE(store.trusts_key(78));
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace tft::tls
