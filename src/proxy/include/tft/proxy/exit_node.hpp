// Exit nodes: the Hola end hosts that Luminati routes traffic through.
// An ExitNodeAgent owns the node's network identity (address, AS, country),
// its DNS configuration, and the interceptor chains modeling whatever
// middleboxes sit on its path and whatever software runs on its host.
//
// Randomness discipline: a node draws from keyed counter-based streams
// (util::StreamRng) keyed by (node seed, request scope, purpose). The
// `scope` is an opaque 64-bit request identity supplied by the caller (the
// super proxy derives it from the client's session); two requests with
// different scopes can never perturb each other's draws, which is what
// keeps probe crawls composable.
#pragma once

#include <memory>
#include <string>

#include "tft/dns/resolver.hpp"
#include "tft/http/server.hpp"
#include "tft/middlebox/dns_interceptor.hpp"
#include "tft/middlebox/interceptor.hpp"
#include "tft/middlebox/tls_interceptor.hpp"
#include "tft/net/topology.hpp"
#include "tft/smtp/session.hpp"
#include "tft/tls/endpoint.hpp"
#include "tft/util/rng.hpp"
#include "tft/util/stream_rng.hpp"

namespace tft::proxy {

/// Per-node deterministic roll in [0,1) used for probabilistic resolver
/// behaviour (per-subscriber-plan hijacking): a node's resolver treats it
/// consistently across queries, and the world builder can precompute the
/// ground truth from the same roll.
double stable_hijack_roll(std::string_view zid);

/// Client-chosen 16-bit identifier (DNS query id / source port) drawn from
/// the IANA ephemeral range [49152, 65535]. Never 0 and never a well-known
/// port, unlike the old `next_u64() & 0xFFFF` derivation.
std::uint16_t ephemeral_client_port(util::StreamRng& stream);

/// Shared environment every node operates in (the simulated Internet).
struct Environment {
  dns::ResolverDirectory* resolvers = nullptr;
  http::WebServerRegistry* web = nullptr;
  tls::TlsEndpointRegistry* tls = nullptr;
  smtp::SmtpServerRegistry* smtp = nullptr;  // optional (SMTP extension)
  sim::EventQueue* clock = nullptr;
  const net::AsOrgDb* topology = nullptr;
  /// Observability sink (the owning world's registry); threaded into every
  /// FetchContext and read by the super proxy. May stay null in tests.
  obs::Registry* metrics = nullptr;
  /// Flight recorder (the owning world's); threaded into every
  /// FetchContext, the resolvers, and SMTP sessions so every hop of the
  /// currently open transaction gets an evidence event. May stay null.
  obs::Recorder* recorder = nullptr;
};

class ExitNodeAgent {
 public:
  struct Config {
    std::string zid;               // persistent Luminati identifier
    net::Ipv4Address address;
    net::Asn asn = 0;
    net::CountryCode country;
    net::Ipv4Address dns_resolver;  // configured resolver service address
    middlebox::DnsInterceptorList dns_interceptors;
    middlebox::HttpInterceptorList http_interceptors;
    middlebox::TlsInterceptorList tls_interceptors;
    smtp::SmtpInterceptorList smtp_interceptors;
    /// Probability a request through this node fails (churn / NAT issues);
    /// exercises Luminati's retry behaviour.
    double failure_probability = 0.0;
    std::uint64_t rng_seed = 0;
  };

  ExitNodeAgent(Config config, Environment environment);

  const std::string& zid() const noexcept { return config_.zid; }
  net::Ipv4Address address() const noexcept { return config_.address; }
  net::Asn asn() const noexcept { return config_.asn; }
  const net::CountryCode& country() const noexcept { return config_.country; }
  net::Ipv4Address configured_resolver() const noexcept { return config_.dns_resolver; }

  bool online() const noexcept { return online_; }
  void set_online(bool online) noexcept { online_ = online; }

  /// Simulate a DHCP renumbering: the host gets a new address while its
  /// zID stays fixed (§2.3: zIDs identify nodes across IP changes).
  void set_address(net::Ipv4Address address) noexcept { config_.address = address; }

  /// Roll the churn dice for one request attempt. The roll is a pure
  /// function of (node seed, scope): within one request scope a node is
  /// consistently up or consistently mid-churn, and the roll can never
  /// shift any other request's draws.
  bool attempt_fails(std::uint64_t scope = 0) {
    util::StreamRng stream(stream_seed_, scope, "churn");
    return stream.chance(config_.failure_probability);
  }

  /// Resolve a name using the node's configured resolver, traversing any
  /// DNS interceptors (transparent proxies, host rewriters).
  dns::Message resolve(const dns::DnsName& name, std::uint64_t scope = 0);

  /// Fetch an HTTP URL: resolve (unless `resolved` is supplied by the super
  /// proxy), then run the request through the node's HTTP interceptors.
  struct FetchOutcome {
    bool dns_nxdomain = false;   // name did not resolve (clean NXDOMAIN)
    bool dns_failed = false;     // SERVFAIL or no resolver
    http::Response response;     // valid unless a dns_* flag is set
    net::Ipv4Address destination;  // where the request actually went
  };
  FetchOutcome fetch_http(const http::Url& url,
                          std::optional<net::Ipv4Address> resolved = std::nullopt,
                          std::uint64_t scope = 0);

  /// Open a TCP tunnel to destination:443 and perform a TLS handshake with
  /// the given SNI, traversing the node's TLS interceptors. Returns the
  /// chain the *client* observes, or nullopt if the endpoint is
  /// unreachable.
  std::optional<tls::CertificateChain> fetch_certificate_chain(
      net::Ipv4Address destination, std::string_view sni,
      std::uint64_t scope = 0);

  /// Run an SMTP transaction to destination:25 through the node's SMTP
  /// interceptors (the §3.4 arbitrary-traffic extension). nullopt when no
  /// SMTP server is reachable at the destination.
  std::optional<smtp::Transcript> run_smtp(net::Ipv4Address destination,
                                           const smtp::ClientScript& script);

  const Config& config() const noexcept { return config_; }

 private:
  /// Build the interceptor context for one request. `purpose` separates
  /// the context streams of the phases inside one request (DNS vs HTTP vs
  /// TLS interception) so they never replay each other's draws.
  middlebox::FetchContext make_context(net::Ipv4Address destination,
                                       std::uint64_t scope,
                                       std::string_view purpose);

  Config config_;
  Environment environment_;
  /// Base of every stream this node owns (from Config::rng_seed, or
  /// fnv1a64(zid) when unset).
  std::uint64_t stream_seed_ = 0;
  /// Scratch sequential Rng handed to middlebox FetchContexts; reseeded
  /// from (stream_seed_, scope, purpose) per request phase. Interceptor
  /// draws all happen synchronously inside the intercepted_* call, so one
  /// scratch engine per node is safe.
  util::Rng request_rng_;
  bool online_ = true;
};

}  // namespace tft::proxy
