#include "tft/core/longitudinal.hpp"

#include <algorithm>
#include <set>

#include "tft/stats/table.hpp"
#include "tft/util/strings.hpp"

namespace tft::core {

namespace {

std::string round_stream_label(int round) {
  return "round" + std::to_string(round) + "/country";
}

}  // namespace

std::vector<LongitudinalRound> LongitudinalDnsStudy::run() {
  return run_partial(-1).rounds;
}

LongitudinalResult LongitudinalDnsStudy::run_partial(int stop_after) {
  return run_rounds(0, stop_after, util::StreamCheckpoint{});
}

util::Result<LongitudinalResult> LongitudinalDnsStudy::resume(
    const util::StreamCheckpoint& checkpoint) {
  if (config_.rounds < 0 ||
      checkpoint.next_round > static_cast<std::uint64_t>(config_.rounds)) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "checkpoint round " +
                                std::to_string(checkpoint.next_round) +
                                " outside the study's " +
                                std::to_string(config_.rounds) + " rounds");
  }
  if (checkpoint.streams.size() != checkpoint.next_round) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "checkpoint records " +
                                std::to_string(checkpoint.streams.size()) +
                                " streams for " +
                                std::to_string(checkpoint.next_round) +
                                " completed rounds");
  }
  // Every recorded stream must be the one this study would have used:
  // a mismatch means the checkpoint belongs to a different study (or the
  // probe seed changed) and resuming would silently diverge.
  for (int round = 0; round < static_cast<int>(checkpoint.next_round); ++round) {
    const auto& state = checkpoint.streams[static_cast<std::size_t>(round)];
    DnsProbeConfig probe_config = config_.probe;
    probe_config.seed = round_seed(round);
    const util::StreamKey expected =
        DnsHijackProbe(world_, probe_config).country_stream_key();
    if (state.label != round_stream_label(round) || !(state.key == expected)) {
      return util::make_error(util::ErrorCode::kInvalidArgument,
                              "checkpoint stream \"" + state.label +
                                  "\" does not match this study's round " +
                                  std::to_string(round) + " key");
    }
  }
  return run_rounds(static_cast<int>(checkpoint.next_round), -1, checkpoint);
}

LongitudinalResult LongitudinalDnsStudy::run_rounds(
    int first_round, int stop_after, util::StreamCheckpoint checkpoint) {
  LongitudinalResult result;
  result.checkpoint = std::move(checkpoint);
  const int last =
      stop_after < 0 ? config_.rounds : std::min(stop_after, config_.rounds);

  world_.metrics.begin_span("longitudinal.study", world_.clock.now());
  for (int round = first_round; round < last; ++round) {
    if (round > 0) {
      world_.clock.run_until(world_.clock.now() + config_.interval);
      if (between_rounds_) between_rounds_(round, world_);
    }

    world_.metrics.begin_span("longitudinal.round", world_.clock.now());
    DnsProbeConfig probe_config = config_.probe;
    probe_config.seed = round_seed(round);
    DnsHijackProbe probe(world_, probe_config);
    probe.run();
    const DnsReport report =
        analyze_dns(world_, probe.observations(), config_.analysis);

    LongitudinalRound entry;
    entry.round = round;
    entry.time = world_.clock.now();
    entry.measured = report.total_nodes - report.filtered_nodes;
    entry.hijacked = report.hijacked_nodes;
    entry.ratio = report.hijack_ratio();
    entry.isp_hijackers = report.isp_hijackers;

    world_.metrics.add("longitudinal.rounds");
    world_.metrics.add("longitudinal.nodes_measured", entry.measured);
    world_.metrics.add("longitudinal.nodes_hijacked", entry.hijacked);
    world_.metrics.add("longitudinal.isp_attributions",
                       entry.isp_hijackers.size());
    world_.metrics.end_span(world_.clock.now());
    rounds_completed(result, probe, round);
    result.rounds.push_back(std::move(entry));
  }
  world_.metrics.end_span(world_.clock.now());
  result.complete =
      result.checkpoint.next_round >= static_cast<std::uint64_t>(config_.rounds);
  return result;
}

void LongitudinalDnsStudy::rounds_completed(LongitudinalResult& result,
                                            const DnsHijackProbe& probe,
                                            int round) {
  util::StreamState state;
  state.label = round_stream_label(round);
  state.key = probe.country_stream_key();
  state.counter = probe.sessions_issued();
  result.checkpoint.streams.push_back(std::move(state));
  result.checkpoint.next_round = round + 1;
}

std::string render_longitudinal(const std::vector<LongitudinalRound>& rounds) {
  using util::format_count;
  using util::format_percent;

  std::string out = stats::banner("Longitudinal DNS hijacking (continuous, S9)");
  stats::Table series({"Round", "Sim time", "Measured", "Hijacked", "Ratio", "ISPs"});
  for (const auto& round : rounds) {
    series.add_row({std::to_string(round.round),
                    util::format_double(round.time.micros / 1e6 / 86400.0, 1) + "d",
                    format_count(round.measured), format_count(round.hijacked),
                    format_percent(round.ratio),
                    std::to_string(round.isp_hijackers.size())});
  }
  out += series.render() + "\n";

  // Presence matrix: which ISPs were hijacking in which round.
  std::set<std::string> isps;
  for (const auto& round : rounds) {
    for (const auto& row : round.isp_hijackers) isps.insert(row.isp);
  }
  if (!isps.empty()) {
    std::vector<std::string> columns = {"ISP"};
    for (const auto& round : rounds) {
      columns.push_back("R" + std::to_string(round.round));
    }
    stats::Table matrix(std::move(columns));
    for (const auto& isp : isps) {
      std::vector<std::string> cells = {isp};
      for (const auto& round : rounds) {
        cells.push_back(round.isp_listed(isp) ? "x" : ".");
      }
      matrix.add_row(std::move(cells));
    }
    out += "Per-ISP hijacking presence across rounds:\n" + matrix.render();
  }
  return out;
}

std::string render_longitudinal(const std::vector<LongitudinalRound>& rounds,
                                const util::StreamCheckpoint& checkpoint) {
  std::string out = render_longitudinal(rounds);
  out += "\nStream checkpoint (resume token):\n";
  out += util::stream_checkpoint_json(checkpoint);
  out += "\n";
  return out;
}

}  // namespace tft::core
