#include "tft/world/world.hpp"

namespace tft::world {

std::size_t World::set_isp_hijack(const std::string& isp,
                                  std::optional<dns::NxdomainHijackPolicy> policy) {
  const auto it = isp_resolvers.find(isp);
  if (it == isp_resolvers.end()) return 0;
  std::size_t changed = 0;
  for (const auto& address : it->second) {
    // ISP resolvers are unicast; any client address selects the instance.
    dns::RecursiveResolver* resolver =
        resolvers.instance_for(address, net::Ipv4Address(192, 0, 2, 250));
    if (resolver == nullptr) continue;
    if (policy) {
      resolver->set_nxdomain_hijack(*policy);
    } else {
      resolver->clear_nxdomain_hijack();
    }
    ++changed;
  }
  return changed;
}

}  // namespace tft::world
