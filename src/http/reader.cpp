#include "tft/http/reader.hpp"

#include <charconv>

#include "tft/util/strings.hpp"

namespace tft::http {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

/// Find the Content-Length value in a complete header block (the bytes
/// between the start line and the blank line). Returns the declared length,
/// nullopt when absent, or an error on malformed values, duplicates that
/// disagree, or chunked transfer coding.
Result<std::optional<std::size_t>> declared_body_length(std::string_view head) {
  std::optional<std::size_t> length;
  // Skip the start line; header lines follow, each CRLF-terminated.
  auto line_start = head.find("\r\n");
  while (line_start != std::string_view::npos && line_start + 2 < head.size()) {
    std::string_view rest = head.substr(line_start + 2);
    const auto line_end = rest.find("\r\n");
    const std::string_view line =
        line_end == std::string_view::npos ? rest : rest.substr(0, line_end);
    const auto colon = line.find(':');
    if (colon != std::string_view::npos) {
      const std::string_view name = util::trim(line.substr(0, colon));
      const std::string_view value = util::trim(line.substr(colon + 1));
      if (util::iequals(name, "Transfer-Encoding")) {
        return make_error(ErrorCode::kParseError,
                          "chunked framing is not supported on this stream");
      }
      if (util::iequals(name, "Content-Length")) {
        std::size_t parsed = 0;
        const auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), parsed);
        if (ec != std::errc{} || ptr != value.data() + value.size() ||
            value.empty()) {
          return make_error(ErrorCode::kParseError,
                            "bad Content-Length: " + std::string(value));
        }
        if (length && *length != parsed) {
          return make_error(ErrorCode::kParseError,
                            "conflicting Content-Length headers");
        }
        length = parsed;
      }
    }
    line_start = line_end == std::string_view::npos
                     ? std::string_view::npos
                     : line_start + 2 + line_end;
  }
  return length;
}

}  // namespace

Result<void> MessageReader::feed(std::string_view bytes) {
  if (failed_) {
    return make_error(ErrorCode::kProtocolViolation,
                      "stream already failed; reader must be discarded");
  }
  buffer_.append(bytes);
  auto extracted = extract();
  if (!extracted.ok()) failed_ = true;
  return extracted;
}

std::optional<std::string> MessageReader::next_message() {
  if (ready_.empty()) return std::nullopt;
  std::string out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

Result<void> MessageReader::extract() {
  for (;;) {
    // Resume the terminator scan 3 bytes back: the terminator may straddle
    // the previous feed boundary.
    const std::size_t from = scan_from_ > 3 ? scan_from_ - 3 : 0;
    const auto head_end = buffer_.find("\r\n\r\n", from);
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return make_error(ErrorCode::kOutOfRange,
                          "header block exceeds " +
                              std::to_string(limits_.max_head_bytes) +
                              " bytes");
      }
      scan_from_ = buffer_.size();
      return {};
    }
    if (head_end > limits_.max_head_bytes) {
      return make_error(ErrorCode::kOutOfRange,
                        "header block exceeds " +
                            std::to_string(limits_.max_head_bytes) + " bytes");
    }

    const std::string_view head =
        std::string_view(buffer_).substr(0, head_end + 2);
    auto declared = declared_body_length(head);
    if (!declared.ok()) return declared.error();
    const std::size_t body_length = declared->value_or(0);
    if (body_length > limits_.max_body_bytes) {
      return make_error(ErrorCode::kOutOfRange,
                        "declared body exceeds " +
                            std::to_string(limits_.max_body_bytes) + " bytes");
    }

    const std::size_t message_size = head_end + 4 + body_length;
    if (buffer_.size() < message_size) {
      // Head settled, body still arriving. The scan point can rest at the
      // terminator: the next pass re-finds it instantly.
      scan_from_ = head_end;
      return {};
    }

    ready_.push_back(buffer_.substr(0, message_size));
    buffer_.erase(0, message_size);
    scan_from_ = 0;
  }
}

}  // namespace tft::http
