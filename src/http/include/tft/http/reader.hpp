// Incremental HTTP/1.1 message framing over a byte stream. The one-shot
// parsers in message.hpp require the complete wire image; a TCP read loop
// gets bytes in arbitrary segments ("GET http://" in one read, the rest of
// the head three reads later). MessageReader accumulates those segments and
// yields complete head+body images — including several per feed when the
// peer pipelines — which the one-shot parsers then consume unchanged.
//
// Framing is identity-only (Content-Length, or no body without one);
// chunked transfer coding is rejected, as nothing on the socket front-end's
// wire uses it (the proxy serializes responses with identity framing).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "tft/util/result.hpp"

namespace tft::http {

class MessageReader {
 public:
  struct Limits {
    /// Maximum bytes before the header terminator (slow/garbage peers).
    std::size_t max_head_bytes = 64 * 1024;
    /// Maximum declared Content-Length.
    std::size_t max_body_bytes = 4 * 1024 * 1024;
  };

  MessageReader() = default;
  explicit MessageReader(Limits limits) : limits_(limits) {}

  /// Append stream bytes and extract every message they complete. Errors
  /// (oversize head or body, malformed Content-Length, chunked framing)
  /// are sticky: the stream is unrecoverable after the first one.
  util::Result<void> feed(std::string_view bytes);

  /// Pop the next complete message (full head+body wire image), if any.
  std::optional<std::string> next_message();

  /// Complete messages currently queued.
  std::size_t ready() const noexcept { return ready_.size(); }

  /// Surrender buffered not-yet-complete bytes (and reset). Used when the
  /// stream switches protocol mid-connection: after a CONNECT is accepted,
  /// bytes already read belong to the tunnel, not to a next HTTP message.
  std::string take_leftover() {
    std::string out = std::move(buffer_);
    buffer_.clear();
    scan_from_ = 0;
    return out;
  }

  /// Bytes of a not-yet-complete message sitting in the buffer. Non-zero
  /// means the peer started a message it has not finished — the state a
  /// read timeout should treat as a slow header attack rather than an
  /// idle keep-alive connection.
  std::size_t partial_bytes() const noexcept { return buffer_.size(); }

 private:
  util::Result<void> extract();

  Limits limits_;
  std::string buffer_;
  std::deque<std::string> ready_;
  /// Head-terminator scan resume point (never rescan settled bytes).
  std::size_t scan_from_ = 0;
  bool failed_ = false;
};

}  // namespace tft::http
