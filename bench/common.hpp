// Shared plumbing for the table/figure reproduction binaries.
// Usage: <bench> [scale] [target_nodes] [seed]
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "tft/core/study.hpp"
#include "tft/stats/table.hpp"
#include "tft/world/world.hpp"

namespace tft::bench {

struct Options {
  double scale = 0.05;
  std::size_t target_nodes = 1u << 20;  // effectively "crawl everything"
  std::uint64_t seed = 2016;            // the paper's measurement year
};

inline Options parse_options(int argc, char** argv, double default_scale) {
  Options options;
  options.scale = default_scale;
  if (argc > 1) options.scale = std::atof(argv[1]);
  if (argc > 2) options.target_nodes = static_cast<std::size_t>(std::atoll(argv[2]));
  if (argc > 3) options.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  return options;
}

inline std::unique_ptr<world::World> build_paper_world(const Options& options) {
  std::cerr << "[bench] building world: scale=" << options.scale
            << " seed=" << options.seed << "\n";
  auto world = world::build_world(world::paper_spec(), options.scale, options.seed);
  std::cerr << "[bench] population: " << world->luminati->node_count()
            << " exit nodes, " << world->topology.as_count() << " ASes, "
            << world->topology.organization_count() << " organizations\n";
  return world;
}

inline core::StudyConfig study_config(const Options& options) {
  return core::StudyConfig::for_scale(options.scale, options.target_nodes);
}

}  // namespace tft::bench
