#include "tft/tls/codec.hpp"

#include "tft/util/bytes.hpp"

namespace tft::tls {

using util::ByteReader;
using util::ByteWriter;
using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

constexpr std::string_view kMagic = "TFTC";
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kMaxStringLength = 4096;
constexpr std::size_t kMaxSans = 1024;
constexpr std::size_t kMaxChain = 64;

void put_string(ByteWriter& writer, std::string_view text) {
  writer.u16(static_cast<std::uint16_t>(text.size()));
  writer.bytes(text);
}

Result<std::string> take_string(ByteReader& reader) {
  auto length = reader.u16();
  if (!length) return length.error();
  if (*length > kMaxStringLength) {
    return make_error(ErrorCode::kParseError, "oversized string in certificate");
  }
  auto bytes = reader.bytes(*length);
  if (!bytes) return bytes.error();
  return std::string(*bytes);
}

void put_dn(ByteWriter& writer, const DistinguishedName& dn) {
  put_string(writer, dn.common_name);
  put_string(writer, dn.organization);
  put_string(writer, dn.country);
}

Result<DistinguishedName> take_dn(ByteReader& reader) {
  DistinguishedName dn;
  auto cn = take_string(reader);
  if (!cn) return cn.error();
  auto organization = take_string(reader);
  if (!organization) return organization.error();
  auto country = take_string(reader);
  if (!country) return country.error();
  dn.common_name = *std::move(cn);
  dn.organization = *std::move(organization);
  dn.country = *std::move(country);
  return dn;
}

std::string encode_body(const Certificate& certificate) {
  ByteWriter writer;
  put_dn(writer, certificate.subject);
  put_dn(writer, certificate.issuer);
  writer.u64(certificate.serial);
  writer.u64(static_cast<std::uint64_t>(certificate.not_before.micros));
  writer.u64(static_cast<std::uint64_t>(certificate.not_after.micros));
  writer.u16(static_cast<std::uint16_t>(certificate.subject_alt_names.size()));
  for (const auto& san : certificate.subject_alt_names) put_string(writer, san);
  writer.u64(certificate.public_key);
  writer.u64(certificate.signed_by);
  writer.u8(certificate.is_ca ? 1 : 0);
  return std::move(writer).take();
}

Result<Certificate> decode_body(std::string_view body) {
  ByteReader reader(body);
  Certificate certificate;

  auto subject = take_dn(reader);
  if (!subject) return subject.error();
  certificate.subject = *std::move(subject);
  auto issuer = take_dn(reader);
  if (!issuer) return issuer.error();
  certificate.issuer = *std::move(issuer);

  auto serial = reader.u64();
  if (!serial) return serial.error();
  certificate.serial = *serial;
  auto not_before = reader.u64();
  if (!not_before) return not_before.error();
  certificate.not_before = sim::Instant{static_cast<std::int64_t>(*not_before)};
  auto not_after = reader.u64();
  if (!not_after) return not_after.error();
  certificate.not_after = sim::Instant{static_cast<std::int64_t>(*not_after)};

  auto san_count = reader.u16();
  if (!san_count) return san_count.error();
  if (*san_count > kMaxSans) {
    return make_error(ErrorCode::kParseError, "too many SANs");
  }
  for (std::uint16_t i = 0; i < *san_count; ++i) {
    auto san = take_string(reader);
    if (!san) return san.error();
    certificate.subject_alt_names.push_back(*std::move(san));
  }

  auto public_key = reader.u64();
  if (!public_key) return public_key.error();
  certificate.public_key = *public_key;
  auto signed_by = reader.u64();
  if (!signed_by) return signed_by.error();
  certificate.signed_by = *signed_by;
  auto is_ca = reader.u8();
  if (!is_ca) return is_ca.error();
  if (*is_ca > 1) {
    return make_error(ErrorCode::kParseError, "bad is_ca flag");
  }
  certificate.is_ca = *is_ca == 1;

  if (!reader.at_end()) {
    return make_error(ErrorCode::kParseError, "trailing bytes in certificate body");
  }
  return certificate;
}

}  // namespace

std::string encode_certificate(const Certificate& certificate) {
  const std::string body = encode_body(certificate);
  ByteWriter writer;
  writer.u32(static_cast<std::uint32_t>(body.size()));
  writer.bytes(body);
  return std::move(writer).take();
}

Result<Certificate> decode_certificate(std::string_view wire) {
  ByteReader reader(wire);
  auto length = reader.u32();
  if (!length) return length.error();
  auto body = reader.bytes(*length);
  if (!body) return body.error();
  if (!reader.at_end()) {
    return make_error(ErrorCode::kParseError, "trailing bytes after certificate");
  }
  return decode_body(*body);
}

std::string encode_chain(const CertificateChain& chain) {
  ByteWriter writer;
  writer.bytes(kMagic);
  writer.u16(kVersion);
  writer.u16(static_cast<std::uint16_t>(chain.size()));
  for (const auto& certificate : chain) {
    const std::string body = encode_body(certificate);
    writer.u32(static_cast<std::uint32_t>(body.size()));
    writer.bytes(body);
  }
  return std::move(writer).take();
}

Result<CertificateChain> decode_chain(std::string_view wire) {
  ByteReader reader(wire);
  auto magic = reader.bytes(4);
  if (!magic || *magic != kMagic) {
    return make_error(ErrorCode::kParseError, "bad chain magic");
  }
  auto version = reader.u16();
  if (!version) return version.error();
  if (*version != kVersion) {
    return make_error(ErrorCode::kParseError,
                      "unsupported chain version " + std::to_string(*version));
  }
  auto count = reader.u16();
  if (!count) return count.error();
  if (*count > kMaxChain) {
    return make_error(ErrorCode::kParseError, "chain too long");
  }
  CertificateChain chain;
  chain.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    auto length = reader.u32();
    if (!length) return length.error();
    auto body = reader.bytes(*length);
    if (!body) return body.error();
    auto certificate = decode_body(*body);
    if (!certificate) return certificate.error();
    chain.push_back(*std::move(certificate));
  }
  if (!reader.at_end()) {
    return make_error(ErrorCode::kParseError, "trailing bytes after chain");
  }
  return chain;
}

}  // namespace tft::tls
