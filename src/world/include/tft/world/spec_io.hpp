// Scenario files: serialize a WorldSpec to JSON and load one back, so
// studies can be configured without recompiling (tft-study --spec).
#pragma once

#include <string>
#include <string_view>

#include "tft/util/result.hpp"
#include "tft/world/spec.hpp"

namespace tft::world {

/// Serialize to a JSON document (round-trips through spec_from_json).
std::string spec_to_json(const WorldSpec& spec);

/// Parse a scenario document. Missing fields take WorldSpec defaults;
/// unknown fields are errors (they are almost always typos).
util::Result<WorldSpec> spec_from_json(std::string_view text);

}  // namespace tft::world
