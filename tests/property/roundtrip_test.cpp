// Property tests: randomized encode/decode roundtrips and mutation fuzzing
// for every wire codec in the library. Decoders must never crash; they
// either produce a value or a clean error.
#include <gtest/gtest.h>

#include "tft/dns/codec.hpp"
#include "tft/http/content.hpp"
#include "tft/http/message.hpp"
#include "tft/smtp/protocol.hpp"
#include "tft/tls/codec.hpp"
#include "tft/util/rng.hpp"

namespace tft {
namespace {

using util::Rng;

std::string random_label(Rng& rng) {
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  const std::size_t length = 1 + rng.index(12);
  std::string out;
  for (std::size_t i = 0; i < length; ++i) out += kChars[rng.index(kChars.size())];
  return out;
}

dns::DnsName random_name(Rng& rng) {
  std::vector<std::string> labels;
  const std::size_t count = 1 + rng.index(5);
  for (std::size_t i = 0; i < count; ++i) labels.push_back(random_label(rng));
  return *dns::DnsName::from_labels(std::move(labels));
}

dns::Message random_dns_message(Rng& rng) {
  auto message = dns::Message::query(
      static_cast<std::uint16_t>(rng.next_u64() & 0xFFFF), random_name(rng),
      rng.chance(0.5) ? dns::RecordType::kA : dns::RecordType::kTxt);
  if (rng.chance(0.7)) {
    message.flags.response = true;
    message.flags.rcode = rng.chance(0.3) ? dns::Rcode::kNxDomain
                                          : dns::Rcode::kNoError;
    const std::size_t answers = rng.index(4);
    for (std::size_t i = 0; i < answers; ++i) {
      // Re-use the question name half the time to exercise compression.
      const dns::DnsName name =
          rng.chance(0.5) ? message.questions[0].name : random_name(rng);
      switch (rng.index(3)) {
        case 0:
          message.answers.push_back(dns::ResourceRecord::a(
              name, net::Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())),
              static_cast<std::uint32_t>(rng.uniform(100000))));
          break;
        case 1:
          message.answers.push_back(dns::ResourceRecord::cname(name, random_name(rng)));
          break;
        default: {
          std::string text;
          const std::size_t text_length = rng.index(600);
          for (std::size_t j = 0; j < text_length; ++j) {
            text += static_cast<char>('a' + rng.index(26));
          }
          message.answers.push_back(dns::ResourceRecord::txt(name, text));
        }
      }
    }
    if (rng.chance(0.3)) {
      message.authorities.push_back(
          dns::ResourceRecord::cname(random_name(rng), message.questions[0].name));
    }
  }
  return message;
}

void expect_records_equal(const std::vector<dns::ResourceRecord>& a,
                          const std::vector<dns::ResourceRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].name.equals(b[i].name));
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].ttl, b[i].ttl);
    EXPECT_EQ(a[i].rdata, b[i].rdata);
  }
}

TEST(DnsRoundTripProperty, RandomMessagesSurviveEncodeDecode) {
  Rng rng(0xD15);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const dns::Message original = random_dns_message(rng);
    const std::string wire = dns::encode(original);
    const auto decoded = dns::decode(wire);
    ASSERT_TRUE(decoded.ok()) << "iteration " << iteration << ": "
                              << decoded.error().to_string();
    EXPECT_EQ(decoded->id, original.id);
    EXPECT_EQ(decoded->flags.response, original.flags.response);
    EXPECT_EQ(decoded->flags.rcode, original.flags.rcode);
    ASSERT_EQ(decoded->questions.size(), original.questions.size());
    EXPECT_TRUE(decoded->questions[0].name.equals(original.questions[0].name));
    expect_records_equal(decoded->answers, original.answers);
    expect_records_equal(decoded->authorities, original.authorities);
  }
}

TEST(DnsFuzzProperty, MutatedWireNeverCrashes) {
  Rng rng(0xF22);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string wire = dns::encode(random_dns_message(rng));
    const std::size_t flips = 1 + rng.index(8);
    for (std::size_t i = 0; i < flips && !wire.empty(); ++i) {
      wire[rng.index(wire.size())] = static_cast<char>(rng.next_u64() & 0xFF);
    }
    const auto decoded = dns::decode(wire);  // ok or clean error; no crash
    (void)decoded;
  }
}

TEST(DnsFuzzProperty, RandomBytesNeverCrash) {
  Rng rng(0xF23);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string garbage;
    const std::size_t length = rng.index(200);
    for (std::size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.next_u64() & 0xFF);
    }
    (void)dns::decode(garbage);
  }
}

std::string random_token(Rng& rng) {
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-";
  std::string out;
  const std::size_t length = 1 + rng.index(10);
  for (std::size_t i = 0; i < length; ++i) out += kChars[rng.index(kChars.size())];
  return out;
}

TEST(HttpRoundTripProperty, RandomResponsesSurvive) {
  Rng rng(0x477);
  for (int iteration = 0; iteration < 300; ++iteration) {
    http::Response original;
    original.status = 100 + static_cast<int>(rng.uniform(500));
    original.reason = "Reason " + random_token(rng);
    const std::size_t header_count = rng.index(6);
    for (std::size_t i = 0; i < header_count; ++i) {
      original.headers.add("X-" + random_token(rng), random_token(rng));
    }
    const std::size_t body_length = rng.index(2000);
    for (std::size_t i = 0; i < body_length; ++i) {
      original.body += static_cast<char>(rng.next_u64() & 0xFF);
    }

    const bool chunked = rng.chance(0.5);
    const std::string wire =
        chunked ? original.serialize_chunked(1 + rng.index(300))
                : original.serialize();
    const auto decoded = http::Response::parse(wire);
    ASSERT_TRUE(decoded.ok()) << iteration << ": " << decoded.error().to_string();
    EXPECT_EQ(decoded->status, original.status);
    EXPECT_EQ(decoded->reason, original.reason);
    EXPECT_EQ(decoded->body, original.body);
    for (const auto& entry : original.headers.entries()) {
      EXPECT_EQ(decoded->headers.get(entry.name), entry.value);
    }
  }
}

TEST(HttpFuzzProperty, MutatedResponsesNeverCrash) {
  Rng rng(0x478);
  const http::Response base =
      http::Response::make(200, "OK", http::reference_css(), "text/css");
  for (int iteration = 0; iteration < 400; ++iteration) {
    std::string wire =
        rng.chance(0.5) ? base.serialize() : base.serialize_chunked(64);
    const std::size_t flips = 1 + rng.index(10);
    for (std::size_t i = 0; i < flips; ++i) {
      wire[rng.index(wire.size())] = static_cast<char>(rng.next_u64() & 0xFF);
    }
    (void)http::Response::parse(wire);
    (void)http::Request::parse(wire);
  }
}

TEST(SmtpRoundTripProperty, RandomRepliesSurvive) {
  Rng rng(0x255);
  for (int iteration = 0; iteration < 400; ++iteration) {
    smtp::Reply original;
    original.code = 200 + static_cast<int>(rng.uniform(355));
    const std::size_t line_count = 1 + rng.index(5);
    for (std::size_t i = 0; i < line_count; ++i) {
      original.lines.push_back(rng.chance(0.2) ? "" : random_token(rng));
    }
    const auto decoded = smtp::Reply::parse(original.serialize());
    ASSERT_TRUE(decoded.ok()) << iteration;
    EXPECT_EQ(decoded->code, original.code);
    EXPECT_EQ(decoded->lines, original.lines);
  }
}

TEST(SmtpFuzzProperty, RandomReplyBytesNeverCrash) {
  Rng rng(0x256);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string garbage;
    const std::size_t length = rng.index(120);
    for (std::size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.next_u64() & 0xFF);
    }
    (void)smtp::Reply::parse(garbage);
    (void)smtp::Command::parse(garbage);
  }
}

tls::Certificate random_certificate(Rng& rng) {
  tls::Certificate certificate;
  certificate.subject = {random_token(rng), random_token(rng), "US"};
  certificate.issuer = {random_token(rng), random_token(rng), "DE"};
  certificate.serial = rng.next_u64();
  certificate.not_before =
      sim::Instant{static_cast<std::int64_t>(rng.next_u64() % (1LL << 50)) -
                   (1LL << 49)};
  certificate.not_after =
      certificate.not_before + sim::Duration::hours(1 + rng.index(100000));
  const std::size_t sans = rng.index(5);
  for (std::size_t i = 0; i < sans; ++i) {
    certificate.subject_alt_names.push_back(random_token(rng) + ".example.com");
  }
  certificate.public_key = rng.next_u64();
  certificate.signed_by = rng.next_u64();
  certificate.is_ca = rng.chance(0.2);
  return certificate;
}

TEST(TlsCodecProperty, RandomChainsSurvive) {
  Rng rng(0x715);
  for (int iteration = 0; iteration < 300; ++iteration) {
    tls::CertificateChain original;
    const std::size_t length = rng.index(5);
    for (std::size_t i = 0; i < length; ++i) {
      original.push_back(random_certificate(rng));
    }
    const auto decoded = tls::decode_chain(tls::encode_chain(original));
    ASSERT_TRUE(decoded.ok()) << iteration;
    ASSERT_EQ(decoded->size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ((*decoded)[i], original[i]);
    }
  }
}

TEST(TlsCodecProperty, MutatedChainsNeverCrash) {
  Rng rng(0x716);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string wire = tls::encode_chain({random_certificate(rng)});
    const std::size_t flips = 1 + rng.index(6);
    for (std::size_t i = 0; i < flips; ++i) {
      wire[rng.index(wire.size())] = static_cast<char>(rng.next_u64() & 0xFF);
    }
    (void)tls::decode_chain(wire);
  }
}

TEST(SimgProperty, RandomTranscodesPreserveInvariants) {
  Rng rng(0x519);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const auto quality = static_cast<std::uint8_t>(1 + rng.index(100));
    const auto payload = static_cast<std::uint32_t>(rng.index(50000));
    const std::string image = http::make_simg(
        static_cast<std::uint16_t>(1 + rng.index(4000)),
        static_cast<std::uint16_t>(1 + rng.index(4000)), quality, payload,
        rng.next_u64());
    ASSERT_TRUE(http::parse_simg(image).ok());

    const auto target = static_cast<std::uint8_t>(1 + rng.index(100));
    const auto transcoded = http::transcode_simg(image, target);
    ASSERT_TRUE(transcoded.ok());
    const auto info = http::parse_simg(*transcoded);
    ASSERT_TRUE(info.ok());
    // Transcoding never grows an image and never produces invalid quality.
    EXPECT_LE(transcoded->size(), image.size());
    EXPECT_GE(info->quality, 1);
    EXPECT_LE(info->quality, 100);
    if (target >= quality) {
      EXPECT_EQ(*transcoded, image);  // cannot add information
    } else {
      EXPECT_EQ(info->quality, target);
    }
  }
}

TEST(UrlProperty, ExtractedUrlsAlwaysReparse) {
  // Every URL the scanner extracts must itself parse as a URL.
  Rng rng(0x321);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string soup;
    const std::size_t pieces = 1 + rng.index(8);
    for (std::size_t i = 0; i < pieces; ++i) {
      switch (rng.index(3)) {
        case 0:
          soup += " http://" + random_token(rng) + ".example/" + random_token(rng);
          break;
        case 1:
          soup += " https://" + random_token(rng) + ".example.org";
          break;
        default:
          soup += " " + random_token(rng) + " http:/broken httpx://no";
      }
    }
    for (const auto& url : http::extract_urls(soup)) {
      EXPECT_TRUE(http::Url::parse(url).ok()) << url;
    }
  }
}

}  // namespace
}  // namespace tft
