#include <gtest/gtest.h>

#include "tft/net/prefix_table.hpp"

namespace tft::net {
namespace {

TEST(PrefixTableEdgeTest, DefaultRouteEntryReported) {
  PrefixTable<int> table;
  table.insert(*Ipv4Prefix::parse("0.0.0.0/0"), 7);
  const auto entry = table.lookup_entry(Ipv4Address(9, 9, 9, 9));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first.length(), 0);
  EXPECT_EQ(entry->second, 7);
}

TEST(PrefixTableEdgeTest, LookupEntryNoneWhenEmpty) {
  PrefixTable<int> table;
  EXPECT_FALSE(table.lookup_entry(Ipv4Address(1, 2, 3, 4)).has_value());
}

TEST(PrefixTableEdgeTest, AdjacentSlash32Entries) {
  PrefixTable<int> table;
  for (std::uint8_t i = 0; i < 8; ++i) {
    table.insert(*Ipv4Prefix::make(Ipv4Address(10, 0, 0, i), 32), i);
  }
  for (std::uint8_t i = 0; i < 8; ++i) {
    EXPECT_EQ(table.lookup(Ipv4Address(10, 0, 0, i)), i);
  }
  EXPECT_FALSE(table.lookup(Ipv4Address(10, 0, 0, 8)).has_value());
}

TEST(PrefixTableEdgeTest, StringValues) {
  PrefixTable<std::string> table;
  table.insert(*Ipv4Prefix::parse("8.8.8.0/24"), "google");
  EXPECT_EQ(table.lookup(Ipv4Address(8, 8, 8, 8)), "google");
}

}  // namespace
}  // namespace tft::net
