// Structured X.509-like certificate model. We model the fields the paper's
// analysis reads: subject/issuer distinguished names (Issuer Common Name
// clustering, Table 8), validity window, hostname binding (CN + SANs),
// public-key identity (shared-key detection across spoofed certificates),
// and the signature linkage needed for chain verification.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tft/sim/time.hpp"

namespace tft::tls {

/// Key material is modeled by identity: two certificates "share a public
/// key" iff their key ids are equal — exactly the property §6.2 checks.
using KeyId = std::uint64_t;

struct DistinguishedName {
  std::string common_name;
  std::string organization;
  std::string country;

  bool operator==(const DistinguishedName&) const = default;
  std::string to_string() const;
};

struct Certificate {
  DistinguishedName subject;
  DistinguishedName issuer;
  std::uint64_t serial = 0;
  sim::Instant not_before;
  sim::Instant not_after;
  std::vector<std::string> subject_alt_names;  // dns names, may use "*." wildcard
  KeyId public_key = 0;
  KeyId signed_by = 0;  // key that produced the signature
  bool is_ca = false;

  bool operator==(const Certificate&) const = default;

  /// Stable fingerprint over all fields (stands in for a hash of the DER).
  std::uint64_t fingerprint() const;

  bool self_signed() const { return signed_by == public_key && issuer == subject; }

  /// Validity window check.
  bool valid_at(sim::Instant now) const {
    return not_before <= now && now <= not_after;
  }

  /// RFC 6125-style host matching against CN and SANs, including single
  /// left-most wildcard labels ("*.example.com").
  bool matches_host(std::string_view host) const;
};

/// Leaf-first certificate chain as presented in a TLS handshake.
using CertificateChain = std::vector<Certificate>;

/// True when a DNS wildcard pattern ("*.example.com") covers `host`.
bool wildcard_matches(std::string_view pattern, std::string_view host);

}  // namespace tft::tls
