#include "tft/dns/name.hpp"

#include <numeric>

#include "tft/util/strings.hpp"

namespace tft::dns {

using util::ErrorCode;
using util::make_error;
using util::Result;

namespace {

constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxNameLength = 253;

Result<void> validate_label(std::string_view label) {
  if (label.empty()) {
    return make_error(ErrorCode::kParseError, "empty DNS label");
  }
  if (label.size() > kMaxLabelLength) {
    return make_error(ErrorCode::kParseError,
                      "DNS label longer than 63 bytes: " + std::string(label));
  }
  for (const char c : label) {
    // Accept LDH plus underscore (common in practice, e.g. _dmarc).
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) {
      return make_error(ErrorCode::kParseError,
                        "invalid character in DNS label: " + std::string(label));
    }
  }
  return {};
}

std::size_t presentation_length(const std::vector<std::string>& labels) {
  if (labels.empty()) return 0;
  std::size_t total = labels.size() - 1;  // separating dots
  for (const auto& label : labels) total += label.size();
  return total;
}

}  // namespace

Result<DnsName> DnsName::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return DnsName{};
  std::vector<std::string> labels;
  for (const auto piece : util::split(text, '.')) {
    if (auto valid = validate_label(piece); !valid) return valid.error();
    labels.emplace_back(piece);
  }
  return from_labels(std::move(labels));
}

Result<DnsName> DnsName::from_labels(std::vector<std::string> labels) {
  for (const auto& label : labels) {
    if (auto valid = validate_label(label); !valid) return valid.error();
  }
  if (presentation_length(labels) > kMaxNameLength) {
    return make_error(ErrorCode::kParseError, "DNS name longer than 253 bytes");
  }
  DnsName name;
  name.labels_ = std::move(labels);
  return name;
}

std::string DnsName::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += '.';
    out += labels_[i];
  }
  return out;
}

bool DnsName::equals(const DnsName& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!util::iequals(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

bool DnsName::is_within(const DnsName& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (!util::iequals(labels_[offset + i], ancestor.labels_[i])) return false;
  }
  return true;
}

Result<DnsName> DnsName::prepend(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

DnsName DnsName::parent() const {
  DnsName out;
  if (labels_.size() > 1) {
    out.labels_.assign(labels_.begin() + 1, labels_.end());
  }
  return out;
}

std::string DnsName::canonical() const { return util::to_lower(to_string()); }

}  // namespace tft::dns
