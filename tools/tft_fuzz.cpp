// tft-fuzz: seeded differential fuzzing driver for the wire codecs.
//
//   tft-fuzz --list
//   tft-fuzz --target dns_decode --seed 101 --iterations 20000
//   tft-fuzz --target http_response --run-corpus fuzz/corpus/http_response
//   tft-fuzz --emit-corpus fuzz/corpus [--corpus-count 24]
//
// A shard run exits 0 when the differential oracle held for every
// iteration (decode(encode(x)) == x; mutated inputs return clean Results)
// and 1 otherwise. The printed report line — including the outcome digest —
// is byte-identical for the same (target, seed, iterations), which is what
// the ctest determinism check compares.
#include <fstream>
#include <iostream>

#include "tft/testing/corpus.hpp"
#include "tft/testing/fuzz.hpp"
#include "tft/util/flags.hpp"

namespace {

constexpr const char* kUsage = R"(tft-fuzz: deterministic fuzzing of the tft wire codecs

Flags:
  --list               print the registered fuzz targets and exit
  --target <name>      which codec to fuzz (see --list)
  --seed <n>           shard seed (default 1); same seed => same verdict
  --iterations <n>     differential iterations to run (default 20000)
  --mutation-rounds <n>  max byte-level mutations per input (default 4)
  --digest-out <path>  also write the report line to a file (for cmp-based
                       determinism checks)
  --run-corpus <dir>   replay every file in <dir> through --target instead
                       of running generated iterations
  --emit-corpus <dir>  (re)generate the seed corpus for every target under
                       <dir>/<target>/ and exit
  --corpus-count <n>   generated seeds per target for --emit-corpus (default 24)
  --quiet              suppress the report line on success
  --help               this text
)";

int fail(const std::string& message) {
  std::cerr << "tft-fuzz: " << message << "\n" << kUsage;
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using tft::util::Flags;
  const auto parsed = Flags::parse(argc, argv, {"list", "quiet", "help"});
  if (!parsed.ok()) return fail(parsed.error().to_string());
  const Flags& flags = *parsed;

  if (flags.get_bool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.unknown({"list", "target", "seed", "iterations",
                                      "mutation-rounds", "digest-out",
                                      "run-corpus", "emit-corpus",
                                      "corpus-count", "quiet", "help"});
  if (!unknown.empty()) return fail("unknown flag --" + unknown.front());

  if (flags.get_bool("list")) {
    for (const auto& target : tft::testing::fuzz_targets()) {
      std::cout << target.name << "  " << target.description << "\n";
    }
    return 0;
  }

  const auto seed = flags.get_int("seed", 1);
  if (!seed.ok()) return fail(seed.error().to_string());
  const auto iterations = flags.get_int("iterations", 20000);
  if (!iterations.ok()) return fail(iterations.error().to_string());
  const auto mutation_rounds = flags.get_int("mutation-rounds", 4);
  if (!mutation_rounds.ok()) return fail(mutation_rounds.error().to_string());
  if (*iterations <= 0) return fail("--iterations must be > 0");
  if (*mutation_rounds <= 0) return fail("--mutation-rounds must be > 0");
  const bool quiet = flags.get_bool("quiet");

  if (const auto corpus_root = flags.get("emit-corpus")) {
    const auto count = flags.get_int("corpus-count", 24);
    if (!count.ok()) return fail(count.error().to_string());
    if (*count <= 0) return fail("--corpus-count must be > 0");
    for (const auto& target : tft::testing::fuzz_targets()) {
      const std::string directory =
          *corpus_root + "/" + std::string(target.name);
      // One fixed corpus seed per target, derived from the target name
      // position so regeneration is reproducible.
      const auto written = tft::testing::write_seed_corpus(
          target.name, directory, 0xC0FFEE + static_cast<std::uint64_t>(*seed),
          static_cast<std::size_t>(*count));
      if (!written.ok()) return fail(written.error().to_string());
      if (!quiet) {
        std::cerr << "wrote " << *written << " inputs to " << directory << "\n";
      }
    }
    return 0;
  }

  const auto target = flags.get("target");
  if (!target) return fail("--target is required (see --list)");
  if (tft::testing::find_fuzz_target(*target) == nullptr) {
    return fail("unknown fuzz target '" + *target + "' (see --list)");
  }

  if (const auto corpus_dir = flags.get("run-corpus")) {
    const auto replayed = tft::testing::run_corpus(*target, *corpus_dir);
    if (!replayed.ok()) return fail(replayed.error().to_string());
    if (*replayed == 0) {
      return fail("corpus directory " + *corpus_dir + " is empty");
    }
    if (!quiet) {
      std::cout << "target=" << *target << " corpus=" << *corpus_dir
                << " inputs=" << *replayed << " verdict=clean\n";
    }
    return 0;
  }

  tft::testing::FuzzShardOptions options;
  options.seed = static_cast<std::uint64_t>(*seed);
  options.iterations = static_cast<std::size_t>(*iterations);
  options.mutation_rounds = static_cast<std::size_t>(*mutation_rounds);
  const auto report = tft::testing::run_fuzz_shard(*target, options);
  if (!report.ok()) return fail(report.error().to_string());

  const std::string line = report->to_line();
  if (const auto digest_out = flags.get("digest-out")) {
    std::ofstream file(*digest_out);
    if (!file) return fail("cannot write " + *digest_out);
    file << line << "\n";
  }
  if (!report->ok()) {
    std::cerr << "FUZZ ORACLE FAILURE: " << line << "\n";
    return 1;
  }
  if (!quiet) std::cout << line << "\n";
  return 0;
}
